// Experiment E5 — interaction-aware materialization scheduling.
//
// Paper (§3.5): "an appropriately scheduled materialization of indexes
// can lead to higher benefit in contrast with a schedule that does not
// take into account index interaction."
//
// We compare the greedy interaction-aware schedule against (a) the
// interaction-oblivious solo-benefit order, (b) random orders, and
// (c) the adversarial reverse of greedy, reporting the cumulative
// benefit curve and its area.

#include "bench_common.h"
#include "cophy/cophy.h"
#include "interaction/schedule.h"

namespace dbdesign {
namespace {

using bench::DataPages;
using bench::Header;
using bench::MakeDb;

struct Shared {
  Database db = MakeDb();
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), 16, 29);
  std::vector<IndexDef> recommended;
  InumCostModel inum{db};

  Shared() {
    CoPhyOptions opts;
    opts.storage_budget_pages = DataPages(db);
    CoPhyAdvisor advisor(db, CostParams{}, opts);
    recommended = advisor.Recommend(workload).indexes;
  }
};

Shared& shared() {
  static Shared* s = new Shared();
  return *s;
}

void PrintCurve(const char* name, const MaterializationSchedule& sched) {
  std::printf("%-22s |", name);
  for (const ScheduleStep& s : sched.steps) {
    std::printf(" %6.0f", sched.base_cost - s.cost_after);
  }
  std::printf(" | area %10.1f\n", sched.BenefitArea());
}

void RunExperiment() {
  Shared& S = shared();
  Header("E5: materialization schedule quality",
         "interaction-aware scheduling yields higher cumulative benefit than "
         "oblivious orders");

  MaterializationScheduler scheduler(S.inum);
  MaterializationSchedule greedy = scheduler.Greedy(S.workload, S.recommended);
  MaterializationSchedule solo =
      scheduler.SoloBenefitOrder(S.workload, S.recommended);

  // Adversarial: greedy's order reversed.
  std::vector<int> greedy_order;
  for (const ScheduleStep& s : greedy.steps) {
    for (size_t i = 0; i < S.recommended.size(); ++i) {
      if (S.recommended[i] == s.index) {
        greedy_order.push_back(static_cast<int>(i));
      }
    }
  }
  std::vector<int> reversed(greedy_order.rbegin(), greedy_order.rend());
  MaterializationSchedule worst =
      scheduler.FixedOrder(S.workload, S.recommended, reversed);

  // Random orders.
  Rng rng(31);
  double random_area = 0.0;
  const int kRandomTrials = 5;
  MaterializationSchedule sample_random;
  for (int t = 0; t < kRandomTrials; ++t) {
    std::vector<int> order = greedy_order;
    rng.Shuffle(order);
    MaterializationSchedule r =
        scheduler.FixedOrder(S.workload, S.recommended, order);
    random_area += r.BenefitArea();
    if (t == 0) sample_random = r;
  }
  random_area /= kRandomTrials;

  std::printf("\nindexes to build: %zu; workload cost %.1f -> %.1f once all "
              "are built\n",
              S.recommended.size(), greedy.base_cost, greedy.final_cost);
  std::printf("\ncumulative benefit after each build step:\n");
  std::printf("%-22s |", "schedule");
  for (size_t k = 1; k <= greedy.steps.size(); ++k) {
    std::printf(" step%-2zu", k);
  }
  std::printf(" |\n");
  PrintCurve("greedy (interaction)", greedy);
  PrintCurve("solo-benefit order", solo);
  PrintCurve("random (1 sample)", sample_random);
  PrintCurve("reverse-greedy", worst);

  std::printf("\nbenefit-area ratios (greedy = 1.00):\n");
  std::printf("  vs solo-benefit order: %.3f\n",
              solo.BenefitArea() / greedy.BenefitArea());
  std::printf("  vs random (avg of %d): %.3f\n", kRandomTrials,
              random_area / greedy.BenefitArea());
  std::printf("  vs reverse-greedy:     %.3f\n",
              worst.BenefitArea() / greedy.BenefitArea());
  std::printf("\n(all schedules end at the same final cost %.1f; only the "
              "path differs)\n",
              greedy.final_cost);
}

void BM_GreedySchedule(benchmark::State& state) {
  Shared& S = shared();
  MaterializationScheduler scheduler(S.inum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.Greedy(S.workload, S.recommended));
  }
}
BENCHMARK(BM_GreedySchedule)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("schedule");
  reporter.TimeOp("e10_schedule", [] { dbdesign::RunExperiment(); });
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
