// Experiment E5 — interaction-aware deployment scheduling as a session
// stage.
//
// Paper (§3.5): "an appropriately scheduled materialization of indexes
// can lead to higher benefit in contrast with a schedule that does not
// take into account index interaction."
//
// Three panels:
//   (a) the session stage itself — PlanDeployment() on a warm session
//       (DoI matrix + clusters + constraint-aware greedy schedule) and
//       the replan-after-refine reuse path, with the backend
//       optimizer-call deltas that prove both are cached-atom work,
//   (b) schedule quality — greedy vs the interaction-oblivious
//       solo-benefit order, the fixed (recommendation) order, random
//       orders and the adversarial reverse, as cumulative-benefit
//       prefix curves (exported under extra.benefit_curves),
//   (c) DoI matrix wall time, serial vs multicore (bit-identical
//       results; speedup exported).

#include <algorithm>

#include "backend/inmemory_backend.h"
#include "bench_common.h"
#include "core/session.h"
#include "interaction/doi.h"
#include "interaction/schedule.h"

namespace dbdesign {
namespace {

using bench::DataPages;
using bench::Header;
using bench::JsonReporter;
using bench::MakeDb;

int TraceQueries() {
  if (const char* env = std::getenv("DBDESIGN_BENCH_TRACE")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 2000;
}

struct Shared {
  Database db = MakeDb();
  Designer designer{db};
  DesignSession session{designer};
  Workload class_workload;  ///< compressed form the schedule is costed on
  std::vector<IndexDef> recommended;
  double recommend_ms = 0.0;
  int trace_queries = TraceQueries();

  Shared() {
    DesignConstraints constraints;
    constraints.storage_budget_pages = DataPages(db);
    session.SetConstraints(constraints);
    session.SetWorkload(
        GenerateWorkload(db, TemplateMix::OfflineDefault(), trace_queries, 29));
    auto t0 = std::chrono::steady_clock::now();
    auto rec = session.Recommend();
    recommend_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    if (rec.ok()) recommended = rec.value().indexes;
    for (const TemplateClass& cls : session.template_classes()) {
      class_workload.Add(cls.representative, cls.weight);
    }
  }
};

Shared& shared() {
  static Shared* s = new Shared();
  return *s;
}

Json CurveJson(const MaterializationSchedule& sched) {
  Json arr = Json::Array();
  for (size_t k = 1; k <= sched.steps.size(); ++k) {
    arr.Append(Json::Number(sched.BenefitAtPrefix(k)));
  }
  return arr;
}

void PrintCurve(const char* name, const MaterializationSchedule& sched) {
  std::printf("%-22s |", name);
  for (size_t k = 1; k <= sched.steps.size(); ++k) {
    std::printf(" %8.0f", sched.BenefitAtPrefix(k));
  }
  std::printf(" | area %10.1f\n", sched.BenefitArea());
}

void RunExperiment(JsonReporter& reporter) {
  Shared& S = shared();
  Header("E5a: deployment planning as a session stage",
         "after a warm Recommend, the whole stage (DoI matrix, clusters, "
         "schedule) is cached-atom repricing — zero backend optimizer calls");

  std::printf("\ntrace: %d queries -> %zu template classes; recommendation: "
              "%zu indexes (solved in %.1f ms)\n",
              S.trace_queries, S.session.num_template_classes(),
              S.recommended.size(), S.recommend_ms);
  reporter.Report("recommend_cold", S.recommend_ms);

  uint64_t calls0 = S.session.backend_optimizer_calls();
  uint64_t pops0 = S.session.inum_populate_count();
  auto t0 = std::chrono::steady_clock::now();
  auto plan = S.session.PlanDeployment();
  double plan_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  if (!plan.ok()) {
    std::printf("error: %s\n", plan.status().ToString().c_str());
    return;
  }
  uint64_t plan_calls = S.session.backend_optimizer_calls() - calls0;
  uint64_t plan_pops = S.session.inum_populate_count() - pops0;
  std::printf("PlanDeployment (cold DoI cache): %.1f ms — %zu interacting "
              "pairs, %zu clusters, %zu build steps; %llu backend calls, "
              "%llu populations\n",
              plan_ms, plan.value().edges.size(), plan.value().clusters.size(),
              plan.value().schedule.steps.size(),
              static_cast<unsigned long long>(plan_calls),
              static_cast<unsigned long long>(plan_pops));
  reporter.Report("deploy_plan_warm_session", plan_ms, 1.0, plan_calls,
                  plan_pops);

  // Replan after a schedule-neutral refine: reuse outright.
  TableId photo = S.db.catalog().FindTable(kPhotoObj);
  ConstraintDelta delta;
  delta.veto.push_back(IndexDef{
      photo, {S.db.catalog().table(photo).FindColumn("rerun")}, false});
  auto refined = S.session.Refine(delta);
  if (!refined.ok()) {
    std::printf("error: %s\n", refined.status().ToString().c_str());
    return;
  }
  calls0 = S.session.backend_optimizer_calls();
  pops0 = S.session.inum_populate_count();
  t0 = std::chrono::steady_clock::now();
  auto replan = S.session.PlanDeployment();
  double replan_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  if (!replan.ok()) {
    std::printf("error: %s\n", replan.status().ToString().c_str());
    return;
  }
  std::printf("replan after veto-refine: %.2f ms (%.0fx), schedule %s, "
              "%zu/%zu DoI rows from cache, %llu backend calls\n",
              replan_ms, plan_ms / std::max(0.001, replan_ms),
              replan.value().schedule_reused ? "reused outright" : "rebuilt",
              replan.value().doi_rows_reused,
              replan.value().doi_rows_reused +
                  replan.value().doi_rows_computed,
              static_cast<unsigned long long>(
                  S.session.backend_optimizer_calls() - calls0));
  reporter.Report("deploy_replan_reuse", replan_ms,
                  plan_ms / std::max(0.001, replan_ms),
                  S.session.backend_optimizer_calls() - calls0,
                  S.session.inum_populate_count() - pops0);

  // --- E5b: schedule quality ---
  Header("E5b: materialization schedule quality",
         "interaction-aware scheduling yields higher cumulative benefit than "
         "oblivious orders");
  const MaterializationSchedule& greedy = plan.value().schedule;
  MaterializationScheduler scheduler(S.designer.inum());
  MaterializationSchedule solo =
      scheduler.SoloBenefitOrder(S.class_workload, S.recommended);

  // Fixed order: the order the recommendation happened to list.
  std::vector<int> identity;
  for (size_t i = 0; i < S.recommended.size(); ++i) {
    identity.push_back(static_cast<int>(i));
  }
  MaterializationSchedule fixed =
      scheduler.FixedOrder(S.class_workload, S.recommended, identity);

  // Adversarial: greedy's order reversed.
  std::vector<int> greedy_order;
  for (const ScheduleStep& s : greedy.steps) {
    for (size_t i = 0; i < S.recommended.size(); ++i) {
      if (S.recommended[i] == s.index) {
        greedy_order.push_back(static_cast<int>(i));
      }
    }
  }
  std::vector<int> reversed(greedy_order.rbegin(), greedy_order.rend());
  MaterializationSchedule worst =
      scheduler.FixedOrder(S.class_workload, S.recommended, reversed);

  // Random orders.
  Rng rng(31);
  double random_area = 0.0;
  const int kRandomTrials = 5;
  MaterializationSchedule sample_random;
  for (int t = 0; t < kRandomTrials; ++t) {
    std::vector<int> order = greedy_order;
    rng.Shuffle(order);
    MaterializationSchedule r =
        scheduler.FixedOrder(S.class_workload, S.recommended, order);
    random_area += r.BenefitArea();
    if (t == 0) sample_random = r;
  }
  random_area /= kRandomTrials;

  std::printf("\nindexes to build: %zu; workload cost %.1f -> %.1f once all "
              "are built\n",
              S.recommended.size(), greedy.base_cost, greedy.final_cost);
  std::printf("\ncumulative benefit after each build step:\n");
  std::printf("%-22s |", "schedule");
  for (size_t k = 1; k <= greedy.steps.size(); ++k) {
    std::printf(" step%-4zu", k);
  }
  std::printf(" |\n");
  PrintCurve("greedy (interaction)", greedy);
  PrintCurve("solo-benefit order", solo);
  PrintCurve("fixed (rec) order", fixed);
  PrintCurve("random (1 sample)", sample_random);
  PrintCurve("reverse-greedy", worst);

  std::printf("\nbenefit-area ratios (greedy = 1.00):\n");
  std::printf("  vs solo-benefit order: %.3f\n",
              solo.BenefitArea() / greedy.BenefitArea());
  std::printf("  vs fixed (rec) order:  %.3f\n",
              fixed.BenefitArea() / greedy.BenefitArea());
  std::printf("  vs random (avg of %d): %.3f\n", kRandomTrials,
              random_area / greedy.BenefitArea());
  std::printf("  vs reverse-greedy:     %.3f\n",
              worst.BenefitArea() / greedy.BenefitArea());
  std::printf("\n(all schedules end at the same final cost %.1f; only the "
              "path differs)\n",
              greedy.final_cost);

  Json curves = Json::Object();
  curves["greedy"] = CurveJson(greedy);
  curves["solo_benefit"] = CurveJson(solo);
  curves["fixed_order"] = CurveJson(fixed);
  curves["reverse_greedy"] = CurveJson(worst);
  reporter.Extra("benefit_curves", std::move(curves));
  Json areas = Json::Object();
  areas["greedy"] = Json::Number(greedy.BenefitArea());
  areas["solo_benefit"] = Json::Number(solo.BenefitArea());
  areas["fixed_order"] = Json::Number(fixed.BenefitArea());
  areas["random_avg"] = Json::Number(random_area);
  areas["reverse_greedy"] = Json::Number(worst.BenefitArea());
  reporter.Extra("benefit_area", std::move(areas));

  // --- E5c: DoI matrix, serial vs multicore ---
  Header("E5c: DoI matrix wall time, serial vs multicore",
         "pairwise interactions fan out across the thread pool with "
         "bit-identical results");
  CostParams serial_params;
  serial_params.num_threads = 1;
  InMemoryBackend serial_backend(S.db, serial_params);
  InumCostModel serial_inum(serial_backend);
  InteractionAnalyzer serial_analyzer(serial_inum);
  t0 = std::chrono::steady_clock::now();
  DoiMatrix m1 =
      serial_analyzer.AnalyzeMatrix(S.class_workload, S.recommended);
  double serial_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

  CostParams multi_params;  // num_threads = 0 -> hardware
  InMemoryBackend multi_backend(S.db, multi_params);
  InumCostModel multi_inum(multi_backend);
  InteractionAnalyzer multi_analyzer(multi_inum);
  t0 = std::chrono::steady_clock::now();
  DoiMatrix mN = multi_analyzer.AnalyzeMatrix(S.class_workload, S.recommended);
  double multi_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  bool identical = m1.doi == mN.doi && m1.contributions == mN.contributions;
  std::printf("\n%zu pairs x %zu classes: serial %.1f ms, %d threads %.1f ms "
              "(%.2fx), results %s\n",
              m1.num_pairs(), S.class_workload.size(), serial_ms,
              ThreadPool::HardwareThreads(), multi_ms,
              serial_ms / std::max(0.001, multi_ms),
              identical ? "bit-identical" : "MISMATCH");
  reporter.Report("doi_matrix_serial", serial_ms, 1.0);
  reporter.Report("doi_matrix_multicore", multi_ms,
                  serial_ms / std::max(0.001, multi_ms));
}

void BM_GreedySchedule(benchmark::State& state) {
  Shared& S = shared();
  MaterializationScheduler scheduler(S.designer.inum());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scheduler.Greedy(S.class_workload, S.recommended));
  }
}
BENCHMARK(BM_GreedySchedule)->Unit(benchmark::kMillisecond);

void BM_PlanDeployment(benchmark::State& state) {
  Shared& S = shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(S.session.PlanDeployment());
  }
}
BENCHMARK(BM_PlanDeployment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("schedule");
  dbdesign::RunExperiment(reporter);
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
