// Experiment E6 — Scenario 3: continuous tuning under workload drift.
//
// Paper (§4): the continuous tuning component "monitors the behavior of
// the system when the workload changes and suggests changes to the set
// of indexes. Our tool presents the change in system's performance
// accruing from adopting the new suggested indexes."
//
// We stream three workload phases and compare cumulative cost for:
//   no tuning, COLT online tuning (including build costs), and an
//   offline oracle that knows each phase's workload in advance.

#include "bench_common.h"
#include "colt/colt.h"
#include "cophy/cophy.h"

namespace dbdesign {
namespace {

using bench::DataPages;
using bench::Header;
using bench::MakeDb;

struct Shared {
  Database db = MakeDb();
  std::vector<TemplateMix> phases = {TemplateMix::PhaseSelections(),
                                     TemplateMix::PhaseJoins(),
                                     TemplateMix::PhaseAggregates()};
  int per_phase = 150;
  std::vector<BoundQuery> stream =
      GenerateDriftingStream(db, phases, per_phase, 77);
};

Shared& shared() {
  static Shared* s = new Shared();
  return *s;
}

void RunExperiment() {
  Shared& S = shared();
  Header("E6: COLT online tuning under drift (Scenario 3)",
         "online tuning adapts the index set as the workload changes and "
         "improves performance");

  // --- no tuning ---
  InumCostModel oracle(S.db);
  double untuned = 0.0;
  std::vector<double> untuned_by_phase(S.phases.size(), 0.0);
  for (size_t i = 0; i < S.stream.size(); ++i) {
    double c = oracle.Cost(S.stream[i], PhysicalDesign{});
    untuned += c;
    untuned_by_phase[i / static_cast<size_t>(S.per_phase)] += c;
  }

  // --- COLT ---
  ColtOptions opts;
  opts.epoch_length = 25;
  ColtTuner tuner(S.db, CostParams{}, opts);
  std::vector<double> colt_by_phase(S.phases.size(), 0.0);
  for (size_t i = 0; i < S.stream.size(); ++i) {
    colt_by_phase[i / static_cast<size_t>(S.per_phase)] +=
        tuner.OnQuery(S.stream[i]);
  }

  // --- offline oracle: per-phase CoPhy with the phase workload known ---
  double oracle_cost = 0.0;
  for (size_t p = 0; p < S.phases.size(); ++p) {
    Workload phase_w;
    for (int i = 0; i < S.per_phase; ++i) {
      phase_w.Add(S.stream[p * static_cast<size_t>(S.per_phase) +
                           static_cast<size_t>(i)]);
    }
    CoPhyOptions copts;
    copts.storage_budget_pages = DataPages(S.db);
    CoPhyAdvisor advisor(S.db, CostParams{}, copts);
    IndexRecommendation rec = advisor.Recommend(phase_w);
    oracle_cost += rec.recommended_cost;
  }

  std::printf("\nstream: %zu queries in %zu phases "
              "(selections -> joins -> aggregates)\n",
              S.stream.size(), S.phases.size());
  std::printf("\nper-phase query cost:\n");
  std::printf("  %-14s %12s %12s %9s\n", "phase", "no tuning", "COLT",
              "saved");
  const char* names[] = {"selections", "joins", "aggregates"};
  for (size_t p = 0; p < S.phases.size(); ++p) {
    std::printf("  %-14s %12.1f %12.1f %8.1f%%\n", names[p],
                untuned_by_phase[p], colt_by_phase[p],
                100.0 * (1.0 - colt_by_phase[p] / untuned_by_phase[p]));
  }
  std::printf("\ncumulative totals:\n");
  std::printf("  %-34s %12.1f\n", "no tuning", untuned);
  std::printf("  %-34s %12.1f  (queries %.1f + builds %.1f)\n",
              "COLT online", tuner.cumulative_cost(),
              tuner.cumulative_query_cost(), tuner.cumulative_build_cost());
  std::printf("  %-34s %12.1f  (per-phase CoPhy, build costs ignored)\n",
              "offline oracle (upper bound)", oracle_cost);
  std::printf("\nCOLT saved %.1f%% vs no tuning; oracle bound is %.1f%%\n",
              100.0 * (1.0 - tuner.cumulative_cost() / untuned),
              100.0 * (1.0 - oracle_cost / untuned));

  int builds = 0;
  int drops = 0;
  int alerts = 0;
  for (const ColtEvent& e : tuner.events()) {
    builds += e.type == ColtEvent::Type::kBuild;
    drops += e.type == ColtEvent::Type::kDrop;
    alerts += e.type == ColtEvent::Type::kAlert;
  }
  std::printf("\nevents: %d alerts, %d builds, %d drops across %zu epochs\n",
              alerts, builds, drops, tuner.epochs().size());
  std::printf("\nper-epoch trace (cost under live design vs untuned "
              "baseline):\n");
  std::printf("  epoch   observed   baseline   indexes\n");
  for (const ColtEpochReport& e : tuner.epochs()) {
    std::printf("  %5d %10.1f %10.1f %9d\n", e.epoch, e.observed_cost,
                e.baseline_cost, e.config_size);
  }
}

void BM_ColtOnQuery(benchmark::State& state) {
  Shared& S = shared();
  ColtTuner tuner(S.db);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.OnQuery(S.stream[i % S.stream.size()]));
    ++i;
  }
}
BENCHMARK(BM_ColtOnQuery);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("colt");
  reporter.TimeOp("e6_colt", [] { dbdesign::RunExperiment(); });
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
