// Experiment E4 — CoPhy vs greedy quality, and the time/quality knob.
//
// Paper (§1): greedy heuristics "prune away large fractions of the
// search space and often suggest locally optimal solutions instead of
// the globally optimal one"; CoPhy "provides close to optimal
// suggestions ... allows to trade off execution time against the
// quality of the suggested solutions."

#include "bench_common.h"
#include "cophy/cophy.h"
#include "cophy/greedy.h"

namespace dbdesign {
namespace {

using bench::DataPages;
using bench::Header;
using bench::MakeDb;

struct Shared {
  Database db = MakeDb();
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), 24, 19);
  std::vector<CandidateIndex> candidates =
      GenerateCandidates(db, workload);
};

Shared& shared() {
  static Shared* s = new Shared();
  return *s;
}

void RunBudgetSweep() {
  Shared& S = shared();
  Header("E4a: index selection quality, CoPhy (BIP) vs greedy baseline",
         "\"close to optimal suggestions\" vs \"locally optimal\" greedy");

  double data_pages = DataPages(S.db);
  std::printf("\ndata size: %.0f pages; %zu candidates, %zu queries\n",
              data_pages, S.candidates.size(), S.workload.size());
  std::printf(
      "\n%-8s | %-10s %-8s %-8s %-6s | %-10s %-8s | %-9s\n", "budget",
      "CoPhy", "improve", "LP bound", "gap", "greedy", "improve",
      "CoPhy win");
  std::printf("---------+--------------------------------------+---------------------+----------\n");

  for (double factor : {0.25, 0.5, 1.0, 2.0}) {
    CoPhyOptions copts;
    copts.storage_budget_pages = factor * data_pages;
    CoPhyAdvisor cophy(S.db, CostParams{}, copts);
    IndexRecommendation rec =
        cophy.RecommendWithCandidates(S.workload, S.candidates);

    GreedyOptions gopts;
    gopts.storage_budget_pages = factor * data_pages;
    GreedyAdvisor greedy(S.db, CostParams{}, gopts);
    GreedyResult g = greedy.RecommendWithCandidates(S.workload, S.candidates);

    // Evaluate both with a single oracle for the head-to-head column.
    PhysicalDesign cd;
    for (const IndexDef& i : rec.indexes) cd.AddIndex(i);
    PhysicalDesign gd;
    for (const IndexDef& i : g.indexes) gd.AddIndex(i);
    double c_cost = cophy.inum().WorkloadCost(S.workload, cd);
    double g_cost = cophy.inum().WorkloadCost(S.workload, gd);

    std::printf("%6.2fx  | %10.1f %6.1f%%  %8.1f %5.2f%% | %10.1f %6.1f%% | %8.2f%%\n",
                factor, c_cost,
                100.0 * (1.0 - c_cost / rec.base_cost), rec.lower_bound,
                rec.gap * 100.0, g_cost,
                100.0 * (1.0 - g_cost / rec.base_cost),
                100.0 * (g_cost - c_cost) / g_cost);
  }
  std::printf("\n(CoPhy win = how much cheaper CoPhy's configuration is than "
              "greedy's, same candidates, same oracle)\n");
}

void RunTimeQualityKnob() {
  Shared& S = shared();
  Header("E4b: time vs quality trade-off",
         "\"CoPhy allows to trade off execution time against the quality of "
         "the suggested solutions\"");
  double budget = 0.5 * DataPages(S.db);
  std::printf("\n%-12s %-10s %-12s %-10s %-8s\n", "node budget",
              "solve (s)", "cost", "gap", "optimal?");
  for (int nodes : {1, 4, 16, 64, 2000}) {
    CoPhyOptions opts;
    opts.storage_budget_pages = budget;
    opts.bnb.max_nodes = nodes;
    CoPhyAdvisor advisor(S.db, CostParams{}, opts);
    IndexRecommendation rec =
        advisor.RecommendWithCandidates(S.workload, S.candidates);
    std::printf("%-12d %-10.3f %-12.1f %6.2f%%  %s\n", nodes,
                rec.solve_time_sec, rec.recommended_cost, rec.gap * 100.0,
                rec.proven_optimal ? "yes" : "no");
  }
}

void BM_CoPhyRecommend(benchmark::State& state) {
  Shared& S = shared();
  CoPhyOptions opts;
  opts.storage_budget_pages = 0.5 * DataPages(S.db);
  opts.bnb.max_nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CoPhyAdvisor advisor(S.db, CostParams{}, opts);
    IndexRecommendation rec =
        advisor.RecommendWithCandidates(S.workload, S.candidates);
    benchmark::DoNotOptimize(rec.recommended_cost);
  }
}
BENCHMARK(BM_CoPhyRecommend)->Arg(16)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_GreedyRecommend(benchmark::State& state) {
  Shared& S = shared();
  GreedyOptions opts;
  opts.storage_budget_pages = 0.5 * DataPages(S.db);
  for (auto _ : state) {
    GreedyAdvisor advisor(S.db, CostParams{}, opts);
    GreedyResult r = advisor.RecommendWithCandidates(S.workload, S.candidates);
    benchmark::DoNotOptimize(r.final_cost);
  }
}
BENCHMARK(BM_GreedyRecommend)->Unit(benchmark::kMillisecond);

void BM_CandidateGeneration(benchmark::State& state) {
  Shared& S = shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateCandidates(S.db, S.workload));
  }
}
BENCHMARK(BM_CandidateGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("cophy");
  reporter.TimeOp("e4_budget_sweep", [] { dbdesign::RunBudgetSweep(); });
  reporter.TimeOp("e4b_time_quality_knob", [] { dbdesign::RunTimeQualityKnob(); });
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
