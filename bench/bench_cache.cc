// Bounded atom caching benchmark — the budgeted tiered LRU under a
// many-schema workload.
//
// An unbounded AtomStore on a long-lived server grows with schema
// variety: every (schema, template, universe) row stays hot forever.
// This bench drives one session per schema across kSchemas substrates
// against (a) an unbounded server — measuring the growth curve and the
// warm-path latency baseline — and (b) a server whose atom budget is a
// third of the unbounded footprint, with a spill directory for the
// cold tier. Hard acceptance gates (DBD_CHECK — the bench aborts, CI
// goes red):
//
//   * bounded memory: the hot-byte gauge AND its high-water mark never
//     exceed the budget, checked after every session,
//   * the tiers actually cycle: evictions, spills, and reloads all > 0,
//   * bit-identical results: every Recommend cost, index-set signature,
//     and deployment final cost matches the unbounded server exactly,
//   * warm latency: a fresh session on a warm (budgeted, mostly
//     spilled) schema recommends within 2x of the unbounded warm path —
//     reload+decode is noise next to the solve it avoids.
//
// DBDESIGN_BENCH_ROWS caps substrate sizes for CI smoke runs as usual.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "backend/inmemory_backend.h"
#include "cophy/atom_codec.h"
#include "server/server.h"

namespace dbdesign {
namespace {

using bench::BenchRows;
using bench::Header;
using bench::JsonReporter;

void CheckOk(const Status& st) {
  if (!st.ok()) std::fprintf(stderr, "bench_cache: %s\n", st.ToString().c_str());
  DBD_CHECK(st.ok());
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kSchemas = 6;

struct Fleet {
  std::vector<Database> dbs;
  std::vector<std::unique_ptr<InMemoryBackend>> backends;
  std::vector<Workload> workloads;
};

Fleet BuildFleet() {
  SetLogLevel(LogLevel::kError);
  Fleet fleet;
  for (int s = 0; s < kSchemas; ++s) {
    SdssConfig cfg;
    cfg.photoobj_rows = BenchRows(2000) + 200 * s;
    cfg.seed = 42 + static_cast<uint64_t>(s);
    fleet.dbs.push_back(BuildSdssDatabase(cfg));
  }
  for (int s = 0; s < kSchemas; ++s) {
    fleet.backends.push_back(std::make_unique<InMemoryBackend>(fleet.dbs[s]));
    fleet.workloads.push_back(GenerateWorkload(
        fleet.dbs[s], TemplateMix::OfflineDefault(), 6, 19 + s));
  }
  return fleet;
}

std::unique_ptr<TuningServer> MakeServer(Fleet& fleet,
                                         TuningServerOptions options = {}) {
  auto server = std::make_unique<TuningServer>(std::move(options));
  for (int s = 0; s < kSchemas; ++s) {
    CheckOk(server->RegisterSchema("schema" + std::to_string(s),
                                   *fleet.backends[s]));
  }
  return server;
}

struct PassResult {
  std::vector<double> rec_costs;    ///< recommended_cost per schema
  std::vector<std::string> sigs;    ///< index-set signature per schema
  std::vector<double> plan_costs;   ///< schedule final_cost per schema
  std::vector<double> op_ms;        ///< per-schema recommend latency
  std::vector<double> bytes_after;  ///< store hot bytes after each schema
};

/// One fresh session per schema, sequentially: SetWorkload, Recommend
/// (timed), PlanDeployment, close. With `budget` != 0 the store gauge
/// is hard-checked against it after every session — the "bounded RSS
/// at all times" gate.
PassResult RunPass(TuningServer& server, Fleet& fleet,
                   const std::string& prefix, size_t budget) {
  PassResult result;
  for (int s = 0; s < kSchemas; ++s) {
    std::string id = prefix + std::to_string(s);
    CheckOk(server.OpenSession(id, "schema" + std::to_string(s)));
    double t0 = NowMs();
    CheckOk(server.WithSession(id, [&](DesignSession& session) {
      session.SetWorkload(fleet.workloads[s]);
      Result<IndexRecommendation> rec = session.Recommend();
      CheckOk(rec.status());
      result.rec_costs.push_back(rec.value().recommended_cost);
      std::string sig;
      for (const IndexDef& idx : rec.value().indexes) {
        sig += idx.Key();
        sig += ';';
      }
      result.sigs.push_back(std::move(sig));
      Result<DeploymentPlan> plan = session.PlanDeployment();
      CheckOk(plan.status());
      result.plan_costs.push_back(plan.value().schedule.final_cost);
    }));
    result.op_ms.push_back(NowMs() - t0);
    result.bytes_after.push_back(static_cast<double>(server.atom_store().hot_bytes()));
    if (budget != 0) {
      DBD_CHECK(server.atom_store().hot_bytes() <= budget);
      DBD_CHECK(server.atom_store().peak_hot_bytes() <= budget);
    }
    CheckOk(server.CloseSession(id));
  }
  return result;
}

void ExpectIdentical(const PassResult& a, const PassResult& b) {
  DBD_CHECK(a.rec_costs == b.rec_costs);
  DBD_CHECK(a.sigs == b.sigs);
  DBD_CHECK(a.plan_costs == b.plan_costs);
}

double Total(const std::vector<double>& v) {
  double t = 0.0;
  for (double x : v) t += x;
  return t;
}

void RunCacheBench(JsonReporter& reporter) {
  Header("Bounded atom caching: budgeted tiered LRU vs unbounded store",
         "a memory budget bounds the shared substrate at a third of its "
         "unbounded footprint with bit-identical recommendations and "
         "warm latency within 2x");

  Fleet fleet = BuildFleet();

  // --- Unbounded baseline: growth curve + warm latency ---
  auto unbounded = MakeServer(fleet);
  double t0 = NowMs();
  PassResult u_cold = RunPass(*unbounded, fleet, "ucold", 0);
  double u_cold_wall = NowMs() - t0;
  size_t unbounded_bytes = unbounded->atom_store().hot_bytes();
  DBD_CHECK(unbounded_bytes > 0);

  t0 = NowMs();
  PassResult u_warm = RunPass(*unbounded, fleet, "uwarm", 0);
  double u_warm_wall = NowMs() - t0;
  ExpectIdentical(u_cold, u_warm);
  TuningServerStats u_stats = unbounded->stats();
  DBD_CHECK(u_stats.atoms.evictions == 0 && u_stats.atoms.spills == 0);

  std::printf("\nunbounded : cold %8.1f ms  warm %8.1f ms  store %zu bytes "
              "(%zu entries)\n",
              u_cold_wall, u_warm_wall, unbounded_bytes,
              unbounded->atom_store().entries());
  std::printf("growth    : ");
  for (double b : u_cold.bytes_after) std::printf("%.0f ", b);
  std::printf("bytes\n");

  // --- Bounded server: budget = a third of the unbounded footprint ---
  CacheBudget budget;
  budget.atom_store_bytes = std::max<size_t>(unbounded_bytes / 3, 1);
  budget.doi_rows_bytes = 4096;
  budget.solver_cache_bytes = 4096;
  TuningServerOptions bounded_options;
  bounded_options.cache_budget = budget;
  bounded_options.spill_dir = "./bench_cache_spill";
  auto bounded = MakeServer(fleet, bounded_options);

  t0 = NowMs();
  PassResult b_cold = RunPass(*bounded, fleet, "bcold", budget.atom_store_bytes);
  double b_cold_wall = NowMs() - t0;
  t0 = NowMs();
  PassResult b_warm = RunPass(*bounded, fleet, "bwarm", budget.atom_store_bytes);
  double b_warm_wall = NowMs() - t0;

  // Bit-identical to the unbounded server, cold and warm.
  ExpectIdentical(u_cold, b_cold);
  ExpectIdentical(u_cold, b_warm);

  TuningServerStats b_stats = bounded->stats();
  std::printf("bounded   : cold %8.1f ms  warm %8.1f ms  budget %zu bytes  "
              "peak %zu bytes\n",
              b_cold_wall, b_warm_wall, budget.atom_store_bytes,
              bounded->atom_store().peak_hot_bytes());
  std::printf("tiers     : %llu evictions  %llu spills  %llu reloads  "
              "%llu reload-failures  %llu repopulates\n",
              static_cast<unsigned long long>(b_stats.atoms.evictions),
              static_cast<unsigned long long>(b_stats.atoms.spills),
              static_cast<unsigned long long>(b_stats.atoms.reloads),
              static_cast<unsigned long long>(b_stats.atoms.reload_failures),
              static_cast<unsigned long long>(b_stats.atoms.repopulates));

  // The tiers actually cycled under the squeeze.
  DBD_CHECK(b_stats.atoms.evictions > 0);
  DBD_CHECK(b_stats.atoms.spills > 0);
  DBD_CHECK(b_stats.atoms.reloads > 0);
  DBD_CHECK(bounded->atom_store().peak_hot_bytes() <= budget.atom_store_bytes);

  // Warm-path latency: the budgeted store serves a fresh session on a
  // warm schema within 2x of the unbounded store (1 ms floor keeps the
  // gate meaningful on smoke-sized substrates).
  double u_warm_ms = std::max(Total(u_warm.op_ms), 1.0);
  double b_warm_ms = Total(b_warm.op_ms);
  double ratio = b_warm_ms / u_warm_ms;
  std::printf("warm gate : bounded %8.1f ms vs unbounded %8.1f ms "
              "(ratio %.2f, bound 2.00)\n",
              b_warm_ms, u_warm_ms, ratio);
  DBD_CHECK(b_warm_ms <= 2.0 * u_warm_ms);

  reporter.Report("unbounded_cold_pass", u_cold_wall);
  reporter.Report("unbounded_warm_pass", u_warm_wall);
  reporter.Report("bounded_cold_pass", b_cold_wall);
  reporter.Report("bounded_warm_pass", b_warm_wall,
                  /*speedup_vs_serial=*/u_warm_wall > 0.0
                      ? u_warm_wall / b_warm_wall
                      : 1.0);

  Json extra = Json::Object();
  extra["schemas"] = Json::Number(kSchemas);
  extra["unbounded_hot_bytes"] =
      Json::Number(static_cast<double>(unbounded_bytes));
  extra["budget_bytes"] =
      Json::Number(static_cast<double>(budget.atom_store_bytes));
  extra["bounded_peak_hot_bytes"] =
      Json::Number(static_cast<double>(bounded->atom_store().peak_hot_bytes()));
  extra["bounded_within_budget"] = Json::Bool(true);  // DBD_CHECK-enforced
  extra["bit_identical_to_unbounded"] = Json::Bool(true);
  extra["evictions"] =
      Json::Number(static_cast<double>(b_stats.atoms.evictions));
  extra["spills"] = Json::Number(static_cast<double>(b_stats.atoms.spills));
  extra["reloads"] = Json::Number(static_cast<double>(b_stats.atoms.reloads));
  extra["reload_failures"] =
      Json::Number(static_cast<double>(b_stats.atoms.reload_failures));
  extra["repopulates"] =
      Json::Number(static_cast<double>(b_stats.atoms.repopulates));
  extra["warm_latency_ratio"] = Json::Number(ratio);
  Json growth = Json::Array();
  for (double b : u_cold.bytes_after) growth.Append(Json::Number(b));
  extra["unbounded_growth_curve_bytes"] = std::move(growth);
  reporter.Extra("cache", std::move(extra));
}

// Microbenchmark: one spill-tier round trip (encode + decode) for a
// typical atom row — the per-row cost a reload adds to a warm lookup.
void BM_AtomCodecRoundTrip(benchmark::State& state) {
  CoPhyAtomRow row;
  row.base_cost = 1234.5;
  for (int a = 0; a < 64; ++a) {
    CoPhyAtom atom;
    atom.cost = 10.0 + a;
    for (int i = 0; i < a % 5; ++i) atom.used.push_back(a + i);
    row.atoms.push_back(std::move(atom));
  }
  for (auto _ : state) {
    Result<CoPhyAtomRow> back = DecodeAtomRow(EncodeAtomRow(row));
    benchmark::DoNotOptimize(back.ok());
  }
}
BENCHMARK(BM_AtomCodecRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("cache");
  dbdesign::RunCacheBench(reporter);
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
