// Experiment E-fault — resilience overhead and recovery at the
// backend seam.
//
// A portable designer must survive a flaky DBMS connection: the paper's
// interactive loop is only usable if a transiently failing backend
// costs retries, not wrong answers or aborted sessions. This bench
// drives the full session Recommend through the fault seam
// (InumOptions::force_exact, so every costing call traverses the
// backend) at increasing transient-failure rates and reports:
//
//   * loop@<rate> — p50/p99 wall time (over DBDESIGN_BENCH_REPS runs,
//     default 9) of a cold Recommend + PlanDeployment with the
//     ResilientBackend absorbing a deterministic fault schedule
//     (retries > burst, so recovery is guaranteed);
//   * recovered_identical — whether the recommendation came back
//     bit-identical to the fault-free run (the tentpole claim);
//   * retry telemetry — attempts/retries/recoveries/giveups per rate;
//   * loop@outage — a hard outage: the time to the clean
//     degraded answer (fast-fail via the circuit breaker, no hang).
//
// Writes BENCH_fault.json; the per-rate telemetry lands under
// extra.fault_rates.

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "backend/fault_backend.h"
#include "backend/inmemory_backend.h"
#include "backend/resilient_backend.h"
#include "bench_common.h"
#include "core/designer.h"
#include "core/session.h"

namespace dbdesign {
namespace {

using bench::Header;
using bench::JsonReporter;
using bench::MakeDb;

DesignerOptions ForceExactOptions() {
  DesignerOptions opts;
  opts.cophy.inum.force_exact = true;
  return opts;
}

/// Repetitions per fault rate (p50/p99 come from this sample); the
/// fault schedule is deterministic, so repeats measure wall-time
/// spread, not result spread.
int BenchReps() {
  if (const char* env = std::getenv("DBDESIGN_BENCH_REPS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 9;
}

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ms.size()));
  if (idx >= sorted_ms.size()) idx = sorted_ms.size() - 1;
  return sorted_ms[idx];
}

struct RunResult {
  double ms = 0.0;
  bool ok = false;
  bool plan_ok = false;
  bool degraded = false;
  std::vector<IndexDef> indexes;
  double recommended_cost = 0.0;
  double final_cost = 0.0;
  ResilienceStats stats;
  FaultCounters counters;
};

RunResult RunRecommend(const Database& db, const Workload& w, FaultPlan plan,
                       RetryPolicy policy) {
  InMemoryBackend inner(db);
  FaultInjectingBackend fault(inner, plan);
  ResilientBackend resilient(fault, policy);
  Designer designer(resilient, ForceExactOptions());
  DesignSession session(designer);
  session.SetWorkload(w);

  RunResult r;
  auto t0 = std::chrono::steady_clock::now();
  Result<IndexRecommendation> rec = session.Recommend();
  // PlanDeployment is part of the measured loop: the DoI stage costs
  // every (class, index-subset) combination through the seam, so it
  // carries most of the fallible calls.
  if (rec.ok()) {
    Result<DeploymentPlan> deploy = session.PlanDeployment();
    r.plan_ok = deploy.ok();
    if (deploy.ok()) r.final_cost = deploy.value().schedule.final_cost;
  }
  r.ms = std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count();
  r.ok = rec.ok();
  if (rec.ok()) {
    r.degraded = rec.value().degraded.degraded;
    r.indexes = rec.value().indexes;
    r.recommended_cost = rec.value().recommended_cost;
  }
  r.stats = resilient.stats();
  r.counters = fault.counters();
  return r;
}

void Run() {
  Database db = MakeDb(8000, 42);
  Workload w = GenerateWorkload(db, TemplateMix::OfflineDefault(), 12, 37);
  JsonReporter reporter("fault");

  Header("E-fault: resilience overhead and recovery at the backend seam",
         "transient backend failures cost retries, never wrong answers "
         "or aborted sessions");

  RetryPolicy policy;
  policy.max_attempts = 4;  // > burst below: recovery guaranteed
  const int reps = BenchReps();

  std::printf("%-22s %9s %9s %9s %9s %11s %9s %9s %10s\n", "op", "p50_ms",
              "p99_ms", "attempts", "retries", "recoveries", "giveups",
              "recovery", "identical");

  Json rates = Json::Array();
  RunResult base;  // fault-free reference, filled by the rate-0 pass
  const double kRates[] = {0.0, 0.01, 0.05, 0.20};
  for (double rate : kRates) {
    FaultPlan plan =
        rate == 0.0 ? FaultPlan::None()
                    : FaultPlan::Transient(
                          0xFA017 + static_cast<uint64_t>(rate * 1000), rate,
                          2);
    std::vector<double> ms;
    RunResult r;
    for (int rep = 0; rep < reps; ++rep) {
      r = RunRecommend(db, w, plan, policy);
      ms.push_back(r.ms);
    }
    std::sort(ms.begin(), ms.end());
    double p50 = Percentile(ms, 0.50);
    double p99 = Percentile(ms, 0.99);
    if (rate == 0.0) base = r;
    bool identical = r.ok && r.plan_ok && r.indexes == base.indexes &&
                     r.recommended_cost == base.recommended_cost &&
                     r.final_cost == base.final_cost;
    // Recovery rate: recovered calls over calls that saw any failure.
    double denom = static_cast<double>(r.stats.recoveries + r.stats.giveups);
    double recovery = denom > 0
                          ? static_cast<double>(r.stats.recoveries) / denom
                          : 1.0;
    std::string op = "loop@rate" + std::to_string(rate).substr(0, 4);
    reporter.Report(op, p50, base.ms > 0 ? base.ms / p50 : 1.0,
                    r.stats.attempts, 0);
    std::printf("%-22s %9.1f %9.1f %9llu %9llu %11llu %9llu %9.2f %10s\n",
                op.c_str(), p50, p99,
                static_cast<unsigned long long>(r.stats.attempts),
                static_cast<unsigned long long>(r.stats.retries),
                static_cast<unsigned long long>(r.stats.recoveries),
                static_cast<unsigned long long>(r.stats.giveups), recovery,
                identical ? "yes" : "NO");
    DBD_CHECK(identical && "recoverable faults must be bit-transparent");
    DBD_CHECK(recovery == 1.0 &&
              "max_attempts > burst must recover every transient");

    Json row = Json::Object();
    row["rate"] = Json::Number(rate);
    row["p50_ms"] = Json::Number(p50);
    row["p99_ms"] = Json::Number(p99);
    row["reps"] = Json::Number(reps);
    row["attempts"] = Json::Number(static_cast<double>(r.stats.attempts));
    row["retries"] = Json::Number(static_cast<double>(r.stats.retries));
    row["recoveries"] = Json::Number(static_cast<double>(r.stats.recoveries));
    row["giveups"] = Json::Number(static_cast<double>(r.stats.giveups));
    row["transients_injected"] =
        Json::Number(static_cast<double>(r.counters.transients));
    row["recovery_rate"] = Json::Number(recovery);
    row["recovered_identical"] = Json::Bool(identical);
    rates.Append(std::move(row));
  }

  // Hard outage: the cold session must fail fast and clean (breaker
  // fast-fails cap the retry bill), never hang or abort.
  RetryPolicy outage_policy = policy;
  outage_policy.max_attempts = 2;
  outage_policy.breaker_threshold = 4;
  RunResult down = RunRecommend(db, w, FaultPlan::Outage(), outage_policy);
  DBD_CHECK(!down.ok && "outage with a cold cache must surface a Status");
  reporter.Report("loop@outage", down.ms, 1.0, down.stats.attempts, 0);
  std::printf("%-22s %10.1f %9llu %9llu %11llu %9llu %10s\n",
              "loop@outage", down.ms,
              static_cast<unsigned long long>(down.stats.attempts),
              static_cast<unsigned long long>(down.stats.retries),
              static_cast<unsigned long long>(down.stats.recoveries),
              static_cast<unsigned long long>(down.stats.giveups),
              "clean-status");
  std::printf("  outage: breaker fast-fails=%llu trips=%llu\n",
              static_cast<unsigned long long>(down.stats.breaker_fast_fails),
              static_cast<unsigned long long>(down.stats.breaker_trips));

  Json outage = Json::Object();
  outage["wall_ms"] = Json::Number(down.ms);
  outage["attempts"] = Json::Number(static_cast<double>(down.stats.attempts));
  outage["breaker_fast_fails"] =
      Json::Number(static_cast<double>(down.stats.breaker_fast_fails));
  outage["breaker_trips"] =
      Json::Number(static_cast<double>(down.stats.breaker_trips));
  outage["clean_status"] = Json::Bool(!down.ok);
  reporter.Extra("fault_rates", std::move(rates));
  reporter.Extra("outage", std::move(outage));
  reporter.Write();
}

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdesign::Run();
  return 0;
}
