// Experiment E3 — INUM speedup.
//
// Paper (§1): extending the INUM cache-based cost model "increase[s]
// the efficiency of the selection tool by orders of magnitude".
//
// We cost (query, configuration) pairs two ways — full optimizer call
// vs INUM cache reuse — and report throughput, speedup and accuracy.

#include <chrono>
#include <cmath>

#include "backend/inmemory_backend.h"
#include "bench_common.h"
#include "core/designer.h"
#include "sql/binder.h"
#include "inum/inum.h"

namespace dbdesign {
namespace {

using bench::DataPages;
using bench::Header;
using bench::MakeDb;

struct Shared {
  Database db = MakeDb();
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), 20, 7);
  std::vector<PhysicalDesign> designs;

  Shared() {
    // Random configurations over workload-derived candidate columns.
    Rng rng(11);
    std::vector<IndexDef> pool;
    for (const BoundQuery& q : workload.queries) {
      for (int s = 0; s < q.num_slots(); ++s) {
        for (ColumnId c : q.PredicateColumns(s)) {
          IndexDef idx{q.tables[s], {c}, false};
          bool dup = false;
          for (const IndexDef& e : pool) dup |= e == idx;
          if (!dup) pool.push_back(idx);
        }
      }
    }
    for (int d = 0; d < 40; ++d) {
      PhysicalDesign design;
      for (const IndexDef& idx : pool) {
        if (rng.Bernoulli(0.35)) design.AddIndex(idx);
      }
      designs.push_back(std::move(design));
    }
  }
};

Shared& shared() {
  static Shared* s = new Shared();
  return *s;
}

void RunExperiment() {
  Shared& S = shared();
  Header("E3: INUM cache-based cost model vs full optimizer",
         "\"increase the efficiency of the selection tool by orders of "
         "magnitude\"");

  WhatIfOptimizer exact(S.db);
  InumCostModel inum(S.db);

  // Warm the INUM cache (populate phase), timed separately.
  auto t0 = std::chrono::steady_clock::now();
  for (const BoundQuery& q : S.workload.queries) inum.Prepare(q);
  double populate_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Timed evaluation: every (query, design) pair.
  size_t pairs = S.workload.size() * S.designs.size();
  std::vector<double> exact_costs;
  exact_costs.reserve(pairs);
  t0 = std::chrono::steady_clock::now();
  for (const PhysicalDesign& d : S.designs) {
    for (const BoundQuery& q : S.workload.queries) {
      exact_costs.push_back(exact.CostUnder(q, d));
    }
  }
  double exact_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> inum_costs;
  inum_costs.reserve(pairs);
  t0 = std::chrono::steady_clock::now();
  for (const PhysicalDesign& d : S.designs) {
    for (const BoundQuery& q : S.workload.queries) {
      inum_costs.push_back(inum.Cost(q, d));
    }
  }
  double inum_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  size_t within1 = 0;
  size_t within5 = 0;
  double worst = 0.0;
  for (size_t i = 0; i < pairs; ++i) {
    double rel = std::abs(inum_costs[i] - exact_costs[i]) /
                 std::max(1.0, exact_costs[i]);
    worst = std::max(worst, rel);
    if (rel <= 0.01) ++within1;
    if (rel <= 0.05) ++within5;
  }

  std::printf("\n(query, configuration) pairs costed: %zu "
              "(%zu queries x %zu configurations)\n",
              pairs, S.workload.size(), S.designs.size());
  std::printf("%-28s %12s %14s\n", "method", "total time", "evals/sec");
  std::printf("%-28s %10.3f s %14.0f\n", "full optimizer", exact_sec,
              pairs / exact_sec);
  std::printf("%-28s %10.3f s %14.0f\n", "INUM reuse", inum_sec,
              pairs / inum_sec);
  std::printf("%-28s %10.3f s   (one-off, %llu abstract optimizations)\n",
              "INUM populate", populate_sec,
              static_cast<unsigned long long>(
                  inum.stats().populate_optimizations));
  std::printf("\nspeedup (reuse vs optimizer): %.0fx\n",
              exact_sec / inum_sec);
  std::printf("accuracy: %.1f%% of pairs within 1%%, %.1f%% within 5%%, "
              "worst relative error %.2f%%\n",
              100.0 * within1 / pairs, 100.0 * within5 / pairs,
              worst * 100.0);
  std::printf("fallbacks to the full optimizer: %llu / %llu reuse calls\n",
              static_cast<unsigned long long>(inum.stats().fallback_calls),
              static_cast<unsigned long long>(inum.stats().reuse_calls));
}

void RunComplexityScaling() {
  Shared& S = shared();
  Header("E3b: INUM speedup vs query complexity",
         "the gap widens with optimizer work (join count / interesting "
         "orders) — the regime the paper's PostgreSQL deployment lives in");

  struct Group {
    const char* name;
    std::vector<std::string> sql;
  };
  std::vector<Group> groups = {
      {"1 table",
       {"SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 12",
        "SELECT objid FROM photoobj WHERE run = 94 AND camcol = 3"}},
      {"2-way join",
       {"SELECT p.objid, s.z FROM photoobj p JOIN specobj s "
        "ON p.objid = s.bestobjid WHERE s.z > 0.3",
        "SELECT p.objid FROM photoobj p JOIN neighbors n "
        "ON p.objid = n.objid WHERE n.distance < 0.01"}},
      {"3-way join",
       {"SELECT p.objid FROM photoobj p JOIN specobj s "
        "ON p.objid = s.bestobjid JOIN plate pl ON s.plate = pl.plate "
        "WHERE s.z > 0.2 AND pl.quality >= 2"}},
      {"4-way join",
       {"SELECT p.objid FROM photoobj p JOIN specobj s "
        "ON p.objid = s.bestobjid JOIN plate pl ON s.plate = pl.plate "
        "JOIN field f ON p.run = f.run "
        "WHERE s.z > 0.2 AND pl.quality >= 2 AND f.quality >= 2"}},
  };

  std::printf("\n%-12s %16s %16s %10s\n", "query shape", "optimizer/call",
              "INUM reuse/call", "speedup");
  for (const Group& g : groups) {
    Workload w;
    for (const std::string& sql : g.sql) {
      auto q = ParseAndBind(S.db.catalog(), sql);
      if (q.ok()) w.Add(std::move(q).value());
    }
    WhatIfOptimizer exact(S.db);
    InumCostModel inum(S.db);
    for (const BoundQuery& q : w.queries) inum.Prepare(q);
    // Warm the leaf memos so the measurement reflects steady state.
    for (const PhysicalDesign& d : S.designs) {
      for (const BoundQuery& q : w.queries) inum.Cost(q, d);
    }

    const int kReps = 40;
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r) {
      for (const PhysicalDesign& d : S.designs) {
        for (const BoundQuery& q : w.queries) {
          benchmark::DoNotOptimize(exact.CostUnder(q, d));
        }
      }
    }
    double exact_ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        (kReps * S.designs.size() * w.size());

    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r) {
      for (const PhysicalDesign& d : S.designs) {
        for (const BoundQuery& q : w.queries) {
          benchmark::DoNotOptimize(inum.Cost(q, d));
        }
      }
    }
    double inum_ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        (kReps * S.designs.size() * w.size());

    std::printf("%-12s %13.0f ns %13.0f ns %9.0fx\n", g.name, exact_ns,
                inum_ns, exact_ns / inum_ns);
  }
  std::printf("\n(the paper's 'orders of magnitude' compares against "
              "PostgreSQL's optimizer at ~1-100 ms/call;\n our simulator's "
              "optimizer is itself microsecond-fast, so the ratio here is "
              "the honest lower bound)\n");
}

void RunBatchedDesignEvaluation(bench::JsonReporter& reporter) {
  Shared& S = shared();
  Header("E3c: Designer::EvaluateDesigns — amortized candidate evaluation",
         "one INUM populate per query serves every candidate design; "
         "per-design backend costing pays the optimizer each time");

  InMemoryBackend backend(S.db);

  // Naive: per-design backend costing (what a tool without INUM does).
  auto t0 = std::chrono::steady_clock::now();
  WhatIfOptimizer whatif(backend);
  double naive_check = 0.0;
  for (const PhysicalDesign& d : S.designs) {
    naive_check += whatif.WorkloadCostUnder(S.workload, d);
  }
  double naive_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Batched: EvaluateDesigns reuses the INUM caches across all designs.
  t0 = std::chrono::steady_clock::now();
  Designer designer(backend);
  std::vector<BenefitReport> reports =
      designer.EvaluateDesigns(S.workload, S.designs);
  double batched_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  double batched_check = 0.0;
  for (const BenefitReport& r : reports) batched_check += r.new_total;

  size_t evals = S.designs.size() * S.workload.size();
  std::printf("\n%zu candidate designs x %zu queries = %zu evaluations\n",
              S.designs.size(), S.workload.size(), evals);
  std::printf("%-36s %12s %14s\n", "method", "wall time", "designs/sec");
  std::printf("%-36s %9.3f ms %14.1f\n", "per-design backend costing",
              naive_sec * 1e3, S.designs.size() / naive_sec);
  std::printf("%-36s %9.3f ms %14.1f\n", "EvaluateDesigns (INUM, batched)",
              batched_sec * 1e3, S.designs.size() / batched_sec);
  std::printf("\nspeedup %.0fx (cost sums: %.1f vs %.1f; INUM stays within "
              "its usual error band)\n",
              naive_sec / batched_sec, naive_check, batched_check);

  reporter.Report("e3c_per_design_backend", naive_sec * 1e3, 1.0, 0);
  reporter.Report("e3c_evaluate_designs", batched_sec * 1e3,
                  naive_sec / batched_sec, 0);

  // --- Multicore scaling: populate + design evaluation per thread count.
  // A fresh Designer per setting keeps the INUM cache cold, so the
  // measured section covers the parallel populate (the expensive part)
  // and the per-design leaf repricing.
  std::printf("\nEvaluateDesigns thread scaling (cold INUM cache, %zu queries "
              "x %zu designs, %d hardware threads):\n",
              S.workload.size(), S.designs.size(),
              ThreadPool::HardwareThreads());
  std::printf("%-14s %12s %10s %9s\n", "num_threads", "wall time", "speedup",
              "results");
  double serial_sec = 0.0;
  std::vector<BenefitReport> serial_reports;
  for (int t : {1, 2, 4, 8}) {
    CostParams params;
    params.num_threads = t;
    InMemoryBackend scaled(S.db, params);
    Designer fresh(scaled);
    auto tt0 = std::chrono::steady_clock::now();
    std::vector<BenefitReport> r = fresh.EvaluateDesigns(S.workload, S.designs);
    double sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - tt0)
                     .count();
    if (t == 1) {
      serial_sec = sec;
      serial_reports = r;
    }
    bool same = r.size() == serial_reports.size();
    for (size_t i = 0; same && i < r.size(); ++i) {
      same = r[i].new_costs == serial_reports[i].new_costs &&
             r[i].base_costs == serial_reports[i].base_costs;
    }
    std::printf("%-14d %9.3f ms %9.2fx %9s\n", t, sec * 1e3, serial_sec / sec,
                same ? "identical" : "DIFFER!");
    reporter.Report("e3c_evaluate_designs_threads_" + std::to_string(t),
                    sec * 1e3, serial_sec / sec,
                    fresh.inum().stats().populate_optimizations);
  }
  std::printf("(per-query costs are bit-identical at every thread count)\n");
}

void BM_FullOptimizerCost(benchmark::State& state) {
  Shared& S = shared();
  WhatIfOptimizer exact(S.db);
  size_t i = 0;
  for (auto _ : state) {
    const BoundQuery& q = S.workload.queries[i % S.workload.size()];
    const PhysicalDesign& d = S.designs[i % S.designs.size()];
    benchmark::DoNotOptimize(exact.CostUnder(q, d));
    ++i;
  }
}
BENCHMARK(BM_FullOptimizerCost);

void BM_InumReuseCost(benchmark::State& state) {
  Shared& S = shared();
  InumCostModel inum(S.db);
  for (const BoundQuery& q : S.workload.queries) inum.Prepare(q);
  size_t i = 0;
  for (auto _ : state) {
    const BoundQuery& q = S.workload.queries[i % S.workload.size()];
    const PhysicalDesign& d = S.designs[i % S.designs.size()];
    benchmark::DoNotOptimize(inum.Cost(q, d));
    ++i;
  }
}
BENCHMARK(BM_InumReuseCost);

void BM_InumPopulate(benchmark::State& state) {
  Shared& S = shared();
  size_t i = 0;
  for (auto _ : state) {
    InumCostModel fresh(S.db);
    fresh.Prepare(S.workload.queries[i % S.workload.size()]);
    benchmark::DoNotOptimize(fresh.stats().plans_cached);
    ++i;
  }
}
BENCHMARK(BM_InumPopulate);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("inum");
  reporter.TimeOp("e3_inum_vs_optimizer", [] { dbdesign::RunExperiment(); });
  reporter.TimeOp("e3b_complexity_scaling",
                  [] { dbdesign::RunComplexityScaling(); });
  dbdesign::RunBatchedDesignEvaluation(reporter);
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
