// Experiment E2 — Figure 3: the automatic partition suggestion panel.
//
// Paper (§4, Figure 3): "The list of suggested partitions is displayed
// in the right panel of the user interface. The user can examine the
// individual query benefit and the average workload benefit in case she
// adopts the suggested changes to the schema."
//
// We sweep the replication space factor and print the Figure-3 panel
// (fragments, per-query benefit, average benefit) for each setting.

#include "autopart/autopart.h"
#include "bench_common.h"
#include "core/designer.h"
#include "core/report.h"

namespace dbdesign {
namespace {

using bench::Header;
using bench::MakeDb;

struct Shared {
  Database db = MakeDb();
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), 16, 37);
};

Shared& shared() {
  static Shared* s = new Shared();
  return *s;
}

void RunExperiment() {
  Shared& S = shared();
  Header("E2: automatic partition suggestion (Figure 3)",
         "suggested partitions with per-query and average workload benefit, "
         "under a replication space constraint");

  for (double space : {1.0, 1.2, 1.5}) {
    AutoPartOptions opts;
    opts.replication_budget_factor = space;
    AutoPartAdvisor advisor(S.db, CostParams{}, opts);
    PartitionRecommendation rec = advisor.Recommend(S.workload);

    std::printf("\n--- replication space factor %.1fx ---\n", space);
    std::printf("%s", RenderPartitionPanel(S.db.catalog(), rec).c_str());

    // Figure 3's per-query benefit list.
    std::printf("per-query benefit:\n");
    for (size_t i = 0; i < S.workload.size(); ++i) {
      double benefit =
          rec.per_query_base_cost[i] > 0
              ? 100.0 * (1.0 - rec.per_query_cost[i] /
                                   rec.per_query_base_cost[i])
              : 0.0;
      std::string sql = S.workload.queries[i].ToSql(S.db.catalog());
      if (sql.size() > 52) sql = sql.substr(0, 49) + "...";
      std::printf("  q%-3zu %-52s %6.1f%%\n", i, sql.c_str(), benefit);
    }

    // A sample rewritten query, as the demo saves them.
    std::printf("sample rewritten query:\n  %s\n",
                advisor.RewriteQuery(S.workload.queries[0], rec.design)
                    .c_str());
  }
}

void BM_AutoPartRecommend(benchmark::State& state) {
  Shared& S = shared();
  for (auto _ : state) {
    AutoPartAdvisor advisor(S.db);
    benchmark::DoNotOptimize(advisor.Recommend(S.workload));
  }
}
BENCHMARK(BM_AutoPartRecommend)->Unit(benchmark::kMillisecond);

void BM_RewriteQuery(benchmark::State& state) {
  Shared& S = shared();
  AutoPartAdvisor advisor(S.db);
  PartitionRecommendation rec = advisor.Recommend(S.workload);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(advisor.RewriteQuery(
        S.workload.queries[i % S.workload.size()], rec.design));
    ++i;
  }
}
BENCHMARK(BM_RewriteQuery);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("autopart");
  reporter.TimeOp("e5_autopart", [] { dbdesign::RunExperiment(); });
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
