// Multi-tenant server benchmark — 1000 concurrent sessions over a
// shared atom substrate.
//
// The paper's designer is a few-second interactive tool for ONE DBA;
// this bench measures what the TuningServer layer adds: many DBAs (or
// many what-if tabs) tuning concurrently, where sessions on the same
// schema share INUM populates through the reference-counted AtomStore
// and cold backend traffic coalesces per schema.
//
// Phases (N sessions round-robin over 4 schema substrates):
//   * cold fleet    — every session's first Recommend, concurrently.
//     The first session per (schema, workload) populates and publishes;
//     the rest adopt shared rows. Reports per-request p50/p99 and the
//     cross-session store hit rate.
//   * warm fleet    — every session Recommends again (client-side).
//   * new tenants   — fresh sessions on the now-warm schemas: the
//     store-served cold path. Acceptance: p99 < 10x the same op
//     measured solo (no concurrency), i.e. multi-tenancy costs at most
//     contention, never repopulation.
//   * serial replay — the same fleet driven one session at a time on a
//     fresh server must produce bit-identical recommendations.
//   * coalescer     — a small force_exact fleet with sharing disabled,
//     so concurrent sessions actually hit the backend seam; reports
//     round-trips saved by group-commit.
//
// DBDESIGN_BENCH_SESSIONS overrides the fleet size (CI smoke uses a
// reduced count); DBDESIGN_BENCH_ROWS caps substrate size as usual.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "backend/inmemory_backend.h"
#include "server/server.h"

namespace dbdesign {
namespace {

using bench::BenchRows;
using bench::Header;
using bench::JsonReporter;

void CheckOk(const Status& st) {
  if (!st.ok()) std::fprintf(stderr, "bench_server: %s\n", st.ToString().c_str());
  DBD_CHECK(st.ok());
}

int SessionCount() {
  if (const char* env = std::getenv("DBDESIGN_BENCH_SESSIONS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1000;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Fleet {
  std::vector<Database> dbs;
  std::vector<std::unique_ptr<InMemoryBackend>> backends;
  std::vector<Workload> workloads;
};

constexpr int kSchemas = 4;

Fleet BuildFleet() {
  SetLogLevel(LogLevel::kError);
  Fleet fleet;
  for (int s = 0; s < kSchemas; ++s) {
    SdssConfig cfg;
    cfg.photoobj_rows = BenchRows(3000) + 250 * s;
    cfg.seed = 42 + static_cast<uint64_t>(s);
    fleet.dbs.push_back(BuildSdssDatabase(cfg));
  }
  for (int s = 0; s < kSchemas; ++s) {
    fleet.backends.push_back(std::make_unique<InMemoryBackend>(fleet.dbs[s]));
    fleet.workloads.push_back(GenerateWorkload(
        fleet.dbs[s], TemplateMix::OfflineDefault(), 6, 19 + s));
  }
  return fleet;
}

std::unique_ptr<TuningServer> MakeServer(Fleet& fleet) {
  auto server = std::make_unique<TuningServer>();
  for (int s = 0; s < kSchemas; ++s) {
    Status st = server->RegisterSchema("schema" + std::to_string(s),
                                       *fleet.backends[s]);
    CheckOk(st);
  }
  return server;
}

void OpenFleetSessions(TuningServer& server, Fleet& fleet, int n,
                       const std::string& prefix = "tenant") {
  for (int i = 0; i < n; ++i) {
    std::string id = prefix + std::to_string(i);
    Status st = server.OpenSession(id, "schema" + std::to_string(i % kSchemas));
    CheckOk(st);
    st = server.WithSession(id, [&](DesignSession& session) {
      session.SetWorkload(fleet.workloads[i % kSchemas]);
    });
    CheckOk(st);
  }
}

struct Percentiles {
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Percentiles Summarize(std::vector<double> ms) {
  Percentiles p;
  if (ms.empty()) return p;
  std::sort(ms.begin(), ms.end());
  p.p50 = ms[ms.size() / 2];
  p.p99 = ms[std::min(ms.size() - 1, (ms.size() * 99) / 100)];
  p.max = ms.back();
  return p;
}

struct FleetResult {
  std::vector<double> ms;        ///< per-session recommend latency
  std::vector<double> costs;     ///< recommended_cost per session
  std::vector<std::string> sig;  ///< index-set signature per session
};

/// Recommends on sessions [0, n) — concurrently when `threads` > 1 —
/// timing each request individually (clock starts when the request
/// starts executing, so this measures service latency, not queue wait).
FleetResult RecommendFleet(TuningServer& server, int n, int threads,
                           const std::string& prefix = "tenant") {
  FleetResult result;
  result.ms.assign(static_cast<size_t>(n), 0.0);
  result.costs.assign(static_cast<size_t>(n), 0.0);
  result.sig.assign(static_cast<size_t>(n), "");
  ThreadPool::Shared().ParallelFor(
      static_cast<size_t>(n), threads, [&](size_t i) {
        double t0 = NowMs();
        Status st = server.WithSession(
            prefix + std::to_string(i), [&](DesignSession& session) {
              Result<IndexRecommendation> rec = session.Recommend();
              if (!rec.ok()) CheckOk(rec.status());
              result.costs[i] = rec.value().recommended_cost;
              std::string sig;
              for (const IndexDef& idx : rec.value().indexes) {
                sig += idx.Key();
                sig += ';';
              }
              result.sig[i] = std::move(sig);
            });
        CheckOk(st);
        result.ms[i] = NowMs() - t0;
      });
  return result;
}

void RunServerBench(JsonReporter& reporter) {
  const int n = SessionCount();
  const int threads = ThreadPool::Resolve(0);
  Header("Multi-tenant tuning server: N concurrent sessions, shared atoms",
         "same-schema sessions reuse INUM populates through the shared "
         "store; recommendations stay bit-identical to tuning alone");
  std::printf("\nsessions=%d schemas=%d threads=%d\n", n, kSchemas, threads);

  Fleet fleet = BuildFleet();
  auto server = MakeServer(fleet);
  OpenFleetSessions(*server, fleet, n);

  // --- cold fleet ---
  double t0 = NowMs();
  FleetResult cold = RecommendFleet(*server, n, threads);
  double cold_wall = NowMs() - t0;
  AtomStoreStats store = server->atom_store().stats();
  Percentiles cold_p = Summarize(cold.ms);
  double hit_rate = store.hit_rate();
  std::printf("cold fleet : wall %8.1f ms  p50 %7.2f  p99 %7.2f  "
              "hit-rate %.4f (%llu hits / %llu lookups, %llu populates)\n",
              cold_wall, cold_p.p50, cold_p.p99, hit_rate,
              static_cast<unsigned long long>(store.hits),
              static_cast<unsigned long long>(store.lookups),
              static_cast<unsigned long long>(store.publishes));
  reporter.Report("cold_fleet_recommend_p50", cold_p.p50);
  reporter.Report("cold_fleet_recommend_p99", cold_p.p99);

  // --- warm fleet (client-side re-recommend) ---
  t0 = NowMs();
  FleetResult warm = RecommendFleet(*server, n, threads);
  double warm_wall = NowMs() - t0;
  Percentiles warm_p = Summarize(warm.ms);
  std::printf("warm fleet : wall %8.1f ms  p50 %7.2f  p99 %7.2f\n", warm_wall,
              warm_p.p50, warm_p.p99);
  reporter.Report("warm_fleet_recommend_p50", warm_p.p50);
  reporter.Report("warm_fleet_recommend_p99", warm_p.p99);

  // --- new tenants on warm schemas: the store-served cold path ---
  // Solo baseline first: one fresh session at a time, no concurrency.
  const int solo_n = std::min(n, 2 * kSchemas);
  OpenFleetSessions(*server, fleet, solo_n, "solo");
  FleetResult solo = RecommendFleet(*server, solo_n, /*threads=*/1, "solo");
  double solo_warm_ms =
      Summarize(solo.ms).p50 > 0.0 ? Summarize(solo.ms).p50 : 0.001;

  const int fresh_n = std::min(n, std::max(64, n / 4));
  OpenFleetSessions(*server, fleet, fresh_n, "fresh");
  FleetResult fresh = RecommendFleet(*server, fresh_n, threads, "fresh");
  Percentiles fresh_p = Summarize(fresh.ms);
  std::printf("new tenant : solo %7.2f ms  p50 %7.2f  p99 %7.2f  "
              "(bound: p99 < 10x solo = %.2f ms)\n",
              solo_warm_ms, fresh_p.p50, fresh_p.p99, 10.0 * solo_warm_ms);
  DBD_CHECK(fresh_p.p99 < 10.0 * solo_warm_ms);
  reporter.Report("warm_schema_new_session_solo", solo_warm_ms);
  reporter.Report("warm_schema_new_session_p50", fresh_p.p50);
  reporter.Report("warm_schema_new_session_p99", fresh_p.p99,
                  /*speedup_vs_serial=*/solo_warm_ms > 0.0
                      ? 10.0 * solo_warm_ms / fresh_p.p99
                      : 1.0);

  // --- serial replay: bit-identical results ---
  auto replay_server = MakeServer(fleet);
  OpenFleetSessions(*replay_server, fleet, n);
  FleetResult replay = RecommendFleet(*replay_server, n, /*threads=*/1);
  for (int i = 0; i < n; ++i) {
    DBD_CHECK(cold.costs[i] == replay.costs[i]);
    DBD_CHECK(cold.sig[i] == replay.sig[i]);
  }
  std::printf("replay     : %d sessions bit-identical to serial\n", n);

  // --- coalescer: concurrent backend traffic with sharing off ---
  TuningServerOptions exact;
  exact.designer.cophy.inum.force_exact = true;
  exact.share_atoms = false;
  TuningServer exact_server(exact);
  Status st =
      exact_server.RegisterSchema("schema0", *fleet.backends[0]);
  CheckOk(st);
  const int exact_n = 8;
  std::vector<SessionRequest> requests;
  for (int i = 0; i < exact_n; ++i) {
    std::string id = "exact" + std::to_string(i);
    st = exact_server.OpenSession(id, "schema0");
    CheckOk(st);
    st = exact_server.WithSession(id, [&](DesignSession& session) {
      session.SetWorkload(fleet.workloads[0]);
    });
    CheckOk(st);
    requests.push_back({id, SessionOp::kRecommend, {}});
  }
  t0 = NowMs();
  std::vector<SessionResponse> responses = exact_server.RunBatch(requests);
  double exact_wall = NowMs() - t0;
  for (const SessionResponse& r : responses) {
    CheckOk(r.status);
  }
  CoalescerStats cs = exact_server.stats().coalescer;
  std::printf("coalescer  : %d force_exact sessions in %7.1f ms — %llu "
              "calls -> %llu trips (%llu saved, max trip %llu queries)\n",
              exact_n, exact_wall, static_cast<unsigned long long>(cs.calls),
              static_cast<unsigned long long>(cs.round_trips),
              static_cast<unsigned long long>(cs.trips_saved()),
              static_cast<unsigned long long>(cs.max_trip_queries));
  reporter.Report("coalescer_8_sessions_force_exact", exact_wall);

  Json extra = Json::Object();
  extra["sessions"] = Json::Number(n);
  extra["schemas"] = Json::Number(kSchemas);
  extra["threads"] = Json::Number(threads);
  extra["hit_rate"] = Json::Number(hit_rate);
  extra["store_lookups"] = Json::Number(static_cast<double>(store.lookups));
  extra["store_hits"] = Json::Number(static_cast<double>(store.hits));
  extra["store_publishes"] =
      Json::Number(static_cast<double>(store.publishes));
  extra["cold_wall_ms"] = Json::Number(cold_wall);
  extra["warm_wall_ms"] = Json::Number(warm_wall);
  extra["bit_identical_to_serial"] = Json::Bool(true);
  extra["coalescer_calls"] = Json::Number(static_cast<double>(cs.calls));
  extra["coalescer_round_trips"] =
      Json::Number(static_cast<double>(cs.round_trips));
  extra["coalescer_trips_saved"] =
      Json::Number(static_cast<double>(cs.trips_saved()));
  reporter.Extra("server", std::move(extra));
}

// Microbenchmark: one store-served cold Recommend (new tenant on a warm
// schema) — the op whose latency bounds interactive multi-tenancy.
void BM_WarmSchemaNewSession(benchmark::State& state) {
  Fleet fleet = BuildFleet();
  auto server = MakeServer(fleet);
  OpenFleetSessions(*server, fleet, kSchemas);  // warm the store
  RecommendFleet(*server, kSchemas, 1);
  int next = 0;
  for (auto _ : state) {
    std::string id = "bm" + std::to_string(next++);
    Status st = server->OpenSession(id, "schema0");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    st = server->WithSession(id, [&](DesignSession& session) {
      session.SetWorkload(fleet.workloads[0]);
      auto rec = session.Recommend();
      benchmark::DoNotOptimize(rec.ok());
    });
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
}
BENCHMARK(BM_WarmSchemaNewSession)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("server");
  dbdesign::RunServerBench(reporter);
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
