// Experiment E9 — workload compression on the recommendation path.
//
// Production traces are huge but template-heavy: the demo's SDSS-style
// workload is ~10 templates instantiated with different constants.
// Costing an uncompressed trace scales linearly with query count (one
// INUM population per distinct constant instantiation); the session's
// template-class layer costs one population per *class*, so a
// 100k-query trace recommends in roughly the time of its ~10-class
// compressed form.
//
//   * raw_recommend_N — uncompressed CoPhyAdvisor::Recommend on an
//     N-query trace: the linear-in-queries baseline.
//   * compressed_recommend_N — DesignSession::Recommend on the same
//     trace (compression on; work proportional to classes).
//   * compressed_recommend_<full> — the full trace (default 100k,
//     override with DBDESIGN_BENCH_TRACE) through the session.
//   * append_recommend — a same-template append on the full trace: a
//     pure weight bump whose Recommend reuses the optimality
//     certificate. Zero new backend cost calls.
//
// Writes BENCH_compress.json: the raw-vs-compressed wall-clock
// comparison CI tracks (speedup column = raw time / compressed time on
// the same trace; 1.0 where not applicable).

#include <algorithm>

#include "backend/inmemory_backend.h"
#include "bench_common.h"
#include "core/designer.h"
#include "core/session.h"
#include "util/str.h"
#include "workload/compress.h"

namespace dbdesign {
namespace {

using bench::DataPages;
using bench::Header;
using bench::JsonReporter;
using bench::MakeDb;

int FullTraceQueries() {
  if (const char* env = std::getenv("DBDESIGN_BENCH_TRACE")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 100000;
}

struct RunResult {
  double ms = 0.0;
  uint64_t populates = 0;
  uint64_t backend_calls = 0;
  size_t indexes = 0;
  double cost = 0.0;
};

void PrintRow(const char* op, int queries, size_t classes,
              const RunResult& r) {
  std::printf("%-26s %9d %9zu %11.1f %11llu %11llu %9zu\n", op, queries,
              classes, r.ms, static_cast<unsigned long long>(r.populates),
              static_cast<unsigned long long>(r.backend_calls), r.indexes);
}

void RunCompressionBench(JsonReporter& reporter) {
  Header("E9: raw vs compressed recommendation wall-clock",
         "template-heavy traces recommend in the time of their compressed "
         "form: cost calls scale with classes, not queries");

  Database db = MakeDb();
  double budget = 0.5 * DataPages(db);
  int full_n = FullTraceQueries();

  std::printf("\n%-26s %9s %9s %11s %11s %11s %9s\n", "op", "queries",
              "classes", "wall ms", "populates", "opt calls", "indexes");

  // --- Baseline: uncompressed advisor on growing slices. Raw solve
  // time grows superlinearly in queries (one INUM population per
  // distinct instantiation + a BIP row per query), so the slices scale
  // with the trace knob to keep CI smoke runs bounded.
  std::vector<int> raw_sizes = {std::max(50, full_n / 400),
                                std::max(200, full_n / 100)};
  std::vector<RunResult> raw_results;
  std::vector<RunResult> comp_results;
  for (int n : raw_sizes) {
    Workload trace = GenerateWorkload(db, TemplateMix::OfflineDefault(), n, 7);
    CompressionReport report;
    CompressWorkload(trace, &report);

    CoPhyOptions opts;
    opts.storage_budget_pages = budget;
    InMemoryBackend be(db);
    CoPhyAdvisor raw_advisor(be, opts);
    auto t0 = std::chrono::steady_clock::now();
    IndexRecommendation raw_rec = raw_advisor.Recommend(trace);
    RunResult raw;
    raw.ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
    raw.populates = raw_advisor.inum().stats().populate_optimizations;
    raw.backend_calls = be.num_optimizer_calls();
    raw.indexes = raw_rec.indexes.size();
    raw.cost = raw_rec.recommended_cost;
    raw_results.push_back(raw);
    PrintRow("raw_recommend", n, report.original_queries, raw);

    Designer designer(db);
    DesignSession session(designer);
    DesignConstraints constraints;
    constraints.storage_budget_pages = budget;
    session.SetWorkload(trace);
    session.SetConstraints(constraints);
    t0 = std::chrono::steady_clock::now();
    auto comp_rec = session.Recommend();
    RunResult comp;
    comp.ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    comp.populates = session.inum_populate_count();
    comp.backend_calls = session.backend_optimizer_calls();
    if (comp_rec.ok()) {
      comp.indexes = comp_rec.value().indexes.size();
      comp.cost = comp_rec.value().recommended_cost;
    }
    comp_results.push_back(comp);
    PrintRow("compressed_recommend", n, report.compressed_queries, comp);
    std::printf("  -> compresses %.0fx; %.1fx faster on the same trace\n",
                report.factor(), raw.ms / std::max(0.001, comp.ms));
  }

  // --- The full trace, compression on (raw would take minutes) ---
  Workload full =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), full_n, 7);
  Designer designer(db);
  DesignSession session(designer);
  DesignConstraints constraints;
  constraints.storage_budget_pages = budget;
  session.SetWorkload(full);
  session.SetConstraints(constraints);
  auto t0 = std::chrono::steady_clock::now();
  auto full_rec = session.Recommend();
  RunResult full_run;
  full_run.ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  full_run.populates = session.inum_populate_count();
  full_run.backend_calls = session.backend_optimizer_calls();
  if (full_rec.ok()) {
    full_run.indexes = full_rec.value().indexes.size();
    full_run.cost = full_rec.value().recommended_cost;
  }
  PrintRow("compressed_recommend", full_n, session.num_template_classes(),
           full_run);

  // Extrapolated raw cost of the full trace from the measured
  // per-query slope (raw is linear in populations).
  double raw_per_query =
      raw_results.back().ms / static_cast<double>(raw_sizes.back());
  std::printf("  -> raw at this size would extrapolate to ~%.0f ms "
              "(measured %.1f ms/query); compression answers in %.1f ms\n",
              raw_per_query * full_n, raw_per_query, full_run.ms);

  // --- Same-template append on the full trace: pure weight bump ---
  uint64_t calls0 = session.backend_optimizer_calls();
  uint64_t pops0 = session.inum_populate_count();
  t0 = std::chrono::steady_clock::now();
  session.AddQueries({full.queries[0]});
  auto bump_rec = session.Recommend();
  RunResult bump;
  bump.ms = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
  bump.populates = session.inum_populate_count() - pops0;
  bump.backend_calls = session.backend_optimizer_calls() - calls0;
  if (bump_rec.ok()) {
    bump.indexes = bump_rec.value().indexes.size();
    bump.cost = bump_rec.value().recommended_cost;
  }
  PrintRow("append_recommend", full_n + 1, session.num_template_classes(),
           bump);
  std::printf("  -> same-template append: %llu new backend cost calls %s\n",
              static_cast<unsigned long long>(bump.backend_calls),
              bump.backend_calls == 0 ? "[zero-call, certificate reuse]"
                                      : "[expected zero!]");

  for (size_t i = 0; i < raw_sizes.size(); ++i) {
    reporter.Report(StrFormat("raw_recommend_%d", raw_sizes[i]),
                    raw_results[i].ms, 1.0, raw_results[i].backend_calls,
                    raw_results[i].populates);
    reporter.Report(StrFormat("compressed_recommend_%d", raw_sizes[i]),
                    comp_results[i].ms,
                    raw_results[i].ms / std::max(0.001, comp_results[i].ms),
                    comp_results[i].backend_calls, comp_results[i].populates);
  }
  reporter.Report(StrFormat("compressed_recommend_%d", full_n), full_run.ms,
                  1.0, full_run.backend_calls, full_run.populates);
  reporter.Report("append_recommend", bump.ms,
                  full_run.ms / std::max(0.001, bump.ms), bump.backend_calls,
                  bump.populates);
}

void BM_TemplateSignature(benchmark::State& state) {
  Database db = MakeDb();
  Workload w = GenerateWorkload(db, TemplateMix::OfflineDefault(), 64, 7);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TemplateSignature(w.queries[i % w.size()]));
    ++i;
  }
}
BENCHMARK(BM_TemplateSignature);

void BM_CompressWorkload(benchmark::State& state) {
  Database db = MakeDb();
  Workload w = GenerateWorkload(db, TemplateMix::OfflineDefault(),
                                static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    Workload c = CompressWorkload(w);
    benchmark::DoNotOptimize(c.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompressWorkload)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("compress");
  dbdesign::RunCompressionBench(reporter);
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
