// Ablation studies for the reproduction's own design choices (DESIGN.md
// §5): how much each mechanism contributes.
//
//   A1  INUM parameterized (index-nested-loop) signatures on/off
//   A2  CoPhy atom cap (plan-space pruning) sweep
//   A3  candidate generation: single-column / +multi-column / +covering
//   A4  COLT what-if profiling budget sweep

#include <chrono>
#include <cmath>

#include "bench_common.h"
#include "colt/colt.h"
#include "cophy/cophy.h"
#include "cophy/greedy.h"
#include "workload/compress.h"

namespace dbdesign {
namespace {

using bench::DataPages;
using bench::Header;
using bench::MakeDb;

struct Shared {
  Database db = MakeDb();
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), 20, 23);
};

Shared& shared() {
  static Shared* s = new Shared();
  return *s;
}

void AblationInumParamSignatures() {
  Shared& S = shared();
  Header("A1: INUM parameterized-lookup signatures",
         "dropping INLJ signatures shrinks the cache but loses plans that "
         "join queries need");

  WhatIfOptimizer exact(S.db);
  // Random designs with join-column indexes (where INLJ plans live).
  Rng rng(31);
  std::vector<PhysicalDesign> designs;
  std::vector<IndexDef> pool;
  for (const BoundQuery& q : S.workload.queries) {
    for (const BoundJoin& j : q.joins) {
      pool.push_back(IndexDef{q.tables[j.right.slot], {j.right.column}, false});
      pool.push_back(IndexDef{q.tables[j.left.slot], {j.left.column}, false});
    }
    for (int s = 0; s < q.num_slots(); ++s) {
      for (ColumnId c : q.PredicateColumns(s)) {
        pool.push_back(IndexDef{q.tables[s], {c}, false});
      }
    }
  }
  for (int d = 0; d < 25; ++d) {
    PhysicalDesign design;
    for (const IndexDef& idx : pool) {
      if (rng.Bernoulli(0.4)) design.AddIndex(idx);
    }
    designs.push_back(std::move(design));
  }

  std::printf("\n%-22s %14s %14s %16s\n", "configuration", "plans cached",
              "mean error", "worst error");
  for (bool enable_param : {true, false}) {
    InumOptions opts;
    opts.enable_param_signatures = enable_param;
    InumCostModel inum(S.db, CostParams{}, opts);
    double total_err = 0.0;
    double worst = 0.0;
    int count = 0;
    for (const PhysicalDesign& d : designs) {
      for (const BoundQuery& q : S.workload.queries) {
        double fast = inum.Cost(q, d);
        double full = exact.CostUnder(q, d);
        double rel = std::abs(fast - full) / std::max(1.0, full);
        total_err += rel;
        worst = std::max(worst, rel);
        ++count;
      }
    }
    std::printf("%-22s %14zu %13.3f%% %15.2f%%\n",
                enable_param ? "with INLJ signatures" : "without",
                inum.stats().plans_cached, 100.0 * total_err / count,
                100.0 * worst);
  }
}

void AblationCophyAtomCap() {
  Shared& S = shared();
  Header("A2: CoPhy atom cap (per-query plan-space pruning)",
         "small caps speed the BIP up but can discard the optimal atom");
  double budget = 0.5 * DataPages(S.db);
  std::vector<CandidateIndex> cands = GenerateCandidates(S.db, S.workload);

  std::printf("\n%-10s %10s %12s %12s %10s\n", "atom cap", "atoms",
              "cost", "solve (s)", "gap");
  for (int cap : {4, 8, 16, 48, 128}) {
    CoPhyOptions opts;
    opts.storage_budget_pages = budget;
    opts.max_atoms_per_query = cap;
    CoPhyAdvisor advisor(S.db, CostParams{}, opts);
    IndexRecommendation rec =
        advisor.RecommendWithCandidates(S.workload, cands);
    std::printf("%-10d %10zu %12.1f %12.3f %9.2f%%\n", cap, rec.num_atoms,
                rec.recommended_cost, rec.solve_time_sec, rec.gap * 100.0);
  }
}

void AblationCandidateGeneration() {
  Shared& S = shared();
  Header("A3: candidate generation richness",
         "multi-column and covering candidates drive most of the win over "
         "single-column-only tools (the paper's COLT vs CoPhy contrast)");
  double budget = DataPages(S.db);

  struct Case {
    const char* name;
    CandidateOptions opts;
  };
  std::vector<Case> cases;
  CandidateOptions single;
  single.max_key_columns = 1;
  single.covering_candidates = false;
  cases.push_back({"single-column only", single});
  CandidateOptions multi;
  multi.max_key_columns = 3;
  multi.covering_candidates = false;
  cases.push_back({"+ multi-column keys", multi});
  CandidateOptions covering;
  covering.max_key_columns = 3;
  covering.covering_candidates = true;
  cases.push_back({"+ covering indexes", covering});

  std::printf("\n%-22s %12s %12s %12s\n", "candidate set", "candidates",
              "final cost", "improvement");
  double base = 0.0;
  for (const Case& c : cases) {
    CoPhyOptions opts;
    opts.storage_budget_pages = budget;
    opts.candidates = c.opts;
    CoPhyAdvisor advisor(S.db, CostParams{}, opts);
    IndexRecommendation rec = advisor.Recommend(S.workload);
    if (base == 0.0) base = rec.base_cost;
    std::printf("%-22s %12zu %12.1f %11.1f%%\n", c.name, rec.num_candidates,
                rec.recommended_cost, rec.improvement() * 100.0);
  }
}

void AblationColtBudget() {
  Shared& S = shared();
  Header("A4: COLT what-if profiling budget",
         "a starved profiling budget delays adaptation (the online tuner "
         "must stay 'lightweight')");

  std::vector<BoundQuery> stream = GenerateDriftingStream(
      S.db, {TemplateMix::PhaseSelections(), TemplateMix::PhaseJoins()}, 125,
      41);
  InumCostModel oracle(S.db);
  double untuned = 0.0;
  for (const BoundQuery& q : stream) {
    untuned += oracle.Cost(q, PhysicalDesign{});
  }

  std::printf("\n%-18s %14s %10s %8s %8s\n", "whatif budget",
              "cumulative", "saved", "builds", "epochs");
  for (int budget : {0, 2, 8, 24}) {
    ColtOptions opts;
    opts.epoch_length = 25;
    opts.whatif_budget_per_epoch = budget;
    ColtTuner tuner(S.db, CostParams{}, opts);
    for (const BoundQuery& q : stream) tuner.OnQuery(q);
    int builds = 0;
    for (const ColtEvent& e : tuner.events()) {
      builds += e.type == ColtEvent::Type::kBuild;
    }
    std::printf("%-18d %14.1f %9.1f%% %8d %8zu\n", budget,
                tuner.cumulative_cost(),
                100.0 * (1.0 - tuner.cumulative_cost() / untuned), builds,
                tuner.epochs().size());
  }
}

void AblationWorkloadCompression() {
  Shared& S = shared();
  Header("A5: workload compression",
         "template-heavy traces compress hard; the advisor keeps its "
         "quality at a fraction of the solve time");

  Workload big = GenerateWorkload(S.db, TemplateMix::OfflineDefault(), 200, 67);
  CompressionReport report;
  Workload small = CompressWorkload(big, &report);

  double budget = DataPages(S.db);
  CoPhyOptions opts;
  opts.storage_budget_pages = budget;

  CoPhyAdvisor full_advisor(S.db, CostParams{}, opts);
  auto t0 = std::chrono::steady_clock::now();
  IndexRecommendation full = full_advisor.Recommend(big);
  double full_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  CoPhyAdvisor comp_advisor(S.db, CostParams{}, opts);
  t0 = std::chrono::steady_clock::now();
  IndexRecommendation comp = comp_advisor.Recommend(small);
  double comp_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  PhysicalDesign full_design;
  for (const IndexDef& i : full.indexes) full_design.AddIndex(i);
  PhysicalDesign comp_design;
  for (const IndexDef& i : comp.indexes) comp_design.AddIndex(i);
  double base = full_advisor.inum().WorkloadCost(big, PhysicalDesign{});
  double full_cost = full_advisor.inum().WorkloadCost(big, full_design);
  double comp_cost = full_advisor.inum().WorkloadCost(big, comp_design);

  std::printf("\nworkload: %zu queries -> %zu templates (compresses %.1fx; "
              "%.1f%% of input retained)\n",
              report.original_queries, report.compressed_queries,
              report.factor(), report.fraction_retained() * 100.0);
  std::printf("%-26s %12s %14s\n", "input", "solve (s)",
              "cost (full wkld)");
  std::printf("%-26s %12.3f %14.1f\n", "full workload", full_sec, full_cost);
  std::printf("%-26s %12.3f %14.1f\n", "compressed workload", comp_sec,
              comp_cost);
  std::printf("\ncompression keeps %.1f%% of the benefit at %.1fx less "
              "solve time\n",
              100.0 * (base - comp_cost) / std::max(1.0, base - full_cost),
              full_sec / std::max(1e-9, comp_sec));
}

void BM_StructuralHash(benchmark::State& state) {
  Shared& S = shared();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        S.workload.queries[i % S.workload.size()].StructuralHash());
    ++i;
  }
}
BENCHMARK(BM_StructuralHash);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("ablation");
  reporter.TimeOp("ablation_inum_param_signatures", [] { dbdesign::AblationInumParamSignatures(); });
  reporter.TimeOp("ablation_cophy_atom_cap", [] { dbdesign::AblationCophyAtomCap(); });
  reporter.TimeOp("ablation_candidate_generation", [] { dbdesign::AblationCandidateGeneration(); });
  reporter.TimeOp("ablation_colt_budget", [] { dbdesign::AblationColtBudget(); });
  reporter.TimeOp("ablation_workload_compression", [] { dbdesign::AblationWorkloadCompression(); });
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
