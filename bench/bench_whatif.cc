// Experiments E7 + E8 — the what-if component itself.
//
// E7, paper (§3.1): what-if analysis "escape[s] the cost of explicitly
// building a structure" — we measure a what-if cost call against a real
// index build (B-tree construction over the row store).
//
// E8, paper (§3.1c): "the what-if join component which controls the
// join methods in the query execution plan" — we show plan/cost shifts
// as each join method is disabled.

#include <chrono>
#include <functional>

#include "backend/inmemory_backend.h"
#include "backend/trace_backend.h"
#include "bench_common.h"
#include "exec/executor.h"
#include "sql/binder.h"
#include "util/rng.h"
#include "whatif/whatif.h"

namespace dbdesign {
namespace {

using bench::Header;
using bench::MakeDb;

struct Shared {
  Database db = MakeDb(50000);  // larger table: build cost is the point
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), 12, 3);
};

Shared& shared() {
  static Shared* s = new Shared();
  return *s;
}

void RunWhatIfVsBuild() {
  Shared& S = shared();
  Header("E7: what-if evaluation vs physically building the index",
         "\"the what-if capabilities simulate the original design features "
         "without actually building them\"");

  TableId photo = S.db.catalog().FindTable(kPhotoObj);
  const TableDef& def = S.db.catalog().table(photo);
  IndexDef idx{photo, {def.FindColumn("ra"), def.FindColumn("dec")}, false};
  auto q = ParseAndBind(S.db.catalog(),
                        "SELECT objid, ra, dec FROM photoobj "
                        "WHERE ra BETWEEN 100 AND 101 AND dec BETWEEN 0 AND 4");

  WhatIfOptimizer whatif(S.db);
  double base_cost = whatif.Cost(q.value());

  // What-if: hypothetical index + one optimizer call.
  auto t0 = std::chrono::steady_clock::now();
  whatif.CreateHypotheticalIndex(idx);
  double whatif_cost = whatif.Cost(q.value());
  double whatif_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  whatif.ResetHypothetical();

  // Real: build the B-tree over 50k rows, then plan.
  t0 = std::chrono::steady_clock::now();
  Status s = S.db.CreateIndex(idx);
  double build_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  double real_cost = whatif.CostUnder(q.value(), S.db.CurrentDesign());
  S.db.DropIndex(idx);

  std::printf("\nprobe: %s\n", q.value().ToSql(S.db.catalog()).c_str());
  std::printf("%-36s %14s %14s\n", "", "wall time", "est. cost");
  std::printf("%-36s %11.3f ms %14.1f\n", "what-if (hypothetical) evaluation",
              whatif_sec * 1e3, whatif_cost);
  std::printf("%-36s %11.3f ms %14.1f   (%s)\n",
              "physical build + evaluation", build_sec * 1e3, real_cost,
              s.ok() ? "built 50k-row B-tree" : s.ToString().c_str());
  std::printf("\nwhat-if is %.0fx faster than building; both agree the "
              "index cuts cost %.1fx\n",
              build_sec / whatif_sec, base_cost / whatif_cost);

  // Fidelity: hypothetical and materialized designs cost identically.
  std::printf("hypothetical vs materialized cost estimate: %.4f vs %.4f "
              "(must match)\n",
              whatif_cost, real_cost);
}

void RunJoinKnobs() {
  Shared& S = shared();
  Header("E8: what-if join component — join-method control",
         "\"the what-if join component ... controls the join methods in the "
         "query execution plan\"");

  auto q = ParseAndBind(S.db.catalog(),
                        "SELECT p.objid, s.z FROM photoobj p JOIN specobj s "
                        "ON p.objid = s.bestobjid WHERE s.z > 0.2");
  WhatIfOptimizer whatif(S.db);
  TableId photo = S.db.catalog().FindTable(kPhotoObj);
  whatif.CreateHypotheticalIndex(
      IndexDef{photo,
               {S.db.catalog().table(photo).FindColumn("objid")},
               false});

  struct KnobCase {
    const char* name;
    PlannerKnobs knobs;
  };
  std::vector<KnobCase> cases;
  cases.push_back({"all methods", PlannerKnobs{}});
  PlannerKnobs k1;
  k1.enable_hashjoin = false;
  cases.push_back({"enable_hashjoin=off", k1});
  PlannerKnobs k2;
  k2.enable_mergejoin = false;
  k2.enable_hashjoin = false;
  cases.push_back({"hash+merge off", k2});
  PlannerKnobs k3;
  k3.enable_indexnestloop = false;
  k3.enable_hashjoin = false;
  k3.enable_mergejoin = false;
  cases.push_back({"only materialized NL", k3});

  std::printf("\n%-24s %-16s %12s\n", "knob setting", "chosen join",
              "plan cost");
  for (const KnobCase& kc : cases) {
    whatif.knobs() = kc.knobs;
    PlanResult r = whatif.Plan(q.value());
    const char* method = "none";
    std::function<void(const PlanNode&)> find = [&](const PlanNode& n) {
      switch (n.type) {
        case PlanNodeType::kHashJoin: method = "HashJoin"; break;
        case PlanNodeType::kMergeJoin: method = "MergeJoin"; break;
        case PlanNodeType::kNestLoopJoin: method = "NestLoop"; break;
        case PlanNodeType::kIndexNestLoopJoin:
          method = "IndexNestLoop";
          break;
        default: break;
      }
      for (const auto& c : n.children) find(*c);
    };
    find(*r.root);
    std::printf("%-24s %-16s %12.1f\n", kc.name, method, r.cost);
  }
  std::printf("\n(disabling the preferred method forces the next-best plan; "
              "costs are monotonically non-decreasing)\n");
}

void RunBatchedCosting(bench::JsonReporter& reporter) {
  Shared& S = shared();
  Header("E7c: batched what-if costing — one backend round-trip per workload",
         "\"[the designer can] be ported to any relational DBMS which offers "
         "a query optimizer\" — CostBatch amortizes that optimizer surface");

  // A realistic stream: 200 queries drawn from 40 distinct statements
  // (real query logs repeat; the batch deduplicates structural repeats).
  Workload distinct =
      GenerateWorkload(S.db, TemplateMix::OfflineDefault(), 40, 21);
  Rng rng(5);
  std::vector<BoundQuery> stream;
  stream.reserve(200);
  for (int i = 0; i < 200; ++i) {
    stream.push_back(
        distinct.queries[static_cast<size_t>(rng.UniformInt(0, 39))]);
  }

  InMemoryBackend backend(S.db);
  TableId photo = S.db.catalog().FindTable(kPhotoObj);
  PhysicalDesign design;
  design.AddIndex(
      IndexDef{photo, {S.db.catalog().table(photo).FindColumn("ra")}, false});
  PlannerKnobs knobs;
  std::span<const BoundQuery> span(stream.data(), stream.size());

  // Per-query calls: one optimizer round-trip each.
  backend.ResetCallCount();
  auto t0 = std::chrono::steady_clock::now();
  std::vector<double> single;
  single.reserve(stream.size());
  for (const BoundQuery& q : stream) {
    single.push_back(backend.CostQuery(q, design, knobs).value_or(-1.0));
  }
  double single_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  uint64_t single_calls = backend.num_optimizer_calls();

  // One batched call for the whole stream.
  backend.ResetCallCount();
  t0 = std::chrono::steady_clock::now();
  auto batched = backend.CostBatch(span, design, knobs);
  double batch_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  uint64_t batch_calls = backend.num_optimizer_calls();

  // Replay from a recorded trace: the floor for a ported backend whose
  // optimizer answers are cached client-side.
  auto recorder = TraceBackend::Record(backend);
  (void)recorder->CostBatch(span, design, knobs);
  auto replay = TraceBackend::FromJson(recorder->ToJson());
  double replay_sec = 0.0;
  if (replay.ok()) {
    t0 = std::chrono::steady_clock::now();
    (void)replay.value()->CostBatch(span, design, knobs);
    replay_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  bool identical = batched.ok() && batched.value() == single;
  std::printf("\nstream: %zu queries, %zu distinct statements\n",
              stream.size(), distinct.size());
  std::printf("%-34s %12s %16s %12s\n", "method", "wall time", "optimizer calls",
              "queries/sec");
  std::printf("%-34s %9.3f ms %16llu %12.0f\n", "per-query CostQuery",
              single_sec * 1e3, static_cast<unsigned long long>(single_calls),
              stream.size() / single_sec);
  std::printf("%-34s %9.3f ms %16llu %12.0f\n", "batched CostBatch",
              batch_sec * 1e3, static_cast<unsigned long long>(batch_calls),
              stream.size() / batch_sec);
  if (replay_sec > 0.0 && replay.ok()) {
    std::printf("%-34s %9.3f ms %16llu %12.0f\n", "batched, replayed trace",
                replay_sec * 1e3,
                static_cast<unsigned long long>(
                    replay.value()->num_optimizer_calls()),
                stream.size() / replay_sec);
  }
  std::printf("\nbatched costing is %.1fx faster (%llu vs %llu optimizer "
              "round-trips); results %s\n",
              single_sec / batch_sec,
              static_cast<unsigned long long>(batch_calls),
              static_cast<unsigned long long>(single_calls),
              identical ? "identical" : "DIFFER (bug!)");

  reporter.Report("e7c_per_query_costquery", single_sec * 1e3, 1.0,
                  single_calls);
  reporter.Report("e7c_costbatch", batch_sec * 1e3, single_sec / batch_sec,
                  batch_calls);
  if (replay_sec > 0.0) {
    reporter.Report("e7c_costbatch_replay", replay_sec * 1e3,
                    single_sec / replay_sec, 0);
  }

  // --- Multicore scaling of the batched section ---
  // A wider stream (every query distinct) so there is one optimizer
  // round-trip of work per element to spread across the pool.
  Workload wide = GenerateWorkload(S.db, TemplateMix::OfflineDefault(), 160, 33);
  std::span<const BoundQuery> wide_span(wide.queries.data(),
                                        wide.queries.size());
  std::printf("\nCostBatch thread scaling (%zu distinct queries, %d hardware "
              "threads):\n",
              wide.size(), ThreadPool::HardwareThreads());
  std::printf("%-14s %12s %10s %9s\n", "num_threads", "wall time", "speedup",
              "results");
  const int kReps = 3;
  double serial_sec = 0.0;
  std::vector<double> serial_costs;
  for (int t : {1, 2, 4, 8}) {
    CostParams params;
    params.num_threads = t;
    InMemoryBackend scaled(S.db, params);
    (void)scaled.CostBatch(wide_span, design, knobs);  // warm-up
    scaled.ResetCallCount();
    auto tt0 = std::chrono::steady_clock::now();
    Result<std::vector<double>> costs = scaled.CostBatch(wide_span, design, knobs);
    for (int r = 1; r < kReps; ++r) {
      costs = scaled.CostBatch(wide_span, design, knobs);
    }
    double sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - tt0)
                     .count() /
                 kReps;
    if (!costs.ok()) {
      std::printf("%-14d CostBatch failed: %s\n", t,
                  costs.status().ToString().c_str());
      continue;
    }
    if (t == 1) {
      serial_sec = sec;
      serial_costs = costs.value();
    }
    bool same = costs.value() == serial_costs;
    std::printf("%-14d %9.3f ms %9.2fx %9s\n", t, sec * 1e3, serial_sec / sec,
                same ? "identical" : "DIFFER!");
    reporter.Report("e7c_costbatch_threads_" + std::to_string(t), sec * 1e3,
                    serial_sec / sec,
                    scaled.num_optimizer_calls() / kReps);
  }
  std::printf("(costs are bit-identical at every thread count; speedup "
              "tracks available cores)\n");
}

void BM_WhatIfCostCall(benchmark::State& state) {
  Shared& S = shared();
  WhatIfOptimizer whatif(S.db);
  TableId photo = S.db.catalog().FindTable(kPhotoObj);
  whatif.CreateHypotheticalIndex(
      IndexDef{photo, {S.db.catalog().table(photo).FindColumn("ra")}, false});
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        whatif.Cost(S.workload.queries[i % S.workload.size()]));
    ++i;
  }
}
BENCHMARK(BM_WhatIfCostCall);

void BM_HypotheticalIndexCreation(benchmark::State& state) {
  Shared& S = shared();
  TableId photo = S.db.catalog().FindTable(kPhotoObj);
  IndexDef idx{photo, {S.db.catalog().table(photo).FindColumn("ra")}, false};
  for (auto _ : state) {
    WhatIfOptimizer whatif(S.db);
    benchmark::DoNotOptimize(whatif.CreateHypotheticalIndex(idx));
  }
}
BENCHMARK(BM_HypotheticalIndexCreation);

void BM_RealIndexBuild(benchmark::State& state) {
  // Small table so the benchmark loop stays fast; E7's table above uses
  // the 50k-row build for the headline number.
  Database db = MakeDb(5000);
  TableId photo = db.catalog().FindTable(kPhotoObj);
  IndexDef idx{photo, {db.catalog().table(photo).FindColumn("ra")}, false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.CreateIndex(idx));
    db.DropIndex(idx);
  }
}
BENCHMARK(BM_RealIndexBuild)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("whatif");
  reporter.TimeOp("e7_whatif_vs_build", [] { dbdesign::RunWhatIfVsBuild(); });
  reporter.TimeOp("e8_join_knobs", [] { dbdesign::RunJoinKnobs(); });
  dbdesign::RunBatchedCosting(reporter);
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
