// Experiments E7 + E8 — the what-if component itself.
//
// E7, paper (§3.1): what-if analysis "escape[s] the cost of explicitly
// building a structure" — we measure a what-if cost call against a real
// index build (B-tree construction over the row store).
//
// E8, paper (§3.1c): "the what-if join component which controls the
// join methods in the query execution plan" — we show plan/cost shifts
// as each join method is disabled.

#include <chrono>
#include <functional>

#include "bench_common.h"
#include "exec/executor.h"
#include "sql/binder.h"
#include "whatif/whatif.h"

namespace dbdesign {
namespace {

using bench::Header;
using bench::MakeDb;

struct Shared {
  Database db = MakeDb(50000);  // larger table: build cost is the point
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), 12, 3);
};

Shared& shared() {
  static Shared* s = new Shared();
  return *s;
}

void RunWhatIfVsBuild() {
  Shared& S = shared();
  Header("E7: what-if evaluation vs physically building the index",
         "\"the what-if capabilities simulate the original design features "
         "without actually building them\"");

  TableId photo = S.db.catalog().FindTable(kPhotoObj);
  const TableDef& def = S.db.catalog().table(photo);
  IndexDef idx{photo, {def.FindColumn("ra"), def.FindColumn("dec")}, false};
  auto q = ParseAndBind(S.db.catalog(),
                        "SELECT objid, ra, dec FROM photoobj "
                        "WHERE ra BETWEEN 100 AND 101 AND dec BETWEEN 0 AND 4");

  WhatIfOptimizer whatif(S.db);
  double base_cost = whatif.Cost(q.value());

  // What-if: hypothetical index + one optimizer call.
  auto t0 = std::chrono::steady_clock::now();
  whatif.CreateHypotheticalIndex(idx);
  double whatif_cost = whatif.Cost(q.value());
  double whatif_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  whatif.ResetHypothetical();

  // Real: build the B-tree over 50k rows, then plan.
  t0 = std::chrono::steady_clock::now();
  Status s = S.db.CreateIndex(idx);
  double build_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  double real_cost = whatif.CostUnder(q.value(), S.db.CurrentDesign());
  S.db.DropIndex(idx);

  std::printf("\nprobe: %s\n", q.value().ToSql(S.db.catalog()).c_str());
  std::printf("%-36s %14s %14s\n", "", "wall time", "est. cost");
  std::printf("%-36s %11.3f ms %14.1f\n", "what-if (hypothetical) evaluation",
              whatif_sec * 1e3, whatif_cost);
  std::printf("%-36s %11.3f ms %14.1f   (%s)\n",
              "physical build + evaluation", build_sec * 1e3, real_cost,
              s.ok() ? "built 50k-row B-tree" : s.ToString().c_str());
  std::printf("\nwhat-if is %.0fx faster than building; both agree the "
              "index cuts cost %.1fx\n",
              build_sec / whatif_sec, base_cost / whatif_cost);

  // Fidelity: hypothetical and materialized designs cost identically.
  std::printf("hypothetical vs materialized cost estimate: %.4f vs %.4f "
              "(must match)\n",
              whatif_cost, real_cost);
}

void RunJoinKnobs() {
  Shared& S = shared();
  Header("E8: what-if join component — join-method control",
         "\"the what-if join component ... controls the join methods in the "
         "query execution plan\"");

  auto q = ParseAndBind(S.db.catalog(),
                        "SELECT p.objid, s.z FROM photoobj p JOIN specobj s "
                        "ON p.objid = s.bestobjid WHERE s.z > 0.2");
  WhatIfOptimizer whatif(S.db);
  TableId photo = S.db.catalog().FindTable(kPhotoObj);
  whatif.CreateHypotheticalIndex(
      IndexDef{photo,
               {S.db.catalog().table(photo).FindColumn("objid")},
               false});

  struct KnobCase {
    const char* name;
    PlannerKnobs knobs;
  };
  std::vector<KnobCase> cases;
  cases.push_back({"all methods", PlannerKnobs{}});
  PlannerKnobs k1;
  k1.enable_hashjoin = false;
  cases.push_back({"enable_hashjoin=off", k1});
  PlannerKnobs k2;
  k2.enable_mergejoin = false;
  k2.enable_hashjoin = false;
  cases.push_back({"hash+merge off", k2});
  PlannerKnobs k3;
  k3.enable_indexnestloop = false;
  k3.enable_hashjoin = false;
  k3.enable_mergejoin = false;
  cases.push_back({"only materialized NL", k3});

  std::printf("\n%-24s %-16s %12s\n", "knob setting", "chosen join",
              "plan cost");
  for (const KnobCase& kc : cases) {
    whatif.knobs() = kc.knobs;
    PlanResult r = whatif.Plan(q.value());
    const char* method = "none";
    std::function<void(const PlanNode&)> find = [&](const PlanNode& n) {
      switch (n.type) {
        case PlanNodeType::kHashJoin: method = "HashJoin"; break;
        case PlanNodeType::kMergeJoin: method = "MergeJoin"; break;
        case PlanNodeType::kNestLoopJoin: method = "NestLoop"; break;
        case PlanNodeType::kIndexNestLoopJoin:
          method = "IndexNestLoop";
          break;
        default: break;
      }
      for (const auto& c : n.children) find(*c);
    };
    find(*r.root);
    std::printf("%-24s %-16s %12.1f\n", kc.name, method, r.cost);
  }
  std::printf("\n(disabling the preferred method forces the next-best plan; "
              "costs are monotonically non-decreasing)\n");
}

void BM_WhatIfCostCall(benchmark::State& state) {
  Shared& S = shared();
  WhatIfOptimizer whatif(S.db);
  TableId photo = S.db.catalog().FindTable(kPhotoObj);
  whatif.CreateHypotheticalIndex(
      IndexDef{photo, {S.db.catalog().table(photo).FindColumn("ra")}, false});
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        whatif.Cost(S.workload.queries[i % S.workload.size()]));
    ++i;
  }
}
BENCHMARK(BM_WhatIfCostCall);

void BM_HypotheticalIndexCreation(benchmark::State& state) {
  Shared& S = shared();
  TableId photo = S.db.catalog().FindTable(kPhotoObj);
  IndexDef idx{photo, {S.db.catalog().table(photo).FindColumn("ra")}, false};
  for (auto _ : state) {
    WhatIfOptimizer whatif(S.db);
    benchmark::DoNotOptimize(whatif.CreateHypotheticalIndex(idx));
  }
}
BENCHMARK(BM_HypotheticalIndexCreation);

void BM_RealIndexBuild(benchmark::State& state) {
  // Small table so the benchmark loop stays fast; E7's table above uses
  // the 50k-row build for the headline number.
  Database db = MakeDb(5000);
  TableId photo = db.catalog().FindTable(kPhotoObj);
  IndexDef idx{photo, {db.catalog().table(photo).FindColumn("ra")}, false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.CreateIndex(idx));
    db.DropIndex(idx);
  }
}
BENCHMARK(BM_RealIndexBuild)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::RunWhatIfVsBuild();
  dbdesign::RunJoinKnobs();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
