// Experiment E1 — Figure 2: the index interaction graph.
//
// Paper (§4, Figure 2): "We use an undirected graph in which the
// vertices of the graph represent indexes and the weights of the edges
// are the degree of interaction for a pair of indexes. If the graph has
// too many edges, the user can dynamically change the number of
// interactions that are being displayed."

#include "bench_common.h"
#include "cophy/cophy.h"
#include "interaction/graph.h"
#include "util/str.h"

namespace dbdesign {
namespace {

using bench::DataPages;
using bench::Header;
using bench::MakeDb;

struct Shared {
  Database db = MakeDb();
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), 16, 5);
  std::vector<IndexDef> recommended;
  InumCostModel inum{db};

  Shared() {
    CoPhyOptions opts;
    opts.storage_budget_pages = DataPages(db);
    CoPhyAdvisor advisor(db, CostParams{}, opts);
    recommended = advisor.Recommend(workload).indexes;
  }
};

Shared& shared() {
  static Shared* s = new Shared();
  return *s;
}

void RunExperiment() {
  Shared& S = shared();
  Header("E1: index interaction graph over CoPhy's recommendation (Figure 2)",
         "vertices = indexes, edge weights = degree of interaction, with a "
         "top-k display filter");

  InteractionAnalyzer analyzer(S.inum);
  std::vector<InteractionEdge> edges =
      analyzer.Analyze(S.workload, S.recommended);
  InteractionGraph graph(S.db.catalog(), S.recommended, edges);

  std::printf("\nrecommended indexes: %zu, interacting pairs: %zu "
              "(of %zu possible)\n",
              S.recommended.size(), edges.size(),
              S.recommended.size() * (S.recommended.size() - 1) / 2);

  for (int k : {4, 8, -1}) {
    graph.SetDisplayedEdges(k);
    std::printf("\n--- display filter: %s ---\n",
                k < 0 ? "all edges" : StrFormat("top %d", k).c_str());
    std::printf("%s", graph.ToAscii().c_str());
  }

  graph.SetDisplayedEdges(-1);
  std::printf("\nGraphviz DOT (render with `dot -Tpng`):\n%s\n",
              graph.ToDot().c_str());

  // Sanity panel: solo benefits, so the graph can be read against them.
  std::printf("index solo benefits (workload cost drop when built alone):\n");
  for (size_t i = 0; i < S.recommended.size(); ++i) {
    std::printf("  [%zu] %-44s %10.1f\n", i,
                S.recommended[i].DisplayName(S.db.catalog()).c_str(),
                analyzer.SoloBenefit(S.workload, S.recommended,
                                     static_cast<int>(i)));
  }
}

void BM_PairDoi(benchmark::State& state) {
  Shared& S = shared();
  InteractionAnalyzer analyzer(S.inum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyzer.PairDoi(S.workload, S.recommended, 0,
                         static_cast<int>(S.recommended.size()) - 1));
  }
}
BENCHMARK(BM_PairDoi)->Unit(benchmark::kMillisecond);

void BM_FullGraphAnalysis(benchmark::State& state) {
  Shared& S = shared();
  InteractionAnalyzer analyzer(S.inum);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Analyze(S.workload, S.recommended));
  }
}
BENCHMARK(BM_FullGraphAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("interaction");
  reporter.TimeOp("e9_interaction", [] { dbdesign::RunExperiment(); });
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
