// Experiment E9 — solver scaling: monolithic vs cluster-decomposed BIP.
//
// CoPhy's selling point over heuristic advisors is that the BIP solves
// to a PROVEN optimum — but the monolithic program couples every
// candidate through one budget row, so its solve cost grows with the
// whole universe even when the workload's interaction structure is a
// set of small independent clusters. The decomposed path (SolvePrepared
// in kAuto mode) solves one BIP per interaction cluster under a shared
// budget allocation and stitches the optima; the solver cache then
// re-solves only the clusters a constraint edit dirties, warm-started
// from the previous basis.
//
// This bench sweeps the candidate-universe size (50 / 200 / 1000 / 4000
// synthetic candidates in 10-candidate clusters) and times three paths
// over the SAME prepared state:
//
//   * monolithic_N      — forced single BIP (kMonolithic)
//   * decomposed_N      — per-cluster solves, cold cache (kAuto)
//   * decomposed_warm_N — veto of one recommended index, same cache:
//                         only the dirtied cluster re-solves
//
// Every decomposed result is DBD_CHECKed bit-identical to the
// monolithic optimum of the same problem (the 1e-5/page tie-break makes
// it unique); the sweep is a perf experiment riding on the differential
// correctness spine, not a separate accuracy claim.
//
// Writes BENCH_solver.json; decomposed rows carry their speedup over
// the monolithic solve of the same universe.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cophy/cophy.h"
#include "core/constraints.h"
#include "util/rng.h"

namespace dbdesign {
namespace {

using bench::Header;
using bench::JsonReporter;
using bench::MakeDb;

// Structurally valid, distinct IndexDefs over the catalog: singles,
// then leading pairs, then leading triples — the catalog has ~60
// columns, so triples are what carry the 4000-candidate sweep.
std::vector<IndexDef> EnumerateIndexDefs(const Catalog& catalog, int count) {
  std::vector<IndexDef> defs;
  auto done = [&] { return static_cast<int>(defs.size()) == count; };
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    ColumnId nc = static_cast<ColumnId>(catalog.table(t).columns().size());
    for (ColumnId a = 0; a < nc; ++a) {
      defs.push_back(IndexDef{t, {a}});
      if (done()) return defs;
    }
  }
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    ColumnId nc = static_cast<ColumnId>(catalog.table(t).columns().size());
    for (ColumnId a = 0; a < nc; ++a) {
      for (ColumnId b = 0; b < nc; ++b) {
        if (a == b) continue;
        defs.push_back(IndexDef{t, {a, b}});
        if (done()) return defs;
      }
    }
  }
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    ColumnId nc = static_cast<ColumnId>(catalog.table(t).columns().size());
    for (ColumnId a = 0; a < nc; ++a) {
      for (ColumnId b = 0; b < nc; ++b) {
        for (ColumnId c = 0; c < nc; ++c) {
          if (a == b || a == c || b == c) continue;
          defs.push_back(IndexDef{t, {a, b, c}});
          if (done()) return defs;
        }
      }
    }
  }
  DBD_CHECK(done() && "catalog too small for the candidate sweep");
  return defs;
}

// Synthetic prepared state with exact cluster structure: `num_cands`
// candidates in groups of 10, two query rows per group whose atoms
// reference only that group (plus the index-free anchor), so the
// interaction clusters are precisely the groups. Mirrors the generator
// the differential tests use — the bench measures the same machinery
// the correctness suite certifies.
CoPhyPrepared MakePrepared(const Database& db, int num_cands) {
  constexpr int kPerGroup = 10;
  constexpr int kRowsPerGroup = 2;
  const int groups = num_cands / kPerGroup;
  Rng rng(static_cast<uint64_t>(num_cands) * 7919 + 1);
  std::vector<IndexDef> defs = EnumerateIndexDefs(db.catalog(), num_cands);

  CoPhyPrepared prep;
  for (int i = 0; i < num_cands; ++i) {
    CandidateIndex c;
    c.index = defs[static_cast<size_t>(i)];
    c.size_pages = rng.UniformDouble(50.0, 400.0);
    c.relevant_queries = 1;
    prep.candidates.push_back(std::move(c));
  }
  prep.universe_fingerprint = CandidateUniverseFingerprint(prep.candidates);

  for (int g = 0; g < groups; ++g) {
    for (int r = 0; r < kRowsPerGroup; ++r) {
      auto row = std::make_shared<CoPhyAtomRow>();
      double base = rng.UniformDouble(80.0, 160.0);
      row->base_cost = base;
      row->atoms.push_back(CoPhyAtom{base, {}});  // index-free anchor
      for (int j = 0; j < kPerGroup; ++j) {
        int i = g * kPerGroup + j;
        row->atoms.push_back(
            CoPhyAtom{base * rng.UniformDouble(0.3, 0.95), {i}});
      }
      for (int j = 0; j + 1 < kPerGroup; j += 2) {
        std::vector<int> used = {g * kPerGroup + j, g * kPerGroup + j + 1};
        row->atoms.push_back(
            CoPhyAtom{base * rng.UniformDouble(0.15, 0.4), std::move(used)});
      }
      std::sort(row->atoms.begin(), row->atoms.end(),
                [](const CoPhyAtom& a, const CoPhyAtom& b) {
                  return a.cost < b.cost;
                });
      prep.num_atoms += row->atoms.size();
      prep.rows.push_back(std::move(row));
      prep.weights.push_back(rng.UniformDouble(0.5, 2.0));
      prep.base_cost += prep.weights.back() * base;
    }
  }
  prep.RefreshClusters();
  return prep;
}

double TotalSize(const CoPhyPrepared& prep) {
  double total = 0.0;
  for (const CandidateIndex& c : prep.candidates) total += c.size_pages;
  return total;
}

struct SolveRow {
  IndexRecommendation rec;
  double ms = 0.0;
};

SolveRow Solve(const Database& db, const CoPhyPrepared& prep,
               const DesignConstraints& cons, CoPhySolveMode mode,
               double budget, CoPhySolverCache* cache) {
  CoPhyOptions opts;
  opts.storage_budget_pages = budget;
  opts.solve_mode = mode;
  CoPhyAdvisor advisor(db, CostParams{}, opts);
  auto t0 = std::chrono::steady_clock::now();
  Result<IndexRecommendation> rec = advisor.SolvePrepared(prep, cons, cache);
  SolveRow row;
  row.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
  DBD_CHECK(rec.ok() && "SolvePrepared failed");
  row.rec = std::move(rec).value();
  return row;
}

// The bit-identity contract the differential tests enforce, as
// always-on checks: every decomposed optimum in the sweep must equal
// the monolithic one exactly, or the bench aborts.
void CheckIdentical(const IndexRecommendation& a,
                    const IndexRecommendation& b) {
  DBD_CHECK_EQ(a.indexes.size(), b.indexes.size());
  for (size_t i = 0; i < a.indexes.size(); ++i) {
    DBD_CHECK(a.indexes[i] == b.indexes[i]);
  }
  DBD_CHECK_EQ(a.total_size_pages, b.total_size_pages);
  DBD_CHECK_EQ(a.recommended_cost, b.recommended_cost);
  DBD_CHECK_EQ(a.proven_optimal, b.proven_optimal);
}

void RunSolverScaling(JsonReporter& reporter) {
  Header("E9: BIP solver scaling — monolithic vs cluster-decomposed",
         "per-cluster solves under a shared budget allocation scale with "
         "the dirtied clusters, not the candidate universe");

  Database db = MakeDb(2000);
  std::printf("\n%-10s | %12s %12s %14s | %9s %9s\n", "candidates",
              "mono ms", "decomp ms", "warm-veto ms", "speedup",
              "warm spd");
  std::printf("-----------+-----------------------------------------+"
              "--------------------\n");

  for (int n : {50, 200, 1000, 4000}) {
    CoPhyPrepared prep = MakePrepared(db, n);
    double budget = TotalSize(prep);
    DesignConstraints cons;
    CoPhySolverCache cache;

    SolveRow mono =
        Solve(db, prep, cons, CoPhySolveMode::kMonolithic, budget, nullptr);
    SolveRow decomp =
        Solve(db, prep, cons, CoPhySolveMode::kAuto, budget, &cache);
    DBD_CHECK(!decomp.rec.solved_monolithic);
    CheckIdentical(decomp.rec, mono.rec);

    // Constraint edit: veto one recommended index. Only its cluster may
    // re-solve; the optimum must still match a cold monolithic solve
    // under the same veto.
    DBD_CHECK(!decomp.rec.indexes.empty());
    DesignConstraints vetoed = cons;
    vetoed.vetoed_indexes.push_back(decomp.rec.indexes.front());
    SolveRow warm =
        Solve(db, prep, vetoed, CoPhySolveMode::kAuto, budget, &cache);
    DBD_CHECK_EQ(warm.rec.clusters_solved, 1);
    SolveRow mono_veto =
        Solve(db, prep, vetoed, CoPhySolveMode::kMonolithic, budget, nullptr);
    CheckIdentical(warm.rec, mono_veto.rec);

    double speedup = mono.ms / std::max(0.001, decomp.ms);
    double warm_speedup = mono_veto.ms / std::max(0.001, warm.ms);
    std::printf("%-10d | %12.2f %12.2f %14.3f | %8.1fx %8.1fx\n", n, mono.ms,
                decomp.ms, warm.ms, speedup, warm_speedup);

    std::string suffix = "_" + std::to_string(n);
    reporter.Report("monolithic" + suffix, mono.ms, 1.0);
    reporter.Report("decomposed" + suffix, decomp.ms, speedup);
    reporter.Report("decomposed_warm" + suffix, warm.ms, warm_speedup);
  }
  std::printf("\nall decomposed optima bit-identical to monolithic "
              "[DBD_CHECK-enforced]\n");
}

void BM_DecomposedSolve(benchmark::State& state) {
  Database db = MakeDb(2000);
  CoPhyPrepared prep = MakePrepared(db, static_cast<int>(state.range(0)));
  double budget = TotalSize(prep);
  DesignConstraints cons;
  for (auto _ : state) {
    CoPhySolverCache cache;
    SolveRow r = Solve(db, prep, cons, CoPhySolveMode::kAuto, budget, &cache);
    benchmark::DoNotOptimize(r.rec.recommended_cost);
  }
}
BENCHMARK(BM_DecomposedSolve)->Arg(50)->Arg(200)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("solver");
  dbdesign::RunSolverScaling(reporter);
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
