// Shared helpers for the experiment benchmarks. Each bench_* binary
// reproduces one experiment from DESIGN.md §4: it prints the paper-style
// result table(s) first, then runs google-benchmark microbenchmarks for
// the hot operations involved.

#ifndef DBDESIGN_BENCH_BENCH_COMMON_H_
#define DBDESIGN_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>

#include "storage/database.h"
#include "util/logging.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace bench {

inline Database MakeDb(int photoobj_rows = 20000, uint64_t seed = 42) {
  SetLogLevel(LogLevel::kError);
  SdssConfig cfg;
  cfg.photoobj_rows = photoobj_rows;
  cfg.seed = seed;
  return BuildSdssDatabase(cfg);
}

inline double DataPages(const Database& db) {
  double pages = 0.0;
  for (TableId t = 0; t < db.catalog().num_tables(); ++t) {
    pages += db.stats(t).HeapPages(db.catalog().table(t));
  }
  return pages;
}

inline void Header(const char* experiment, const char* claim) {
  std::printf("\n==============================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================================\n");
}

}  // namespace bench
}  // namespace dbdesign

#endif  // DBDESIGN_BENCH_BENCH_COMMON_H_
