// Shared helpers for the experiment benchmarks. Each bench_* binary
// reproduces one experiment from DESIGN.md §4: it prints the paper-style
// result table(s) first, then runs google-benchmark microbenchmarks for
// the hot operations involved. Alongside the tables, each binary writes
// a machine-readable BENCH_<name>.json (via JsonReporter) so CI can
// track the perf trajectory across commits.

#ifndef DBDESIGN_BENCH_BENCH_COMMON_H_
#define DBDESIGN_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "storage/database.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace bench {

/// Row-count override for CI smoke runs: DBDESIGN_BENCH_ROWS caps the
/// photoobj size every bench builds, keeping the full table sections
/// fast on small runners.
inline int BenchRows(int default_rows) {
  if (const char* env = std::getenv("DBDESIGN_BENCH_ROWS")) {
    int v = std::atoi(env);
    if (v > 0 && v < default_rows) return v;
  }
  return default_rows;
}

inline Database MakeDb(int photoobj_rows = 20000, uint64_t seed = 42) {
  SetLogLevel(LogLevel::kError);
  SdssConfig cfg;
  cfg.photoobj_rows = BenchRows(photoobj_rows);
  cfg.seed = seed;
  return BuildSdssDatabase(cfg);
}

inline double DataPages(const Database& db) {
  double pages = 0.0;
  for (TableId t = 0; t < db.catalog().num_tables(); ++t) {
    pages += db.stats(t).HeapPages(db.catalog().table(t));
  }
  return pages;
}

inline void Header(const char* experiment, const char* claim) {
  std::printf("\n==============================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================================\n");
}

/// Collects per-operation results and writes BENCH_<name>.json next to
/// the printed tables: op name, wall milliseconds, speedup against the
/// operation's serial baseline (1.0 when not applicable), the backend
/// optimizer-call counter, and the INUM populate counter (0 when not
/// measured — INUM-backed pipelines are client-side, so populations,
/// not backend calls, carry their cost-call signal). CI uploads these
/// files as artifacts — the machine-readable perf trajectory.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : name_(std::move(bench_name)) {}

  void Report(const std::string& op, double wall_ms,
              double speedup_vs_serial = 1.0, uint64_t optimizer_calls = 0,
              uint64_t populates = 0) {
    entries_.push_back(
        Entry{op, wall_ms, speedup_vs_serial, optimizer_calls, populates});
  }

  /// Times fn() once and records it under `op`.
  template <typename Fn>
  void TimeOp(const std::string& op, Fn&& fn) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    Report(op, ms);
  }

  /// Attaches a bench-specific JSON value under root["extra"][key] —
  /// for results that are not plain (op, wall-ms) rows, e.g. the
  /// deployment benefit curves.
  void Extra(const std::string& key, Json value) {
    if (!extra_.is_object()) extra_ = Json::Object();
    extra_[key] = std::move(value);
  }

  /// Writes BENCH_<name>.json into the working directory.
  void Write() const {
    Json root = Json::Object();
    root["bench"] = Json::Str(name_);
    root["hardware_threads"] = Json::Number(ThreadPool::HardwareThreads());
    if (extra_.is_object()) root["extra"] = extra_;
    Json ops = Json::Array();
    for (const Entry& e : entries_) {
      Json op = Json::Object();
      op["op"] = Json::Str(e.op);
      op["wall_ms"] = Json::Number(e.wall_ms);
      op["speedup_vs_serial"] = Json::Number(e.speedup);
      op["optimizer_calls"] = Json::Number(static_cast<double>(e.calls));
      op["populates"] = Json::Number(static_cast<double>(e.populates));
      ops.Append(std::move(op));
    }
    root["ops"] = std::move(ops);
    std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    out << root.Dump() << "\n";
    std::printf("\n[bench] wrote %s (%zu ops)\n", path.c_str(),
                entries_.size());
  }

 private:
  struct Entry {
    std::string op;
    double wall_ms = 0.0;
    double speedup = 1.0;
    uint64_t calls = 0;
    uint64_t populates = 0;
  };
  std::string name_;
  std::vector<Entry> entries_;
  Json extra_;
};

}  // namespace bench
}  // namespace dbdesign

#endif  // DBDESIGN_BENCH_BENCH_COMMON_H_
