// Experiment E8 — interactive refinement latency.
//
// The paper's demo loop only works if re-recommending after a DBA edit
// is much cheaper than the first recommendation: "the ability of INUM
// to reuse previously obtained query plans ... reduces drastically the
// what-if optimization overhead". This bench measures the session's
// two-tier incremental loop directly:
//
//   * recommend_initial — cold session: candidate mining, INUM
//     populate, atom expansion, BIP solve.
//   * refine_pin_recommended — the demo's most common reaction (the
//     DBA pins indexes the tool just recommended): a tightening-only
//     edit whose optimality certificate survives, answered with no
//     solver work at all. This is the headline interactive op — the
//     acceptance bar is >= 10x faster than the initial recommend.
//   * refine_veto_top — vetoing an index the solution *uses* breaks
//     the certificate: full BIP re-solve against the cached atom
//     matrix. Still zero optimizer calls, zero INUM populations.
//   * refine_budget_cut — budget below the current configuration's
//     footprint: re-solve, same story.
//   * add_queries_refine — workload delta: only the new queries' atoms
//     are built.
//
// Writes BENCH_refine.json; each refine row's speedup column records
// how many times faster it ran than this run's initial recommend.

#include "bench_common.h"
#include "core/designer.h"
#include "core/session.h"

namespace dbdesign {
namespace {

using bench::DataPages;
using bench::Header;
using bench::JsonReporter;
using bench::MakeDb;

struct Timing {
  double ms = 0.0;
  uint64_t backend_calls = 0;
  uint64_t populates = 0;
  size_t indexes = 0;
  double cost = 0.0;
};

template <typename Fn>
Timing Timed(DesignSession& session, Fn&& fn) {
  Timing t;
  uint64_t calls0 = session.backend_optimizer_calls();
  uint64_t pops0 = session.inum_populate_count();
  auto t0 = std::chrono::steady_clock::now();
  Result<IndexRecommendation> rec = fn();
  t.ms = std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count();
  t.backend_calls = session.backend_optimizer_calls() - calls0;
  t.populates = session.inum_populate_count() - pops0;
  if (rec.ok()) {
    t.indexes = rec.value().indexes.size();
    t.cost = rec.value().recommended_cost;
  }
  return t;
}

void RunRefineLoop(JsonReporter& reporter) {
  Header("E8: initial recommendation vs incremental refinement",
         "the interactive loop re-solves without new optimizer calls "
         "(INUM + atom matrix reuse)");

  Database db = MakeDb();
  double budget = 0.5 * DataPages(db);
  std::printf("\n%-10s | %-28s %10s %8s %10s %10s\n", "queries", "op",
              "wall ms", "speedup", "opt calls", "populates");
  std::printf("-----------+------------------------------------------------"
              "----------------------\n");

  for (int nq : {8, 16, 32}) {
    Workload workload =
        GenerateWorkload(db, TemplateMix::OfflineDefault(), nq, 19);
    Designer designer(db);
    DesignSession session(designer);
    session.SetWorkload(workload);
    DesignConstraints constraints;
    constraints.storage_budget_pages = budget;
    session.SetConstraints(constraints);

    Timing initial = Timed(session, [&] { return session.Recommend(); });
    std::printf("%-10d | %-28s %10.3f %7.1fx %10llu %10llu\n", nq,
                "recommend_initial", initial.ms, 1.0,
                static_cast<unsigned long long>(initial.backend_calls),
                static_cast<unsigned long long>(initial.populates));

    // Tier 1 — the DBA pins the top two recommended indexes (a
    // tightening edit: the optimality certificate survives).
    const IndexRecommendation* rec = session.last_recommendation();
    ConstraintDelta keep;
    if (rec != nullptr && rec->indexes.size() >= 2) {
      keep.pin.push_back(rec->indexes[0]);
      keep.pin.push_back(rec->indexes[1]);
    }
    Timing pinned = Timed(session, [&] { return session.Refine(keep); });
    double speedup = initial.ms / std::max(0.001, pinned.ms);
    std::printf("%-10d | %-28s %10.3f %7.1fx %10llu %10llu\n", nq,
                "refine_pin_recommended", pinned.ms, speedup,
                static_cast<unsigned long long>(pinned.backend_calls),
                static_cast<unsigned long long>(pinned.populates));

    // Tier 2 — vetoing an index the configuration uses forces a full
    // BIP re-solve against the cached atoms (but the pins from above
    // must go first or the delta would be contradictory).
    ConstraintDelta veto;
    if (rec != nullptr && !rec->indexes.empty()) {
      veto.unpin.push_back(rec->indexes[0]);
      veto.veto.push_back(rec->indexes[0]);
    }
    Timing revised = Timed(session, [&] { return session.Refine(veto); });
    // The acceptance contract for every refine op: constraint edits are
    // answered purely from the cached atom matrix — no backend optimizer
    // calls, no INUM populations — even when the BIP re-solves.
    DBD_CHECK(pinned.backend_calls == 0 && pinned.populates == 0);
    DBD_CHECK(revised.backend_calls == 0 && revised.populates == 0);
    double speedup2 = initial.ms / std::max(0.001, revised.ms);
    std::printf("%-10d | %-28s %10.3f %7.1fx %10llu %10llu\n", nq,
                "refine_veto_top", revised.ms, speedup2,
                static_cast<unsigned long long>(revised.backend_calls),
                static_cast<unsigned long long>(revised.populates));

    // Tier 2 — budget cut below the current footprint: re-solve.
    const IndexRecommendation* now = session.last_recommendation();
    ConstraintDelta ops;
    ops.storage_budget_pages =
        now != nullptr ? 0.6 * now->total_size_pages : 0.25 * budget;
    ops.table_caps[db.catalog().FindTable(kPhotoObj)] = 2;
    Timing tightened = Timed(session, [&] { return session.Refine(ops); });
    DBD_CHECK(tightened.backend_calls == 0 && tightened.populates == 0);
    double speedup3 = initial.ms / std::max(0.001, tightened.ms);
    std::printf("%-10d | %-28s %10.3f %7.1fx %10llu %10llu\n", nq,
                "refine_budget_cut", tightened.ms, speedup3,
                static_cast<unsigned long long>(tightened.backend_calls),
                static_cast<unsigned long long>(tightened.populates));

    // Workload delta: three new queries, only their atoms get built.
    Workload extra = GenerateWorkload(db, TemplateMix::PhaseJoins(), 3, 91);
    auto t0 = std::chrono::steady_clock::now();
    session.AddQueries(extra.queries);
    double add_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    Timing delta = Timed(session, [&] { return session.Recommend(); });
    std::printf("%-10d | %-28s %10.3f %7.1fx %10llu %10llu\n", nq,
                "add_queries_refine", add_ms + delta.ms,
                initial.ms / std::max(0.001, add_ms + delta.ms),
                static_cast<unsigned long long>(delta.backend_calls),
                static_cast<unsigned long long>(delta.populates));

    if (nq == 32) {
      reporter.Report("recommend_initial", initial.ms, 1.0,
                      initial.backend_calls);
      reporter.Report("refine_pin_recommended", pinned.ms, speedup,
                      pinned.backend_calls);
      reporter.Report("refine_veto_top", revised.ms, speedup2,
                      revised.backend_calls);
      reporter.Report("refine_budget_cut", tightened.ms, speedup3,
                      tightened.backend_calls);
      reporter.Report("add_queries_refine", add_ms + delta.ms,
                      initial.ms / std::max(0.001, add_ms + delta.ms),
                      delta.backend_calls);
      std::printf("\npin-recommended refine vs initial: %.1fx faster, %llu "
                  "new optimizer calls, %llu new INUM populations %s\n",
                  speedup,
                  static_cast<unsigned long long>(pinned.backend_calls),
                  static_cast<unsigned long long>(pinned.populates),
                  speedup >= 10.0 && pinned.backend_calls == 0
                      ? "[interactive: >=10x and zero-call]"
                      : "[below the 10x interactive bar]");
    }
  }
}

void BM_InitialRecommend(benchmark::State& state) {
  Database db = MakeDb();
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(),
                       static_cast<int>(state.range(0)), 19);
  double budget = 0.5 * DataPages(db);
  for (auto _ : state) {
    Designer designer(db);
    DesignSession session(designer);
    session.SetWorkload(workload);
    DesignConstraints c;
    c.storage_budget_pages = budget;
    session.SetConstraints(c);
    auto rec = session.Recommend();
    benchmark::DoNotOptimize(rec.ok());
  }
}
BENCHMARK(BM_InitialRecommend)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_RefineSolve(benchmark::State& state) {
  Database db = MakeDb();
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(),
                       static_cast<int>(state.range(0)), 19);
  Designer designer(db);
  DesignSession session(designer);
  session.SetWorkload(workload);
  DesignConstraints c;
  c.storage_budget_pages = 0.5 * DataPages(db);
  session.SetConstraints(c);
  auto rec = session.Recommend();
  if (!rec.ok() || rec.value().indexes.empty()) {
    state.SkipWithError("no initial recommendation");
    return;
  }
  IndexDef toggle = rec.value().indexes[0];
  bool vetoed = false;
  for (auto _ : state) {
    ConstraintDelta delta;
    if (vetoed) {
      delta.unveto.push_back(toggle);
    } else {
      delta.veto.push_back(toggle);
    }
    vetoed = !vetoed;
    auto r = session.Refine(delta);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_RefineSolve)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbdesign

int main(int argc, char** argv) {
  dbdesign::bench::JsonReporter reporter("refine");
  dbdesign::RunRefineLoop(reporter);
  reporter.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
