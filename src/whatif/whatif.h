// What-if component (paper §3.1).
//
// Lets callers simulate the benefit of physical structures without
// building them. Three sub-components, as in the paper:
//   (a) what-if indexes  — hypothetical IndexDefs overlaid on the
//       materialized design (with honest, non-zero size estimates),
//   (b) what-if tables   — hypothetical vertical/horizontal partitions,
//   (c) what-if joins    — PlannerKnobs controlling join methods.
//
// The component owns a hypothetical PhysicalDesign overlay; Cost()
// optimizes queries as if the overlay were materialized. All engine
// interaction goes through the DbmsBackend interface — this class
// compiles against any backend, which is what makes the tool portable.

#ifndef DBDESIGN_WHATIF_WHATIF_H_
#define DBDESIGN_WHATIF_WHATIF_H_

#include <memory>
#include <vector>

#include "backend/backend.h"

namespace dbdesign {

class Database;  // legacy convenience constructor only

class WhatIfOptimizer {
 public:
  /// Attaches to a backend (non-owning; the backend must outlive this).
  explicit WhatIfOptimizer(DbmsBackend& backend);

  /// Legacy convenience: wraps `db` in an owned InMemoryBackend. Defined
  /// in backend/compat.cc so this header stays storage-free.
  explicit WhatIfOptimizer(const Database& db, CostParams params = {});

  // --- (a) What-if index sub-component ---
  /// Adds a hypothetical index. Fails if it already exists in the overlay.
  Status CreateHypotheticalIndex(const IndexDef& index);
  Status DropHypotheticalIndex(const IndexDef& index);
  /// Size the hypothetical index would occupy (pages). Never zero — the
  /// paper notes zero-size what-if indexes "severely affect" accuracy.
  IndexSizeEstimate HypotheticalIndexSize(const IndexDef& index) const;

  // --- (b) What-if table (partition) sub-component ---
  void SetHypotheticalVerticalPartitioning(VerticalPartitioning p);
  void ClearHypotheticalVerticalPartitioning(TableId table);
  void SetHypotheticalHorizontalPartitioning(HorizontalPartitioning p);
  void ClearHypotheticalHorizontalPartitioning(TableId table);

  /// Resets the overlay to the backend's materialized design.
  void ResetHypothetical();

  /// The current overlay design (materialized + hypothetical).
  const PhysicalDesign& hypothetical_design() const { return design_; }

  // --- (c) What-if join sub-component ---
  PlannerKnobs& knobs() { return knobs_; }
  const PlannerKnobs& knobs() const { return knobs_; }

  // --- Costing (Result-carrying; errors surface as Status) ---
  Result<double> TryCost(const BoundQuery& query) const;
  Result<double> TryCostUnder(const BoundQuery& query,
                              const PhysicalDesign& design) const;
  Result<PlanResult> TryPlan(const BoundQuery& query) const;
  Result<PlanResult> TryPlanUnder(const BoundQuery& query,
                                  const PhysicalDesign& design) const;
  /// Per-query costs of the whole workload in ONE backend round-trip
  /// (DbmsBackend::CostBatch) — the batched hot path. Parallelism comes
  /// from the backend: InMemoryBackend fans distinct queries across
  /// cost_params().num_threads workers with bit-identical results.
  Result<std::vector<double>> TryCostWorkload(
      const Workload& workload, const PhysicalDesign& design) const;

  // --- Costing (legacy convenience) ---
  /// Optimizer cost of `query` under the overlay design. On backend
  /// error returns +infinity (the error is logged); callers that need
  /// the cause use TryCost.
  double Cost(const BoundQuery& query) const;
  /// Cost under an explicit design (ignores the overlay).
  double CostUnder(const BoundQuery& query,
                   const PhysicalDesign& design) const;
  /// Full plan under the overlay design.
  PlanResult Plan(const BoundQuery& query) const;
  PlanResult PlanUnder(const BoundQuery& query,
                       const PhysicalDesign& design) const;
  /// Weighted workload cost under an explicit design (batched).
  double WorkloadCostUnder(const Workload& workload,
                           const PhysicalDesign& design) const;
  double WorkloadCost(const Workload& workload) const {
    return WorkloadCostUnder(workload, design_);
  }

  DbmsBackend& backend() const { return *backend_; }
  const CostParams& params() const { return backend_->cost_params(); }

  /// Number of (expensive) backend optimizer invocations so far.
  uint64_t num_optimizer_calls() const {
    return backend_->num_optimizer_calls();
  }
  void ResetCallCount() { backend_->ResetCallCount(); }

 private:
  /// Owning constructor used by the legacy Database path.
  explicit WhatIfOptimizer(std::shared_ptr<DbmsBackend> owned);

  std::shared_ptr<DbmsBackend> owned_backend_;  // legacy path only
  DbmsBackend* backend_;
  PlannerKnobs knobs_;
  PhysicalDesign design_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_WHATIF_WHATIF_H_
