// What-if component (paper §3.1).
//
// Lets callers simulate the benefit of physical structures without
// building them. Three sub-components, as in the paper:
//   (a) what-if indexes  — hypothetical IndexDefs overlaid on the
//       materialized design (with honest, non-zero size estimates),
//   (b) what-if tables   — hypothetical vertical/horizontal partitions,
//   (c) what-if joins    — PlannerKnobs controlling join methods.
//
// The component owns a hypothetical PhysicalDesign overlay; Cost()
// optimizes queries as if the overlay were materialized.

#ifndef DBDESIGN_WHATIF_WHATIF_H_
#define DBDESIGN_WHATIF_WHATIF_H_

#include <vector>

#include "optimizer/optimizer.h"
#include "storage/database.h"

namespace dbdesign {

class WhatIfOptimizer {
 public:
  explicit WhatIfOptimizer(const Database& db, CostParams params = {});

  // --- (a) What-if index sub-component ---
  /// Adds a hypothetical index. Fails if it already exists in the overlay.
  Status CreateHypotheticalIndex(const IndexDef& index);
  Status DropHypotheticalIndex(const IndexDef& index);
  /// Size the hypothetical index would occupy (pages). Never zero — the
  /// paper notes zero-size what-if indexes "severely affect" accuracy.
  IndexSizeEstimate HypotheticalIndexSize(const IndexDef& index) const;

  // --- (b) What-if table (partition) sub-component ---
  void SetHypotheticalVerticalPartitioning(VerticalPartitioning p);
  void ClearHypotheticalVerticalPartitioning(TableId table);
  void SetHypotheticalHorizontalPartitioning(HorizontalPartitioning p);
  void ClearHypotheticalHorizontalPartitioning(TableId table);

  /// Resets the overlay to the database's materialized design.
  void ResetHypothetical();

  /// The current overlay design (materialized + hypothetical).
  const PhysicalDesign& hypothetical_design() const { return design_; }

  // --- (c) What-if join sub-component ---
  PlannerKnobs& knobs() { return knobs_; }
  const PlannerKnobs& knobs() const { return knobs_; }

  // --- Costing ---
  /// Optimizer cost of `query` under the overlay design.
  double Cost(const BoundQuery& query) const;
  /// Cost under an explicit design (ignores the overlay).
  double CostUnder(const BoundQuery& query,
                   const PhysicalDesign& design) const;
  /// Full plan under the overlay design.
  PlanResult Plan(const BoundQuery& query) const;
  PlanResult PlanUnder(const BoundQuery& query,
                       const PhysicalDesign& design) const;
  /// Weighted workload cost under an explicit design.
  double WorkloadCostUnder(const Workload& workload,
                           const PhysicalDesign& design) const;
  double WorkloadCost(const Workload& workload) const {
    return WorkloadCostUnder(workload, design_);
  }

  const Database& db() const { return *db_; }
  const CostParams& params() const { return params_; }

  /// Number of (expensive) optimizer invocations so far.
  uint64_t num_optimizer_calls() const { return optimizer_.num_calls(); }
  void ResetCallCount() { optimizer_.ResetCallCount(); }

 private:
  const Database* db_;
  CostParams params_;
  PlannerKnobs knobs_;
  mutable Optimizer optimizer_;
  PhysicalDesign design_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_WHATIF_WHATIF_H_
