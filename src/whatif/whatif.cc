#include "whatif/whatif.h"

#include <limits>

#include "util/logging.h"

namespace dbdesign {

namespace {
constexpr double kErrorCost = std::numeric_limits<double>::infinity();
}  // namespace

WhatIfOptimizer::WhatIfOptimizer(DbmsBackend& backend)
    : backend_(&backend), design_(backend.CurrentDesign()) {}

WhatIfOptimizer::WhatIfOptimizer(std::shared_ptr<DbmsBackend> owned)
    : owned_backend_(std::move(owned)),
      backend_(owned_backend_.get()),
      design_(backend_->CurrentDesign()) {}

Status WhatIfOptimizer::CreateHypotheticalIndex(const IndexDef& index) {
  if (index.table < 0 || index.table >= backend_->catalog().num_tables()) {
    return Status::InvalidArgument("bad table id in index definition");
  }
  const TableDef& def = backend_->catalog().table(index.table);
  if (index.columns.empty()) {
    return Status::InvalidArgument("index must have at least one column");
  }
  for (ColumnId c : index.columns) {
    if (c < 0 || c >= def.num_columns()) {
      return Status::InvalidArgument("bad column id in index definition");
    }
  }
  if (!design_.AddIndex(index)) {
    return Status::AlreadyExists("hypothetical index " + index.Key());
  }
  return Status::OK();
}

Status WhatIfOptimizer::DropHypotheticalIndex(const IndexDef& index) {
  if (!design_.RemoveIndex(index)) {
    return Status::NotFound("hypothetical index " + index.Key());
  }
  return Status::OK();
}

IndexSizeEstimate WhatIfOptimizer::HypotheticalIndexSize(
    const IndexDef& index) const {
  return backend_->EstimateIndexSize(index);
}

void WhatIfOptimizer::SetHypotheticalVerticalPartitioning(
    VerticalPartitioning p) {
  design_.SetVerticalPartitioning(std::move(p));
}

void WhatIfOptimizer::ClearHypotheticalVerticalPartitioning(TableId table) {
  design_.ClearVerticalPartitioning(table);
}

void WhatIfOptimizer::SetHypotheticalHorizontalPartitioning(
    HorizontalPartitioning p) {
  design_.SetHorizontalPartitioning(std::move(p));
}

void WhatIfOptimizer::ClearHypotheticalHorizontalPartitioning(TableId table) {
  design_.ClearHorizontalPartitioning(table);
}

void WhatIfOptimizer::ResetHypothetical() {
  design_ = backend_->CurrentDesign();
}

Result<double> WhatIfOptimizer::TryCost(const BoundQuery& query) const {
  return TryCostUnder(query, design_);
}

Result<double> WhatIfOptimizer::TryCostUnder(
    const BoundQuery& query, const PhysicalDesign& design) const {
  return backend_->CostQuery(query, design, knobs_);
}

Result<PlanResult> WhatIfOptimizer::TryPlan(const BoundQuery& query) const {
  return TryPlanUnder(query, design_);
}

Result<PlanResult> WhatIfOptimizer::TryPlanUnder(
    const BoundQuery& query, const PhysicalDesign& design) const {
  return backend_->OptimizeQuery(query, design, knobs_);
}

Result<std::vector<double>> WhatIfOptimizer::TryCostWorkload(
    const Workload& workload, const PhysicalDesign& design) const {
  return backend_->CostBatch(
      std::span<const BoundQuery>(workload.queries.data(),
                                  workload.queries.size()),
      design, knobs_);
}

double WhatIfOptimizer::Cost(const BoundQuery& query) const {
  return CostUnder(query, design_);
}

double WhatIfOptimizer::CostUnder(const BoundQuery& query,
                                  const PhysicalDesign& design) const {
  Result<double> cost = TryCostUnder(query, design);
  if (!cost.ok()) {
    DBD_LOG_ERROR("what-if cost call failed: " + cost.status().ToString());
    return kErrorCost;
  }
  return cost.value();
}

PlanResult WhatIfOptimizer::Plan(const BoundQuery& query) const {
  return PlanUnder(query, design_);
}

PlanResult WhatIfOptimizer::PlanUnder(const BoundQuery& query,
                                      const PhysicalDesign& design) const {
  Result<PlanResult> plan = TryPlanUnder(query, design);
  if (!plan.ok()) {
    DBD_LOG_ERROR("what-if plan call failed: " + plan.status().ToString());
    return PlanResult{nullptr, kErrorCost};
  }
  return plan.value();
}

double WhatIfOptimizer::WorkloadCostUnder(const Workload& workload,
                                          const PhysicalDesign& design) const {
  Result<std::vector<double>> costs = TryCostWorkload(workload, design);
  if (!costs.ok()) {
    DBD_LOG_ERROR("batched what-if costing failed: " +
                  costs.status().ToString());
    return kErrorCost;
  }
  double total = 0.0;
  for (size_t i = 0; i < workload.size(); ++i) {
    total += workload.WeightOf(i) * costs.value()[i];
  }
  return total;
}

}  // namespace dbdesign
