#include "whatif/whatif.h"

namespace dbdesign {

WhatIfOptimizer::WhatIfOptimizer(const Database& db, CostParams params)
    : db_(&db),
      params_(params),
      optimizer_(db.catalog(), db.all_stats(), params),
      design_(db.CurrentDesign()) {}

Status WhatIfOptimizer::CreateHypotheticalIndex(const IndexDef& index) {
  if (index.table < 0 || index.table >= db_->catalog().num_tables()) {
    return Status::InvalidArgument("bad table id in index definition");
  }
  const TableDef& def = db_->catalog().table(index.table);
  if (index.columns.empty()) {
    return Status::InvalidArgument("index must have at least one column");
  }
  for (ColumnId c : index.columns) {
    if (c < 0 || c >= def.num_columns()) {
      return Status::InvalidArgument("bad column id in index definition");
    }
  }
  if (!design_.AddIndex(index)) {
    return Status::AlreadyExists("hypothetical index " + index.Key());
  }
  return Status::OK();
}

Status WhatIfOptimizer::DropHypotheticalIndex(const IndexDef& index) {
  if (!design_.RemoveIndex(index)) {
    return Status::NotFound("hypothetical index " + index.Key());
  }
  return Status::OK();
}

IndexSizeEstimate WhatIfOptimizer::HypotheticalIndexSize(
    const IndexDef& index) const {
  return EstimateIndexSize(index, db_->catalog().table(index.table),
                           db_->stats(index.table));
}

void WhatIfOptimizer::SetHypotheticalVerticalPartitioning(
    VerticalPartitioning p) {
  design_.SetVerticalPartitioning(std::move(p));
}

void WhatIfOptimizer::ClearHypotheticalVerticalPartitioning(TableId table) {
  design_.ClearVerticalPartitioning(table);
}

void WhatIfOptimizer::SetHypotheticalHorizontalPartitioning(
    HorizontalPartitioning p) {
  design_.SetHorizontalPartitioning(std::move(p));
}

void WhatIfOptimizer::ClearHypotheticalHorizontalPartitioning(TableId table) {
  design_.ClearHorizontalPartitioning(table);
}

void WhatIfOptimizer::ResetHypothetical() {
  design_ = db_->CurrentDesign();
}

double WhatIfOptimizer::Cost(const BoundQuery& query) const {
  return CostUnder(query, design_);
}

double WhatIfOptimizer::CostUnder(const BoundQuery& query,
                                  const PhysicalDesign& design) const {
  return PlanUnder(query, design).cost;
}

PlanResult WhatIfOptimizer::Plan(const BoundQuery& query) const {
  return PlanUnder(query, design_);
}

PlanResult WhatIfOptimizer::PlanUnder(const BoundQuery& query,
                                      const PhysicalDesign& design) const {
  optimizer_.set_knobs(knobs_);
  return optimizer_.Optimize(query, design);
}

double WhatIfOptimizer::WorkloadCostUnder(const Workload& workload,
                                          const PhysicalDesign& design) const {
  double total = 0.0;
  for (size_t i = 0; i < workload.size(); ++i) {
    total += workload.WeightOf(i) * CostUnder(workload.queries[i], design);
  }
  return total;
}

}  // namespace dbdesign
