// Little-endian binary encoding primitives for the compact on-disk
// formats (the atom spill tier, server/atom_store.h). The repo's JSON
// layer (util/json.h) already round-trips every value the designer
// produces — including non-finite costs via the __nonfinite sentinel —
// but a textual encoding is an order of magnitude too fat for a cache
// whose whole point is bounding memory. These helpers are the binary
// counterpart: fixed-width little-endian integers, IEEE-754 doubles as
// raw bits (so +inf/-inf/NaN round-trip exactly, no sentinel needed),
// and length-prefixed strings.
//
// The byte layout is explicit (assembled byte-by-byte), not
// memcpy-of-struct: files written on any host decode on any other, and
// a truncated or corrupt buffer can never read out of bounds — the
// reader latches !ok() and returns zeros instead.

#ifndef DBDESIGN_UTIL_BINIO_H_
#define DBDESIGN_UTIL_BINIO_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace dbdesign {

/// Appends fixed-width little-endian values to a growing byte string.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Raw IEEE-754 bits — non-finite values round-trip exactly.
  void PutDouble(double v);
  /// u64 length prefix + raw bytes.
  void PutString(std::string_view s);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Reads BinaryWriter output back. Every accessor is total: a read past
/// the end (truncated or corrupt input) returns 0 / empty and latches
/// ok() == false, so decoders can parse first and validate once at the
/// end. String lengths are checked against the remaining bytes before
/// any allocation, so corrupt input cannot trigger a huge allocation.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  double Double();
  std::string String();

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  /// True when `n` more bytes are available; latches ok_ otherwise.
  bool Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace dbdesign

#endif  // DBDESIGN_UTIL_BINIO_H_
