// Deterministic pseudo-random number generation and workload distributions.
//
// All randomness in the library flows through Rng so that data generation,
// workload generation, and sampling-based algorithms (degree-of-interaction
// estimation, COLT profiling) are reproducible from a single seed.

#ifndef DBDESIGN_UTIL_RNG_H_
#define DBDESIGN_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dbdesign {

/// SplitMix64 / xorshift-based PRNG with convenience distributions.
///
/// Not cryptographically secure; chosen for speed and reproducibility
/// across platforms (no reliance on libstdc++ distribution internals).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Reseed(seed); }

  /// Re-initializes the generator state from `seed`.
  void Reseed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Zipf-distributed rank in [0, n) with skew parameter s (s=0 → uniform).
  /// Uses rejection-inversion; O(1) per sample after O(1) setup per (n, s).
  int64_t Zipf(int64_t n, double s);

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

  /// Returns k distinct indices sampled uniformly from [0, n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_;
  // Cached Zipf setup for repeated sampling with the same parameters.
  int64_t zipf_n_ = -1;
  double zipf_s_ = -1.0;
  double zipf_h_x1_ = 0.0;
  double zipf_hn_ = 0.0;
  double zipf_dennom_ = 0.0;
};

}  // namespace dbdesign

#endif  // DBDESIGN_UTIL_RNG_H_
