// Minimal JSON document model: parse, build, dump.
//
// Used by the TraceBackend to persist backend-call traces (catalog +
// statistics snapshot + recorded cost calls) without external
// dependencies. Numbers are IEEE doubles serialized with enough digits
// (%.17g) to round-trip exactly; callers that need full int64 precision
// encode those values as strings. Non-finite doubles (a cost call can
// legitimately return +inf) have no JSON encoding, so Dump writes them
// as tagged string sentinels ("__nonfinite:inf" etc.) that Parse
// converts back to numbers — the whole document round-trips.

#ifndef DBDESIGN_UTIL_JSON_H_
#define DBDESIGN_UTIL_JSON_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace dbdesign {

/// Sentinel prefix for non-finite numbers: Dump writes Infinity/NaN as
/// the strings "__nonfinite:inf" / "__nonfinite:-inf" /
/// "__nonfinite:nan" and Parse turns exactly those strings back into
/// numbers. A real *string* value starting with this prefix dumps
/// behind an extra "__nonfinite:esc:" marker that Parse strips, so
/// every string still round-trips losslessly; unrecognized text in the
/// namespace (hand-edited documents) parses as a plain string.
inline constexpr char kJsonNonFiniteTag[] = "__nonfinite:";

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double d);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& str() const { return string_; }

  /// Array access. Append converts a null value to an array.
  const std::vector<Json>& items() const { return array_; }
  void Append(Json v);
  size_t size() const { return array_.size(); }
  const Json& at(size_t i) const { return array_[i]; }

  /// Object access. operator[] converts a null value to an object and
  /// inserts the key if missing.
  Json& operator[](const std::string& key);
  /// Member lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;
  const std::map<std::string, Json>& members() const { return object_; }

  /// Compact serialization (no whitespace). Deterministic: object keys
  /// are emitted in sorted order.
  std::string Dump() const;

  /// Parses a complete JSON document; trailing garbage is an error.
  static Result<Json> Parse(const std::string& text);

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_UTIL_JSON_H_
