#include "util/status.h"

namespace dbdesign {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kBindError:
      return "bind error";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dbdesign
