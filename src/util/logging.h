// Minimal leveled logger + the DBD_CHECK invariant framework.
//
// The designer components report progress (solver nodes explored, COLT
// epoch summaries, cache statistics) through this logger; benchmarks and
// tests silence it by raising the level.
//
// Invariants:
//   DBD_CHECK(cond)            always-on; logs the failing expression
//                              (file:line) and aborts.
//   DBD_CHECK_EQ/NE/LT/LE/GT/GE(a, b)
//                              like DBD_CHECK(a op b) but also logs the
//                              two operand VALUES, so a failure in a CI
//                              log is diagnosable without a debugger.
//   DBD_DCHECK / DBD_DCHECK_*  same, but compiled out under NDEBUG —
//                              use on hot paths (per-tuple, per-atom).
//
// Bare `assert(...)` is banned in src/ (the default RelWithDebInfo
// build defines NDEBUG, so a bare assert silently checks NOTHING in the
// build users actually run); tools/lint/determinism_lint.py enforces
// the ban.

#ifndef DBDESIGN_UTIL_LOGGING_H_
#define DBDESIGN_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace dbdesign {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits `msg` to stderr if `level` >= the process-wide level. The
/// calling thread's log tag (see ScopedLogTag), when set, is printed
/// between the level and the message: "[INFO] (session=s42) msg".
void LogMessage(LogLevel level, const std::string& msg);

/// Installs a thread-local tag on every log line the calling thread
/// emits while the scope is alive; restores the previous tag on exit
/// (scopes nest). The tuning server tags each request's execution with
/// "session=<id> req=<n>" so interleaved multi-session logs stay
/// attributable to the session that produced them.
class ScopedLogTag {
 public:
  explicit ScopedLogTag(std::string tag);
  ~ScopedLogTag();
  ScopedLogTag(const ScopedLogTag&) = delete;
  ScopedLogTag& operator=(const ScopedLogTag&) = delete;

 private:
  std::string previous_;
};

/// The calling thread's current log tag ("" when none is installed).
const std::string& ThreadLogTag();

#define DBD_LOG_DEBUG(msg) \
  ::dbdesign::LogMessage(::dbdesign::LogLevel::kDebug, (msg))
#define DBD_LOG_INFO(msg) \
  ::dbdesign::LogMessage(::dbdesign::LogLevel::kInfo, (msg))
#define DBD_LOG_WARN(msg) \
  ::dbdesign::LogMessage(::dbdesign::LogLevel::kWarning, (msg))
#define DBD_LOG_ERROR(msg) \
  ::dbdesign::LogMessage(::dbdesign::LogLevel::kError, (msg))

namespace internal {

/// Logs "CHECK failed: <expr> (<operands>) at file:line" and aborts.
[[noreturn]] void CheckFail(const char* file, int line, const char* expr,
                            const std::string& operands);

/// "left vs right" for the binary CHECK forms. Values that cannot be
/// streamed print as "<unprintable>".
template <typename T>
void StreamOperand(std::ostream& os, const T& v) {
  if constexpr (requires(std::ostream& s, const T& x) { s << x; }) {
    os << v;
  } else {
    os << "<unprintable>";
  }
}

template <typename A, typename B>
std::string FormatOperands(const A& a, const B& b) {
  std::ostringstream os;
  StreamOperand(os, a);
  os << " vs ";
  StreamOperand(os, b);
  return os.str();
}

}  // namespace internal

#define DBD_CHECK(cond)                                          \
  ((cond) ? static_cast<void>(0)                                 \
          : ::dbdesign::internal::CheckFail(__FILE__, __LINE__,  \
                                            #cond, std::string()))

#define DBD_CHECK_BINOP_IMPL(op, a, b)                                    \
  do {                                                                    \
    const auto& dbd_check_lhs = (a);                                      \
    const auto& dbd_check_rhs = (b);                                      \
    if (!(dbd_check_lhs op dbd_check_rhs)) {                              \
      ::dbdesign::internal::CheckFail(                                    \
          __FILE__, __LINE__, #a " " #op " " #b,                          \
          ::dbdesign::internal::FormatOperands(dbd_check_lhs,             \
                                               dbd_check_rhs));           \
    }                                                                     \
  } while (false)

#define DBD_CHECK_EQ(a, b) DBD_CHECK_BINOP_IMPL(==, a, b)
#define DBD_CHECK_NE(a, b) DBD_CHECK_BINOP_IMPL(!=, a, b)
#define DBD_CHECK_LT(a, b) DBD_CHECK_BINOP_IMPL(<, a, b)
#define DBD_CHECK_LE(a, b) DBD_CHECK_BINOP_IMPL(<=, a, b)
#define DBD_CHECK_GT(a, b) DBD_CHECK_BINOP_IMPL(>, a, b)
#define DBD_CHECK_GE(a, b) DBD_CHECK_BINOP_IMPL(>=, a, b)

// Debug-only variants: zero cost under NDEBUG (the condition is inside
// sizeof, so it is parsed — names stay checked — but never evaluated).
#ifdef NDEBUG
#define DBD_DCHECK(cond) static_cast<void>(sizeof((cond) ? 1 : 0))
#define DBD_DCHECK_EQ(a, b) static_cast<void>(sizeof(((a) == (b)) ? 1 : 0))
#define DBD_DCHECK_NE(a, b) static_cast<void>(sizeof(((a) != (b)) ? 1 : 0))
#define DBD_DCHECK_LT(a, b) static_cast<void>(sizeof(((a) < (b)) ? 1 : 0))
#define DBD_DCHECK_LE(a, b) static_cast<void>(sizeof(((a) <= (b)) ? 1 : 0))
#define DBD_DCHECK_GT(a, b) static_cast<void>(sizeof(((a) > (b)) ? 1 : 0))
#define DBD_DCHECK_GE(a, b) static_cast<void>(sizeof(((a) >= (b)) ? 1 : 0))
#else
#define DBD_DCHECK(cond) DBD_CHECK(cond)
#define DBD_DCHECK_EQ(a, b) DBD_CHECK_EQ(a, b)
#define DBD_DCHECK_NE(a, b) DBD_CHECK_NE(a, b)
#define DBD_DCHECK_LT(a, b) DBD_CHECK_LT(a, b)
#define DBD_DCHECK_LE(a, b) DBD_CHECK_LE(a, b)
#define DBD_DCHECK_GT(a, b) DBD_CHECK_GT(a, b)
#define DBD_DCHECK_GE(a, b) DBD_CHECK_GE(a, b)
#endif

}  // namespace dbdesign

#endif  // DBDESIGN_UTIL_LOGGING_H_
