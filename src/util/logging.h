// Minimal leveled logger.
//
// The designer components report progress (solver nodes explored, COLT
// epoch summaries, cache statistics) through this logger; benchmarks and
// tests silence it by raising the level.

#ifndef DBDESIGN_UTIL_LOGGING_H_
#define DBDESIGN_UTIL_LOGGING_H_

#include <string>

namespace dbdesign {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits `msg` to stderr if `level` >= the process-wide level.
void LogMessage(LogLevel level, const std::string& msg);

#define DBD_LOG_DEBUG(msg) \
  ::dbdesign::LogMessage(::dbdesign::LogLevel::kDebug, (msg))
#define DBD_LOG_INFO(msg) \
  ::dbdesign::LogMessage(::dbdesign::LogLevel::kInfo, (msg))
#define DBD_LOG_WARN(msg) \
  ::dbdesign::LogMessage(::dbdesign::LogLevel::kWarning, (msg))
#define DBD_LOG_ERROR(msg) \
  ::dbdesign::LogMessage(::dbdesign::LogLevel::kError, (msg))

}  // namespace dbdesign

#endif  // DBDESIGN_UTIL_LOGGING_H_
