// Small string formatting helpers shared across modules.

#ifndef DBDESIGN_UTIL_STR_H_
#define DBDESIGN_UTIL_STR_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace dbdesign {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// ASCII lowercase copy.
std::string ToLower(const std::string& s);

/// ASCII uppercase copy.
std::string ToUpper(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> StrSplit(const std::string& s, char sep);

/// Renders a double with `digits` significant decimals, trimming zeros.
std::string FormatDouble(double v, int digits = 2);

/// Renders a byte count as "12.3 MB" style human-readable text.
std::string FormatBytes(double bytes);

}  // namespace dbdesign

#endif  // DBDESIGN_UTIL_STR_H_
