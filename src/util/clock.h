// Deterministic time seam for the resilience layer.
//
// The determinism linter bans wall-clock reads and sleeps in src/
// (results must be bit-identical across runs and thread counts), yet
// retry backoff and deadlines are inherently about time. The Clock
// interface squares that: all resilience code asks a Clock for "now"
// and for "sleep", and the in-tree implementation is a VirtualClock
// whose time only moves when someone sleeps on it. Backoff schedules,
// deadline checks, and circuit-breaker cooldowns thereby become pure
// deterministic arithmetic — testable, replayable, and portable.
//
// A production port that talks to a real DBMS substitutes its own
// Clock backed by the OS monotonic clock (outside this tree, or behind
// an explicit NOLINT(determinism) with justification); nothing in the
// resilience layer changes.

#ifndef DBDESIGN_UTIL_CLOCK_H_
#define DBDESIGN_UTIL_CLOCK_H_

#include <cstdint>

#include "util/thread_annotations.h"

namespace dbdesign {

/// Monotonic microsecond clock abstraction. Implementations must be
/// thread-safe: the resilience layer calls them from pool workers.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds on this clock's (arbitrary) epoch.
  /// Monotonic: never decreases.
  virtual uint64_t NowMicros() = 0;

  /// Advances this caller past `micros` microseconds. On a virtual
  /// clock this advances time itself and returns immediately.
  virtual void SleepMicros(uint64_t micros) = 0;
};

/// Deterministic clock: time starts at 0 and advances only via
/// SleepMicros (each sleep moves the clock forward by exactly the
/// requested amount). Shared freely between a FaultInjectingBackend
/// (which "takes time" by sleeping) and a ResilientBackend (which
/// backs off by sleeping and checks deadlines by reading NowMicros) so
/// the two see one coherent timeline.
class VirtualClock : public Clock {
 public:
  VirtualClock() = default;

  uint64_t NowMicros() override {
    MutexLock lock(mu_);
    return now_micros_;
  }

  void SleepMicros(uint64_t micros) override {
    MutexLock lock(mu_);
    now_micros_ += micros;
  }

 private:
  Mutex mu_;
  uint64_t now_micros_ DBD_GUARDED_BY(mu_) = 0;
};

}  // namespace dbdesign

#endif  // DBDESIGN_UTIL_CLOCK_H_
