// Fixed-size thread pool with a deterministic, indexed ParallelFor.
//
// The designer's hot path is thousands of independent what-if costings
// (one per (query, design) pair, per INUM signature combination, per
// candidate design). ParallelFor(n, fn) runs fn(0..n-1) across the pool
// with each task writing results into its own pre-sized slot, so the
// output of a parallel run is bit-identical to the serial loop — there
// is no reduction whose order could differ. Work distribution is a
// shared atomic index (dynamic self-scheduling); scheduling order never
// affects results, only wall time.
//
// Degenerate cases run inline on the caller: parallelism <= 1, n <= 1,
// a pool constructed with one thread, a growable pool with no live
// workers on single-core hardware (spawning them would only
// timeshare), or a ParallelFor issued from inside a running task — whether that task executes on a pool worker
// or on the submitting caller's own thread (nested parallelism
// flattens to serial instead of deadlocking). The first exception (by
// lowest index) thrown by any task is rethrown on the caller after all
// other tasks drain.
//
// First-error short-circuit: once a task at index k has thrown, tasks
// at indexes > k that have not started yet are skipped instead of run
// (a failing 10k-shard costing batch stops almost immediately rather
// than burning the whole batch). Because indexes are claimed in
// ascending order, every index below the failing one has already been
// claimed when the error records — so skipping only above it keeps the
// propagated exception exactly the lowest-index thrower, bit-identical
// to the no-short-circuit behavior, and the non-faulting path is
// untouched.

#ifndef DBDESIGN_UTIL_THREAD_POOL_H_
#define DBDESIGN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace dbdesign {

class ThreadPool {
 public:
  /// A pool with `num_threads` total parallelism (the calling thread
  /// participates in every ParallelFor, so num_threads - 1 workers are
  /// spawned). Values <= 1 create a pool that always runs inline. A
  /// `growable` pool instead treats num_threads as a starting size and
  /// spawns additional workers when a ParallelFor requests more — the
  /// num_threads knob means "use N threads" even beyond the core count
  /// (the OS timeshares), which also lets determinism tests exercise
  /// real cross-thread execution on small machines.
  explicit ThreadPool(int num_threads, bool growable = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const {
    return worker_count_.load(std::memory_order_relaxed) + 1;
  }

  /// Runs fn(i) for every i in [0, n), blocking until all complete.
  /// `parallelism` caps the threads used for this call (calling thread
  /// included); the pool-wide size is the other cap.
  void ParallelFor(size_t n, int parallelism,
                   const std::function<void(size_t)>& fn);
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    ParallelFor(n, num_threads(), fn);
  }

  /// std::thread::hardware_concurrency(), never less than 1.
  static int HardwareThreads();

  /// Resolves a num_threads knob: values <= 0 mean "hardware".
  static int Resolve(int requested) {
    return requested <= 0 ? HardwareThreads() : requested;
  }

  /// Process-wide pool sized to the hardware. Components share it so a
  /// designer stack does not multiply idle worker threads; per-call
  /// `parallelism` still honors each component's num_threads knob.
  static ThreadPool& Shared();

 private:
  /// One ParallelFor invocation: tasks claim indexes via fetch_add.
  struct Job {
    // Set once before publication, read-only while the job runs.
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    int max_helpers = 0;
    // Lock-free work distribution / completion protocol.
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::atomic<int> helpers{0};
    /// Lowest index that has thrown so far (SIZE_MAX = none). Tasks at
    /// higher indexes short-circuit: they still count toward
    /// `completed` (the drain protocol needs every index accounted
    /// for) but skip running fn.
    std::atomic<size_t> cancel_above{~size_t{0}};
    Mutex err_mu;
    size_t err_index DBD_GUARDED_BY(err_mu) = 0;
    std::exception_ptr err DBD_GUARDED_BY(err_mu);

    void Record(size_t index, std::exception_ptr e);
    void RunChunk();
    /// First-thrown-by-lowest-index exception, if any (call after the
    /// job has fully drained — no concurrent Record possible).
    std::exception_ptr TakeError();
  };

  void WorkerLoop();
  /// Grows the worker set to `count` (growable pools only).
  void EnsureWorkers(int count) DBD_REQUIRES(submit_mu_);

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  std::shared_ptr<Job> job_ DBD_GUARDED_BY(mu_);
  uint64_t job_seq_ DBD_GUARDED_BY(mu_) = 0;
  bool stop_ DBD_GUARDED_BY(mu_) = false;
  const bool growable_ = false;  // immutable after construction
  std::atomic<int> worker_count_{0};
  /// Serializes submissions: one ParallelFor at a time per pool.
  Mutex submit_mu_;
  std::vector<std::thread> workers_ DBD_GUARDED_BY(mu_);
};

}  // namespace dbdesign

#endif  // DBDESIGN_UTIL_THREAD_POOL_H_
