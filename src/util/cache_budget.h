// CacheBudget: the one knob that bounds every cache tier in the
// process.
//
// Three caches grow with workload variety rather than workload size,
// so a long-lived multi-tenant server would otherwise grow without
// bound: the shared AtomStore (one atom row per (schema, template,
// universe)), each session's DoI contribution-row cache (one row per
// template class), and each session's CoPhy solver cache (one frontier
// per interaction cluster). A CacheBudget carries a byte ceiling for
// each tier; 0 means unbounded (the pre-budget behavior, and the
// default). Budgets bound MEMORY only — eviction is always
// transparent: evicted state is reloaded from the spill tier or
// recomputed, and results stay bit-identical to the unbounded run.

#ifndef DBDESIGN_UTIL_CACHE_BUDGET_H_
#define DBDESIGN_UTIL_CACHE_BUDGET_H_

#include <cstddef>

namespace dbdesign {

struct CacheBudget {
  /// Ceiling on the server-wide AtomStore's hot (in-memory) rows.
  /// 0 = unbounded.
  size_t atom_store_bytes = 0;
  /// Ceiling on each session's per-class DoI contribution-row cache.
  /// 0 = unbounded.
  size_t doi_rows_bytes = 0;
  /// Ceiling on each session's CoPhy solver cache (cluster frontiers,
  /// warm bases). 0 = unbounded.
  size_t solver_cache_bytes = 0;

  bool unbounded() const {
    return atom_store_bytes == 0 && doi_rows_bytes == 0 &&
           solver_cache_bytes == 0;
  }

  /// Splits one process-wide ceiling across the tiers: the atom store
  /// dominates (rows are the expensive-to-rebuild tier and the shared
  /// one), DoI rows next, solver frontiers last (cheapest to recompute
  /// — a trimmed frontier just re-enumerates lazily). Every share is
  /// at least 1 byte so a nonzero total never silently unbounds a tier.
  static CacheBudget FromTotal(size_t total_bytes) {
    CacheBudget b;
    if (total_bytes == 0) return b;
    b.atom_store_bytes = total_bytes - total_bytes / 10 * 3;  // ~70%
    b.doi_rows_bytes = total_bytes / 10 * 2;                  // ~20%
    b.solver_cache_bytes = total_bytes / 10;                  // ~10%
    if (b.doi_rows_bytes == 0) b.doi_rows_bytes = 1;
    if (b.solver_cache_bytes == 0) b.solver_cache_bytes = 1;
    return b;
  }
};

}  // namespace dbdesign

#endif  // DBDESIGN_UTIL_CACHE_BUDGET_H_
