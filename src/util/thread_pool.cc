#include "util/thread_pool.h"

#include <algorithm>

namespace dbdesign {

namespace {
/// Set while a thread — pool worker or the submitting caller — executes
/// job tasks; a nested ParallelFor on any pool from such a thread runs
/// inline (see header) instead of re-entering submission and
/// deadlocking on the in-flight job.
thread_local bool tls_in_parallel_task = false;
}  // namespace

int ThreadPool::HardwareThreads() {
  unsigned int hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {
/// Upper bound on workers a growable pool will spawn for oversized
/// num_threads requests.
constexpr int kMaxPoolThreads = 256;
}  // namespace

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: worker threads must not be joined from static
  // destructors that may run after other statics they touch.
  static ThreadPool* pool = new ThreadPool(HardwareThreads(), /*growable=*/true);
  return *pool;
}

ThreadPool::ThreadPool(int num_threads, bool growable) : growable_(growable) {
  int workers = std::max(0, num_threads - 1);
  for (int i = 0; i < workers; ++i) {
    MutexLock lock(mu_);
    workers_.emplace_back([this] { WorkerLoop(); });
    worker_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::EnsureWorkers(int count) {
  count = std::min(count, kMaxPoolThreads - 1);
  while (worker_count_.load(std::memory_order_relaxed) < count) {
    MutexLock lock(mu_);
    workers_.emplace_back([this] { WorkerLoop(); });
    worker_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPool::~ThreadPool() {
  // Move the thread handles out under the lock, then join unlocked —
  // workers must be able to re-acquire mu_ to observe stop_ and exit.
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    stop_ = true;
    workers.swap(workers_);
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers) t.join();
}

void ThreadPool::Job::Record(size_t index, std::exception_ptr e) {
  MutexLock lock(err_mu);
  if (err == nullptr || index < err_index) {
    err = std::move(e);
    err_index = index;
    // Publish the short-circuit threshold: un-started tasks above the
    // failing index are pointless (their exception would lose the
    // lowest-index race anyway) and are skipped. Monotonically
    // decreasing under err_mu, so a stale higher value only delays the
    // short-circuit, never mis-cancels.
    cancel_above.store(index, std::memory_order_release);
  }
}

std::exception_ptr ThreadPool::Job::TakeError() {
  MutexLock lock(err_mu);
  return err;
}

void ThreadPool::Job::RunChunk() {
  for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
       i = next.fetch_add(1, std::memory_order_relaxed)) {
    // First-error short-circuit: a recorded error at a lower index
    // cancels this not-yet-started task. It still counts as completed
    // so the caller's drain (completed == n) terminates.
    if (i > cancel_above.load(std::memory_order_acquire)) {
      completed.fetch_add(1, std::memory_order_acq_rel);
      continue;
    }
    try {
      (*fn)(i);
    } catch (...) {
      Record(i, std::current_exception());
    }
    completed.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_seq = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mu_);
      while (!stop_ && (job_ == nullptr || job_seq_ == seen_seq)) {
        work_cv_.Wait(mu_);
      }
      if (stop_) return;
      seen_seq = job_seq_;
      job = job_;
    }
    // Cap helpers to the per-call parallelism budget.
    if (job->helpers.fetch_add(1, std::memory_order_relaxed) <
        job->max_helpers) {
      tls_in_parallel_task = true;
      job->RunChunk();
      tls_in_parallel_task = false;
      // The empty critical section orders this worker's `completed`
      // updates with the caller's predicate check, so the notify cannot
      // slip into the window between that check and the caller's sleep.
      { MutexLock lock(mu_); }
      done_cv_.NotifyOne();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, int parallelism,
                             const std::function<void(size_t)>& fn) {
  int budget = growable_ ? std::min(parallelism, kMaxPoolThreads)
                         : std::min(parallelism, num_threads());
  if (n <= 1 || budget <= 1 || tls_in_parallel_task) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Oversubscription guard: a growable pool that has not spawned any
  // workers yet would have to create them now, but on single-core
  // hardware those workers can only timeshare with the caller — pure
  // scheduling overhead (BENCH_schedule measured doi_matrix at 0.85x
  // serial). Run inline instead. Pools that already hold live workers
  // (fixed pools, or growable pools grown on multi-core hardware) keep
  // using them, so determinism suites that deliberately oversubscribe
  // still exercise real cross-thread execution.
  if (growable_ && worker_count_.load(std::memory_order_relaxed) == 0 &&
      HardwareThreads() < 2) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  MutexLock submit(submit_mu_);
  if (growable_) EnsureWorkers(budget - 1);
  if (worker_count_.load(std::memory_order_relaxed) == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->max_helpers = budget - 1;  // caller participates
  {
    MutexLock lock(mu_);
    job_ = job;
    ++job_seq_;
  }
  work_cv_.NotifyAll();

  // The caller is itself a task runner for the duration of its chunk:
  // a ParallelFor issued from inside one of its tasks must flatten.
  tls_in_parallel_task = true;
  job->RunChunk();
  tls_in_parallel_task = false;

  if (job->completed.load(std::memory_order_acquire) < n) {
    MutexLock lock(mu_);
    while (job->completed.load(std::memory_order_acquire) < n) {
      done_cv_.Wait(mu_);
    }
  }
  {
    MutexLock lock(mu_);
    job_ = nullptr;
  }
  std::exception_ptr err = job->TakeError();
  if (err != nullptr) std::rethrow_exception(err);
}

}  // namespace dbdesign
