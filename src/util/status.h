// Status / Result error-handling primitives.
//
// The library does not throw exceptions across public API boundaries
// (RocksDB-style convention): fallible operations return a Status, or a
// Result<T> that carries either a value or a Status.

#ifndef DBDESIGN_UTIL_STATUS_H_
#define DBDESIGN_UTIL_STATUS_H_

#include "util/logging.h"
#include <exception>
#include <optional>
#include <string>
#include <utility>

namespace dbdesign {

/// Error category for a failed operation.
///
/// Retryable-vs-permanent taxonomy
/// -------------------------------
/// Codes split into two classes, and every layer between the backend
/// seam and the session APIs relies on the split:
///
///  * **Retryable** (`kUnavailable`, `kDeadlineExceeded`,
///    `kResourceExhausted`): the *call* failed but the *request* is
///    fine — a transient outage, a timeout, a momentarily saturated
///    backend. Retrying the identical call may succeed, and
///    `ResilientBackend` does exactly that (bounded retries with
///    deterministic backoff). A real-DBMS backend must map its
///    connection-reset / timeout / too-many-clients errors onto these
///    codes for the resilience layer to help it.
///
///  * **Permanent** (everything else): the request itself is wrong
///    (`kInvalidArgument`, `kNotFound`, ...) or the failure is not
///    expected to clear on its own (`kInternal`, `kParseError`,
///    `kBindError`). Retrying is wasted work; these propagate to the
///    caller immediately.
///
/// `Status::IsRetryable()` is the single source of truth for the
/// split — resilience code must use it rather than matching codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kParseError,
  kBindError,
  /// Transient backend failure (connection dropped, service
  /// restarting, injected fault). Retryable.
  kUnavailable,
  /// The call exceeded its deadline; the work may have completed on
  /// the backend but the answer did not arrive in time. Retryable.
  kDeadlineExceeded,
};

/// Returns a human-readable name for a status code ("ok", "parse error", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is empty in the common OK case).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for transient failures where retrying the identical call may
  /// succeed (see the taxonomy on StatusCode). All retry decisions in
  /// the resilience layer go through this predicate.
  bool IsRetryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kResourceExhausted;
  }

  /// "ok" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
///
/// Accessing the value of an error Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    DBD_CHECK(!status_.ok() &&
              "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DBD_DCHECK(ok() && "value() called on an error Result");
    return *value_;
  }
  T& value() & {
    DBD_DCHECK(ok() && "value() called on an error Result");
    return *value_;
  }
  T&& value() && {
    DBD_DCHECK(ok() && "value() called on an error Result");
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Marks a result that was produced under degraded conditions: the
/// backend was down (or kept failing past the retry budget), so the
/// layer fell back to cached state instead of recomputing. A degraded
/// answer is *valid* — it is the last certified answer — but it may be
/// stale, and the caller deserves to know. Session APIs attach this to
/// their result structs so a session never returns a possibly-stale
/// answer unlabeled.
struct DegradedResult {
  /// False for a normally-computed result.
  bool degraded = false;
  /// The backend failure that forced the fallback.
  Status cause;
  /// What the fallback was, e.g. "last-certified-recommendation" or
  /// "cached-deployment-plan".
  std::string fallback;

  static DegradedResult None() { return DegradedResult{}; }
  static DegradedResult Because(Status cause, std::string fallback) {
    return DegradedResult{true, std::move(cause), std::move(fallback)};
  }
};

/// Internal carrier for propagating a Status out of code that cannot
/// return one directly — principally ThreadPool::ParallelFor shards,
/// where the first thrown StatusException cancels the remaining shards
/// and is rethrown on the caller. Must be caught and converted back to
/// a Status at the component boundary; it never crosses a public API
/// (the library's no-exceptions convention applies to callers, not to
/// this internal control-flow use).
class StatusException : public std::exception {
 public:
  explicit StatusException(Status status)
      : status_(std::move(status)), what_(status_.ToString()) {}

  const Status& status() const { return status_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  Status status_;
  std::string what_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_UTIL_STATUS_H_
