// Status / Result error-handling primitives.
//
// The library does not throw exceptions across public API boundaries
// (RocksDB-style convention): fallible operations return a Status, or a
// Result<T> that carries either a value or a Status.

#ifndef DBDESIGN_UTIL_STATUS_H_
#define DBDESIGN_UTIL_STATUS_H_

#include "util/logging.h"
#include <optional>
#include <string>
#include <utility>

namespace dbdesign {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kParseError,
  kBindError,
};

/// Returns a human-readable name for a status code ("ok", "parse error", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is empty in the common OK case).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
///
/// Accessing the value of an error Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    DBD_CHECK(!status_.ok() &&
              "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DBD_DCHECK(ok() && "value() called on an error Result");
    return *value_;
  }
  T& value() & {
    DBD_DCHECK(ok() && "value() called on an error Result");
    return *value_;
  }
  T&& value() && {
    DBD_DCHECK(ok() && "value() called on an error Result");
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_UTIL_STATUS_H_
