#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace dbdesign {

Json Json::Bool(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double d) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = d;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

void Json::Append(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  array_.push_back(std::move(v));
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  return object_[key];
}

const Json* Json::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpTo(const Json& j, std::string* out) {
  switch (j.kind()) {
    case Json::Kind::kNull:
      *out += "null";
      break;
    case Json::Kind::kBool:
      *out += j.bool_value() ? "true" : "false";
      break;
    case Json::Kind::kNumber: {
      double d = j.number();
      if (!std::isfinite(d)) {
        // JSON has no Infinity/NaN. A cost call CAN legitimately return
        // +inf (e.g. every access path disabled by knobs), and a trace
        // that replayed it as null would type-confuse the reader — so
        // non-finite numbers round-trip through a tagged string
        // sentinel that Parse converts back to a number.
        out->push_back('"');
        *out += kJsonNonFiniteTag;
        *out += std::isnan(d) ? "nan" : (d > 0 ? "inf" : "-inf");
        out->push_back('"');
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      *out += buf;
      break;
    }
    case Json::Kind::kString:
      // Keep real string payloads out of the sentinel namespace: a
      // string that happens to start with the non-finite tag dumps
      // behind an "esc:" marker that Parse strips again, so every
      // string round-trips losslessly and only genuine sentinels
      // convert to numbers.
      if (j.str().compare(0, sizeof(kJsonNonFiniteTag) - 1,
                          kJsonNonFiniteTag) == 0) {
        EscapeTo(std::string(kJsonNonFiniteTag) + "esc:" + j.str(), out);
      } else {
        EscapeTo(j.str(), out);
      }
      break;
    case Json::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : j.items()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(item, out);
      }
      out->push_back(']');
      break;
    }
    case Json::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : j.members()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeTo(key, out);
        out->push_back(':');
        DumpTo(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<Json> Run() {
    SkipWs();
    Json root;
    Status st = ParseValue(&root);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::ParseError("trailing characters after JSON document");
    }
    return root;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Fail(const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  Status ParseValue(Json* out) {
    if (pos_ >= s_.size()) return Fail("unexpected end of input");
    char c = s_[pos_];
    switch (c) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': {
        std::string str;
        Status st = ParseString(&str);
        if (!st.ok()) return st;
        // Non-finite number sentinels round-trip back to numbers, and
        // "esc:"-marked strings shed the escape Dump added (the other
        // half of the Dump-side encoding). Anything else in the tag
        // namespace — e.g. a hand-edited document — stays a plain
        // string rather than failing the parse.
        if (str.compare(0, sizeof(kJsonNonFiniteTag) - 1,
                        kJsonNonFiniteTag) == 0) {
          std::string rest = str.substr(sizeof(kJsonNonFiniteTag) - 1);
          if (rest == "inf") {
            *out = Json::Number(std::numeric_limits<double>::infinity());
            return Status::OK();
          }
          if (rest == "-inf") {
            *out = Json::Number(-std::numeric_limits<double>::infinity());
            return Status::OK();
          }
          if (rest == "nan") {
            *out = Json::Number(std::numeric_limits<double>::quiet_NaN());
            return Status::OK();
          }
          if (rest.compare(0, 4, "esc:") == 0) {
            *out = Json::Str(rest.substr(4));
            return Status::OK();
          }
        }
        *out = Json::Str(std::move(str));
        return Status::OK();
      }
      case 't':
        if (s_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = Json::Bool(true);
          return Status::OK();
        }
        return Fail("bad literal");
      case 'f':
        if (s_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = Json::Bool(false);
          return Status::OK();
        }
        return Fail("bad literal");
      case 'n':
        if (s_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = Json::Null();
          return Status::OK();
        }
        return Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    char* end = nullptr;
    std::string token = s_.substr(start, pos_ - start);
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    *out = Json::Number(d);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only; traces contain ASCII identifiers).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseArray(Json* out) {
    Consume('[');
    *out = Json::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      Json item;
      Status st = ParseValue(&item);
      if (!st.ok()) return st;
      out->Append(std::move(item));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or ']'");
      SkipWs();
    }
  }

  Status ParseObject(Json* out) {
    Consume('{');
    *out = Json::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      Json value;
      st = ParseValue(&value);
      if (!st.ok()) return st;
      (*out)[key] = std::move(value);
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or '}'");
      SkipWs();
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace dbdesign
