#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dbdesign {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

/// Per-thread log tag; a plain thread_local (no lock) because each
/// thread only ever reads/writes its own copy.
thread_local std::string t_log_tag;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  if (t_log_tag.empty()) {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] (%s) %s\n", LevelName(level),
                 t_log_tag.c_str(), msg.c_str());
  }
}

ScopedLogTag::ScopedLogTag(std::string tag) : previous_(std::move(t_log_tag)) {
  t_log_tag = std::move(tag);
}

ScopedLogTag::~ScopedLogTag() { t_log_tag = std::move(previous_); }

const std::string& ThreadLogTag() { return t_log_tag; }

namespace internal {

void CheckFail(const char* file, int line, const char* expr,
               const std::string& operands) {
  // Bypasses the log-level filter: a failed invariant must be visible
  // even when tests/benches silence the logger.
  if (operands.empty()) {
    std::fprintf(stderr, "[FATAL] CHECK failed: %s at %s:%d\n", expr, file,
                 line);
  } else {
    std::fprintf(stderr, "[FATAL] CHECK failed: %s (%s) at %s:%d\n", expr,
                 operands.c_str(), file, line);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

}  // namespace dbdesign
