#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace dbdesign {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t s = seed;
  state_ = SplitMix64(s);
  if (state_ == 0) state_ = 0x2545f4914f6cdd1dULL;
  zipf_n_ = -1;
  zipf_s_ = -1.0;
}

uint64_t Rng::Next() {
  // xorshift64*.
  uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return x * 0x2545f4914f6cdd1dULL;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DBD_DCHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; draws two uniforms per sample (cache intentionally omitted
  // to keep generator state a single word).
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

namespace {

double ZipfH(double x, double s) {
  // Integral of 1/x^s: H(x) = (x^(1-s) - 1) / (1 - s) for s != 1, ln(x) else.
  if (std::abs(s - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
}

double ZipfHInv(double u, double s) {
  if (std::abs(s - 1.0) < 1e-12) return std::exp(u);
  return std::pow(1.0 + u * (1.0 - s), 1.0 / (1.0 - s));
}

}  // namespace

int64_t Rng::Zipf(int64_t n, double s) {
  DBD_DCHECK_GE(n, 1);
  if (s <= 1e-9) return UniformInt(0, n - 1);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_h_x1_ = ZipfH(1.5, s) - 1.0;
    zipf_hn_ = ZipfH(static_cast<double>(n) + 0.5, s);
    zipf_dennom_ = zipf_hn_ - zipf_h_x1_;
  }
  // Rejection-inversion (Hormann-Derflinger).
  for (int iter = 0; iter < 256; ++iter) {
    double u = zipf_h_x1_ + UniformDouble() * zipf_dennom_;
    double x = ZipfHInv(u, s);
    int64_t k = static_cast<int64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    double hk = ZipfH(static_cast<double>(k) + 0.5, s) -
                ZipfH(static_cast<double>(k) - 0.5, s);
    if (UniformDouble() * std::pow(static_cast<double>(k), -s) <= hk ||
        k == 1) {
      return k - 1;  // 0-based rank
    }
  }
  return 0;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  DBD_DCHECK_LE(k, n);
  // Floyd's algorithm: O(k) expected time, O(k) space.
  std::vector<int> out;
  out.reserve(static_cast<size_t>(k));
  for (int j = n - k; j < n; ++j) {
    int t = static_cast<int>(UniformInt(0, j));
    bool seen = false;
    for (int v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

}  // namespace dbdesign
