// Clang Thread Safety Analysis annotations + an annotated Mutex.
//
// The repo's headline guarantee — recommend/refine/deploy results are
// bit-identical at any thread count — depends on every piece of shared
// mutable state being either (a) guarded by a mutex the compiler can
// check, (b) an std::atomic with a documented protocol, or (c) owned by
// exactly one thread (shard-by-query ownership). This header makes (a)
// statically enforceable: declare locks as `Mutex`, annotate the fields
// they protect with `DBD_GUARDED_BY(mu_)`, and compile with
// `-Wthread-safety -Werror=thread-safety-analysis` (clang; the macros
// expand to nothing elsewhere, so gcc builds are unaffected).
//
// Conventions (checked by tools/lint/determinism_lint.py):
//   * Use `Mutex` + `MutexLock`, not raw std::mutex/std::lock_guard —
//     raw std::mutex is invisible to the analysis.
//   * Every Mutex member must appear in at least one DBD_GUARDED_BY /
//     DBD_PT_GUARDED_BY / DBD_REQUIRES annotation in the same file.
//   * Condition-variable waits go through CondVar::Wait(mu) inside an
//     explicit predicate loop, so the guarded reads in the predicate
//     stay inside a function scope the analysis can see.

#ifndef DBDESIGN_UTIL_THREAD_ANNOTATIONS_H_
#define DBDESIGN_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define DBD_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DBD_THREAD_ANNOTATION
#define DBD_THREAD_ANNOTATION(x)  // no-op on non-clang compilers
#endif

/// Declares that a type is a lock (a "capability" in clang's model).
#define DBD_CAPABILITY(name) DBD_THREAD_ANNOTATION(capability(name))

/// Declares that an RAII type acquires a capability for its lifetime.
#define DBD_SCOPED_CAPABILITY DBD_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads/writes require holding `mu`.
#define DBD_GUARDED_BY(mu) DBD_THREAD_ANNOTATION(guarded_by(mu))

/// Pointer-target annotation: the pointed-to data requires `mu`.
#define DBD_PT_GUARDED_BY(mu) DBD_THREAD_ANNOTATION(pt_guarded_by(mu))

/// Function annotation: caller must hold the listed capabilities.
#define DBD_REQUIRES(...) \
  DBD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function annotation: caller must NOT hold the listed capabilities.
#define DBD_EXCLUDES(...) DBD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function annotation: acquires the capability (held on return).
#define DBD_ACQUIRE(...) \
  DBD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the capability (held on entry).
#define DBD_RELEASE(...) \
  DBD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function annotation: acquires the capability iff it returns `result`.
#define DBD_TRY_ACQUIRE(result, ...) \
  DBD_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Escape hatch: the function body is not analyzed. Use only with a
/// comment explaining why the analysis cannot see the protocol.
#define DBD_NO_THREAD_SAFETY_ANALYSIS \
  DBD_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Declares the return value is a reference to a capability.
#define DBD_RETURN_CAPABILITY(mu) DBD_THREAD_ANNOTATION(lock_returned(mu))

namespace dbdesign {

class CondVar;

/// std::mutex with the capability attribute, so DBD_GUARDED_BY fields
/// and MutexLock scopes are statically checked under clang.
class DBD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DBD_ACQUIRE() { mu_.lock(); }
  void Unlock() DBD_RELEASE() { mu_.unlock(); }
  bool TryLock() DBD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock, the only sanctioned way to hold a Mutex.
class DBD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DBD_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DBD_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. Wait() takes the already-held Mutex
/// so callers write an explicit `while (!predicate) cv.Wait(mu);` loop —
/// that keeps every guarded read of the predicate inside the annotated
/// function scope (a wait-with-lambda would move them into a closure
/// the analysis treats as an unannotated function).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before return.
  void Wait(Mutex& mu) DBD_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_UTIL_THREAD_ANNOTATIONS_H_
