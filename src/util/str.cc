#include "util/str.h"

#include <cctype>
#include <cstdio>

namespace dbdesign {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string FormatDouble(double v, int digits) {
  std::string s = StrFormat("%.*f", digits, v);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') last--;
    s.erase(last + 1);
  }
  return s;
}

std::string FormatBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return StrFormat("%.1f %s", bytes, units[u]);
}

}  // namespace dbdesign
