// Compact bitset over at most 64 elements.
//
// Used for relation sets in System-R dynamic-programming join enumeration
// and for index subsets in degree-of-interaction sampling.

#ifndef DBDESIGN_UTIL_BITSET64_H_
#define DBDESIGN_UTIL_BITSET64_H_

#include <bit>
#include "util/logging.h"
#include <cstdint>

namespace dbdesign {

/// Value-type set of small integers in [0, 64).
class Bitset64 {
 public:
  constexpr Bitset64() : bits_(0) {}
  constexpr explicit Bitset64(uint64_t bits) : bits_(bits) {}

  /// Singleton set {i}.
  static constexpr Bitset64 Single(int i) {
    return Bitset64(uint64_t{1} << i);
  }

  /// Full set {0, ..., n-1}.
  static constexpr Bitset64 FullSet(int n) {
    return n >= 64 ? Bitset64(~uint64_t{0})
                   : Bitset64((uint64_t{1} << n) - 1);
  }

  constexpr bool Test(int i) const { return (bits_ >> i) & 1; }
  constexpr void Set(int i) { bits_ |= uint64_t{1} << i; }
  constexpr void Reset(int i) { bits_ &= ~(uint64_t{1} << i); }
  constexpr bool Empty() const { return bits_ == 0; }
  constexpr int Count() const { return std::popcount(bits_); }
  constexpr uint64_t raw() const { return bits_; }

  /// Index of the lowest set bit. Requires a non-empty set.
  constexpr int Lowest() const {
    DBD_DCHECK(bits_ != 0);
    return std::countr_zero(bits_);
  }

  constexpr bool Contains(Bitset64 other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  constexpr bool Intersects(Bitset64 other) const {
    return (bits_ & other.bits_) != 0;
  }

  constexpr Bitset64 operator|(Bitset64 o) const {
    return Bitset64(bits_ | o.bits_);
  }
  constexpr Bitset64 operator&(Bitset64 o) const {
    return Bitset64(bits_ & o.bits_);
  }
  constexpr Bitset64 operator-(Bitset64 o) const {
    return Bitset64(bits_ & ~o.bits_);
  }
  constexpr bool operator==(const Bitset64&) const = default;

  /// Iterates set bits: for (int i : set.Elements()) ...
  class Iterator {
   public:
    explicit constexpr Iterator(uint64_t bits) : bits_(bits) {}
    constexpr int operator*() const { return std::countr_zero(bits_); }
    constexpr Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    constexpr bool operator!=(const Iterator& o) const {
      return bits_ != o.bits_;
    }

   private:
    uint64_t bits_;
  };

  struct ElementRange {
    uint64_t bits;
    constexpr Iterator begin() const { return Iterator(bits); }
    constexpr Iterator end() const { return Iterator(0); }
  };

  constexpr ElementRange Elements() const { return ElementRange{bits_}; }

 private:
  uint64_t bits_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_UTIL_BITSET64_H_
