#include "util/binio.h"

#include <bit>

namespace dbdesign {

void BinaryWriter::PutU32(uint32_t v) {
  for (int b = 0; b < 4; ++b) {
    PutU8(static_cast<uint8_t>((v >> (8 * b)) & 0xff));
  }
}

void BinaryWriter::PutU64(uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    PutU8(static_cast<uint8_t>((v >> (8 * b)) & 0xff));
  }
}

void BinaryWriter::PutDouble(double v) { PutU64(std::bit_cast<uint64_t>(v)); }

void BinaryWriter::PutString(std::string_view s) {
  PutU64(s.size());
  out_.append(s.data(), s.size());
}

bool BinaryReader::Need(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t BinaryReader::U8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t BinaryReader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int b = 0; b < 4; ++b) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * b);
  }
  return v;
}

uint64_t BinaryReader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int b = 0; b < 8; ++b) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * b);
  }
  return v;
}

double BinaryReader::Double() { return std::bit_cast<double>(U64()); }

std::string BinaryReader::String() {
  uint64_t n = U64();
  // Length is validated against the remaining bytes BEFORE allocating,
  // so a corrupt length can never turn into a multi-gigabyte reserve.
  if (!Need(static_cast<size_t>(n))) return std::string();
  std::string s(data_.substr(pos_, static_cast<size_t>(n)));
  pos_ += static_cast<size_t>(n);
  return s;
}

}  // namespace dbdesign
