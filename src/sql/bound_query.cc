#include "sql/bound_query.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/str.h"

namespace dbdesign {

std::vector<BoundPredicate> BoundQuery::FiltersOn(int slot) const {
  std::vector<BoundPredicate> out;
  for (const BoundPredicate& p : filters) {
    if (p.column.slot == slot) out.push_back(p);
  }
  return out;
}

std::vector<BoundJoin> BoundQuery::JoinsOn(int slot) const {
  std::vector<BoundJoin> out;
  for (const BoundJoin& j : joins) {
    if (j.left.slot == slot || j.right.slot == slot) out.push_back(j);
  }
  return out;
}

std::vector<ColumnId> BoundQuery::ReferencedColumns(int slot) const {
  std::set<ColumnId> cols;
  for (const BoundColumn& c : select_columns) {
    if (c.slot == slot) cols.insert(c.column);
  }
  for (const BoundAggregate& a : aggregates) {
    if (!a.star && a.column.slot == slot) cols.insert(a.column.column);
  }
  for (const BoundPredicate& p : filters) {
    if (p.column.slot == slot) cols.insert(p.column.column);
  }
  for (const BoundJoin& j : joins) {
    if (j.left.slot == slot) cols.insert(j.left.column);
    if (j.right.slot == slot) cols.insert(j.right.column);
  }
  for (const BoundColumn& c : group_by) {
    if (c.slot == slot) cols.insert(c.column);
  }
  for (const BoundOrderItem& o : order_by) {
    if (o.column.slot == slot) cols.insert(o.column.column);
  }
  return {cols.begin(), cols.end()};
}

std::vector<ColumnId> BoundQuery::PredicateColumns(int slot) const {
  std::set<ColumnId> cols;
  for (const BoundPredicate& p : filters) {
    if (p.column.slot == slot) cols.insert(p.column.column);
  }
  for (const BoundJoin& j : joins) {
    if (j.left.slot == slot) cols.insert(j.left.column);
    if (j.right.slot == slot) cols.insert(j.right.column);
  }
  return {cols.begin(), cols.end()};
}

uint64_t BoundQuery::StructuralHash() const {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  };
  auto col = [&](uint64_t h, const BoundColumn& c) {
    return mix(mix(h, static_cast<uint64_t>(c.slot) + 1),
               static_cast<uint64_t>(c.column) + 3);
  };
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (TableId t : tables) h = mix(h, static_cast<uint64_t>(t) + 11);
  for (const BoundColumn& c : select_columns) h = col(mix(h, 1), c);
  for (const BoundAggregate& a : aggregates) {
    h = mix(h, static_cast<uint64_t>(a.fn) + 100);
    h = a.star ? mix(h, 2) : col(h, a.column);
  }
  for (const BoundPredicate& p : filters) {
    h = col(mix(h, 3), p.column);
    h = mix(h, static_cast<uint64_t>(p.op) + 200);
    h = mix(h, p.value.Hash());
    if (p.value2.has_value()) h = mix(h, p.value2->Hash());
  }
  for (const BoundJoin& j : joins) h = col(col(mix(h, 4), j.left), j.right);
  for (const BoundColumn& c : group_by) h = col(mix(h, 5), c);
  for (const BoundOrderItem& o : order_by) {
    h = col(mix(h, o.descending ? 7 : 6), o.column);
  }
  h = mix(h, static_cast<uint64_t>(limit) + 999);
  return h;
}

std::string BoundQuery::ToSql(const Catalog& catalog) const {
  auto col_name = [&](const BoundColumn& c) {
    return aliases[c.slot] + "." +
           catalog.table(tables[c.slot]).column(c.column).name;
  };

  std::vector<std::string> items;
  for (const BoundColumn& c : select_columns) items.push_back(col_name(c));
  for (const BoundAggregate& a : aggregates) {
    if (a.star) {
      items.push_back(StrFormat("%s(*)", AggFnName(a.fn)));
    } else {
      items.push_back(
          StrFormat("%s(%s)", AggFnName(a.fn), col_name(a.column).c_str()));
    }
  }
  std::string sql = "SELECT " + (items.empty() ? "*" : StrJoin(items, ", "));

  sql += " FROM ";
  std::vector<std::string> froms;
  for (int s = 0; s < num_slots(); ++s) {
    const std::string& tname = catalog.table(tables[s]).name();
    froms.push_back(aliases[s] == tname ? tname : tname + " " + aliases[s]);
  }
  sql += StrJoin(froms, ", ");

  std::vector<std::string> conds;
  for (const BoundJoin& j : joins) {
    conds.push_back(col_name(j.left) + " = " + col_name(j.right));
  }
  for (const BoundPredicate& p : filters) {
    if (p.value2.has_value()) {
      conds.push_back(col_name(p.column) + " BETWEEN " + p.value.ToString() +
                      " AND " + p.value2->ToString());
    } else {
      conds.push_back(StrFormat("%s %s %s", col_name(p.column).c_str(),
                                CompareOpName(p.op),
                                p.value.ToString().c_str()));
    }
  }
  if (!conds.empty()) sql += " WHERE " + StrJoin(conds, " AND ");

  if (!group_by.empty()) {
    std::vector<std::string> gcols;
    for (const BoundColumn& c : group_by) gcols.push_back(col_name(c));
    sql += " GROUP BY " + StrJoin(gcols, ", ");
  }
  if (!order_by.empty()) {
    std::vector<std::string> ocols;
    for (const BoundOrderItem& o : order_by) {
      ocols.push_back(col_name(o.column) + (o.descending ? " DESC" : ""));
    }
    sql += " ORDER BY " + StrJoin(ocols, ", ");
  }
  if (limit >= 0) sql += StrFormat(" LIMIT %lld", static_cast<long long>(limit));
  return sql;
}

StructuralDedup DedupByStructure(std::span<const BoundQuery> queries) {
  StructuralDedup out;
  out.owner.resize(queries.size());
  std::unordered_map<uint64_t, size_t> slot_of;
  slot_of.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto [it, inserted] =
        slot_of.try_emplace(queries[i].StructuralHash(), out.distinct.size());
    if (inserted) out.distinct.push_back(i);
    out.owner[i] = it->second;
  }
  return out;
}

}  // namespace dbdesign
