// Hand-written lexer for the SQL subset.

#ifndef DBDESIGN_SQL_LEXER_H_
#define DBDESIGN_SQL_LEXER_H_

#include <string>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace dbdesign {

/// Tokenizes `sql`; keywords are case-insensitive, identifiers are
/// lowercased. Returns kParseError on unknown characters or unterminated
/// string literals.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace dbdesign

#endif  // DBDESIGN_SQL_LEXER_H_
