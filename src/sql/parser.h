// Recursive-descent parser for the SQL subset.

#ifndef DBDESIGN_SQL_PARSER_H_
#define DBDESIGN_SQL_PARSER_H_

#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace dbdesign {

/// Parses one SELECT statement. See ast.h for the grammar.
Result<AstQuery> ParseQuery(const std::string& sql);

}  // namespace dbdesign

#endif  // DBDESIGN_SQL_PARSER_H_
