#include "sql/parser.h"

#include "sql/lexer.h"
#include "util/str.h"

namespace dbdesign {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kAvg: return "avg";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
  }
  return "?";
}

namespace {

/// Token-stream cursor with single-token lookahead.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<AstQuery> Parse() {
    AstQuery q;
    Status s = Expect(TokenType::kSelect);
    if (!s.ok()) return s;
    s = ParseSelectList(&q);
    if (!s.ok()) return s;
    s = Expect(TokenType::kFrom);
    if (!s.ok()) return s;
    s = ParseFrom(&q);
    if (!s.ok()) return s;
    if (Accept(TokenType::kWhere)) {
      s = ParseConjunction(&q.where);
      if (!s.ok()) return s;
    }
    if (Accept(TokenType::kGroup)) {
      s = Expect(TokenType::kBy);
      if (!s.ok()) return s;
      do {
        auto col = ParseColumn();
        if (!col.ok()) return col.status();
        q.group_by.push_back(col.value());
      } while (Accept(TokenType::kComma));
    }
    if (Accept(TokenType::kOrder)) {
      s = Expect(TokenType::kBy);
      if (!s.ok()) return s;
      do {
        AstOrderItem item;
        auto col = ParseColumn();
        if (!col.ok()) return col.status();
        item.column = col.value();
        if (Accept(TokenType::kDesc)) {
          item.descending = true;
        } else {
          Accept(TokenType::kAsc);
        }
        q.order_by.push_back(item);
      } while (Accept(TokenType::kComma));
    }
    if (Accept(TokenType::kLimit)) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Error("expected integer after LIMIT");
      }
      q.limit = Peek().int_value;
      Advance();
    }
    if (Peek().type != TokenType::kEnd) {
      return Error(StrFormat("unexpected trailing %s",
                             TokenTypeName(Peek().type)));
    }
    return q;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool Accept(TokenType type) {
    if (Peek().type == type) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokenType type) {
    if (!Accept(type)) {
      return Status::ParseError(
          StrFormat("expected %s but found %s at offset %d",
                    TokenTypeName(type), TokenTypeName(Peek().type),
                    Peek().position));
    }
    return Status::OK();
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("%s at offset %d", msg.c_str(), Peek().position));
  }

  static bool IsAggToken(TokenType t) {
    return t == TokenType::kCount || t == TokenType::kSum ||
           t == TokenType::kAvg || t == TokenType::kMin ||
           t == TokenType::kMax;
  }
  static AggFn AggFromToken(TokenType t) {
    switch (t) {
      case TokenType::kCount: return AggFn::kCount;
      case TokenType::kSum: return AggFn::kSum;
      case TokenType::kAvg: return AggFn::kAvg;
      case TokenType::kMin: return AggFn::kMin;
      default: return AggFn::kMax;
    }
  }

  Result<AstColumn> ParseColumn() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError(
          StrFormat("expected column name but found %s at offset %d",
                    TokenTypeName(Peek().type), Peek().position));
    }
    AstColumn col;
    col.name = Peek().text;
    Advance();
    if (Peek().type == TokenType::kDot) {
      Advance();
      if (Peek().type != TokenType::kIdentifier) {
        return Status::ParseError(
            StrFormat("expected column name after '.' at offset %d",
                      Peek().position));
      }
      col.qualifier = col.name;
      col.name = Peek().text;
      Advance();
    }
    return col;
  }

  Status ParseSelectList(AstQuery* q) {
    if (Accept(TokenType::kStar)) {
      q->select_star = true;
      return Status::OK();
    }
    do {
      AstSelectItem item;
      if (IsAggToken(Peek().type)) {
        item.is_aggregate = true;
        item.agg = AggFromToken(Peek().type);
        Advance();
        Status s = Expect(TokenType::kLParen);
        if (!s.ok()) return s;
        if (Accept(TokenType::kStar)) {
          item.agg_star = true;
        } else {
          auto col = ParseColumn();
          if (!col.ok()) return col.status();
          item.column = col.value();
        }
        s = Expect(TokenType::kRParen);
        if (!s.ok()) return s;
      } else {
        auto col = ParseColumn();
        if (!col.ok()) return col.status();
        item.column = col.value();
      }
      q->select_items.push_back(item);
    } while (Accept(TokenType::kComma));
    return Status::OK();
  }

  Status ParseTableRef(AstQuery* q) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected table name");
    }
    AstTableRef ref;
    ref.table = Peek().text;
    Advance();
    if (Accept(TokenType::kAs)) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected alias after AS");
      }
      ref.alias = Peek().text;
      Advance();
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Peek().text;
      Advance();
    }
    q->tables.push_back(ref);
    return Status::OK();
  }

  Status ParseFrom(AstQuery* q) {
    Status s = ParseTableRef(q);
    if (!s.ok()) return s;
    while (true) {
      if (Accept(TokenType::kComma)) {
        s = ParseTableRef(q);
        if (!s.ok()) return s;
      } else if (Peek().type == TokenType::kJoin ||
                 Peek().type == TokenType::kInner) {
        Accept(TokenType::kInner);
        s = Expect(TokenType::kJoin);
        if (!s.ok()) return s;
        s = ParseTableRef(q);
        if (!s.ok()) return s;
        s = Expect(TokenType::kOn);
        if (!s.ok()) return s;
        s = ParseConjunction(&q->where);
        if (!s.ok()) return s;
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Status ParseConjunction(std::vector<AstPredicate>* out) {
    do {
      auto pred = ParsePredicate();
      if (!pred.ok()) return pred.status();
      out->push_back(pred.value());
    } while (Accept(TokenType::kAnd));
    return Status::OK();
  }

  Result<Value> ParseLiteral() {
    const Token& t = Peek();
    Value v;
    switch (t.type) {
      case TokenType::kIntLiteral:
        v = Value(t.int_value);
        break;
      case TokenType::kDoubleLiteral:
        v = Value(t.double_value);
        break;
      case TokenType::kStringLiteral:
        v = Value(t.text);
        break;
      default:
        return Status::ParseError(
            StrFormat("expected literal but found %s at offset %d",
                      TokenTypeName(t.type), t.position));
    }
    Advance();
    return v;
  }

  Result<AstPredicate> ParsePredicate() {
    AstPredicate pred;
    auto left = ParseColumn();
    if (!left.ok()) return left.status();
    pred.left = left.value();

    if (Accept(TokenType::kBetween)) {
      pred.kind = AstPredicate::Kind::kBetween;
      auto lo = ParseLiteral();
      if (!lo.ok()) return lo.status();
      Status s = Expect(TokenType::kAnd);
      if (!s.ok()) return s;
      auto hi = ParseLiteral();
      if (!hi.ok()) return hi.status();
      pred.value = lo.value();
      pred.value2 = hi.value();
      return pred;
    }

    CompareOp op;
    switch (Peek().type) {
      case TokenType::kEq: op = CompareOp::kEq; break;
      case TokenType::kNe: op = CompareOp::kNe; break;
      case TokenType::kLt: op = CompareOp::kLt; break;
      case TokenType::kLe: op = CompareOp::kLe; break;
      case TokenType::kGt: op = CompareOp::kGt; break;
      case TokenType::kGe: op = CompareOp::kGe; break;
      default:
        return Status::ParseError(
            StrFormat("expected comparison operator but found %s at offset %d",
                      TokenTypeName(Peek().type), Peek().position));
    }
    Advance();
    pred.op = op;

    if (Peek().type == TokenType::kIdentifier) {
      if (op != CompareOp::kEq) {
        return Status::ParseError(
            "column-to-column predicates must use '=' (equijoins only)");
      }
      pred.kind = AstPredicate::Kind::kColumnEq;
      auto right = ParseColumn();
      if (!right.ok()) return right.status();
      pred.right_column = right.value();
      return pred;
    }

    pred.kind = AstPredicate::Kind::kComparison;
    auto lit = ParseLiteral();
    if (!lit.ok()) return lit.status();
    pred.value = lit.value();
    return pred;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<AstQuery> ParseQuery(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace dbdesign
