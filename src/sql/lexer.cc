#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "util/str.h"

namespace dbdesign {

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kEnd: return "end of input";
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kIntLiteral: return "integer";
    case TokenType::kDoubleLiteral: return "double";
    case TokenType::kStringLiteral: return "string";
    case TokenType::kSelect: return "SELECT";
    case TokenType::kFrom: return "FROM";
    case TokenType::kWhere: return "WHERE";
    case TokenType::kAnd: return "AND";
    case TokenType::kJoin: return "JOIN";
    case TokenType::kInner: return "INNER";
    case TokenType::kOn: return "ON";
    case TokenType::kGroup: return "GROUP";
    case TokenType::kOrder: return "ORDER";
    case TokenType::kBy: return "BY";
    case TokenType::kAsc: return "ASC";
    case TokenType::kDesc: return "DESC";
    case TokenType::kLimit: return "LIMIT";
    case TokenType::kBetween: return "BETWEEN";
    case TokenType::kAs: return "AS";
    case TokenType::kCount: return "COUNT";
    case TokenType::kSum: return "SUM";
    case TokenType::kAvg: return "AVG";
    case TokenType::kMin: return "MIN";
    case TokenType::kMax: return "MAX";
    case TokenType::kComma: return ",";
    case TokenType::kDot: return ".";
    case TokenType::kStar: return "*";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kEq: return "=";
    case TokenType::kNe: return "<>";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, TokenType>& KeywordMap() {
  static const auto* kMap = new std::unordered_map<std::string, TokenType>{
      {"select", TokenType::kSelect}, {"from", TokenType::kFrom},
      {"where", TokenType::kWhere},   {"and", TokenType::kAnd},
      {"join", TokenType::kJoin},     {"inner", TokenType::kInner},
      {"on", TokenType::kOn},         {"group", TokenType::kGroup},
      {"order", TokenType::kOrder},   {"by", TokenType::kBy},
      {"asc", TokenType::kAsc},       {"desc", TokenType::kDesc},
      {"limit", TokenType::kLimit},   {"between", TokenType::kBetween},
      {"as", TokenType::kAs},         {"count", TokenType::kCount},
      {"sum", TokenType::kSum},       {"avg", TokenType::kAvg},
      {"min", TokenType::kMin},       {"max", TokenType::kMax},
  };
  return *kMap;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = ToLower(sql.substr(start, i - start));
      auto it = KeywordMap().find(word);
      if (it != KeywordMap().end()) {
        tok.type = it->second;
      } else {
        tok.type = TokenType::kIdentifier;
      }
      tok.text = word;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])) &&
                (tokens.empty() ||
                 (tokens.back().type != TokenType::kIntLiteral &&
                  tokens.back().type != TokenType::kDoubleLiteral &&
                  tokens.back().type != TokenType::kIdentifier &&
                  tokens.back().type != TokenType::kRParen)))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
                       ((sql[i] == '+' || sql[i] == '-') && i > start &&
                        (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        if (sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E') is_double = true;
        ++i;
      }
      tok.text = sql.substr(start, i - start);
      if (is_double) {
        tok.type = TokenType::kDoubleLiteral;
        tok.double_value = std::strtod(tok.text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kIntLiteral;
        tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
      }
    } else if (c == '\'') {
      size_t start = ++i;
      while (i < n && sql[i] != '\'') ++i;
      if (i >= n) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %d",
                      tok.position));
      }
      tok.type = TokenType::kStringLiteral;
      tok.text = sql.substr(start, i - start);
      ++i;  // closing quote
    } else {
      switch (c) {
        case ',': tok.type = TokenType::kComma; ++i; break;
        case '.': tok.type = TokenType::kDot; ++i; break;
        case '*': tok.type = TokenType::kStar; ++i; break;
        case '(': tok.type = TokenType::kLParen; ++i; break;
        case ')': tok.type = TokenType::kRParen; ++i; break;
        case '=': tok.type = TokenType::kEq; ++i; break;
        case '<':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.type = TokenType::kLe;
            i += 2;
          } else if (i + 1 < n && sql[i + 1] == '>') {
            tok.type = TokenType::kNe;
            i += 2;
          } else {
            tok.type = TokenType::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.type = TokenType::kGe;
            i += 2;
          } else {
            tok.type = TokenType::kGt;
            ++i;
          }
          break;
        case '!':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.type = TokenType::kNe;
            i += 2;
          } else {
            return Status::ParseError(
                StrFormat("unexpected '!' at offset %d", tok.position));
          }
          break;
        default:
          return Status::ParseError(
              StrFormat("unexpected character '%c' at offset %d", c,
                        tok.position));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(end);
  return tokens;
}

}  // namespace dbdesign
