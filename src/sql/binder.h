// Binder: resolves a parsed AstQuery against the Catalog, producing a
// BoundQuery. Performs name resolution, type checking of literals
// against column types, and classification of predicates into filters
// vs. equijoins.

#ifndef DBDESIGN_SQL_BINDER_H_
#define DBDESIGN_SQL_BINDER_H_

#include <string>

#include "sql/ast.h"
#include "sql/bound_query.h"
#include "util/status.h"

namespace dbdesign {

/// Binds `ast` against `catalog`.
Result<BoundQuery> BindQuery(const Catalog& catalog, const AstQuery& ast);

/// Convenience: parse + bind in one call.
Result<BoundQuery> ParseAndBind(const Catalog& catalog,
                                const std::string& sql);

}  // namespace dbdesign

#endif  // DBDESIGN_SQL_BINDER_H_
