// BoundQuery: the resolved query representation consumed by the
// optimizer, executor, INUM, CoPhy, AutoPart, COLT and the interaction
// analyzer. Produced by the binder from a parsed AstQuery.

#ifndef DBDESIGN_SQL_BOUND_QUERY_H_
#define DBDESIGN_SQL_BOUND_QUERY_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "catalog/design.h"
#include "catalog/schema.h"
#include "sql/ast.h"

namespace dbdesign {

/// A resolved column: FROM-list slot + column position in that table.
struct BoundColumn {
  int slot = -1;          ///< index into BoundQuery::tables
  ColumnId column = kInvalidColumnId;

  bool operator==(const BoundColumn&) const = default;
  bool operator<(const BoundColumn& o) const {
    if (slot != o.slot) return slot < o.slot;
    return column < o.column;
  }
};

/// Single-table filter predicate (conjunct).
struct BoundPredicate {
  BoundColumn column;
  CompareOp op = CompareOp::kEq;
  Value value;                  ///< comparison value / BETWEEN lower bound
  std::optional<Value> value2;  ///< BETWEEN upper bound

  bool IsEquality() const {
    return op == CompareOp::kEq && !value2.has_value();
  }
  bool IsRange() const {
    return value2.has_value() || op == CompareOp::kLt ||
           op == CompareOp::kLe || op == CompareOp::kGt ||
           op == CompareOp::kGe;
  }
};

/// Equijoin predicate between two slots.
struct BoundJoin {
  BoundColumn left;
  BoundColumn right;

  /// Returns the join column on `slot`, or nullopt if not involved.
  std::optional<BoundColumn> SideOn(int slot) const {
    if (left.slot == slot) return left;
    if (right.slot == slot) return right;
    return std::nullopt;
  }
};

/// Aggregate output.
struct BoundAggregate {
  AggFn fn = AggFn::kCount;
  bool star = false;           ///< COUNT(*)
  BoundColumn column;          ///< unused when star
};

struct BoundOrderItem {
  BoundColumn column;
  bool descending = false;
};

/// A fully resolved SELECT query.
struct BoundQuery {
  /// Workload-assigned identifier (stable across what-if calls; INUM and
  /// CoPhy key caches by it). -1 until the workload assigns one.
  int id = -1;

  std::vector<TableId> tables;        ///< FROM slots
  std::vector<std::string> aliases;   ///< effective name per slot

  std::vector<BoundColumn> select_columns;
  std::vector<BoundAggregate> aggregates;
  std::vector<BoundPredicate> filters;  ///< conjunctive
  std::vector<BoundJoin> joins;
  std::vector<BoundColumn> group_by;
  std::vector<BoundOrderItem> order_by;
  int64_t limit = -1;

  int num_slots() const { return static_cast<int>(tables.size()); }
  bool HasAggregates() const { return !aggregates.empty(); }

  /// Filters restricted to one slot.
  std::vector<BoundPredicate> FiltersOn(int slot) const;

  /// Join predicates touching one slot.
  std::vector<BoundJoin> JoinsOn(int slot) const;

  /// Sorted, deduplicated set of columns of `slot` referenced anywhere in
  /// the query (select, aggregates, filters, joins, group by, order by).
  std::vector<ColumnId> ReferencedColumns(int slot) const;

  /// Columns of `slot` referenced by filter/join predicates only (the
  /// "sargable" surface used for candidate index generation).
  std::vector<ColumnId> PredicateColumns(int slot) const;

  /// Renders the query back to SQL against `catalog` (used by tests for
  /// round-trips and by AutoPart to save rewritten queries).
  std::string ToSql(const Catalog& catalog) const;

  /// Structural 64-bit hash over all query content (tables, predicates
  /// with constants, joins, grouping, ordering, limit). Two structurally
  /// identical queries hash equal regardless of their ids; INUM keys its
  /// cache with this.
  uint64_t StructuralHash() const;
};

/// A weighted set of queries — the unit of tuning input. The paper's
/// offline components take a Workload; COLT consumes queries one at a
/// time from a stream.
struct Workload {
  std::vector<BoundQuery> queries;
  std::vector<double> weights;  ///< same length; empty = all 1.0

  void Add(BoundQuery q, double weight = 1.0) {
    q.id = static_cast<int>(queries.size());
    queries.push_back(std::move(q));
    weights.push_back(weight);
  }
  double WeightOf(size_t i) const {
    return weights.empty() ? 1.0 : weights[i];
  }
  size_t size() const { return queries.size(); }
  bool empty() const { return queries.empty(); }
};

/// Structural deduplication of a query sequence: `distinct[u]` is the
/// input index of the u-th first-seen distinct query and `owner[i]`
/// maps every input index to its distinct slot. First-seen order is a
/// *determinism invariant*: the parallel costing engine (CostBatch,
/// INUM CostMatrix, CoPhy atom building) assigns work and reports
/// errors by distinct slot, so this order must match what a serial
/// first-occurrence scan produces.
struct StructuralDedup {
  std::vector<size_t> distinct;
  std::vector<size_t> owner;
};

StructuralDedup DedupByStructure(std::span<const BoundQuery> queries);

}  // namespace dbdesign

#endif  // DBDESIGN_SQL_BOUND_QUERY_H_
