#include "sql/binder.h"

#include <unordered_map>

#include "sql/parser.h"
#include "util/str.h"

namespace dbdesign {

namespace {

class Binder {
 public:
  Binder(const Catalog& catalog, const AstQuery& ast)
      : catalog_(catalog), ast_(ast) {}

  Result<BoundQuery> Bind() {
    BoundQuery q;
    // FROM clause: register slots and aliases.
    for (const AstTableRef& ref : ast_.tables) {
      TableId tid = catalog_.FindTable(ref.table);
      if (tid == kInvalidTableId) {
        return Status::BindError("unknown table '" + ref.table + "'");
      }
      const std::string& eff = ref.EffectiveName();
      if (slots_.count(eff) > 0) {
        return Status::BindError("duplicate table alias '" + eff + "'");
      }
      slots_[eff] = static_cast<int>(q.tables.size());
      q.tables.push_back(tid);
      q.aliases.push_back(eff);
    }

    // SELECT list.
    if (ast_.select_star) {
      for (int s = 0; s < q.num_slots(); ++s) {
        const TableDef& def = catalog_.table(q.tables[s]);
        for (ColumnId c = 0; c < def.num_columns(); ++c) {
          q.select_columns.push_back(BoundColumn{s, c});
        }
      }
    } else {
      for (const AstSelectItem& item : ast_.select_items) {
        if (item.is_aggregate) {
          BoundAggregate agg;
          agg.fn = item.agg;
          agg.star = item.agg_star;
          if (!item.agg_star) {
            auto col = Resolve(item.column, q);
            if (!col.ok()) return col.status();
            agg.column = col.value();
          }
          q.aggregates.push_back(agg);
        } else {
          auto col = Resolve(item.column, q);
          if (!col.ok()) return col.status();
          q.select_columns.push_back(col.value());
        }
      }
    }

    // WHERE conjunction.
    for (const AstPredicate& pred : ast_.where) {
      auto left = Resolve(pred.left, q);
      if (!left.ok()) return left.status();
      switch (pred.kind) {
        case AstPredicate::Kind::kColumnEq: {
          auto right = Resolve(pred.right_column, q);
          if (!right.ok()) return right.status();
          if (left.value().slot == right.value().slot) {
            return Status::BindError(
                "same-table column equality is not supported: " +
                pred.left.ToString() + " = " + pred.right_column.ToString());
          }
          q.joins.push_back(BoundJoin{left.value(), right.value()});
          break;
        }
        case AstPredicate::Kind::kBetween: {
          BoundPredicate p;
          p.column = left.value();
          p.op = CompareOp::kGe;
          Status s = CheckLiteral(p.column, pred.value, q);
          if (!s.ok()) return s;
          s = CheckLiteral(p.column, pred.value2, q);
          if (!s.ok()) return s;
          p.value = pred.value;
          p.value2 = pred.value2;
          q.filters.push_back(std::move(p));
          break;
        }
        case AstPredicate::Kind::kComparison: {
          BoundPredicate p;
          p.column = left.value();
          p.op = pred.op;
          Status s = CheckLiteral(p.column, pred.value, q);
          if (!s.ok()) return s;
          p.value = pred.value;
          q.filters.push_back(std::move(p));
          break;
        }
      }
    }

    // GROUP BY / ORDER BY.
    for (const AstColumn& c : ast_.group_by) {
      auto col = Resolve(c, q);
      if (!col.ok()) return col.status();
      q.group_by.push_back(col.value());
    }
    for (const AstOrderItem& o : ast_.order_by) {
      auto col = Resolve(o.column, q);
      if (!col.ok()) return col.status();
      q.order_by.push_back(BoundOrderItem{col.value(), o.descending});
    }
    q.limit = ast_.limit;

    if (!q.aggregates.empty() && !q.select_columns.empty() &&
        q.group_by.empty()) {
      return Status::BindError(
          "mixing aggregates and plain columns requires GROUP BY");
    }
    return q;
  }

 private:
  Result<BoundColumn> Resolve(const AstColumn& col, const BoundQuery& q) {
    if (!col.qualifier.empty()) {
      auto it = slots_.find(col.qualifier);
      if (it == slots_.end()) {
        return Status::BindError("unknown table or alias '" + col.qualifier +
                                 "'");
      }
      int slot = it->second;
      ColumnId cid = catalog_.table(q.tables[slot]).FindColumn(col.name);
      if (cid == kInvalidColumnId) {
        return Status::BindError("unknown column '" + col.ToString() + "'");
      }
      return BoundColumn{slot, cid};
    }
    // Unqualified: must be unambiguous across slots.
    int found_slot = -1;
    ColumnId found_col = kInvalidColumnId;
    for (int s = 0; s < q.num_slots(); ++s) {
      ColumnId cid = catalog_.table(q.tables[s]).FindColumn(col.name);
      if (cid != kInvalidColumnId) {
        if (found_slot >= 0) {
          return Status::BindError("ambiguous column '" + col.name + "'");
        }
        found_slot = s;
        found_col = cid;
      }
    }
    if (found_slot < 0) {
      return Status::BindError("unknown column '" + col.name + "'");
    }
    return BoundColumn{found_slot, found_col};
  }

  Status CheckLiteral(const BoundColumn& col, const Value& v,
                      const BoundQuery& q) const {
    DataType ct = catalog_.table(q.tables[col.slot]).column(col.column).type;
    DataType vt = v.type();
    bool ok = (ct == vt) ||
              (ct == DataType::kDouble && vt == DataType::kInt64) ||
              (ct == DataType::kInt64 && vt == DataType::kDouble);
    if (!ok) {
      return Status::BindError(StrFormat(
          "literal %s has type %s but column has type %s",
          v.ToString().c_str(), DataTypeName(vt), DataTypeName(ct)));
    }
    return Status::OK();
  }

  const Catalog& catalog_;
  const AstQuery& ast_;
  std::unordered_map<std::string, int> slots_;
};

}  // namespace

Result<BoundQuery> BindQuery(const Catalog& catalog, const AstQuery& ast) {
  Binder binder(catalog, ast);
  return binder.Bind();
}

Result<BoundQuery> ParseAndBind(const Catalog& catalog,
                                const std::string& sql) {
  auto ast = ParseQuery(sql);
  if (!ast.ok()) return ast.status();
  return BindQuery(catalog, ast.value());
}

}  // namespace dbdesign
