// Abstract syntax tree for the SQL subset (output of the parser,
// input to the binder).
//
// Supported grammar:
//   query     := SELECT items FROM table_ref (join)* [WHERE conj]
//                [GROUP BY cols] [ORDER BY ord_items] [LIMIT int]
//   items     := '*' | item (',' item)*
//   item      := col | agg '(' (col | '*') ')'
//   join      := ',' table_ref | [INNER] JOIN table_ref ON equi_conj
//   conj      := pred (AND pred)*
//   pred      := col cmp literal | col BETWEEN lit AND lit | col '=' col
//   col       := [alias '.'] name

#ifndef DBDESIGN_SQL_AST_H_
#define DBDESIGN_SQL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/value.h"

namespace dbdesign {

/// Unresolved column reference: optional qualifier + column name.
struct AstColumn {
  std::string qualifier;  ///< table name or alias; empty if unqualified
  std::string name;

  std::string ToString() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Returns the SQL spelling ("=", "<>", ...).
const char* CompareOpName(CompareOp op);

/// One conjunct of the WHERE clause.
struct AstPredicate {
  enum class Kind {
    kComparison,  ///< col op literal
    kBetween,     ///< col BETWEEN lo AND hi
    kColumnEq,    ///< col = col (potential join predicate)
  };
  Kind kind = Kind::kComparison;
  AstColumn left;
  CompareOp op = CompareOp::kEq;
  Value value;             // kComparison; kBetween lower bound
  Value value2;            // kBetween upper bound
  AstColumn right_column;  // kColumnEq
};

enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

/// Returns "count", "sum", ...
const char* AggFnName(AggFn fn);

/// SELECT-list item: a plain column or an aggregate.
struct AstSelectItem {
  bool is_aggregate = false;
  AggFn agg = AggFn::kCount;
  bool agg_star = false;  ///< COUNT(*)
  AstColumn column;       ///< unused when agg_star
};

struct AstTableRef {
  std::string table;
  std::string alias;  ///< empty = table name itself

  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

struct AstOrderItem {
  AstColumn column;
  bool descending = false;
};

/// A parsed (but unresolved) query.
struct AstQuery {
  bool select_star = false;
  std::vector<AstSelectItem> select_items;
  std::vector<AstTableRef> tables;
  /// ON-clause predicates are folded into this conjunction as kColumnEq.
  std::vector<AstPredicate> where;
  std::vector<AstColumn> group_by;
  std::vector<AstOrderItem> order_by;
  int64_t limit = -1;  ///< -1 = no limit
};

}  // namespace dbdesign

#endif  // DBDESIGN_SQL_AST_H_
