// Token definitions for the SQL subset lexer.

#ifndef DBDESIGN_SQL_TOKEN_H_
#define DBDESIGN_SQL_TOKEN_H_

#include <string>

namespace dbdesign {

enum class TokenType {
  kEnd,
  kIdentifier,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  // Keywords.
  kSelect,
  kFrom,
  kWhere,
  kAnd,
  kJoin,
  kInner,
  kOn,
  kGroup,
  kOrder,
  kBy,
  kAsc,
  kDesc,
  kLimit,
  kBetween,
  kAs,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  // Symbols.
  kComma,
  kDot,
  kStar,
  kLParen,
  kRParen,
  kEq,     // =
  kNe,     // <> or !=
  kLt,     // <
  kLe,     // <=
  kGt,     // >
  kGe,     // >=
};

/// Returns a printable token-type name for diagnostics.
const char* TokenTypeName(TokenType type);

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      ///< identifier / literal spelling
  int64_t int_value = 0;
  double double_value = 0.0;
  int position = 0;      ///< byte offset in the input, for error messages
};

}  // namespace dbdesign

#endif  // DBDESIGN_SQL_TOKEN_H_
