// Database: the engine facade bundling catalog, row data, statistics and
// materialized indexes. This is the stand-in for the PostgreSQL instance
// the paper's tool attaches to.

#ifndef DBDESIGN_STORAGE_DATABASE_H_
#define DBDESIGN_STORAGE_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/design.h"
#include "catalog/schema.h"
#include "storage/btree.h"
#include "storage/table_data.h"
#include "util/status.h"

namespace dbdesign {

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const Catalog& catalog() const { return catalog_; }

  /// Creates an empty table.
  Result<TableId> CreateTable(TableDef def);

  /// Appends a row; the caller must match the table's column count/types.
  void InsertRow(TableId table, Row row);

  const TableData& data(TableId table) const { return data_[table]; }
  TableData& mutable_data(TableId table) { return data_[table]; }

  /// Recomputes statistics for one table (ANALYZE).
  void AnalyzeTable(TableId table, const AnalyzeOptions& options = {});
  /// ANALYZE every table.
  void AnalyzeAll(const AnalyzeOptions& options = {});

  const TableStats& stats(TableId table) const { return stats_[table]; }
  const std::vector<TableStats>& all_stats() const { return stats_; }

  /// Physically builds a B-tree for `index`. Fails if already built.
  Status CreateIndex(const IndexDef& index);
  /// Drops a materialized index.
  Status DropIndex(const IndexDef& index);
  /// Returns the materialized B-tree, or nullptr if not built.
  const BTreeIndex* GetIndex(const IndexDef& index) const;

  /// All currently materialized indexes.
  std::vector<IndexDef> MaterializedIndexes() const;

  /// The materialized configuration as a PhysicalDesign.
  PhysicalDesign CurrentDesign() const;

 private:
  Catalog catalog_;
  std::vector<TableData> data_;
  std::vector<TableStats> stats_;
  std::map<std::string, std::pair<IndexDef, BTreeIndex>> indexes_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_STORAGE_DATABASE_H_
