// In-memory row store backing one table, plus ANALYZE.

#ifndef DBDESIGN_STORAGE_TABLE_DATA_H_
#define DBDESIGN_STORAGE_TABLE_DATA_H_

#include <cstdint>
#include <vector>

#include "catalog/schema.h"
#include "catalog/stats.h"
#include "catalog/value.h"

namespace dbdesign {

/// One tuple.
using Row = std::vector<Value>;

/// Physical row identifier within a table (insertion order).
using RowId = uint32_t;

/// Append-only in-memory heap for one table.
class TableData {
 public:
  TableData() = default;
  explicit TableData(int num_columns) : num_columns_(num_columns) {}

  void Reserve(size_t rows) { rows_.reserve(rows); }

  void Append(Row row) {
    rows_.push_back(std::move(row));
  }

  size_t NumRows() const { return rows_.size(); }
  const Row& row(RowId id) const { return rows_[id]; }
  const std::vector<Row>& rows() const { return rows_; }
  int num_columns() const { return num_columns_; }

  /// Copies out one column in physical row order (ANALYZE input).
  std::vector<Value> ColumnValues(ColumnId col) const;

  /// Computes full table statistics.
  TableStats Analyze(const AnalyzeOptions& options = {}) const;

 private:
  int num_columns_ = 0;
  std::vector<Row> rows_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_STORAGE_TABLE_DATA_H_
