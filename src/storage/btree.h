// In-memory B+-tree for materialized secondary indexes.
//
// Keys are composite (one Value per index column) compared
// lexicographically; payloads are RowIds. Supports bulk load, single
// inserts (used by COLT when materializing online), point/range scans,
// and prefix scans for partial-key lookups.

#ifndef DBDESIGN_STORAGE_BTREE_H_
#define DBDESIGN_STORAGE_BTREE_H_

#include <memory>
#include <vector>

#include "catalog/value.h"
#include "storage/table_data.h"

namespace dbdesign {

/// Composite index key.
using IndexKey = std::vector<Value>;

/// Lexicographic comparison; a shorter key that is a prefix of a longer
/// one compares equal on the shared prefix (returns 0), which is what
/// prefix range scans need.
int CompareKeyPrefix(const IndexKey& a, const IndexKey& b);

/// Strict total order used for full-key ordering inside nodes
/// (prefix-equal keys tie-break on length).
bool KeyLess(const IndexKey& a, const IndexKey& b);

/// B+-tree index. Not thread-safe (the engine is single-threaded).
class BTreeIndex {
 public:
  /// Maximum entries per node; small enough to exercise splits in tests.
  static constexpr int kFanout = 64;

  BTreeIndex();
  ~BTreeIndex();
  BTreeIndex(BTreeIndex&&) noexcept;
  BTreeIndex& operator=(BTreeIndex&&) noexcept;
  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  /// Builds the tree from unsorted entries in O(n log n).
  void BulkLoad(std::vector<std::pair<IndexKey, RowId>> entries);

  /// Inserts one entry (duplicates allowed).
  void Insert(IndexKey key, RowId row);

  size_t NumEntries() const { return num_entries_; }
  int Height() const;

  /// Returns row ids whose keys satisfy
  ///   lo (inclusive if lo_inclusive) <= key-prefix <= hi (if hi_inclusive),
  /// where the comparison uses the first |bound| key columns. Passing an
  /// empty `lo`/`hi` leaves that side unbounded. Results are in key order.
  std::vector<RowId> RangeScan(const IndexKey& lo, bool lo_inclusive,
                               const IndexKey& hi, bool hi_inclusive) const;

  /// All row ids in full key order (index-provided interesting order).
  std::vector<RowId> FullScan() const;

  /// Exact-match lookup on a full or prefix key.
  std::vector<RowId> Lookup(const IndexKey& key) const {
    return RangeScan(key, true, key, true);
  }

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  size_t num_entries_ = 0;

  Node* LeftmostLeaf() const;
  Node* FindLeaf(const IndexKey& key) const;
  void InsertIntoLeaf(Node* leaf, IndexKey key, RowId row);
  void SplitChild(Node* parent, int child_idx);
};

}  // namespace dbdesign

#endif  // DBDESIGN_STORAGE_BTREE_H_
