#include "storage/database.h"

namespace dbdesign {

Result<TableId> Database::CreateTable(TableDef def) {
  int num_cols = def.num_columns();
  auto id = catalog_.AddTable(std::move(def));
  if (!id.ok()) return id.status();
  data_.emplace_back(num_cols);
  stats_.emplace_back();
  return id;
}

void Database::InsertRow(TableId table, Row row) {
  data_[table].Append(std::move(row));
}

void Database::AnalyzeTable(TableId table, const AnalyzeOptions& options) {
  stats_[table] = data_[table].Analyze(options);
}

void Database::AnalyzeAll(const AnalyzeOptions& options) {
  for (TableId t = 0; t < catalog_.num_tables(); ++t) {
    AnalyzeTable(t, options);
  }
}

Status Database::CreateIndex(const IndexDef& index) {
  std::string key = index.Key();
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index " + key);
  }
  const TableData& table = data_[index.table];
  std::vector<std::pair<IndexKey, RowId>> entries;
  entries.reserve(table.NumRows());
  for (RowId r = 0; r < table.NumRows(); ++r) {
    IndexKey k;
    k.reserve(index.columns.size());
    for (ColumnId c : index.columns) k.push_back(table.row(r)[c]);
    entries.emplace_back(std::move(k), r);
  }
  BTreeIndex tree;
  tree.BulkLoad(std::move(entries));
  indexes_.emplace(key, std::make_pair(index, std::move(tree)));
  return Status::OK();
}

Status Database::DropIndex(const IndexDef& index) {
  if (indexes_.erase(index.Key()) == 0) {
    return Status::NotFound("index " + index.Key());
  }
  return Status::OK();
}

const BTreeIndex* Database::GetIndex(const IndexDef& index) const {
  auto it = indexes_.find(index.Key());
  return it == indexes_.end() ? nullptr : &it->second.second;
}

std::vector<IndexDef> Database::MaterializedIndexes() const {
  std::vector<IndexDef> out;
  out.reserve(indexes_.size());
  for (const auto& [key, entry] : indexes_) out.push_back(entry.first);
  return out;
}

PhysicalDesign Database::CurrentDesign() const {
  PhysicalDesign design;
  for (const auto& [key, entry] : indexes_) design.AddIndex(entry.first);
  return design;
}

}  // namespace dbdesign
