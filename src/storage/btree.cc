#include "storage/btree.h"

#include <algorithm>

namespace dbdesign {

int CompareKeyPrefix(const IndexKey& a, const IndexKey& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;  // equal on shared prefix
}

bool KeyLess(const IndexKey& a, const IndexKey& b) {
  int c = CompareKeyPrefix(a, b);
  if (c != 0) return c < 0;
  return a.size() < b.size();
}

struct BTreeIndex::Node {
  bool leaf = true;
  /// Leaf: one key per entry. Internal: separators; keys[i] is the first
  /// key of children[i + 1]'s subtree.
  std::vector<IndexKey> keys;
  std::vector<RowId> rows;                       // leaf only
  std::vector<std::unique_ptr<Node>> children;   // internal only
  Node* next = nullptr;                          // leaf chain

  bool Full() const { return static_cast<int>(keys.size()) >= kFanout; }
};

BTreeIndex::BTreeIndex() : root_(std::make_unique<Node>()) {}
BTreeIndex::~BTreeIndex() = default;
BTreeIndex::BTreeIndex(BTreeIndex&&) noexcept = default;
BTreeIndex& BTreeIndex::operator=(BTreeIndex&&) noexcept = default;

void BTreeIndex::BulkLoad(std::vector<std::pair<IndexKey, RowId>> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              int c = CompareKeyPrefix(a.first, b.first);
              if (c != 0) return c < 0;
              return a.second < b.second;
            });
  num_entries_ = entries.size();

  // Build the leaf level.
  std::vector<std::unique_ptr<Node>> level;
  size_t i = 0;
  while (i < entries.size()) {
    auto node = std::make_unique<Node>();
    node->leaf = true;
    size_t take = std::min<size_t>(kFanout, entries.size() - i);
    // Avoid a final tiny leaf: steal from this one if the remainder would
    // be less than half full.
    size_t remaining = entries.size() - i - take;
    if (remaining > 0 && remaining < kFanout / 2) {
      take = (take + remaining) / 2;
    }
    node->keys.reserve(take);
    node->rows.reserve(take);
    for (size_t k = 0; k < take; ++k, ++i) {
      node->keys.push_back(std::move(entries[i].first));
      node->rows.push_back(entries[i].second);
    }
    if (!level.empty()) level.back()->next = node.get();
    level.push_back(std::move(node));
  }
  if (level.empty()) {
    root_ = std::make_unique<Node>();
    return;
  }

  // Build internal levels bottom-up.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    size_t j = 0;
    while (j < level.size()) {
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      size_t take = std::min<size_t>(kFanout, level.size() - j);
      size_t remaining = level.size() - j - take;
      if (remaining > 0 && remaining < 2) take -= 1;
      for (size_t k = 0; k < take; ++k, ++j) {
        if (k > 0) {
          const Node* child = level[j].get();
          const Node* first = child;
          while (!first->leaf) first = first->children.front().get();
          parent->keys.push_back(first->keys.front());
        }
        parent->children.push_back(std::move(level[j]));
      }
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front());
}

int BTreeIndex::Height() const {
  int h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    n = n->children.front().get();
    ++h;
  }
  return h;
}

BTreeIndex::Node* BTreeIndex::LeftmostLeaf() const {
  Node* n = root_.get();
  while (!n->leaf) n = n->children.front().get();
  return n;
}

BTreeIndex::Node* BTreeIndex::FindLeaf(const IndexKey& key) const {
  Node* n = root_.get();
  while (!n->leaf) {
    // Descend into the leftmost child whose range may contain `key`:
    // first child whose separator compares >= key on the shared prefix.
    size_t idx = 0;
    while (idx < n->keys.size() &&
           CompareKeyPrefix(n->keys[idx], key) < 0) {
      ++idx;
    }
    n = n->children[idx].get();
  }
  return n;
}

std::vector<RowId> BTreeIndex::RangeScan(const IndexKey& lo,
                                         bool lo_inclusive,
                                         const IndexKey& hi,
                                         bool hi_inclusive) const {
  std::vector<RowId> out;
  const Node* leaf = lo.empty() ? LeftmostLeaf() : FindLeaf(lo);
  for (; leaf != nullptr; leaf = leaf->next) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      const IndexKey& key = leaf->keys[i];
      if (!lo.empty()) {
        int c = CompareKeyPrefix(key, lo);
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (!hi.empty()) {
        int c = CompareKeyPrefix(key, hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return out;
      }
      out.push_back(leaf->rows[i]);
    }
  }
  return out;
}

std::vector<RowId> BTreeIndex::FullScan() const {
  std::vector<RowId> out;
  out.reserve(num_entries_);
  for (const Node* leaf = LeftmostLeaf(); leaf != nullptr;
       leaf = leaf->next) {
    out.insert(out.end(), leaf->rows.begin(), leaf->rows.end());
  }
  return out;
}

void BTreeIndex::SplitChild(Node* parent, int child_idx) {
  Node* child = parent->children[static_cast<size_t>(child_idx)].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  size_t mid = child->keys.size() / 2;

  right->keys.assign(std::make_move_iterator(child->keys.begin() +
                                             static_cast<long>(mid)),
                     std::make_move_iterator(child->keys.end()));
  child->keys.resize(mid);
  if (child->leaf) {
    right->rows.assign(child->rows.begin() + static_cast<long>(mid),
                       child->rows.end());
    child->rows.resize(mid);
    right->next = child->next;
    child->next = right.get();
    parent->keys.insert(parent->keys.begin() + child_idx,
                        right->keys.front());
  } else {
    // Internal split: the middle separator moves up; right node keeps
    // separators after it and the matching children.
    IndexKey up = std::move(right->keys.front());
    right->keys.erase(right->keys.begin());
    size_t child_mid = mid + 1;
    right->children.assign(
        std::make_move_iterator(child->children.begin() +
                                static_cast<long>(child_mid)),
        std::make_move_iterator(child->children.end()));
    child->children.resize(child_mid);
    parent->keys.insert(parent->keys.begin() + child_idx, std::move(up));
  }
  parent->children.insert(parent->children.begin() + child_idx + 1,
                          std::move(right));
}

void BTreeIndex::InsertIntoLeaf(Node* leaf, IndexKey key, RowId row) {
  auto it = std::upper_bound(leaf->keys.begin(), leaf->keys.end(), key,
                             KeyLess);
  size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  leaf->keys.insert(it, std::move(key));
  leaf->rows.insert(leaf->rows.begin() + static_cast<long>(pos), row);
}

void BTreeIndex::Insert(IndexKey key, RowId row) {
  if (root_->Full()) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  Node* n = root_.get();
  while (!n->leaf) {
    size_t idx = 0;
    while (idx < n->keys.size() && !KeyLess(key, n->keys[idx])) ++idx;
    Node* child = n->children[idx].get();
    if (child->Full()) {
      SplitChild(n, static_cast<int>(idx));
      if (!KeyLess(key, n->keys[idx])) {
        child = n->children[idx + 1].get();
      } else {
        child = n->children[idx].get();
      }
    }
    n = child;
  }
  InsertIntoLeaf(n, std::move(key), row);
  ++num_entries_;
}

}  // namespace dbdesign
