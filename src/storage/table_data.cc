#include "storage/table_data.h"

namespace dbdesign {

std::vector<Value> TableData::ColumnValues(ColumnId col) const {
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) out.push_back(r[col]);
  return out;
}

TableStats TableData::Analyze(const AnalyzeOptions& options) const {
  TableStats stats;
  stats.row_count = static_cast<double>(rows_.size());
  stats.columns.reserve(static_cast<size_t>(num_columns_));
  for (ColumnId c = 0; c < num_columns_; ++c) {
    std::vector<Value> values = ColumnValues(c);
    if (values.empty()) {
      stats.columns.emplace_back();
    } else {
      stats.columns.push_back(BuildColumnStats(values, options));
    }
  }
  return stats;
}

}  // namespace dbdesign
