#include "colt/colt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/str.h"

namespace dbdesign {

double EstimateIndexBuildCost(const DbmsBackend& backend,
                              const IndexDef& index,
                              const CostParams& params) {
  const TableDef& def = backend.catalog().table(index.table);
  const TableStats& stats = backend.stats(index.table);
  IndexSizeEstimate size = backend.EstimateIndexSize(index);
  double rows = std::max(1.0, stats.row_count);
  // Read the heap once, sort the keys, write the index pages.
  return stats.HeapPages(def) * params.seq_page_cost +
         2.0 * rows * std::log2(std::max(2.0, rows)) *
             params.cpu_operator_cost +
         size.total_pages() * params.seq_page_cost;
}

ColtTuner::ColtTuner(DbmsBackend& backend, ColtOptions options)
    : backend_(&backend),
      params_(backend.cost_params()),
      options_(options),
      inum_(backend, options_.inum) {}

ColtTuner::ColtTuner(std::shared_ptr<DbmsBackend> owned, ColtOptions options)
    : owned_backend_(std::move(owned)),
      backend_(owned_backend_.get()),
      params_(backend_->cost_params()),
      options_(options),
      inum_(*backend_, options_.inum) {}

Status ColtTuner::SetConstraints(DesignConstraints constraints) {
  Status s = constraints.Validate(backend_->catalog());
  if (!s.ok()) return s;
  constraints_ = std::move(constraints);

  // Vetoes take effect immediately: drop built vetoed indexes and purge
  // them from the candidate pool so they are never profiled again.
  for (auto it = candidates_.begin(); it != candidates_.end();) {
    if (constraints_.IsVetoed(it->second.index)) {
      if (it->second.built) {
        current_.RemoveIndex(it->second.index);
        events_.push_back(ColtEvent{ColtEvent::Type::kDrop, epoch_,
                                    it->second.index,
                                    it->second.ewma_benefit});
      }
      it = candidates_.erase(it);
    } else {
      it->second.pinned = false;  // re-derived from the new pin list below
      ++it;
    }
  }

  // Pins materialize immediately (paying their build cost) and are
  // exempt from selection, eviction and the drop hysteresis.
  for (const IndexDef& pin : constraints_.pinned_indexes) {
    auto it = candidates_.find(pin.Key());
    if (it == candidates_.end()) {
      Candidate cand;
      cand.index = pin;
      cand.size_pages = backend_->EstimateIndexSize(pin).total_pages();
      cand.build_cost = EstimateIndexBuildCost(*backend_, pin, params_);
      cand.last_seen_epoch = epoch_;
      it = candidates_.emplace(pin.Key(), std::move(cand)).first;
    }
    it->second.pinned = true;
    if (!it->second.built) {
      current_.AddIndex(pin);
      it->second.built = true;
      cumulative_build_cost_ += it->second.build_cost;
      events_.push_back(ColtEvent{ColtEvent::Type::kBuild, epoch_, pin,
                                  it->second.ewma_benefit});
    }
  }
  return Status::OK();
}

void ColtTuner::ExtractCandidates(const BoundQuery& query) {
  for (int s = 0; s < query.num_slots(); ++s) {
    for (ColumnId c : query.PredicateColumns(s)) {
      IndexDef idx;
      idx.table = query.tables[s];
      idx.columns = {c};  // COLT proposes single-column indexes only
      if (constraints_.IsVetoed(idx)) continue;
      std::string key = idx.Key();
      auto it = candidates_.find(key);
      if (it == candidates_.end()) {
        if (static_cast<int>(candidates_.size()) >=
            options_.max_candidates) {
          // Evict the least recently seen unbuilt candidate.
          auto victim = candidates_.end();
          for (auto cit = candidates_.begin(); cit != candidates_.end();
               ++cit) {
            if (cit->second.built) continue;
            if (victim == candidates_.end() ||
                cit->second.last_seen_epoch <
                    victim->second.last_seen_epoch) {
              victim = cit;
            }
          }
          if (victim == candidates_.end()) continue;
          candidates_.erase(victim);
        }
        Candidate cand;
        cand.index = idx;
        cand.size_pages = backend_->EstimateIndexSize(idx).total_pages();
        cand.build_cost = EstimateIndexBuildCost(*backend_, idx, params_);
        cand.last_seen_epoch = epoch_;
        it = candidates_.emplace(key, std::move(cand)).first;
      }
      it->second.last_seen_epoch = epoch_;
      it->second.hits++;
    }
  }
}

double ColtTuner::OnQuery(const BoundQuery& query) {
  // Intern the query's template (structurally verified on signature
  // hits). Repeated instances share the representative's cached cost:
  // INUM populates once per template, and every later instance is a
  // pure cache reuse regardless of its constants.
  size_t cls = templates_.AddInstance(query);
  const BoundQuery& rep = templates_.classes()[cls].representative;
  Result<double> costed = inum_.TryCost(rep, current_);
  if (!costed.ok()) {
    // Degraded: the query is observed (template interned, candidates
    // extracted) but not costed — no sentinel enters the accounting.
    ++backend_errors_;
    last_backend_error_ = costed.status();
  }
  double cost = costed.value_or(0.0);
  cumulative_query_cost_ += cost;
  if (enabled_) {
    ExtractCandidates(query);
  }
  epoch_counts_[cls] += 1.0;
  ++epoch_instances_;
  if (epoch_instances_ >= options_.epoch_length) {
    EndEpoch();
  }
  return cost;
}

void ColtTuner::EndEpoch() {
  try {
    EndEpochImpl();
  } catch (const StatusException& e) {
    // Backend failure mid-rollup: skip profiling and configuration
    // changes for this epoch (EWMA updates already applied stand —
    // they came from successful calls), keep the current design, and
    // keep tuning. The tuner never aborts on a backend hiccup.
    ++degraded_epochs_;
    last_backend_error_ = e.status();
    DBD_LOG_WARN("COLT epoch " + std::to_string(epoch_) +
                 " degraded (no profiling/selection): " +
                 e.status().ToString());
    ColtEpochReport report;
    report.epoch = epoch_;
    report.epoch_templates = static_cast<int>(epoch_counts_.size());
    RollEpoch(std::move(report));
  }
}

void ColtTuner::RollEpoch(ColtEpochReport report) {
  report.config_size = static_cast<int>(current_.indexes().size());
  epochs_.push_back(std::move(report));
  epoch_counts_.clear();
  epoch_instances_ = 0;
  ++epoch_;
}

void ColtTuner::EndEpochImpl() {
  ColtEpochReport report;
  report.epoch = epoch_;
  report.epoch_templates = static_cast<int>(epoch_counts_.size());

  // Epoch costs under the live design and under the empty baseline,
  // evaluated on the epoch's compressed form: one representative per
  // template class, weighted by its instance count. Profiling work in
  // this function scales with epoch_templates, not epoch_length.
  Workload epoch_w;
  for (const auto& [cls, count] : epoch_counts_) {
    epoch_w.Add(templates_.classes()[cls].representative, count);
  }
  report.observed_cost = inum_.WorkloadCost(epoch_w, current_);
  report.baseline_cost = inum_.WorkloadCost(epoch_w, PhysicalDesign{});

  if (!enabled_) {
    RollEpoch(std::move(report));
    return;
  }

  // --- Profiling under the what-if budget ---
  // Rank candidates by epoch interest (hits), break ties by EWMA.
  std::vector<Candidate*> ranked;
  for (auto& [key, cand] : candidates_) ranked.push_back(&cand);
  std::sort(ranked.begin(), ranked.end(), [](Candidate* a, Candidate* b) {
    if (a->hits != b->hits) return a->hits > b->hits;
    return a->ewma_benefit > b->ewma_benefit;
  });

  int budget = options_.whatif_budget_per_epoch;
  for (Candidate* cand : ranked) {
    double measured;
    if (budget > 0) {
      PhysicalDesign with = current_;
      PhysicalDesign without = current_;
      bool was_built = with.HasIndex(cand->index);
      if (was_built) {
        without.RemoveIndex(cand->index);
      } else {
        with.AddIndex(cand->index);
      }
      measured = inum_.WorkloadCost(epoch_w, without) -
                 inum_.WorkloadCost(epoch_w, with);
      --budget;
      ++report.whatif_calls;
    } else {
      // Unprofiled this epoch: decay toward zero.
      measured = cand->hits > 0 ? cand->ewma_benefit : 0.0;
    }
    cand->ewma_benefit = options_.ewma_alpha * measured +
                         (1.0 - options_.ewma_alpha) * cand->ewma_benefit;
    cand->hits = 0;
  }

  // --- Selection: density-greedy knapsack with pairwise improvement ---
  // DBA pins are pre-selected (never ranked, never displaced); the
  // knapsack fills whatever budget and per-table headroom they leave.
  // Built candidates must clear the drop floor to stay in contention;
  // otherwise a once-useful index would be re-selected forever on the
  // strength of its decaying EWMA tail.
  double space_budget =
      constraints_.EffectiveBudget(options_.storage_budget_pages);
  std::vector<Candidate*> selected;
  double used_pages = 0.0;
  std::map<TableId, int> per_table;
  for (auto& [key, cand] : candidates_) {
    if (cand.pinned) {
      selected.push_back(&cand);
      used_pages += cand.size_pages;
      per_table[cand.index.table]++;
    }
  }
  std::vector<Candidate*> pool;
  for (auto& [key, cand] : candidates_) {
    if (cand.pinned) continue;
    double floor =
        options_.drop_fraction *
        (cand.build_cost / std::max(1.0, options_.amortization_epochs));
    double admission = cand.built ? floor : 0.0;
    if (cand.ewma_benefit > admission) pool.push_back(&cand);
  }
  std::sort(pool.begin(), pool.end(), [](Candidate* a, Candidate* b) {
    return a->ewma_benefit / std::max(1.0, a->size_pages) >
           b->ewma_benefit / std::max(1.0, b->size_pages);
  });
  for (Candidate* c : pool) {
    if (used_pages + c->size_pages > space_budget) continue;
    if (per_table[c->index.table] + 1 >
        constraints_.TableCapOrUnlimited(c->index.table)) {
      continue;
    }
    selected.push_back(c);
    used_pages += c->size_pages;
    per_table[c->index.table]++;
  }
  // Pairwise improvement: try swapping an unselected candidate in for a
  // selected (unpinned) one when it raises total benefit within the
  // budget and table caps.
  bool improved = true;
  while (improved) {
    improved = false;
    for (Candidate* out : pool) {
      if (std::find(selected.begin(), selected.end(), out) !=
          selected.end()) {
        continue;
      }
      for (size_t i = 0; i < selected.size(); ++i) {
        if (selected[i]->pinned) continue;
        double new_pages =
            used_pages - selected[i]->size_pages + out->size_pages;
        if (new_pages > space_budget) continue;
        if (out->index.table != selected[i]->index.table &&
            per_table[out->index.table] + 1 >
                constraints_.TableCapOrUnlimited(out->index.table)) {
          continue;
        }
        if (out->ewma_benefit > selected[i]->ewma_benefit + 1e-9) {
          used_pages = new_pages;
          per_table[selected[i]->index.table]--;
          per_table[out->index.table]++;
          selected[i] = out;
          improved = true;
          break;
        }
      }
      if (improved) break;
    }
  }

  // --- Apply with hysteresis ---
  // Drops first, so freed space is available to new builds this epoch.
  double materialized_pages = 0.0;
  for (auto& [key, cand] : candidates_) {
    if (cand.built) materialized_pages += cand.size_pages;
  }
  for (auto& [key, cand] : candidates_) {
    bool want =
        std::find(selected.begin(), selected.end(), &cand) != selected.end();
    if (!want && cand.built && !cand.pinned) {
      double amortized =
          cand.build_cost / std::max(1.0, options_.amortization_epochs);
      if (cand.ewma_benefit < options_.drop_fraction * amortized) {
        current_.RemoveIndex(cand.index);
        cand.built = false;
        materialized_pages -= cand.size_pages;
        events_.push_back(ColtEvent{ColtEvent::Type::kDrop, epoch_,
                                    cand.index, cand.ewma_benefit});
      }
    }
  }
  for (auto& [key, cand] : candidates_) {
    bool want =
        std::find(selected.begin(), selected.end(), &cand) != selected.end();
    if (want && !cand.built) {
      double amortized_gain =
          cand.ewma_benefit * options_.amortization_epochs;
      events_.push_back(ColtEvent{ColtEvent::Type::kAlert, epoch_,
                                  cand.index, cand.ewma_benefit});
      // The *materialized* configuration must respect the space budget
      // even while older selections are still built.
      bool fits = materialized_pages + cand.size_pages <= space_budget;
      if (fits &&
          amortized_gain > cand.build_cost * options_.build_hysteresis) {
        current_.AddIndex(cand.index);
        cand.built = true;
        materialized_pages += cand.size_pages;
        cumulative_build_cost_ += cand.build_cost;
        events_.push_back(ColtEvent{ColtEvent::Type::kBuild, epoch_,
                                    cand.index, cand.ewma_benefit});
      }
    }
  }

  DBD_LOG_DEBUG(StrFormat(
      "COLT epoch %d: cost %.1f (baseline %.1f), %d indexes, %d whatif, "
      "%d templates",
      epoch_, report.observed_cost, report.baseline_cost,
      static_cast<int>(current_.indexes().size()), report.whatif_calls,
      report.epoch_templates));
  RollEpoch(std::move(report));
}

}  // namespace dbdesign
