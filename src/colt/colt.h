// COLT: continuous on-line tuning (paper §3.2.2, ref [11] — Schnaitter,
// Abiteboul, Milo, Polyzotis, SIGMOD 2006).
//
// COLT monitors the incoming query stream in epochs. Per epoch it
//   * extracts candidate single-column indexes from query predicates
//     (the paper: "the new proposed configuration includes only single
//     column indexes"),
//   * profiles a bounded number of candidates with what-if calls
//     (INUM-backed, so profiling is cheap) and tracks per-candidate
//     benefit with an exponentially weighted moving average,
//   * selects a configuration under the space budget (density-greedy
//     knapsack with pairwise improvement),
//   * raises an alert when the selection differs from the current
//     configuration, and materializes/drops indexes subject to a
//     build-cost hysteresis so oscillating workloads do not thrash.
//
// The tuner models costs; it can optionally physically build indexes
// when attached to a mutable Database.

#ifndef DBDESIGN_COLT_COLT_H_
#define DBDESIGN_COLT_COLT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/constraints.h"
#include "inum/inum.h"
#include "workload/compress.h"

namespace dbdesign {

class Database;  // legacy convenience constructor only

struct ColtOptions {
  int epoch_length = 25;  ///< queries per epoch
  double storage_budget_pages = 1e9;
  /// What-if profiling budget: candidate evaluations per epoch.
  int whatif_budget_per_epoch = 24;
  double ewma_alpha = 0.4;
  /// Build only when EWMA benefit × horizon > build cost × hysteresis.
  double build_hysteresis = 1.5;
  /// Amortization horizon, in epochs.
  double amortization_epochs = 4.0;
  /// Drop a built index when its EWMA benefit falls below this fraction
  /// of its amortized build cost.
  double drop_fraction = 0.1;
  /// Candidate pool cap (least-recently-seen evicted).
  int max_candidates = 48;
  /// Cost-model options for the tuner's INUM instance; force_exact
  /// routes every profiling call through the backend (fault testing).
  InumOptions inum;
};

/// Estimated cost of physically building an index (page writes + sort
/// CPU), in optimizer cost units.
double EstimateIndexBuildCost(const DbmsBackend& backend,
                              const IndexDef& index,
                              const CostParams& params);
/// Legacy convenience overload (defined in backend/compat.cc).
double EstimateIndexBuildCost(const Database& db, const IndexDef& index,
                              const CostParams& params);

struct ColtEvent {
  enum class Type { kBuild, kDrop, kAlert };
  Type type = Type::kAlert;
  int epoch = 0;
  IndexDef index;
  double expected_benefit_per_epoch = 0.0;
};

struct ColtEpochReport {
  int epoch = 0;
  double observed_cost = 0.0;  ///< epoch queries under the live design
  double baseline_cost = 0.0;  ///< same queries with no indexes at all
  int whatif_calls = 0;
  int config_size = 0;  ///< indexes materialized at epoch end
  /// Distinct template classes seen this epoch; the epoch's profiling
  /// cost scales with this, not with epoch_length.
  int epoch_templates = 0;
};

class ColtTuner {
 public:
  /// Attaches to a backend (non-owning); cost parameters come from it.
  explicit ColtTuner(DbmsBackend& backend, ColtOptions options = {});

  /// Legacy convenience: wraps `db` in an owned InMemoryBackend (defined
  /// in backend/compat.cc).
  ColtTuner(const Database& db, CostParams params = {},
            ColtOptions options = {});

  /// Feeds one query from the stream; returns its observed (modeled)
  /// cost under the current configuration. Bookkeeping is keyed by
  /// TemplateSignature (collision-verified): repeated instances of one
  /// template share its epoch statistics and its cached representative
  /// cost, so a template-heavy stream costs one INUM population per
  /// template — not per distinct constant instantiation.
  double OnQuery(const BoundQuery& query);

  /// Template classes observed so far (signature, representative,
  /// cumulative weight/count), in first-seen order.
  const std::vector<TemplateClass>& template_classes() const {
    return templates_.classes();
  }
  size_t num_template_classes() const { return templates_.size(); }

  /// Cost-model counters (tests assert populations scale with template
  /// classes, not stream length).
  const InumStats& inum_stats() const { return inum_.stats(); }

  /// The paper: continuous tuning "can be enabled or disabled in
  /// accordance with workload or administrator's will". While disabled,
  /// queries are still observed but no changes are made.
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Installs DBA constraints on the online tuner. Pinned indexes are
  /// materialized immediately (paying their build cost) and never
  /// dropped; vetoed indexes/columns are dropped if built and never
  /// profiled again; per-table caps and the storage budget bound every
  /// future selection. Partitioning fields are ignored (COLT only
  /// manages indexes).
  Status SetConstraints(DesignConstraints constraints);
  const DesignConstraints& constraints() const { return constraints_; }

  const PhysicalDesign& current_design() const { return current_; }
  const std::vector<ColtEvent>& events() const { return events_; }
  const std::vector<ColtEpochReport>& epochs() const { return epochs_; }

  double cumulative_query_cost() const { return cumulative_query_cost_; }
  double cumulative_build_cost() const { return cumulative_build_cost_; }
  double cumulative_cost() const {
    return cumulative_query_cost_ + cumulative_build_cost_;
  }

  // --- Degraded operation (backend down) ---
  // Continuous tuning must survive a flaky backend: a failed cost call
  // skips that query's cost accounting (the query is still observed and
  // its template interned), and a failed epoch rollup skips profiling
  // and configuration changes for that epoch — the tuner never aborts
  // and never bakes a sentinel cost into its EWMA state.
  /// Queries whose cost call failed (observed but not costed).
  uint64_t backend_errors() const { return backend_errors_; }
  /// Epochs that ended without profiling/selection because the backend
  /// was unreachable.
  uint64_t degraded_epochs() const { return degraded_epochs_; }
  /// The most recent backend failure (OK if none).
  const Status& last_backend_error() const { return last_backend_error_; }

 private:
  struct Candidate {
    IndexDef index;
    double size_pages = 0.0;
    double build_cost = 0.0;
    double ewma_benefit = 0.0;  ///< per-epoch benefit estimate
    int last_seen_epoch = 0;
    int hits = 0;  ///< queries referencing the column this epoch
    bool built = false;
    bool pinned = false;  ///< DBA-mandated: always selected, never dropped
  };

  /// Owning constructor used by the legacy Database path.
  ColtTuner(std::shared_ptr<DbmsBackend> owned, ColtOptions options);

  void ExtractCandidates(const BoundQuery& query);
  void EndEpoch();
  /// Epoch rollup body; throws StatusException on backend failure
  /// (EndEpoch converts that into a degraded epoch).
  void EndEpochImpl();
  /// Rolls epoch bookkeeping forward (shared by the normal and
  /// degraded epoch paths).
  void RollEpoch(ColtEpochReport report);

  std::shared_ptr<DbmsBackend> owned_backend_;  // legacy path only
  DbmsBackend* backend_;
  CostParams params_;
  ColtOptions options_;
  InumCostModel inum_;
  bool enabled_ = true;
  DesignConstraints constraints_;

  PhysicalDesign current_;
  std::map<std::string, Candidate> candidates_;
  /// Template classes over the whole stream (class ids are stable;
  /// COLT never drops a class).
  TemplateClassTable templates_;
  /// class id -> instances seen this epoch (ordered for determinism).
  std::map<size_t, double> epoch_counts_;
  int epoch_instances_ = 0;
  int epoch_ = 0;

  std::vector<ColtEvent> events_;
  std::vector<ColtEpochReport> epochs_;
  double cumulative_query_cost_ = 0.0;
  double cumulative_build_cost_ = 0.0;
  uint64_t backend_errors_ = 0;
  uint64_t degraded_epochs_ = 0;
  Status last_backend_error_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_COLT_COLT_H_
