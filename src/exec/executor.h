// Plan executor: interprets optimizer plans against the Database's row
// store and materialized B-trees, producing result rows.
//
// The executor exists to ground the cost model: integration tests verify
// that every plan the optimizer emits — under any physical design —
// computes the same result as every other plan for the same query.

#ifndef DBDESIGN_EXEC_EXECUTOR_H_
#define DBDESIGN_EXEC_EXECUTOR_H_

#include <vector>

#include "optimizer/plan.h"
#include "storage/database.h"
#include "util/status.h"

namespace dbdesign {

/// Per-operator runtime statistics (EXPLAIN ANALYZE-style): lets tests
/// and tools compare the optimizer's cardinality estimates against what
/// actually flowed through each operator.
struct OperatorProfile {
  const PlanNode* node = nullptr;
  size_t actual_rows = 0;
  double estimated_rows = 0.0;

  /// Ratio of the larger to the smaller of actual/estimated (>= 1; the
  /// standard "q-error" measure of estimation quality).
  double QError() const {
    double a = std::max<double>(1.0, static_cast<double>(actual_rows));
    double e = std::max(1.0, estimated_rows);
    return a > e ? a / e : e / a;
  }
};

using ExecutionProfile = std::vector<OperatorProfile>;

class Executor {
 public:
  explicit Executor(const Database& db) : db_(&db) {}

  /// Runs `plan` for `query`. Output layout: one Value per SELECT-list
  /// column in listed order, followed by one Value per aggregate.
  /// When `profile` is non-null, per-operator actual row counts are
  /// appended to it (tuple-stage operators only).
  Result<std::vector<Row>> Execute(const BoundQuery& query,
                                   const PlanNode& plan,
                                   ExecutionProfile* profile = nullptr);

  /// Reference evaluator: executes the query by brute force (cartesian
  /// enumeration + filters), independent of any plan. Used by tests as
  /// ground truth.
  std::vector<Row> ExecuteNaive(const BoundQuery& query);

 private:
  const Database* db_;
};

/// Canonicalizes a result set for order-insensitive comparison (sorts
/// rows by their rendered text). Tests compare plans against the naive
/// evaluator with this.
std::vector<std::string> CanonicalizeResult(const std::vector<Row>& rows);

}  // namespace dbdesign

#endif  // DBDESIGN_EXEC_EXECUTOR_H_
