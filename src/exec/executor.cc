#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/str.h"

namespace dbdesign {

namespace {

constexpr int kMaxSlots = 8;

/// An intermediate tuple: one row pointer per FROM slot (nullptr if the
/// slot has not been joined in yet).
struct ExecTuple {
  const Row* rows[kMaxSlots] = {nullptr};

  const Value& Get(const BoundColumn& c) const {
    return (*rows[c.slot])[c.column];
  }
};

bool EvalPredicate(const BoundPredicate& p, const Value& v) {
  if (p.value2.has_value()) {
    return v >= p.value && v <= *p.value2;
  }
  switch (p.op) {
    case CompareOp::kEq: return v == p.value;
    case CompareOp::kNe: return !(v == p.value);
    case CompareOp::kLt: return v < p.value;
    case CompareOp::kLe: return v <= p.value;
    case CompareOp::kGt: return v > p.value;
    case CompareOp::kGe: return v >= p.value;
  }
  return false;
}

bool PassesFilters(const ExecTuple& t,
                   const std::vector<BoundPredicate>& preds) {
  for (const BoundPredicate& p : preds) {
    if (!EvalPredicate(p, t.Get(p.column))) return false;
  }
  return true;
}

bool PassesJoins(const ExecTuple& t, const std::vector<BoundJoin>& joins) {
  for (const BoundJoin& j : joins) {
    if (!(t.Get(j.left) == t.Get(j.right))) return false;
  }
  return true;
}

/// Running aggregate state for one group.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  bool has_value = false;
  Value min_v;
  Value max_v;
};

class PlanInterpreter {
 public:
  PlanInterpreter(const Database& db, const BoundQuery& query,
                  ExecutionProfile* profile = nullptr)
      : db_(db), query_(query), profile_(profile) {}

  Result<std::vector<Row>> Run(const PlanNode& plan) {
    // Locate the aggregation node (at most one) and split the plan into
    // below-aggregation (tuples) and above-aggregation (rows) stages.
    auto tuples_or = EvalToRows(plan);
    if (!tuples_or.ok()) return tuples_or.status();
    return std::move(tuples_or).value();
  }

  std::vector<Row> Naive() {
    std::vector<ExecTuple> tuples = CartesianAll();
    std::vector<ExecTuple> filtered;
    for (const ExecTuple& t : tuples) {
      if (PassesFilters(t, query_.filters) && PassesJoins(t, query_.joins)) {
        filtered.push_back(t);
      }
    }
    std::vector<Row> rows;
    if (query_.HasAggregates()) {
      rows = Aggregate(filtered);
    } else {
      rows = Project(filtered);
    }
    SortRowsForOrderBy(&rows);
    if (query_.limit >= 0 &&
        rows.size() > static_cast<size_t>(query_.limit)) {
      rows.resize(static_cast<size_t>(query_.limit));
    }
    return rows;
  }

 private:
  // --- Row-stage evaluation (handles nodes above aggregation) ---
  Result<std::vector<Row>> EvalToRows(const PlanNode& node) {
    switch (node.type) {
      case PlanNodeType::kLimit: {
        auto rows = EvalToRows(*node.child(0));
        if (!rows.ok()) return rows;
        std::vector<Row> r = std::move(rows).value();
        if (node.limit_count >= 0 &&
            r.size() > static_cast<size_t>(node.limit_count)) {
          r.resize(static_cast<size_t>(node.limit_count));
        }
        return r;
      }
      case PlanNodeType::kSort: {
        if (ContainsAggregate(*node.child(0))) {
          auto rows = EvalToRows(*node.child(0));
          if (!rows.ok()) return rows;
          std::vector<Row> r = std::move(rows).value();
          SortRowsBy(&r, node.sort_cols);
          return r;
        }
        auto tuples = EvalTuples(node);
        if (!tuples.ok()) return tuples.status();
        return Project(tuples.value());
      }
      case PlanNodeType::kHashAggregate:
      case PlanNodeType::kGroupAggregate: {
        auto tuples = EvalTuples(*node.child(0));
        if (!tuples.ok()) return tuples.status();
        return Aggregate(tuples.value());
      }
      default: {
        auto tuples = EvalTuples(node);
        if (!tuples.ok()) return tuples.status();
        return Project(tuples.value());
      }
    }
  }

  static bool ContainsAggregate(const PlanNode& node) {
    if (node.type == PlanNodeType::kHashAggregate ||
        node.type == PlanNodeType::kGroupAggregate) {
      return true;
    }
    for (const PlanNodeRef& c : node.children) {
      if (ContainsAggregate(*c)) return true;
    }
    return false;
  }

  // --- Tuple-stage evaluation ---
  Result<std::vector<ExecTuple>> EvalTuples(const PlanNode& node) {
    auto result = EvalTuplesInner(node);
    if (profile_ != nullptr && result.ok()) {
      profile_->push_back(
          OperatorProfile{&node, result.value().size(), node.rows});
    }
    return result;
  }

  Result<std::vector<ExecTuple>> EvalTuplesInner(const PlanNode& node) {
    switch (node.type) {
      case PlanNodeType::kSeqScan:
        return ScanTable(node, /*use_index=*/false);
      case PlanNodeType::kIndexScan:
      case PlanNodeType::kIndexOnlyScan:
        return ScanTable(node, /*use_index=*/true);
      case PlanNodeType::kSort: {
        auto child = EvalTuples(*node.child(0));
        if (!child.ok()) return child;
        std::vector<ExecTuple> tuples = std::move(child).value();
        SortTuplesBy(&tuples, node.sort_cols);
        return tuples;
      }
      case PlanNodeType::kNestLoopJoin:
        return NestLoop(node);
      case PlanNodeType::kHashJoin:
        return Hash(node);
      case PlanNodeType::kMergeJoin:
        return Merge(node);
      case PlanNodeType::kIndexNestLoopJoin:
        return IndexNestLoop(node);
      case PlanNodeType::kAbstractLeaf:
        return Status::Internal("abstract INUM leaf is not executable");
      default:
        return Status::Internal(
            StrFormat("unexpected node %s below aggregation",
                      PlanNodeTypeName(node.type)));
    }
  }

  Result<std::vector<ExecTuple>> ScanTable(const PlanNode& node,
                                           bool use_index) {
    int slot = node.slot;
    const TableData& data = db_.data(query_.tables[slot]);
    std::vector<ExecTuple> out;

    if (use_index && node.index.has_value()) {
      const BTreeIndex* tree = db_.GetIndex(*node.index);
      if (tree == nullptr) {
        return Status::NotFound(
            "plan uses index " + node.index->Key() +
            " which is not materialized (what-if plans are not executable)");
      }
      // Build the key range from equality prefix + one range column.
      IndexKey lo;
      IndexKey hi;
      bool lo_inc = true;
      bool hi_inc = true;
      bool open_lo = false;
      bool open_hi = false;
      for (ColumnId col : node.index->columns) {
        const BoundPredicate* eq = nullptr;
        const BoundPredicate* range = nullptr;
        for (const BoundPredicate& p : node.index_conds) {
          if (p.column.column != col) continue;
          if (p.IsEquality()) {
            eq = &p;
          } else {
            range = &p;
          }
        }
        if (eq != nullptr && range == nullptr) {
          if (!open_lo) lo.push_back(eq->value);
          if (!open_hi) hi.push_back(eq->value);
          continue;
        }
        if (range != nullptr) {
          if (range->value2.has_value()) {  // BETWEEN
            if (!open_lo) lo.push_back(range->value);
            if (!open_hi) hi.push_back(*range->value2);
          } else {
            switch (range->op) {
              case CompareOp::kGt:
                if (!open_lo) lo.push_back(range->value);
                lo_inc = false;
                open_hi = true;
                break;
              case CompareOp::kGe:
                if (!open_lo) lo.push_back(range->value);
                open_hi = true;
                break;
              case CompareOp::kLt:
                if (!open_hi) hi.push_back(range->value);
                hi_inc = false;
                open_lo = true;
                break;
              case CompareOp::kLe:
                if (!open_hi) hi.push_back(range->value);
                open_lo = true;
                break;
              default:
                open_lo = open_hi = true;
                break;
            }
          }
        }
        break;  // range column ends the prefix
      }
      std::vector<RowId> ids = tree->RangeScan(lo, lo_inc, hi, hi_inc);
      for (RowId id : ids) {
        ExecTuple t;
        t.rows[slot] = &data.row(id);
        // Re-check all index conds (defensive: prefix scan may over-read
        // for non-between inequality shapes) plus residual filters.
        if (PassesFilters(t, node.index_conds) &&
            PassesFilters(t, node.filter)) {
          out.push_back(t);
        }
      }
      return out;
    }

    for (RowId id = 0; id < data.NumRows(); ++id) {
      ExecTuple t;
      t.rows[slot] = &data.row(id);
      if (PassesFilters(t, node.filter) &&
          PassesFilters(t, node.index_conds)) {
        out.push_back(t);
      }
    }
    return out;
  }

  static ExecTuple Combine(const ExecTuple& a, const ExecTuple& b) {
    ExecTuple t = a;
    for (int s = 0; s < kMaxSlots; ++s) {
      if (b.rows[s] != nullptr) t.rows[s] = b.rows[s];
    }
    return t;
  }

  std::vector<BoundJoin> AllJoinConds(const PlanNode& node) const {
    std::vector<BoundJoin> conds;
    if (node.join_cond.has_value()) conds.push_back(*node.join_cond);
    conds.insert(conds.end(), node.extra_join_conds.begin(),
                 node.extra_join_conds.end());
    return conds;
  }

  Result<std::vector<ExecTuple>> NestLoop(const PlanNode& node) {
    auto outer = EvalTuples(*node.child(0));
    if (!outer.ok()) return outer;
    auto inner = EvalTuples(*node.child(1));
    if (!inner.ok()) return inner;
    std::vector<BoundJoin> conds = AllJoinConds(node);
    std::vector<ExecTuple> out;
    for (const ExecTuple& o : outer.value()) {
      for (const ExecTuple& i : inner.value()) {
        ExecTuple t = Combine(o, i);
        if (PassesJoins(t, conds)) out.push_back(t);
      }
    }
    return out;
  }

  Result<std::vector<ExecTuple>> Hash(const PlanNode& node) {
    auto outer = EvalTuples(*node.child(0));
    if (!outer.ok()) return outer;
    auto inner = EvalTuples(*node.child(1));
    if (!inner.ok()) return inner;
    const BoundJoin& j = *node.join_cond;
    // Orient the key columns: join_cond.left belongs to the outer subtree.
    // The table stores inner ROW POSITIONS, and matches within a probe
    // are emitted in ascending position: unordered_multimap::equal_range
    // yields duplicates in an implementation-defined order, so emitting
    // straight from it would make join output order (and thus any
    // downstream result without an ORDER BY) drift across standard
    // libraries — the match set is sorted back into inner-row order.
    std::unordered_multimap<uint64_t, size_t> table;
    table.reserve(inner.value().size());
    for (size_t i = 0; i < inner.value().size(); ++i) {
      table.emplace(inner.value()[i].Get(j.right).Hash(), i);
    }
    std::vector<ExecTuple> out;
    std::vector<BoundJoin> conds = AllJoinConds(node);
    std::vector<size_t> matches;
    for (const ExecTuple& o : outer.value()) {
      auto [lo_it, hi_it] = table.equal_range(o.Get(j.left).Hash());
      matches.clear();
      for (auto it = lo_it; it != hi_it; ++it) matches.push_back(it->second);
      std::sort(matches.begin(), matches.end());
      for (size_t i : matches) {
        ExecTuple t = Combine(o, inner.value()[i]);
        if (PassesJoins(t, conds)) out.push_back(t);
      }
    }
    return out;
  }

  Result<std::vector<ExecTuple>> Merge(const PlanNode& node) {
    auto outer = EvalTuples(*node.child(0));
    if (!outer.ok()) return outer;
    auto inner = EvalTuples(*node.child(1));
    if (!inner.ok()) return inner;
    const BoundJoin& j = *node.join_cond;
    std::vector<ExecTuple> lhs = std::move(outer).value();
    std::vector<ExecTuple> rhs = std::move(inner).value();
    // Defensive sort: plans built by the enumerator always sort inputs,
    // but re-sorting keeps the executor correct for hand-built plans.
    SortTuplesBy(&lhs, {j.left});
    SortTuplesBy(&rhs, {j.right});
    std::vector<BoundJoin> conds = AllJoinConds(node);
    std::vector<ExecTuple> out;
    size_t a = 0;
    size_t b = 0;
    while (a < lhs.size() && b < rhs.size()) {
      int c = lhs[a].Get(j.left).Compare(rhs[b].Get(j.right));
      if (c < 0) {
        ++a;
      } else if (c > 0) {
        ++b;
      } else {
        // Equal group: cross product of matching runs.
        size_t a_end = a;
        while (a_end < lhs.size() &&
               lhs[a_end].Get(j.left) == rhs[b].Get(j.right)) {
          ++a_end;
        }
        size_t b_end = b;
        while (b_end < rhs.size() &&
               rhs[b_end].Get(j.right) == lhs[a].Get(j.left)) {
          ++b_end;
        }
        for (size_t x = a; x < a_end; ++x) {
          for (size_t y = b; y < b_end; ++y) {
            ExecTuple t = Combine(lhs[x], rhs[y]);
            if (PassesJoins(t, conds)) out.push_back(t);
          }
        }
        a = a_end;
        b = b_end;
      }
    }
    return out;
  }

  Result<std::vector<ExecTuple>> IndexNestLoop(const PlanNode& node) {
    auto outer = EvalTuples(*node.child(0));
    if (!outer.ok()) return outer;
    const BoundJoin& j = *node.join_cond;
    int inner_slot = node.slot;
    const TableData& data = db_.data(query_.tables[inner_slot]);
    std::vector<BoundJoin> conds = AllJoinConds(node);
    std::vector<ExecTuple> out;

    const BTreeIndex* tree =
        node.index.has_value() ? db_.GetIndex(*node.index) : nullptr;
    if (tree != nullptr && node.index->leading_column() == j.right.column) {
      for (const ExecTuple& o : outer.value()) {
        IndexKey key{o.Get(j.left)};
        for (RowId id : tree->Lookup(key)) {
          ExecTuple t = o;
          t.rows[inner_slot] = &data.row(id);
          if (PassesFilters(t, node.filter) && PassesJoins(t, conds)) {
            out.push_back(t);
          }
        }
      }
      return out;
    }

    // No materialized suitable index: fall back to an internal hash
    // lookup table (same semantics, different speed).
    std::unordered_multimap<uint64_t, RowId> table;
    table.reserve(data.NumRows());
    for (RowId id = 0; id < data.NumRows(); ++id) {
      table.emplace(data.row(id)[j.right.column].Hash(), id);
    }
    // Same determinism discipline as Hash(): equal_range order is
    // implementation-defined, so matches are sorted into row-id order
    // (the order an index-nested-loop scan of the base table would emit).
    std::vector<RowId> matches;
    for (const ExecTuple& o : outer.value()) {
      auto [lo_it, hi_it] = table.equal_range(o.Get(j.left).Hash());
      matches.clear();
      for (auto it = lo_it; it != hi_it; ++it) matches.push_back(it->second);
      std::sort(matches.begin(), matches.end());
      for (RowId id : matches) {
        ExecTuple t = o;
        t.rows[inner_slot] = &data.row(id);
        if (PassesFilters(t, node.filter) && PassesJoins(t, conds)) {
          out.push_back(t);
        }
      }
    }
    return out;
  }

  // --- Projection / aggregation / ordering ---
  std::vector<Row> Project(const std::vector<ExecTuple>& tuples) const {
    std::vector<Row> rows;
    rows.reserve(tuples.size());
    for (const ExecTuple& t : tuples) {
      Row r;
      r.reserve(query_.select_columns.size());
      for (const BoundColumn& c : query_.select_columns) {
        r.push_back(t.Get(c));
      }
      rows.push_back(std::move(r));
    }
    return rows;
  }

  std::vector<Row> Aggregate(const std::vector<ExecTuple>& tuples) const {
    // Group key = rendered group-by values (stable, hashable).
    std::map<std::string, std::pair<Row, std::vector<AggState>>> groups;
    for (const ExecTuple& t : tuples) {
      std::string key;
      Row key_row;
      for (const BoundColumn& c : query_.group_by) {
        const Value& v = t.Get(c);
        key += v.ToString();
        key += '\x1f';
        key_row.push_back(v);
      }
      auto [it, inserted] = groups.try_emplace(
          key, key_row,
          std::vector<AggState>(query_.aggregates.size()));
      auto& states = it->second.second;
      for (size_t a = 0; a < query_.aggregates.size(); ++a) {
        const BoundAggregate& agg = query_.aggregates[a];
        AggState& st = states[a];
        st.count++;
        if (!agg.star) {
          const Value& v = t.Get(agg.column);
          st.sum += v.AsDouble();
          if (!st.has_value || v < st.min_v) st.min_v = v;
          if (!st.has_value || st.max_v < v) st.max_v = v;
          st.has_value = true;
        }
      }
    }
    std::vector<Row> rows;
    for (auto& [key, entry] : groups) {
      Row r;
      // SELECT-list group columns first (in select order), then aggregates.
      for (const BoundColumn& c : query_.select_columns) {
        for (size_t g = 0; g < query_.group_by.size(); ++g) {
          if (query_.group_by[g] == c) {
            r.push_back(entry.first[g]);
            break;
          }
        }
      }
      for (size_t a = 0; a < query_.aggregates.size(); ++a) {
        const BoundAggregate& agg = query_.aggregates[a];
        const AggState& st = entry.second[a];
        switch (agg.fn) {
          case AggFn::kCount:
            r.push_back(Value(st.count));
            break;
          case AggFn::kSum:
            r.push_back(Value(st.sum));
            break;
          case AggFn::kAvg:
            r.push_back(Value(st.count > 0
                                  ? st.sum / static_cast<double>(st.count)
                                  : 0.0));
            break;
          case AggFn::kMin:
            r.push_back(st.min_v);
            break;
          case AggFn::kMax:
            r.push_back(st.max_v);
            break;
        }
      }
      rows.push_back(std::move(r));
    }
    return rows;
  }

  void SortTuplesBy(std::vector<ExecTuple>* tuples,
                    const std::vector<BoundColumn>& cols) const {
    std::stable_sort(tuples->begin(), tuples->end(),
                     [&](const ExecTuple& a, const ExecTuple& b) {
                       for (const BoundColumn& c : cols) {
                         int cmp = a.Get(c).Compare(b.Get(c));
                         if (cmp != 0) return cmp < 0;
                       }
                       return false;
                     });
  }

  /// Maps a BoundColumn to its output-row position (select list order).
  int OutputPosition(const BoundColumn& c) const {
    for (size_t i = 0; i < query_.select_columns.size(); ++i) {
      if (query_.select_columns[i] == c) return static_cast<int>(i);
    }
    return -1;
  }

  void SortRowsBy(std::vector<Row>* rows,
                  const std::vector<BoundColumn>& cols) const {
    std::vector<int> positions;
    for (const BoundColumn& c : cols) {
      int p = OutputPosition(c);
      if (p >= 0) positions.push_back(p);
    }
    std::stable_sort(rows->begin(), rows->end(),
                     [&](const Row& a, const Row& b) {
                       for (int p : positions) {
                         int cmp = a[static_cast<size_t>(p)].Compare(
                             b[static_cast<size_t>(p)]);
                         if (cmp != 0) return cmp < 0;
                       }
                       return false;
                     });
  }

  void SortRowsForOrderBy(std::vector<Row>* rows) const {
    if (query_.order_by.empty()) return;
    std::vector<std::pair<int, bool>> keys;  // (position, descending)
    for (const BoundOrderItem& o : query_.order_by) {
      int p = OutputPosition(o.column);
      if (p >= 0) keys.emplace_back(p, o.descending);
    }
    std::stable_sort(rows->begin(), rows->end(),
                     [&](const Row& a, const Row& b) {
                       for (auto [p, desc] : keys) {
                         int cmp = a[static_cast<size_t>(p)].Compare(
                             b[static_cast<size_t>(p)]);
                         if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
                       }
                       return false;
                     });
  }

  std::vector<ExecTuple> CartesianAll() const {
    std::vector<ExecTuple> tuples;
    tuples.push_back(ExecTuple{});
    for (int s = 0; s < query_.num_slots(); ++s) {
      const TableData& data = db_.data(query_.tables[s]);
      std::vector<ExecTuple> next;
      next.reserve(tuples.size() * data.NumRows());
      // Apply this slot's filters eagerly to bound the intermediate size.
      std::vector<BoundPredicate> slot_filters = query_.FiltersOn(s);
      for (const ExecTuple& t : tuples) {
        for (RowId id = 0; id < data.NumRows(); ++id) {
          ExecTuple nt = t;
          nt.rows[s] = &data.row(id);
          if (!PassesFilters(nt, slot_filters)) continue;
          // Apply join predicates whose both sides are now bound.
          bool ok = true;
          for (const BoundJoin& j : query_.joins) {
            if (j.left.slot <= s && j.right.slot <= s &&
                nt.rows[j.left.slot] != nullptr &&
                nt.rows[j.right.slot] != nullptr) {
              if (!(nt.Get(j.left) == nt.Get(j.right))) {
                ok = false;
                break;
              }
            }
          }
          if (ok) next.push_back(nt);
        }
      }
      tuples = std::move(next);
    }
    return tuples;
  }

  const Database& db_;
  const BoundQuery& query_;
  ExecutionProfile* profile_;
};

}  // namespace

Result<std::vector<Row>> Executor::Execute(const BoundQuery& query,
                                           const PlanNode& plan,
                                           ExecutionProfile* profile) {
  if (query.num_slots() > kMaxSlots) {
    return Status::InvalidArgument("too many FROM slots for the executor");
  }
  PlanInterpreter interp(*db_, query, profile);
  return interp.Run(plan);
}

std::vector<Row> Executor::ExecuteNaive(const BoundQuery& query) {
  PlanInterpreter interp(*db_, query);
  return interp.Naive();
}

std::vector<std::string> CanonicalizeResult(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) {
      // Render doubles with bounded precision so that sum orders of
      // floating point accumulation do not cause spurious mismatches.
      if (v.type() == DataType::kDouble) {
        s += StrFormat("%.6g", v.AsDouble());
      } else {
        s += v.ToString();
      }
      s += '|';
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dbdesign
