#include "solver/bnb.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>

#include "util/logging.h"
#include "util/str.h"

namespace dbdesign {

namespace {

struct Node {
  std::vector<std::pair<int, int>> fixings;  ///< (var, 0 or 1)
  double bound;                              ///< parent LP bound
  /// Parent's canonical basis (augmented row space), shared by both
  /// children: the child LP differs from the parent's by one fixing, so
  /// warm-starting from it typically costs a handful of pivots where the
  /// root basis costs dozens. Null at the root (falls back to the root
  /// basis / caller's warm start).
  std::shared_ptr<const std::vector<int>> warm_basis;

  bool operator<(const Node& other) const {
    return bound > other.bound;  // min-heap by bound (best-first)
  }
};

double Now() {
  using namespace std::chrono;
  return duration_cast<duration<double>>(
             steady_clock::now()  // NOLINT(determinism): time-limit knob only; on timeout the solver reports the incumbent as non-optimal rather than changing it
                 .time_since_epoch())
      .count();
}

/// The base problem with all current fixings substituted out. Fixed
/// columns are removed entirely; their objective contribution moves to
/// `offset` and their constraint contribution into each row's rhs. Rows
/// that become empty are KEPT (with no terms) so the row space — and
/// therefore the canonical basis encoding — is stable across different
/// fixing sets; their feasibility is checked directly here instead.
struct ReducedLp {
  LpProblem lp;
  std::vector<int> old_to_new;  ///< per original var; -1 = fixed
  std::vector<int> new_to_old;
  /// Input fixings plus forcing-row implications: expanding a solution
  /// back to the original space must use THIS, not the caller's vector.
  std::vector<signed char> fix;
  double offset = 0.0;
  bool infeasible = false;
};

ReducedLp Reduce(const LpProblem& base, const std::vector<signed char>& fix) {
  ReducedLp red;
  red.fix = fix;
  // Forcing-row propagation to fixpoint: every variable is nonnegative,
  // so a <= or == row whose unfixed coefficients are all positive and
  // whose substituted rhs is zero pins those variables to zero — and a
  // strictly negative rhs is infeasible outright. A vetoed index's
  // aggregated link row (sum_a x_a - y_i <= 0 with y_i = 0) erases every
  // atom column that uses it this way, before any simplex runs.
  bool forced = true;
  while (forced) {
    forced = false;
    for (const LpConstraint& c : base.constraints) {
      if (c.rel == LpRelation::kGe) continue;
      double rhs = c.rhs;
      bool all_pos = true;
      bool any_free = false;
      for (const auto& [var, coef] : c.terms) {
        signed char f = red.fix[static_cast<size_t>(var)];
        if (f < 0) {
          any_free = true;
          if (coef <= 0.0) {
            all_pos = false;
            break;
          }
        } else {
          rhs -= coef * static_cast<double>(f);
        }
      }
      if (!all_pos || !any_free || rhs > 1e-9) continue;
      if (rhs < -1e-9) {
        red.infeasible = true;
        return red;
      }
      for (const auto& [var, coef] : c.terms) {
        signed char& f = red.fix[static_cast<size_t>(var)];
        if (f < 0) {
          f = 0;
          forced = true;
        }
      }
    }
  }
  int num_orig = base.num_vars;
  red.old_to_new.assign(static_cast<size_t>(num_orig), -1);
  for (int v = 0; v < num_orig; ++v) {
    if (red.fix[static_cast<size_t>(v)] < 0) {
      red.old_to_new[static_cast<size_t>(v)] =
          red.lp.AddVariable(base.objective[static_cast<size_t>(v)]);
      red.new_to_old.push_back(v);
    } else if (red.fix[static_cast<size_t>(v)] == 1) {
      red.offset += base.objective[static_cast<size_t>(v)];
    }
  }
  for (const LpConstraint& c : base.constraints) {
    LpConstraint rc;
    rc.rel = c.rel;
    double rhs = c.rhs;
    for (const auto& [var, coef] : c.terms) {
      signed char f = red.fix[static_cast<size_t>(var)];
      if (f < 0) {
        rc.terms.emplace_back(red.old_to_new[static_cast<size_t>(var)], coef);
      } else {
        rhs -= coef * static_cast<double>(f);
      }
    }
    rc.rhs = std::abs(rhs) < 1e-9 ? 0.0 : rhs;
    if (rc.terms.empty()) {
      bool ok = rc.rel == LpRelation::kLe   ? rc.rhs >= 0.0
                : rc.rel == LpRelation::kGe ? rc.rhs <= 0.0
                                            : rc.rhs == 0.0;
      if (!ok) {
        red.infeasible = true;
        return red;
      }
    }
    red.lp.AddConstraint(std::move(rc));
  }
  return red;
}

}  // namespace

BnbResult SolveBinaryMip(const MipProblem& problem, const BnbOptions& options,
                         const PrimalHeuristic& heuristic,
                         const BnbWarmStart* warm) {
  double t0 = Now();
  BnbResult result;
  const int num_vars = problem.lp.num_vars;
  const size_t num_rows_hint =
      problem.lp.constraints.size() + problem.binary_vars.size();

  // Augmented base LP: original problem + x_b <= 1 rows for ALL binaries
  // (in binary_vars order, fixed or not). Keeping the row set independent
  // of the fixings is what lets a canonical basis from one solve warm-
  // start another solve with different pins/vetoes.
  LpProblem base = problem.lp;
  for (int b : problem.binary_vars) {
    LpConstraint ub;
    ub.terms = {{b, 1.0}};
    ub.rel = LpRelation::kLe;
    ub.rhs = 1.0;
    base.AddConstraint(std::move(ub));
  }

  // Root fixings as a dense assignment (-1 = free).
  std::vector<signed char> root_fix(static_cast<size_t>(num_vars), -1);
  for (auto [var, val] : problem.fixed_vars) {
    signed char v = val != 0 ? 1 : 0;
    signed char& slot = root_fix[static_cast<size_t>(var)];
    if (slot >= 0 && slot != v) {
      // Contradictory fixings (pin + veto of the same index): infeasible.
      result.lower_bound = std::numeric_limits<double>::infinity();
      result.solve_time_sec = Now() - t0;
      return result;
    }
    slot = v;
  }

  // Solves one node: presolve the fixings away, solve the reduced LP
  // (warm-started when a canonical basis is available), and expand the
  // solution back to the original variable space.
  auto solve_node = [&](const std::vector<signed char>& fix,
                        const std::vector<int>* warm_canon) -> LpSolution {
    ReducedLp red = Reduce(base, fix);
    if (red.infeasible) {
      LpSolution s;
      s.status = LpStatus::kInfeasible;
      return s;
    }
    LpSolution s;
    if (red.lp.num_vars == 0) {
      // Everything is fixed; Reduce already verified every (empty) row.
      s.status = LpStatus::kOptimal;
      s.objective = 0.0;
      s.basis.assign(red.lp.constraints.size(), -1);
    } else {
      // Translate the canonical warm basis into the reduced space (fixed
      // structural vars map to -1; row indices are unchanged).
      std::vector<int> warm_red;
      if (warm_canon != nullptr && warm_canon->size() == num_rows_hint) {
        warm_red.reserve(warm_canon->size());
        for (int b : *warm_canon) {
          if (b < 0) {
            warm_red.push_back(-1);
          } else if (b < num_vars) {
            warm_red.push_back(red.old_to_new[static_cast<size_t>(b)]);
          } else {
            warm_red.push_back(red.lp.num_vars + (b - num_vars));
          }
        }
      }
      s = SolveLp(red.lp, options.simplex,
                  warm_red.empty() ? nullptr : &warm_red);
    }
    result.lp_pivots += s.pivots;
    if (!s.optimal()) return s;

    LpSolution out;
    out.status = LpStatus::kOptimal;
    out.objective = s.objective + red.offset;
    out.pivots = s.pivots;
    out.values.assign(static_cast<size_t>(num_vars), 0.0);
    for (int v = 0; v < num_vars; ++v) {
      signed char f = red.fix[static_cast<size_t>(v)];
      out.values[static_cast<size_t>(v)] =
          f >= 0 ? static_cast<double>(f)
                 : s.values[static_cast<size_t>(
                       red.old_to_new[static_cast<size_t>(v)])];
    }
    out.basis.assign(num_rows_hint, -1);
    for (size_t r = 0; r < s.basis.size(); ++r) {
      int b = s.basis[r];
      if (b < 0) continue;
      out.basis[r] = b < red.lp.num_vars
                         ? red.new_to_old[static_cast<size_t>(b)]
                         : num_vars + (b - red.lp.num_vars);
    }
    return out;
  };

  double incumbent = std::numeric_limits<double>::infinity();
  std::vector<double> incumbent_values;

  auto try_heuristic = [&](const std::vector<double>& lp_values) {
    if (!heuristic) return;
    std::vector<double> values;
    double obj = 0.0;
    if (heuristic(lp_values, &values, &obj) && obj < incumbent - 1e-12) {
      incumbent = obj;
      incumbent_values = std::move(values);
    }
  };

  // Seed the incumbent from the warm start (trusted like a heuristic
  // result), unless it contradicts the current fixings.
  if (warm != nullptr &&
      warm->values.size() == static_cast<size_t>(num_vars)) {
    bool consistent = true;
    for (int v = 0; v < num_vars; ++v) {
      signed char f = root_fix[static_cast<size_t>(v)];
      if (f >= 0 && std::abs(warm->values[static_cast<size_t>(v)] -
                             static_cast<double>(f)) > 1e-6) {
        consistent = false;
        break;
      }
    }
    if (consistent) {
      incumbent = warm->objective;
      incumbent_values = warm->values;
    }
  }

  LpSolution root =
      solve_node(root_fix, warm != nullptr ? &warm->basis : nullptr);
  if (root.status == LpStatus::kInfeasible) {
    result.lower_bound = std::numeric_limits<double>::infinity();
    result.solve_time_sec = Now() - t0;
    return result;
  }
  if (!root.optimal()) {
    // Unbounded or iteration limit at the root: give up gracefully.
    result.solve_time_sec = Now() - t0;
    return result;
  }
  result.lower_bound = root.objective;
  result.root_basis = root.basis;
  try_heuristic(root.values);

  std::priority_queue<Node> open;
  open.push(Node{{}, root.objective, nullptr});

  // Most-fractional branching: pick the binary farthest from an integer.
  // Fixed binaries are exactly integral in the expanded values, so they
  // are never selected.
  auto fractional_var = [&](const std::vector<double>& values) {
    int best = -1;
    double best_dist = 1e-6;
    for (int b : problem.binary_vars) {
      double v = values[static_cast<size_t>(b)];
      double dist = std::abs(v - std::round(v));
      if (dist > best_dist) {
        best_dist = dist;
        best = b;
      }
    }
    return best;
  };

  // Best-first search: nodes pop in non-decreasing parent-bound order, so
  // the popped node's bound is the global lower bound at that moment.
  // Node LPs warm-start from the ROOT basis: storing one basis per open
  // node would cost O(nodes x rows) memory for little extra benefit.
  double global_lb = root.objective;
  bool exhausted = false;
  std::vector<signed char> node_fix;
  while (true) {
    if (open.empty()) {
      exhausted = true;
      break;
    }
    if (result.nodes_explored >= options.max_nodes) break;
    if (Now() - t0 > options.time_limit_sec) break;

    Node node = open.top();
    open.pop();
    global_lb = std::max(global_lb, node.bound);
    if (node.bound >= incumbent - 1e-12) {
      // Every remaining node is at least this bad: incumbent is optimal.
      global_lb = incumbent;
      exhausted = true;
      break;
    }
    if (global_lb >= options.stop_at_bound) {
      break;  // bound certificate reached: caller doesn't need the proof
    }
    if (std::isfinite(incumbent) &&
        (incumbent - global_lb) / std::max(1e-12, std::abs(incumbent)) <=
            options.gap_tolerance &&
        options.gap_tolerance > 0.0) {
      break;  // good enough per the caller's time/quality knob
    }

    node_fix = root_fix;
    for (auto [var, val] : node.fixings) {
      node_fix[static_cast<size_t>(var)] = val != 0 ? 1 : 0;
    }
    LpSolution lp = solve_node(
        node_fix, node.warm_basis ? node.warm_basis.get() : &result.root_basis);
    ++result.nodes_explored;
    if (!lp.optimal()) continue;  // infeasible subtree
    if (lp.objective >= incumbent - 1e-12) continue;

    try_heuristic(lp.values);

    int branch = fractional_var(lp.values);
    if (branch < 0) {
      // Integral: candidate incumbent.
      if (lp.objective < incumbent - 1e-12) {
        incumbent = lp.objective;
        incumbent_values = lp.values;
      }
      continue;
    }
    auto basis = std::make_shared<const std::vector<int>>(lp.basis);
    for (int v : {1, 0}) {
      Node child;
      child.fixings = node.fixings;
      child.fixings.emplace_back(branch, v);
      child.bound = lp.objective;
      child.warm_basis = basis;
      open.push(child);
    }
  }

  if (exhausted && std::isfinite(incumbent)) {
    result.proven_optimal = true;
    global_lb = incumbent;
  }
  result.lower_bound = std::min(global_lb, incumbent);

  result.feasible = std::isfinite(incumbent);
  if (result.feasible) {
    result.objective = incumbent;
    result.values = std::move(incumbent_values);
  }
  result.solve_time_sec = Now() - t0;
  DBD_LOG_DEBUG(StrFormat("B&B: %d nodes, %d pivots, obj=%.3f bound=%.3f gap=%.4f",
                          result.nodes_explored, result.lp_pivots,
                          result.objective, result.lower_bound, result.gap()));
  return result;
}

}  // namespace dbdesign
