#include "solver/bnb.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>

#include "util/logging.h"
#include "util/str.h"

namespace dbdesign {

namespace {

struct Node {
  std::vector<std::pair<int, int>> fixings;  ///< (var, 0 or 1)
  double bound;                              ///< parent LP bound

  bool operator<(const Node& other) const {
    return bound > other.bound;  // min-heap by bound (best-first)
  }
};

double Now() {
  using namespace std::chrono;
  return duration_cast<duration<double>>(
             steady_clock::now()  // NOLINT(determinism): time-limit knob only; on timeout the solver reports the incumbent as non-optimal rather than changing it
                 .time_since_epoch())
      .count();
}

}  // namespace

BnbResult SolveBinaryMip(const MipProblem& problem, const BnbOptions& options,
                         const PrimalHeuristic& heuristic) {
  double t0 = Now();
  BnbResult result;

  // Base LP: original problem + x_b <= 1 rows for binaries + root-level
  // fixings (x_f = 0/1 rows shared by every node).
  LpProblem base = problem.lp;
  for (int b : problem.binary_vars) {
    LpConstraint ub;
    ub.terms = {{b, 1.0}};
    ub.rel = LpRelation::kLe;
    ub.rhs = 1.0;
    base.AddConstraint(std::move(ub));
  }
  for (auto [var, val] : problem.fixed_vars) {
    LpConstraint fix;
    fix.terms = {{var, 1.0}};
    fix.rel = LpRelation::kEq;
    fix.rhs = static_cast<double>(val);
    base.AddConstraint(std::move(fix));
  }

  auto solve_node = [&](const std::vector<std::pair<int, int>>& fixings)
      -> LpSolution {
    LpProblem lp = base;
    for (auto [var, val] : fixings) {
      LpConstraint fix;
      fix.terms = {{var, 1.0}};
      fix.rel = LpRelation::kEq;
      fix.rhs = static_cast<double>(val);
      lp.AddConstraint(std::move(fix));
    }
    return SolveLp(lp, options.simplex);
  };

  double incumbent = std::numeric_limits<double>::infinity();
  std::vector<double> incumbent_values;

  auto try_heuristic = [&](const std::vector<double>& lp_values) {
    if (!heuristic) return;
    std::vector<double> values;
    double obj = 0.0;
    if (heuristic(lp_values, &values, &obj) && obj < incumbent - 1e-12) {
      incumbent = obj;
      incumbent_values = std::move(values);
    }
  };

  LpSolution root = solve_node({});
  if (root.status == LpStatus::kInfeasible) {
    result.lower_bound = std::numeric_limits<double>::infinity();
    return result;
  }
  if (!root.optimal()) {
    // Unbounded or iteration limit at the root: give up gracefully.
    return result;
  }
  result.lower_bound = root.objective;
  try_heuristic(root.values);

  std::priority_queue<Node> open;
  open.push(Node{{}, root.objective});

  // Most-fractional branching: pick the binary farthest from an integer.
  auto fractional_var = [&](const std::vector<double>& values) {
    int best = -1;
    double best_dist = 1e-6;
    for (int b : problem.binary_vars) {
      double v = values[static_cast<size_t>(b)];
      double dist = std::abs(v - std::round(v));
      if (dist > best_dist) {
        best_dist = dist;
        best = b;
      }
    }
    return best;
  };

  // Best-first search: nodes pop in non-decreasing parent-bound order, so
  // the popped node's bound is the global lower bound at that moment.
  double global_lb = root.objective;
  bool exhausted = false;
  while (true) {
    if (open.empty()) {
      exhausted = true;
      break;
    }
    if (result.nodes_explored >= options.max_nodes) break;
    if (Now() - t0 > options.time_limit_sec) break;

    Node node = open.top();
    open.pop();
    global_lb = std::max(global_lb, node.bound);
    if (node.bound >= incumbent - 1e-12) {
      // Every remaining node is at least this bad: incumbent is optimal.
      global_lb = incumbent;
      exhausted = true;
      break;
    }
    if (std::isfinite(incumbent) &&
        (incumbent - global_lb) / std::max(1e-12, std::abs(incumbent)) <=
            options.gap_tolerance &&
        options.gap_tolerance > 0.0) {
      break;  // good enough per the caller's time/quality knob
    }

    LpSolution lp = solve_node(node.fixings);
    ++result.nodes_explored;
    if (!lp.optimal()) continue;  // infeasible subtree
    if (lp.objective >= incumbent - 1e-12) continue;

    try_heuristic(lp.values);

    int branch = fractional_var(lp.values);
    if (branch < 0) {
      // Integral: candidate incumbent.
      if (lp.objective < incumbent - 1e-12) {
        incumbent = lp.objective;
        incumbent_values = lp.values;
      }
      continue;
    }
    for (int v : {1, 0}) {
      Node child;
      child.fixings = node.fixings;
      child.fixings.emplace_back(branch, v);
      child.bound = lp.objective;
      open.push(child);
    }
  }

  if (exhausted && std::isfinite(incumbent)) {
    result.proven_optimal = true;
    global_lb = incumbent;
  }
  result.lower_bound = std::min(global_lb, incumbent);

  result.feasible = std::isfinite(incumbent);
  if (result.feasible) {
    result.objective = incumbent;
    result.values = std::move(incumbent_values);
  }
  result.solve_time_sec = Now() - t0;
  DBD_LOG_DEBUG(StrFormat("B&B: %d nodes, obj=%.3f bound=%.3f gap=%.4f",
                          result.nodes_explored, result.objective,
                          result.lower_bound, result.gap()));
  return result;
}

}  // namespace dbdesign
