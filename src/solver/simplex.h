// Dense two-phase primal simplex for linear programs.
//
// CoPhy formulates index selection as a binary integer program and the
// paper relies on "sophisticated and mature solvers". No external solver
// is available in this environment, so the repo ships a self-contained
// LP solver: two-phase primal simplex over a dense tableau with Bland's
// anti-cycling rule. Problem sizes produced by the CoPhy builder
// (hundreds of rows/columns) solve in milliseconds.

#ifndef DBDESIGN_SOLVER_SIMPLEX_H_
#define DBDESIGN_SOLVER_SIMPLEX_H_

#include <vector>

namespace dbdesign {

enum class LpRelation { kLe, kGe, kEq };

/// One linear constraint: sum(terms) rel rhs.
struct LpConstraint {
  std::vector<std::pair<int, double>> terms;  ///< (var index, coefficient)
  LpRelation rel = LpRelation::kLe;
  double rhs = 0.0;
};

/// minimize c^T x  subject to constraints, x >= 0.
struct LpProblem {
  int num_vars = 0;
  std::vector<double> objective;  ///< length num_vars
  std::vector<LpConstraint> constraints;

  int AddVariable(double cost) {
    objective.push_back(cost);
    return num_vars++;
  }
  void AddConstraint(LpConstraint c) { constraints.push_back(std::move(c)); }
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< length num_vars

  bool optimal() const { return status == LpStatus::kOptimal; }
};

struct SimplexOptions {
  int max_iterations = 200000;
  double eps = 1e-9;
};

/// Solves the LP. All variables are implicitly >= 0; upper bounds must be
/// expressed as constraints.
LpSolution SolveLp(const LpProblem& problem, const SimplexOptions& options = {});

}  // namespace dbdesign

#endif  // DBDESIGN_SOLVER_SIMPLEX_H_
