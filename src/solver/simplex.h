// Sparse two-phase primal simplex for linear programs.
//
// CoPhy formulates index selection as a binary integer program and the
// paper relies on "sophisticated and mature solvers". No external solver
// is available in this environment, so the repo ships a self-contained
// LP solver: two-phase primal simplex with Bland's anti-cycling rule.
// Constraint rows are stored sparsely (sorted column/value pairs), which
// is what makes thousand-candidate CoPhy instances tractable: atom rows
// touch a handful of variables each, so pivots cost O(nnz) instead of
// O(rows x columns).
//
// A solve can additionally export its optimal basis and warm-start a
// later solve from it (see LpSolution::basis / SolveLp's warm_basis):
// the per-cluster CoPhy re-solves triggered by one constraint edit are
// near-identical LPs, and reinstating the previous basis skips most of
// phase 1/2.

#ifndef DBDESIGN_SOLVER_SIMPLEX_H_
#define DBDESIGN_SOLVER_SIMPLEX_H_

#include <vector>

namespace dbdesign {

enum class LpRelation { kLe, kGe, kEq };

/// One linear constraint: sum(terms) rel rhs.
struct LpConstraint {
  std::vector<std::pair<int, double>> terms;  ///< (var index, coefficient)
  LpRelation rel = LpRelation::kLe;
  double rhs = 0.0;
};

/// minimize c^T x  subject to constraints, x >= 0.
struct LpProblem {
  int num_vars = 0;
  std::vector<double> objective;  ///< length num_vars
  std::vector<LpConstraint> constraints;

  int AddVariable(double cost) {
    objective.push_back(cost);
    return num_vars++;
  }
  void AddConstraint(LpConstraint c) { constraints.push_back(std::move(c)); }
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< length num_vars

  /// Number of simplex pivots performed (both phases, plus any pivots
  /// spent attempting a warm basis that was then abandoned).
  int pivots = 0;

  /// Optimal basis in canonical encoding, one entry per constraint row
  /// (filled only when status == kOptimal):
  ///   v in [0, num_vars)      -> structural variable v is basic here
  ///   num_vars + r            -> the slack/surplus of constraint r
  ///   -1                      -> an artificial is basic (redundant row)
  /// The encoding names problem-level objects (variables and rows), not
  /// tableau columns, so a basis survives being translated through the
  /// B&B presolve's variable renumbering.
  std::vector<int> basis;

  bool optimal() const { return status == LpStatus::kOptimal; }
};

struct SimplexOptions {
  int max_iterations = 200000;
  double eps = 1e-9;
};

/// Solves the LP. All variables are implicitly >= 0; upper bounds must be
/// expressed as constraints.
///
/// If `warm_basis` is non-null it must use the canonical encoding above
/// against this problem's variable/row space. The solver crash-pivots
/// toward that basis and, when the result is primal feasible, starts
/// phase 2 from it directly. Any mismatch (wrong size, infeasible basis,
/// relation changes) silently falls back to a cold two-phase solve, so a
/// stale basis can cost pivots but never correctness.
LpSolution SolveLp(const LpProblem& problem, const SimplexOptions& options = {},
                   const std::vector<int>* warm_basis = nullptr);

}  // namespace dbdesign

#endif  // DBDESIGN_SOLVER_SIMPLEX_H_
