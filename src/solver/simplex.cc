#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dbdesign {

namespace {

/// Dense tableau: rows = constraints, columns = structural + slack +
/// artificial variables, plus the rhs column. Row 0..m-1 are
/// constraints; the objective rows are maintained separately.
class Tableau {
 public:
  Tableau(const LpProblem& p, const SimplexOptions& options)
      : options_(options), m_(static_cast<int>(p.constraints.size())) {
    // Column layout: [structural | slack/surplus | artificial].
    n_struct_ = p.num_vars;
    int n_slack = 0;
    int n_art = 0;
    for (const LpConstraint& c : p.constraints) {
      bool flip = c.rhs < 0.0;
      LpRelation rel = c.rel;
      if (flip) {
        rel = rel == LpRelation::kLe
                  ? LpRelation::kGe
                  : (rel == LpRelation::kGe ? LpRelation::kLe : LpRelation::kEq);
      }
      if (rel == LpRelation::kLe) {
        ++n_slack;
      } else if (rel == LpRelation::kGe) {
        ++n_slack;
        ++n_art;
      } else {
        ++n_art;
      }
    }
    n_total_ = n_struct_ + n_slack + n_art;
    a_.assign(static_cast<size_t>(m_) * (n_total_ + 1), 0.0);
    basis_.assign(static_cast<size_t>(m_), -1);

    int slack_at = n_struct_;
    int art_at = n_struct_ + n_slack;
    first_art_ = art_at;
    for (int r = 0; r < m_; ++r) {
      const LpConstraint& c = p.constraints[static_cast<size_t>(r)];
      double sign = c.rhs < 0.0 ? -1.0 : 1.0;
      for (const auto& [var, coef] : c.terms) {
        At(r, var) += sign * coef;
      }
      Rhs(r) = sign * c.rhs;
      LpRelation rel = c.rel;
      if (sign < 0) {
        rel = rel == LpRelation::kLe
                  ? LpRelation::kGe
                  : (rel == LpRelation::kGe ? LpRelation::kLe : LpRelation::kEq);
      }
      if (rel == LpRelation::kLe) {
        At(r, slack_at) = 1.0;
        basis_[static_cast<size_t>(r)] = slack_at++;
      } else if (rel == LpRelation::kGe) {
        At(r, slack_at) = -1.0;
        ++slack_at;
        At(r, art_at) = 1.0;
        basis_[static_cast<size_t>(r)] = art_at++;
      } else {
        At(r, art_at) = 1.0;
        basis_[static_cast<size_t>(r)] = art_at++;
      }
    }
    num_art_ = n_art;
  }

  double& At(int r, int c) {
    return a_[static_cast<size_t>(r) * (n_total_ + 1) + static_cast<size_t>(c)];
  }
  double& Rhs(int r) { return At(r, n_total_); }

  /// Runs the simplex on objective `cost` (length n_total_, minimize).
  /// Returns kOptimal/kUnbounded/kIterLimit; reduced costs/obj in z.
  LpStatus Iterate(std::vector<double>& cost, double* objective,
                   bool forbid_artificials) {
    // Reduced cost row: z_j = c_j - c_B^T B^{-1} A_j, maintained densely.
    std::vector<double> z(static_cast<size_t>(n_total_) + 1, 0.0);
    for (int j = 0; j <= n_total_; ++j) {
      double v = j < n_total_ ? cost[static_cast<size_t>(j)] : 0.0;
      for (int r = 0; r < m_; ++r) {
        v -= cost[static_cast<size_t>(basis_[static_cast<size_t>(r)])] *
             At(r, j);
      }
      z[static_cast<size_t>(j)] = v;
    }

    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      // Entering variable: most negative reduced cost (Dantzig), falling
      // back to Bland's rule when cycling is suspected.
      int enter = -1;
      bool bland = iter > 4 * (m_ + n_total_);
      double best = -options_.eps;
      for (int j = 0; j < n_total_; ++j) {
        if (forbid_artificials && j >= first_art_) continue;
        double rc = z[static_cast<size_t>(j)];
        if (bland) {
          if (rc < -options_.eps) {
            enter = j;
            break;
          }
        } else if (rc < best) {
          best = rc;
          enter = j;
        }
      }
      if (enter < 0) {
        *objective = -z[static_cast<size_t>(n_total_)];
        return LpStatus::kOptimal;
      }

      // Ratio test.
      int leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int r = 0; r < m_; ++r) {
        double col = At(r, enter);
        if (col > options_.eps) {
          double ratio = Rhs(r) / col;
          if (ratio < best_ratio - options_.eps ||
              (ratio < best_ratio + options_.eps &&
               (leave < 0 || basis_[static_cast<size_t>(r)] <
                                 basis_[static_cast<size_t>(leave)]))) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave < 0) return LpStatus::kUnbounded;

      Pivot(leave, enter, z);
    }
    return LpStatus::kIterLimit;
  }

  void Pivot(int leave, int enter, std::vector<double>& z) {
    double piv = At(leave, enter);
    for (int j = 0; j <= n_total_; ++j) At(leave, j) /= piv;
    for (int r = 0; r < m_; ++r) {
      if (r == leave) continue;
      double f = At(r, enter);
      if (std::abs(f) < 1e-13) continue;
      for (int j = 0; j <= n_total_; ++j) At(r, j) -= f * At(leave, j);
    }
    double zf = z[static_cast<size_t>(enter)];
    if (std::abs(zf) > 1e-13) {
      for (int j = 0; j <= n_total_; ++j) {
        z[static_cast<size_t>(j)] -= zf * At(leave, j);
      }
    }
    basis_[static_cast<size_t>(leave)] = enter;
  }

  /// Drives any basic artificial variable out of the basis (or prunes a
  /// redundant row) after phase 1.
  void EvictArtificials() {
    for (int r = 0; r < m_; ++r) {
      if (basis_[static_cast<size_t>(r)] < first_art_) continue;
      int enter = -1;
      for (int j = 0; j < first_art_; ++j) {
        if (std::abs(At(r, j)) > 1e-7) {
          enter = j;
          break;
        }
      }
      if (enter >= 0) {
        std::vector<double> dummy(static_cast<size_t>(n_total_) + 1, 0.0);
        Pivot(r, enter, dummy);
      }
      // else: the row is redundant (all-zero over real vars); leave the
      // artificial basic at value zero — harmless with cost zero.
    }
  }

  LpSolution Extract(double objective) const {
    LpSolution sol;
    sol.status = LpStatus::kOptimal;
    sol.objective = objective;
    sol.values.assign(static_cast<size_t>(n_struct_), 0.0);
    for (int r = 0; r < m_; ++r) {
      int b = basis_[static_cast<size_t>(r)];
      if (b < n_struct_) {
        sol.values[static_cast<size_t>(b)] =
            a_[static_cast<size_t>(r) * (n_total_ + 1) +
               static_cast<size_t>(n_total_)];
      }
    }
    return sol;
  }

  int n_total() const { return n_total_; }
  int n_struct() const { return n_struct_; }
  int first_art() const { return first_art_; }
  int num_art() const { return num_art_; }

 private:
  SimplexOptions options_;
  int m_;
  int n_struct_ = 0;
  int n_total_ = 0;
  int first_art_ = 0;
  int num_art_ = 0;
  std::vector<double> a_;
  std::vector<int> basis_;
};

}  // namespace

LpSolution SolveLp(const LpProblem& problem, const SimplexOptions& options) {
  Tableau t(problem, options);

  // Phase 1: minimize the sum of artificials.
  if (t.num_art() > 0) {
    std::vector<double> phase1(static_cast<size_t>(t.n_total()), 0.0);
    for (int j = t.first_art(); j < t.n_total(); ++j) {
      phase1[static_cast<size_t>(j)] = 1.0;
    }
    double obj1 = 0.0;
    LpStatus s1 = t.Iterate(phase1, &obj1, /*forbid_artificials=*/false);
    if (s1 == LpStatus::kIterLimit) {
      LpSolution sol;
      sol.status = LpStatus::kIterLimit;
      return sol;
    }
    if (s1 == LpStatus::kUnbounded || obj1 > 1e-6) {
      LpSolution sol;
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    t.EvictArtificials();
  }

  // Phase 2: original objective (artificials forbidden from re-entering).
  std::vector<double> cost(static_cast<size_t>(t.n_total()), 0.0);
  for (int j = 0; j < problem.num_vars; ++j) {
    cost[static_cast<size_t>(j)] = problem.objective[static_cast<size_t>(j)];
  }
  double obj = 0.0;
  LpStatus s2 = t.Iterate(cost, &obj, /*forbid_artificials=*/true);
  if (s2 != LpStatus::kOptimal) {
    LpSolution sol;
    sol.status = s2;
    return sol;
  }
  return t.Extract(obj);
}

}  // namespace dbdesign
