#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dbdesign {

namespace {

/// Entries below this magnitude are dropped during sparse row merges:
/// they are numerical noise (three orders of magnitude below the solver
/// eps) and keeping them would re-densify the tableau over pivots.
constexpr double kDropTol = 1e-13;

/// One tableau row: (column, value) pairs sorted by column.
using SparseRow = std::vector<std::pair<int, double>>;

/// Sparse tableau: rows = constraints, columns = structural + slack +
/// artificial variables. The rhs column and the reduced-cost row are
/// kept dense; everything else is sorted column/value pairs.
class Tableau {
 public:
  Tableau(const LpProblem& p, const SimplexOptions& options)
      : options_(options), m_(static_cast<int>(p.constraints.size())) {
    // Column layout: [structural | slack/surplus | artificial].
    n_struct_ = p.num_vars;
    int n_slack = 0;
    int n_art = 0;
    for (const LpConstraint& c : p.constraints) {
      bool flip = c.rhs < 0.0;
      LpRelation rel = c.rel;
      if (flip) {
        rel = rel == LpRelation::kLe
                  ? LpRelation::kGe
                  : (rel == LpRelation::kGe ? LpRelation::kLe : LpRelation::kEq);
      }
      if (rel == LpRelation::kLe) {
        ++n_slack;
      } else if (rel == LpRelation::kGe) {
        ++n_slack;
        ++n_art;
      } else {
        ++n_art;
      }
    }
    n_total_ = n_struct_ + n_slack + n_art;
    rows_.assign(static_cast<size_t>(m_), {});
    rhs_.assign(static_cast<size_t>(m_), 0.0);
    basis_.assign(static_cast<size_t>(m_), -1);
    slack_col_of_row_.assign(static_cast<size_t>(m_), -1);
    slack_row_.assign(static_cast<size_t>(n_slack), -1);

    int slack_at = n_struct_;
    int art_at = n_struct_ + n_slack;
    first_art_ = art_at;
    SparseRow terms;
    for (int r = 0; r < m_; ++r) {
      const LpConstraint& c = p.constraints[static_cast<size_t>(r)];
      double sign = c.rhs < 0.0 ? -1.0 : 1.0;
      // Accumulate (duplicate variable mentions sum) and sort by column.
      terms.assign(c.terms.begin(), c.terms.end());
      std::sort(terms.begin(), terms.end());
      SparseRow& row = rows_[static_cast<size_t>(r)];
      row.clear();
      for (const auto& [var, coef] : terms) {
        if (!row.empty() && row.back().first == var) {
          row.back().second += sign * coef;
        } else {
          row.emplace_back(var, sign * coef);
        }
      }
      row.erase(std::remove_if(row.begin(), row.end(),
                               [](const std::pair<int, double>& e) {
                                 return std::abs(e.second) <= kDropTol;
                               }),
                row.end());
      rhs_[static_cast<size_t>(r)] = sign * c.rhs;
      LpRelation rel = c.rel;
      if (sign < 0) {
        rel = rel == LpRelation::kLe
                  ? LpRelation::kGe
                  : (rel == LpRelation::kGe ? LpRelation::kLe : LpRelation::kEq);
      }
      if (rel == LpRelation::kLe) {
        row.emplace_back(slack_at, 1.0);
        slack_col_of_row_[static_cast<size_t>(r)] = slack_at;
        slack_row_[static_cast<size_t>(slack_at - n_struct_)] = r;
        basis_[static_cast<size_t>(r)] = slack_at++;
      } else if (rel == LpRelation::kGe) {
        row.emplace_back(slack_at, -1.0);
        slack_col_of_row_[static_cast<size_t>(r)] = slack_at;
        slack_row_[static_cast<size_t>(slack_at - n_struct_)] = r;
        ++slack_at;
        row.emplace_back(art_at, 1.0);
        basis_[static_cast<size_t>(r)] = art_at++;
      } else {
        row.emplace_back(art_at, 1.0);
        basis_[static_cast<size_t>(r)] = art_at++;
      }
    }
    num_art_ = n_art;
  }

  /// Coefficient of column c in row r (binary search; 0 if absent).
  double Coef(int r, int c) const {
    const SparseRow& row = rows_[static_cast<size_t>(r)];
    auto it = std::lower_bound(
        row.begin(), row.end(), c,
        [](const std::pair<int, double>& e, int col) { return e.first < col; });
    return (it != row.end() && it->first == c) ? it->second : 0.0;
  }

  /// Runs the simplex on objective `cost` (length n_total_, minimize).
  /// Returns kOptimal/kUnbounded/kIterLimit; reduced costs/obj in z.
  LpStatus Iterate(const std::vector<double>& cost, double* objective,
                   bool forbid_artificials) {
    // Reduced cost row: z_j = c_j - c_B^T B^{-1} A_j, maintained densely.
    std::vector<double> z(static_cast<size_t>(n_total_) + 1, 0.0);
    for (int j = 0; j < n_total_; ++j) {
      z[static_cast<size_t>(j)] = cost[static_cast<size_t>(j)];
    }
    for (int r = 0; r < m_; ++r) {
      double cb = cost[static_cast<size_t>(basis_[static_cast<size_t>(r)])];
      if (cb == 0.0) continue;
      for (const auto& [col, val] : rows_[static_cast<size_t>(r)]) {
        z[static_cast<size_t>(col)] -= cb * val;
      }
      z[static_cast<size_t>(n_total_)] -= cb * rhs_[static_cast<size_t>(r)];
    }

    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      // Entering variable: most negative reduced cost (Dantzig), falling
      // back to Bland's rule when cycling is suspected.
      int enter = -1;
      bool bland = iter > 4 * (m_ + n_total_);
      double best = -options_.eps;
      for (int j = 0; j < n_total_; ++j) {
        if (forbid_artificials && j >= first_art_) continue;
        double rc = z[static_cast<size_t>(j)];
        if (bland) {
          if (rc < -options_.eps) {
            enter = j;
            break;
          }
        } else if (rc < best) {
          best = rc;
          enter = j;
        }
      }
      if (enter < 0) {
        *objective = -z[static_cast<size_t>(n_total_)];
        return LpStatus::kOptimal;
      }

      // Ratio test.
      int leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int r = 0; r < m_; ++r) {
        double col = Coef(r, enter);
        if (col > options_.eps) {
          double ratio = rhs_[static_cast<size_t>(r)] / col;
          if (ratio < best_ratio - options_.eps ||
              (ratio < best_ratio + options_.eps &&
               (leave < 0 || basis_[static_cast<size_t>(r)] <
                                 basis_[static_cast<size_t>(leave)]))) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave < 0) return LpStatus::kUnbounded;

      Pivot(leave, enter, z);
    }
    return LpStatus::kIterLimit;
  }

  void Pivot(int leave, int enter, std::vector<double>& z) {
    SparseRow& prow = rows_[static_cast<size_t>(leave)];
    double piv = Coef(leave, enter);
    if (piv != 1.0) {
      for (auto& e : prow) e.second /= piv;
      rhs_[static_cast<size_t>(leave)] /= piv;
    }
    for (int r = 0; r < m_; ++r) {
      if (r == leave) continue;
      double f = Coef(r, enter);
      if (std::abs(f) < kDropTol) continue;
      AddScaled(rows_[static_cast<size_t>(r)], prow, -f);
      rhs_[static_cast<size_t>(r)] -= f * rhs_[static_cast<size_t>(leave)];
    }
    double zf = z[static_cast<size_t>(enter)];
    if (std::abs(zf) > kDropTol) {
      for (const auto& [col, val] : prow) {
        z[static_cast<size_t>(col)] -= zf * val;
      }
      z[static_cast<size_t>(n_total_)] -= zf * rhs_[static_cast<size_t>(leave)];
    }
    basis_[static_cast<size_t>(leave)] = enter;
    ++pivots_;
  }

  /// Drives any basic artificial variable out of the basis (or prunes a
  /// redundant row) after phase 1.
  void EvictArtificials() {
    std::vector<double> dummy(static_cast<size_t>(n_total_) + 1, 0.0);
    for (int r = 0; r < m_; ++r) {
      if (basis_[static_cast<size_t>(r)] < first_art_) continue;
      int enter = -1;
      for (const auto& [col, val] : rows_[static_cast<size_t>(r)]) {
        if (col >= first_art_) break;  // sorted: no real columns past here
        if (std::abs(val) > 1e-7) {
          enter = col;
          break;
        }
      }
      if (enter >= 0) Pivot(r, enter, dummy);
      // else: the row is redundant (all-zero over real vars); leave the
      // artificial basic at value zero — harmless with cost zero.
    }
  }

  /// True iff no basic artificial carries real value, i.e. the tableau
  /// solution satisfies the original rows and not merely the
  /// artificial-extended ones.
  bool BasicArtificialsAtZero() const {
    for (int r = 0; r < m_; ++r) {
      if (basis_[static_cast<size_t>(r)] >= first_art_ &&
          rhs_[static_cast<size_t>(r)] > 1e-7) {
        return false;
      }
    }
    return true;
  }

  /// Crash-pivots toward a basis in the canonical encoding (see
  /// LpSolution::basis). Returns true iff the resulting basis is primal
  /// feasible, in which case phase 1 can be skipped entirely. On false
  /// the tableau is spent and the caller must rebuild it.
  bool ApplyWarmBasis(const std::vector<int>& canon) {
    if (static_cast<int>(canon.size()) != m_) return false;
    std::vector<char> in_basis(static_cast<size_t>(n_total_), 0);
    for (int r = 0; r < m_; ++r) {
      in_basis[static_cast<size_t>(basis_[static_cast<size_t>(r)])] = 1;
    }
    std::vector<double> dummy(static_cast<size_t>(n_total_) + 1, 0.0);
    for (int r = 0; r < m_; ++r) {
      int want = canon[static_cast<size_t>(r)];
      if (want < 0) continue;  // artificial stays basic (redundant row)
      int col;
      if (want < n_struct_) {
        col = want;
      } else {
        int row = want - n_struct_;
        if (row >= m_) return false;
        col = slack_col_of_row_[static_cast<size_t>(row)];
        if (col < 0) continue;  // that row has no slack in this problem
      }
      if (basis_[static_cast<size_t>(r)] == col) continue;
      if (in_basis[static_cast<size_t>(col)]) continue;  // basic elsewhere
      double piv = Coef(r, col);
      if (std::abs(piv) < 1e-7) continue;  // would be numerically singular
      in_basis[static_cast<size_t>(basis_[static_cast<size_t>(r)])] = 0;
      Pivot(r, col, dummy);
      in_basis[static_cast<size_t>(col)] = 1;
    }
    // The crash can leave artificials basic in non-redundant rows (a
    // wanted column was singular or basic elsewhere, or the canonical
    // basis marked a row redundant that is binding in this problem).
    // Evict them now, as the cold path does after phase 1: otherwise a
    // basic artificial at zero can be pumped to a real value by phase-2
    // pivots on other rows, and the "optimal" solution silently
    // violates its original row.
    EvictArtificials();
    for (int r = 0; r < m_; ++r) {
      if (rhs_[static_cast<size_t>(r)] < -1e-7) return false;
      if (basis_[static_cast<size_t>(r)] >= first_art_ &&
          rhs_[static_cast<size_t>(r)] > 1e-7) {
        return false;  // a basic artificial would carry real value
      }
    }
    for (int r = 0; r < m_; ++r) {
      if (rhs_[static_cast<size_t>(r)] < 0.0) {
        rhs_[static_cast<size_t>(r)] = 0.0;  // clamp crash noise
      }
    }
    return true;
  }

  LpSolution Extract(double objective) const {
    LpSolution sol;
    sol.status = LpStatus::kOptimal;
    sol.objective = objective;
    sol.values.assign(static_cast<size_t>(n_struct_), 0.0);
    sol.basis.assign(static_cast<size_t>(m_), -1);
    sol.pivots = pivots_;
    for (int r = 0; r < m_; ++r) {
      int b = basis_[static_cast<size_t>(r)];
      if (b < n_struct_) {
        sol.values[static_cast<size_t>(b)] = rhs_[static_cast<size_t>(r)];
        sol.basis[static_cast<size_t>(r)] = b;
      } else if (b < first_art_) {
        sol.basis[static_cast<size_t>(r)] =
            n_struct_ + slack_row_[static_cast<size_t>(b - n_struct_)];
      }
      // else: artificial basic at zero -> -1 (redundant row).
    }
    return sol;
  }

  int n_total() const { return n_total_; }
  int n_struct() const { return n_struct_; }
  int first_art() const { return first_art_; }
  int num_art() const { return num_art_; }
  int pivots() const { return pivots_; }

 private:
  /// dst += f * src over sorted sparse rows; drops |value| <= kDropTol.
  void AddScaled(SparseRow& dst, const SparseRow& src, double f) {
    scratch_.clear();
    size_t i = 0;
    size_t j = 0;
    while (i < dst.size() || j < src.size()) {
      if (j >= src.size() ||
          (i < dst.size() && dst[i].first < src[j].first)) {
        scratch_.push_back(dst[i]);
        ++i;
      } else if (i >= dst.size() || src[j].first < dst[i].first) {
        double v = f * src[j].second;
        if (std::abs(v) > kDropTol) scratch_.emplace_back(src[j].first, v);
        ++j;
      } else {
        double v = dst[i].second + f * src[j].second;
        if (std::abs(v) > kDropTol) scratch_.emplace_back(dst[i].first, v);
        ++i;
        ++j;
      }
    }
    dst.swap(scratch_);
  }

  SimplexOptions options_;
  int m_;
  int n_struct_ = 0;
  int n_total_ = 0;
  int first_art_ = 0;
  int num_art_ = 0;
  int pivots_ = 0;
  std::vector<SparseRow> rows_;
  std::vector<double> rhs_;
  std::vector<int> basis_;
  std::vector<int> slack_col_of_row_;  ///< per row: its slack column or -1
  std::vector<int> slack_row_;         ///< per slack column: owning row
  SparseRow scratch_;                  ///< AddScaled merge buffer
};

/// Builds the phase-2 cost vector (structural costs, zeros elsewhere).
std::vector<double> Phase2Cost(const LpProblem& problem, const Tableau& t) {
  std::vector<double> cost(static_cast<size_t>(t.n_total()), 0.0);
  for (int j = 0; j < problem.num_vars; ++j) {
    cost[static_cast<size_t>(j)] = problem.objective[static_cast<size_t>(j)];
  }
  return cost;
}

}  // namespace

LpSolution SolveLp(const LpProblem& problem, const SimplexOptions& options,
                   const std::vector<int>* warm_basis) {
  int wasted_pivots = 0;
  if (warm_basis != nullptr && !warm_basis->empty()) {
    Tableau t(problem, options);
    if (t.ApplyWarmBasis(*warm_basis)) {
      // The warm basis is primal feasible and artificials have been
      // evicted into redundant rows only: run phase 2 directly, exactly
      // as after a cold phase 1. The post-solve artificial check is
      // belt-and-braces against numerical drift — on failure the warm
      // result is discarded and the cold solve below is authoritative.
      std::vector<double> cost = Phase2Cost(problem, t);
      double obj = 0.0;
      LpStatus s = t.Iterate(cost, &obj, /*forbid_artificials=*/true);
      if (s == LpStatus::kOptimal && t.BasicArtificialsAtZero()) {
        return t.Extract(obj);
      }
      // Non-optimal from a warm start: distrust it and solve cold below
      // so warm-started and cold solves always agree on status.
    }
    wasted_pivots = t.pivots();
  }

  Tableau t(problem, options);

  // Phase 1: minimize the sum of artificials.
  if (t.num_art() > 0) {
    std::vector<double> phase1(static_cast<size_t>(t.n_total()), 0.0);
    for (int j = t.first_art(); j < t.n_total(); ++j) {
      phase1[static_cast<size_t>(j)] = 1.0;
    }
    double obj1 = 0.0;
    LpStatus s1 = t.Iterate(phase1, &obj1, /*forbid_artificials=*/false);
    if (s1 == LpStatus::kIterLimit) {
      LpSolution sol;
      sol.status = LpStatus::kIterLimit;
      sol.pivots = wasted_pivots + t.pivots();
      return sol;
    }
    if (s1 == LpStatus::kUnbounded || obj1 > 1e-6) {
      LpSolution sol;
      sol.status = LpStatus::kInfeasible;
      sol.pivots = wasted_pivots + t.pivots();
      return sol;
    }
    t.EvictArtificials();
  }

  // Phase 2: original objective (artificials forbidden from re-entering).
  std::vector<double> cost = Phase2Cost(problem, t);
  double obj = 0.0;
  LpStatus s2 = t.Iterate(cost, &obj, /*forbid_artificials=*/true);
  if (s2 != LpStatus::kOptimal) {
    LpSolution sol;
    sol.status = s2;
    sol.pivots = wasted_pivots + t.pivots();
    return sol;
  }
  LpSolution sol = t.Extract(obj);
  sol.pivots += wasted_pivots;
  return sol;
}

}  // namespace dbdesign
