// Branch & bound for binary integer programs over the simplex LP
// relaxation. Gives CoPhy its quality guarantee: the returned gap is
// (incumbent - global LP bound) / incumbent, and the node/time budget is
// the paper's "trade off execution time against quality" knob.
//
// Root-level fixings (MipProblem::fixed_vars) are eliminated by
// substitution before any simplex runs: fixed columns never enter the
// tableau, their objective contribution becomes a constant offset, and a
// fully-fixed problem solves without a single pivot. Node fixings reuse
// the same presolve, so deep subtrees solve ever-smaller LPs.

#ifndef DBDESIGN_SOLVER_BNB_H_
#define DBDESIGN_SOLVER_BNB_H_

#include <functional>
#include <limits>
#include <vector>

#include "solver/simplex.h"

namespace dbdesign {

/// A minimization LP plus a set of variables restricted to {0, 1}.
struct MipProblem {
  LpProblem lp;
  std::vector<int> binary_vars;
  /// Root-level variable fixings applied before search: (var, 0 or 1),
  /// eliminated by presolve substitution at every node. CoPhy encodes
  /// DBA pins (y_i = 1) and vetoes (y_i = 0) here, so constraint edits
  /// change only these fixings — the rest of the problem (and any cached
  /// atom matrix behind it) is reused verbatim.
  std::vector<std::pair<int, int>> fixed_vars;
};

struct BnbOptions {
  int max_nodes = 2000;
  double time_limit_sec = 30.0;
  /// Stop early when the relative gap falls below this (0 = solve to
  /// proven optimality within the node/time budget).
  double gap_tolerance = 0.0;
  /// Stop as soon as the global lower bound reaches this value (default
  /// +inf: never). The caller gets `lower_bound >= stop_at_bound` with
  /// `proven_optimal == false` — a bound CERTIFICATE at a fraction of a
  /// full proof's cost. CoPhy's allocation DP uses this to certify that
  /// a cluster's unexplored budget tail cannot beat the incumbent split
  /// without paying for the tail's exact optimum.
  double stop_at_bound = std::numeric_limits<double>::infinity();
  SimplexOptions simplex;
};

/// Carry-over state from a previous solve of a near-identical problem.
/// Both members are optional (leave empty to skip):
///  - `basis` warm-starts every LP in the tree. It is the canonical
///    basis of the previous solve's ROOT relaxation over the augmented
///    row space (original constraints followed by one x_b <= 1 row per
///    binary_vars entry, in order) — i.e. a previous BnbResult::root_basis
///    for a problem with the same rows. A stale basis degrades to a cold
///    solve, never to a wrong answer.
///  - `values`/`objective` seed the initial incumbent and are trusted
///    verbatim, exactly like a PrimalHeuristic result: the caller must
///    guarantee feasibility. Entries for fixed_vars are cross-checked
///    against the fixings and the incumbent is dropped on mismatch.
struct BnbWarmStart {
  std::vector<int> basis;
  std::vector<double> values;
  double objective = 0.0;
};

struct BnbResult {
  bool feasible = false;
  bool proven_optimal = false;
  double objective = 0.0;          ///< incumbent value
  std::vector<double> values;      ///< incumbent assignment
  double lower_bound = 0.0;        ///< global LP bound
  int nodes_explored = 0;
  double solve_time_sec = 0.0;
  int lp_pivots = 0;               ///< simplex pivots across all nodes

  /// Canonical basis of the root relaxation (augmented row space, see
  /// BnbWarmStart::basis); feed back as a warm start for the next solve
  /// of a near-identical problem. Empty if the root LP did not solve.
  std::vector<int> root_basis;

  /// Relative optimality gap; 0 when proven optimal.
  double gap() const {
    if (!feasible) return 1.0;
    double denom = std::max(1e-12, std::abs(objective));
    return std::max(0.0, (objective - lower_bound) / denom);
  }
};

/// Optional primal heuristic: maps a (fractional) LP solution to a
/// feasible binary solution. Returns false if it cannot.
using PrimalHeuristic =
    std::function<bool(const std::vector<double>& lp_values,
                       std::vector<double>* out_values, double* out_obj)>;

/// Solves min c^T x, constraints, x >= 0, x_b in {0,1} for b in
/// binary_vars. Upper bound rows (x_b <= 1) are added internally.
BnbResult SolveBinaryMip(const MipProblem& problem,
                         const BnbOptions& options = {},
                         const PrimalHeuristic& heuristic = nullptr,
                         const BnbWarmStart* warm = nullptr);

}  // namespace dbdesign

#endif  // DBDESIGN_SOLVER_BNB_H_
