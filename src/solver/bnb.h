// Branch & bound for binary integer programs over the simplex LP
// relaxation. Gives CoPhy its quality guarantee: the returned gap is
// (incumbent - global LP bound) / incumbent, and the node/time budget is
// the paper's "trade off execution time against quality" knob.

#ifndef DBDESIGN_SOLVER_BNB_H_
#define DBDESIGN_SOLVER_BNB_H_

#include <functional>
#include <vector>

#include "solver/simplex.h"

namespace dbdesign {

/// A minimization LP plus a set of variables restricted to {0, 1}.
struct MipProblem {
  LpProblem lp;
  std::vector<int> binary_vars;
  /// Root-level variable fixings applied before search: (var, 0 or 1)
  /// bounds enforced at every node. CoPhy encodes DBA pins (y_i = 1)
  /// and vetoes (y_i = 0) here, so constraint edits change only these
  /// fixings — the rest of the problem (and any cached atom matrix
  /// behind it) is reused verbatim.
  std::vector<std::pair<int, int>> fixed_vars;
};

struct BnbOptions {
  int max_nodes = 2000;
  double time_limit_sec = 30.0;
  /// Stop early when the relative gap falls below this (0 = solve to
  /// proven optimality within the node/time budget).
  double gap_tolerance = 0.0;
  SimplexOptions simplex;
};

struct BnbResult {
  bool feasible = false;
  bool proven_optimal = false;
  double objective = 0.0;          ///< incumbent value
  std::vector<double> values;      ///< incumbent assignment
  double lower_bound = 0.0;        ///< global LP bound
  int nodes_explored = 0;
  double solve_time_sec = 0.0;

  /// Relative optimality gap; 0 when proven optimal.
  double gap() const {
    if (!feasible) return 1.0;
    double denom = std::max(1e-12, std::abs(objective));
    return std::max(0.0, (objective - lower_bound) / denom);
  }
};

/// Optional primal heuristic: maps a (fractional) LP solution to a
/// feasible binary solution. Returns false if it cannot.
using PrimalHeuristic =
    std::function<bool(const std::vector<double>& lp_values,
                       std::vector<double>* out_values, double* out_obj)>;

/// Solves min c^T x, constraints, x >= 0, x_b in {0,1} for b in
/// binary_vars. Upper bound rows (x_b <= 1) are added internally.
BnbResult SolveBinaryMip(const MipProblem& problem,
                         const BnbOptions& options = {},
                         const PrimalHeuristic& heuristic = nullptr);

}  // namespace dbdesign

#endif  // DBDESIGN_SOLVER_BNB_H_
