// Interaction-aware index materialization scheduling (paper §3.5).
//
// Building a recommended index set takes time; the order matters because
// the workload runs while indexes materialize and because interactions
// make an index's benefit depend on what is already built. The scheduler
// orders builds to maximize the cumulative benefit curve ("an
// appropriately scheduled materialization of indexes can lead to higher
// benefit in contrast with a schedule that does not take into account
// index interaction").
//
// The scheduler is constraint-aware (the deployment stage of the
// session loop): pinned indexes are materialized first — the DBA said
// "keep these no matter what", so they come online before speculative
// picks — vetoed indexes are impossible by construction (they land in
// `skipped`, never in a step), and the storage budget is respected at
// every intermediate step: a build that would push cumulative pages
// past the budget is skipped, not deferred, so no prefix of the
// schedule ever exceeds the budget.
//
// Every cost below is an INUM cached-atom reprice: scheduling a warm
// workload makes zero backend optimizer calls.

#ifndef DBDESIGN_INTERACTION_SCHEDULE_H_
#define DBDESIGN_INTERACTION_SCHEDULE_H_

#include <algorithm>
#include <vector>

#include "core/constraints.h"
#include "inum/inum.h"

namespace dbdesign {

struct ScheduleStep {
  IndexDef index;
  double build_pages = 0.0;      ///< proxy for build time
  double cumulative_pages = 0.0; ///< storage in use once this build lands
  double marginal_benefit = 0.0; ///< workload cost drop from this build
  double cost_after = 0.0;       ///< workload cost once this step finishes
  bool pinned = false;           ///< DBA-pinned (scheduled first)
  int cluster = -1;              ///< interaction cluster (-1 = unassigned)
};

struct MaterializationSchedule {
  std::vector<ScheduleStep> steps;
  double base_cost = 0.0;    ///< workload cost before any build
  double final_cost = 0.0;   ///< workload cost with all scheduled indexes
  double total_pages = 0.0;  ///< cumulative pages of the last step
  /// Indexes never scheduled: vetoed, or over the storage budget at
  /// every point they could have been built. Empty whenever the input
  /// set is constraint-feasible (the session path: recommendations are
  /// feasible by construction).
  std::vector<IndexDef> skipped;

  /// Cumulative workload benefit standing after the first k builds
  /// (k = 0 is 0; k = steps.size() is base_cost - final_cost).
  double BenefitAtPrefix(size_t k) const {
    if (k == 0 || steps.empty()) return 0.0;
    return base_cost - steps[std::min(k, steps.size()) - 1].cost_after;
  }

  /// Area under the cumulative-benefit curve, weighting each step's
  /// standing benefit by the build effort of the *next* step (benefit
  /// accrues while later indexes are still building). Higher is better.
  double BenefitArea() const;
};

class MaterializationScheduler {
 public:
  explicit MaterializationScheduler(InumCostModel& inum) : inum_(&inum) {}

  /// Greedy interaction-aware schedule: each step builds the index with
  /// the maximum marginal workload benefit rate given what is already
  /// built. The constraint-aware overload honors `constraints`: pins
  /// first, vetoes skipped, budget respected at every step.
  MaterializationSchedule Greedy(const Workload& workload,
                                 const std::vector<IndexDef>& indexes);
  MaterializationSchedule Greedy(const Workload& workload,
                                 const std::vector<IndexDef>& indexes,
                                 const DesignConstraints& constraints);

  /// Schedule following a fixed order (used for oblivious baselines:
  /// solo-benefit order, random order, adversarial order).
  MaterializationSchedule FixedOrder(const Workload& workload,
                                     const std::vector<IndexDef>& indexes,
                                     const std::vector<int>& order);

  /// Interaction-oblivious baseline: order by each index's solo benefit
  /// (descending), ignoring interactions.
  MaterializationSchedule SoloBenefitOrder(
      const Workload& workload, const std::vector<IndexDef>& indexes);

 private:
  /// Materializes `order` into a schedule under the (possibly
  /// unconstrained) budget, then re-derives final_cost from a freshly
  /// assembled design — the invariant that the incremental bookkeeping
  /// matches a from-scratch evaluation of the full design.
  MaterializationSchedule Build(const Workload& workload,
                                const std::vector<IndexDef>& indexes,
                                const std::vector<int>& order,
                                const DesignConstraints& constraints);

  /// Greedy benefit-rate ordering of `candidates` given `built`;
  /// appends chosen positions to `order` and updates built/current.
  void GreedyPhase(const Workload& workload,
                   const std::vector<IndexDef>& indexes,
                   std::vector<int> candidates, PhysicalDesign* built,
                   double* current, std::vector<int>* order);

  InumCostModel* inum_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_INTERACTION_SCHEDULE_H_
