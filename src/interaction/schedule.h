// Interaction-aware index materialization scheduling (paper §3.5).
//
// Building a recommended index set takes time; the order matters because
// the workload runs while indexes materialize and because interactions
// make an index's benefit depend on what is already built. The scheduler
// orders builds to maximize the cumulative benefit curve ("an
// appropriately scheduled materialization of indexes can lead to higher
// benefit in contrast with a schedule that does not take into account
// index interaction").

#ifndef DBDESIGN_INTERACTION_SCHEDULE_H_
#define DBDESIGN_INTERACTION_SCHEDULE_H_

#include <vector>

#include "inum/inum.h"

namespace dbdesign {

struct ScheduleStep {
  IndexDef index;
  double build_pages = 0.0;      ///< proxy for build time
  double marginal_benefit = 0.0; ///< workload cost drop from this build
  double cost_after = 0.0;       ///< workload cost once this step finishes
};

struct MaterializationSchedule {
  std::vector<ScheduleStep> steps;
  double base_cost = 0.0;   ///< workload cost before any build
  double final_cost = 0.0;  ///< workload cost with all indexes built

  /// Area under the cumulative-benefit curve, weighting each step's
  /// standing benefit by the build effort of the *next* step (benefit
  /// accrues while later indexes are still building). Higher is better.
  double BenefitArea() const;
};

class MaterializationScheduler {
 public:
  explicit MaterializationScheduler(InumCostModel& inum) : inum_(&inum) {}

  /// Greedy interaction-aware schedule: each step builds the index with
  /// the maximum marginal workload benefit given what is already built.
  MaterializationSchedule Greedy(const Workload& workload,
                                 const std::vector<IndexDef>& indexes);

  /// Schedule following a fixed order (used for oblivious baselines:
  /// solo-benefit order, random order, adversarial order).
  MaterializationSchedule FixedOrder(const Workload& workload,
                                     const std::vector<IndexDef>& indexes,
                                     const std::vector<int>& order);

  /// Interaction-oblivious baseline: order by each index's solo benefit
  /// (descending), ignoring interactions.
  MaterializationSchedule SoloBenefitOrder(
      const Workload& workload, const std::vector<IndexDef>& indexes);

 private:
  MaterializationSchedule Build(const Workload& workload,
                                const std::vector<IndexDef>& indexes,
                                const std::vector<int>& order);

  InumCostModel* inum_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_INTERACTION_SCHEDULE_H_
