#include "interaction/doi.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dbdesign {

namespace {

PhysicalDesign DesignFrom(const std::vector<IndexDef>& indexes,
                          const std::vector<int>& members) {
  PhysicalDesign d;
  for (int i : members) d.AddIndex(indexes[static_cast<size_t>(i)]);
  return d;
}

/// The four costed configurations of one sampled X for a pair (a, b):
/// X, X∪{a}, X∪{b}, X∪{a,b}. Query-independent — built once per pair
/// and shared read-only across the per-query workers.
struct SampleDesigns {
  PhysicalDesign dx;
  PhysicalDesign dxa;
  PhysicalDesign dxb;
  PhysicalDesign dxab;
};

SampleDesigns BuildSampleDesigns(const std::vector<IndexDef>& indexes, int a,
                                 int b, const std::vector<int>& x) {
  SampleDesigns d;
  d.dx = DesignFrom(indexes, x);
  d.dxa = d.dx;
  d.dxa.AddIndex(indexes[static_cast<size_t>(a)]);
  d.dxb = d.dx;
  d.dxb.AddIndex(indexes[static_cast<size_t>(b)]);
  d.dxab = d.dxb;
  d.dxab.AddIndex(indexes[static_cast<size_t>(a)]);
  return d;
}

/// One query's worst-case interaction over one pair's samples,
/// normalized by `base` (the query's empty-design cost).
double WorstInteraction(InumCostModel& inum, const BoundQuery& query,
                        const std::vector<SampleDesigns>& samples,
                        double base, InumStats* stats) {
  double worst = 0.0;
  for (const SampleDesigns& d : samples) {
    double benefit_without_b = inum.CostCached(query, d.dx, stats) -
                               inum.CostCached(query, d.dxa, stats);
    double benefit_with_b = inum.CostCached(query, d.dxb, stats) -
                            inum.CostCached(query, d.dxab, stats);
    worst = std::max(worst,
                     std::abs(benefit_without_b - benefit_with_b) / base);
  }
  return worst;
}

/// One query's unweighted contribution row (all pairs), priced purely
/// from the populated cache; reuse counters land in `stats`.
std::vector<double> QueryRow(
    InumCostModel& inum, const BoundQuery& query,
    const std::vector<std::vector<SampleDesigns>>& pair_samples,
    InumStats* stats) {
  std::vector<double> row(pair_samples.size(), 0.0);
  double base = inum.CostCached(query, PhysicalDesign{}, stats);
  if (base <= 0) return row;
  for (size_t p = 0; p < pair_samples.size(); ++p) {
    row[p] = WorstInteraction(inum, query, pair_samples[p], base, stats);
  }
  return row;
}

}  // namespace

int DoiMatrix::PairIndex(int a, int b) const {
  DBD_DCHECK_NE(a, b);  // self-pairs have no triangle slot (DoI is 0)
  if (a > b) std::swap(a, b);
  DBD_DCHECK_GE(a, 0);
  DBD_DCHECK_LT(b, num_indexes);
  return a * (2 * num_indexes - a - 1) / 2 + (b - a - 1);
}

std::vector<InteractionEdge> DoiMatrix::Edges(double min_doi) const {
  std::vector<InteractionEdge> edges;
  for (int a = 0; a < num_indexes; ++a) {
    for (int b = a + 1; b < num_indexes; ++b) {
      double d = doi[static_cast<size_t>(PairIndex(a, b))];
      if (d > min_doi) edges.push_back(InteractionEdge{a, b, d});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const InteractionEdge& x, const InteractionEdge& y) {
              if (x.doi != y.doi) return x.doi > y.doi;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return edges;
}

std::vector<std::vector<int>> ClustersFromEdges(
    int num_nodes, const std::vector<InteractionEdge>& edges) {
  // Union-find, smaller root wins so roots stay ascending.
  std::vector<int> parent(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) parent[static_cast<size_t>(i)] = i;
  auto find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const InteractionEdge& e : edges) {
    int ra = find(e.a);
    int rb = find(e.b);
    if (ra != rb) {
      parent[static_cast<size_t>(std::max(ra, rb))] = std::min(ra, rb);
    }
  }
  // Group by root; roots appear in ascending order, so clusters are
  // ordered by smallest member and members are sorted.
  std::vector<std::vector<int>> clusters;
  std::vector<int> slot(static_cast<size_t>(num_nodes), -1);
  for (int i = 0; i < num_nodes; ++i) {
    int r = find(i);
    if (slot[static_cast<size_t>(r)] < 0) {
      slot[static_cast<size_t>(r)] = static_cast<int>(clusters.size());
      clusters.emplace_back();
    }
    clusters[static_cast<size_t>(slot[static_cast<size_t>(r)])].push_back(i);
  }
  return clusters;
}

ClusterPartition PartitionFromEdges(int num_nodes,
                                    const std::vector<InteractionEdge>& edges) {
  ClusterPartition part;
  part.clusters = ClustersFromEdges(num_nodes, edges);
  part.cluster_of.assign(static_cast<size_t>(num_nodes), -1);
  for (size_t k = 0; k < part.clusters.size(); ++k) {
    for (int v : part.clusters[k]) {
      part.cluster_of[static_cast<size_t>(v)] = static_cast<int>(k);
    }
  }
  return part;
}

std::vector<std::vector<int>> DoiMatrix::Clusters(double min_doi) const {
  return ClustersFromEdges(num_indexes, Edges(min_doi));
}

ClusterPartition DoiMatrix::Partition(double min_doi) const {
  return PartitionFromEdges(num_indexes, Edges(min_doi));
}

std::vector<std::vector<int>> InteractionAnalyzer::PairSamples(int n, int a,
                                                               int b) const {
  std::vector<int> others;
  for (int i = 0; i < n; ++i) {
    if (i != a && i != b) others.push_back(i);
  }
  // Structured samples: empty, full remainder, each singleton.
  std::vector<std::vector<int>> samples;
  samples.push_back({});
  if (!others.empty()) samples.push_back(others);
  for (int o : others) samples.push_back({o});
  // Random subsets. The seed mixes the canonical (min, max) pair so the
  // sample set — and therefore the DoI — is exactly symmetric.
  int lo = std::min(a, b);
  int hi = std::max(a, b);
  Rng rng(options_.seed ^ (static_cast<uint64_t>(lo) << 32) ^
          static_cast<uint64_t>(hi));
  for (int s = 0; s < options_.random_samples && others.size() >= 2; ++s) {
    std::vector<int> x;
    for (int o : others) {
      if (rng.Bernoulli(0.5)) x.push_back(o);
    }
    samples.push_back(std::move(x));
  }
  return samples;
}

std::vector<std::vector<double>> InteractionAnalyzer::ContributionRows(
    const std::vector<BoundQuery>& queries,
    const std::vector<IndexDef>& indexes) {
  inum_->PrepareQueries(
      std::span<const BoundQuery>(queries.data(), queries.size()));
  // Sample configurations and their costed designs depend only on the
  // pair, not the query: build them once, share them read-only.
  int n = static_cast<int>(indexes.size());
  std::vector<std::vector<SampleDesigns>> pair_samples;
  pair_samples.reserve(static_cast<size_t>(n) * (static_cast<size_t>(n) - 1) /
                       2);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      std::vector<SampleDesigns> samples;
      for (const std::vector<int>& x : PairSamples(n, a, b)) {
        samples.push_back(BuildSampleDesigns(indexes, a, b, x));
      }
      pair_samples.push_back(std::move(samples));
    }
  }
  // Shard by query: one worker owns a query's cache memos end to end
  // (the engine's ownership model), each writing its own pre-sized row —
  // bit-identical to the serial loop at any thread count. Duplicate
  // queries would race on shared memos, so duplicates of an earlier
  // query are computed by that query's owner.
  StructuralDedup dedup = DedupByStructure(
      std::span<const BoundQuery>(queries.data(), queries.size()));
  std::vector<std::vector<double>> per_distinct(dedup.distinct.size());
  std::vector<InumStats> deltas(dedup.distinct.size());
  int threads =
      ThreadPool::Resolve(inum_->backend().cost_params().num_threads);
  ThreadPool::Shared().ParallelFor(
      dedup.distinct.size(), threads, [&](size_t u) {
        per_distinct[u] = QueryRow(*inum_, queries[dedup.distinct[u]],
                                   pair_samples, &deltas[u]);
      });
  for (const InumStats& delta : deltas) inum_->AccumulateStats(delta);

  std::vector<std::vector<double>> rows(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    rows[i] = per_distinct[dedup.owner[i]];
  }
  return rows;
}

Result<std::vector<std::vector<double>>>
InteractionAnalyzer::TryContributionRows(
    const std::vector<BoundQuery>& queries,
    const std::vector<IndexDef>& indexes) {
  try {
    return ContributionRows(queries, indexes);
  } catch (const StatusException& e) {
    return e.status();
  }
}

DoiMatrix InteractionAnalyzer::AnalyzeMatrix(
    const Workload& workload, const std::vector<IndexDef>& indexes) {
  DoiMatrix m;
  m.num_indexes = static_cast<int>(indexes.size());
  m.contributions = ContributionRows(workload.queries, indexes);
  size_t num_pairs = indexes.size() * (indexes.size() - 1) / 2;
  m.doi.assign(num_pairs, 0.0);
  // Weighted reduction in workload order — the determinism invariant.
  for (size_t i = 0; i < workload.size(); ++i) {
    // Every contribution row must cover exactly the pair triangle; a
    // short row would silently zero the heaviest pairs.
    DBD_DCHECK_EQ(m.contributions[i].size(), num_pairs);
    double w = workload.WeightOf(i);
    for (size_t p = 0; p < num_pairs; ++p) {
      m.doi[p] += w * m.contributions[i][p];
    }
  }
  return m;
}

double InteractionAnalyzer::PairDoi(const Workload& workload,
                                    const std::vector<IndexDef>& indexes,
                                    int a, int b) {
  if (a == b) return 0.0;  // an index never interacts with itself
  // Canonicalize so PairDoi(a, b) and PairDoi(b, a) run the exact same
  // arithmetic — symmetry holds bit-for-bit, not just mathematically.
  if (a > b) std::swap(a, b);
  inum_->PrepareWorkload(workload);
  int n = static_cast<int>(indexes.size());
  std::vector<SampleDesigns> samples;
  for (const std::vector<int>& x : PairSamples(n, a, b)) {
    samples.push_back(BuildSampleDesigns(indexes, a, b, x));
  }

  InumStats stats;
  double total = 0.0;
  for (size_t qi = 0; qi < workload.size(); ++qi) {
    const BoundQuery& q = workload.queries[qi];
    double base = inum_->CostCached(q, PhysicalDesign{}, &stats);
    if (base <= 0) continue;
    total += workload.WeightOf(qi) *
             WorstInteraction(*inum_, q, samples, base, &stats);
  }
  inum_->AccumulateStats(stats);
  return total;
}

std::vector<InteractionEdge> InteractionAnalyzer::Analyze(
    const Workload& workload, const std::vector<IndexDef>& indexes) {
  return AnalyzeMatrix(workload, indexes).Edges();
}

double InteractionAnalyzer::SoloBenefit(const Workload& workload,
                                        const std::vector<IndexDef>& indexes,
                                        int a) {
  PhysicalDesign with;
  with.AddIndex(indexes[static_cast<size_t>(a)]);
  return inum_->WorkloadCost(workload, PhysicalDesign{}) -
         inum_->WorkloadCost(workload, with);
}

size_t ContributionRowBytes(const std::string& key,
                            const std::vector<double>& row) {
  // Flat-rated map-node + string + vector-header overhead; the row
  // payload dominates for any realistic pair count.
  constexpr size_t kEntryOverhead = 96;
  return kEntryOverhead + key.size() + row.size() * sizeof(double);
}

}  // namespace dbdesign
