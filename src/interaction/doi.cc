#include "interaction/doi.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace dbdesign {

namespace {

PhysicalDesign DesignFrom(const std::vector<IndexDef>& indexes,
                          const std::vector<int>& members) {
  PhysicalDesign d;
  for (int i : members) d.AddIndex(indexes[static_cast<size_t>(i)]);
  return d;
}

}  // namespace

double InteractionAnalyzer::PairDoi(const Workload& workload,
                                    const std::vector<IndexDef>& indexes,
                                    int a, int b) {
  int n = static_cast<int>(indexes.size());
  std::vector<int> others;
  for (int i = 0; i < n; ++i) {
    if (i != a && i != b) others.push_back(i);
  }

  // Structured samples: empty, full remainder, each singleton.
  std::vector<std::vector<int>> samples;
  samples.push_back({});
  if (!others.empty()) samples.push_back(others);
  for (int o : others) samples.push_back({o});
  // Random subsets.
  Rng rng(options_.seed ^ (static_cast<uint64_t>(a) << 32) ^
          static_cast<uint64_t>(b));
  for (int s = 0; s < options_.random_samples && others.size() >= 2; ++s) {
    std::vector<int> x;
    for (int o : others) {
      if (rng.Bernoulli(0.5)) x.push_back(o);
    }
    samples.push_back(std::move(x));
  }

  double total = 0.0;
  for (size_t qi = 0; qi < workload.size(); ++qi) {
    const BoundQuery& q = workload.queries[qi];
    double base = inum_->Cost(q, PhysicalDesign{});
    if (base <= 0) continue;
    double worst = 0.0;
    for (const std::vector<int>& x : samples) {
      PhysicalDesign dx = DesignFrom(indexes, x);
      PhysicalDesign dxa = dx;
      dxa.AddIndex(indexes[static_cast<size_t>(a)]);
      PhysicalDesign dxb = dx;
      dxb.AddIndex(indexes[static_cast<size_t>(b)]);
      PhysicalDesign dxab = dxb;
      dxab.AddIndex(indexes[static_cast<size_t>(a)]);

      double benefit_without_b =
          inum_->Cost(q, dx) - inum_->Cost(q, dxa);
      double benefit_with_b =
          inum_->Cost(q, dxb) - inum_->Cost(q, dxab);
      worst = std::max(worst,
                       std::abs(benefit_without_b - benefit_with_b) / base);
    }
    total += workload.WeightOf(qi) * worst;
  }
  return total;
}

std::vector<InteractionEdge> InteractionAnalyzer::Analyze(
    const Workload& workload, const std::vector<IndexDef>& indexes) {
  std::vector<InteractionEdge> edges;
  int n = static_cast<int>(indexes.size());
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      double doi = PairDoi(workload, indexes, a, b);
      if (doi > 1e-6) edges.push_back(InteractionEdge{a, b, doi});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const InteractionEdge& x, const InteractionEdge& y) {
              return x.doi > y.doi;
            });
  return edges;
}

double InteractionAnalyzer::SoloBenefit(const Workload& workload,
                                        const std::vector<IndexDef>& indexes,
                                        int a) {
  PhysicalDesign with;
  with.AddIndex(indexes[static_cast<size_t>(a)]);
  return inum_->WorkloadCost(workload, PhysicalDesign{}) -
         inum_->WorkloadCost(workload, with);
}

}  // namespace dbdesign
