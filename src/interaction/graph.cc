#include "interaction/graph.h"

#include <algorithm>
#include <cmath>

#include "util/str.h"

namespace dbdesign {

InteractionGraph::InteractionGraph(const Catalog& catalog,
                                   std::vector<IndexDef> indexes,
                                   std::vector<InteractionEdge> edges)
    : catalog_(&catalog),
      indexes_(std::move(indexes)),
      all_edges_(std::move(edges)) {
  std::sort(all_edges_.begin(), all_edges_.end(),
            [](const InteractionEdge& a, const InteractionEdge& b) {
              return a.doi > b.doi;
            });
  visible_ = all_edges_;
}

void InteractionGraph::SetDisplayedEdges(int k) {
  if (k < 0 || k >= static_cast<int>(all_edges_.size())) {
    visible_ = all_edges_;
  } else {
    visible_.assign(all_edges_.begin(), all_edges_.begin() + k);
  }
}

std::vector<std::vector<int>> InteractionGraph::Clusters() const {
  return ClustersFromEdges(num_nodes(), all_edges_);
}

ClusterPartition InteractionGraph::Partition() const {
  return PartitionFromEdges(num_nodes(), all_edges_);
}

std::string InteractionGraph::ToDot() const {
  std::string out = "graph index_interactions {\n";
  out += "  node [shape=box, fontsize=10];\n";
  for (size_t i = 0; i < indexes_.size(); ++i) {
    out += StrFormat("  n%zu [label=\"%s\"];\n", i,
                     indexes_[i].DisplayName(*catalog_).c_str());
  }
  double max_doi = visible_.empty() ? 1.0 : visible_.front().doi;
  for (const InteractionEdge& e : visible_) {
    double w = max_doi > 0 ? e.doi / max_doi : 0.0;
    out += StrFormat(
        "  n%d -- n%d [label=\"%.3f\", penwidth=%.1f];\n", e.a, e.b, e.doi,
        0.5 + 3.5 * w);
  }
  out += "}\n";
  return out;
}

std::string InteractionGraph::ToJson() const {
  std::string out = "{\n  \"nodes\": [";
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("{\"id\": %zu, \"name\": \"%s\"}", i,
                     indexes_[i].DisplayName(*catalog_).c_str());
  }
  out += "],\n  \"edges\": [";
  for (size_t e = 0; e < visible_.size(); ++e) {
    if (e > 0) out += ", ";
    out += StrFormat("{\"a\": %d, \"b\": %d, \"doi\": %.6f}", visible_[e].a,
                     visible_[e].b, visible_[e].doi);
  }
  out += "]\n}\n";
  return out;
}

std::string InteractionGraph::ToAscii() const {
  std::string out;
  out += StrFormat("Interaction graph: %d indexes, %zu edges shown\n",
                   num_nodes(), visible_.size());
  for (size_t i = 0; i < indexes_.size(); ++i) {
    out += StrFormat("  [%zu] %s\n", i,
                     indexes_[i].DisplayName(*catalog_).c_str());
  }
  for (const InteractionEdge& e : visible_) {
    int bar = static_cast<int>(std::round(
        20.0 * (visible_.empty() ? 0.0 : e.doi / visible_.front().doi)));
    out += StrFormat("  [%d] -- [%d]  doi=%-8.4f %s\n", e.a, e.b, e.doi,
                     std::string(static_cast<size_t>(std::max(1, bar)), '#')
                         .c_str());
  }
  return out;
}

}  // namespace dbdesign
