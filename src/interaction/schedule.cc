#include "interaction/schedule.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dbdesign {

double MaterializationSchedule::BenefitArea() const {
  // Step k's standing benefit (base - cost_after_k) accrues while step
  // k+1 builds; the final configuration's benefit accrues for one more
  // normalized unit.
  double area = 0.0;
  for (size_t k = 0; k + 1 < steps.size(); ++k) {
    double standing = base_cost - steps[k].cost_after;
    area += standing * std::max(1.0, steps[k + 1].build_pages);
  }
  if (!steps.empty()) {
    area += (base_cost - final_cost) * 1.0;
  }
  // Normalize by total build effort so schedules over the same set are
  // comparable regardless of page units.
  double effort = 0.0;
  for (const ScheduleStep& s : steps) effort += std::max(1.0, s.build_pages);
  return effort > 0 ? area / effort : 0.0;
}

MaterializationSchedule MaterializationScheduler::Build(
    const Workload& workload, const std::vector<IndexDef>& indexes,
    const std::vector<int>& order) {
  MaterializationSchedule sched;
  PhysicalDesign built;
  sched.base_cost = inum_->WorkloadCost(workload, built);
  double prev_cost = sched.base_cost;

  const DbmsBackend& backend = inum_->backend();
  for (int i : order) {
    const IndexDef& idx = indexes[static_cast<size_t>(i)];
    built.AddIndex(idx);
    double cost = inum_->WorkloadCost(workload, built);
    ScheduleStep step;
    step.index = idx;
    step.build_pages = backend.EstimateIndexSize(idx).total_pages();
    step.marginal_benefit = prev_cost - cost;
    step.cost_after = cost;
    prev_cost = cost;
    sched.steps.push_back(std::move(step));
  }
  sched.final_cost = prev_cost;
  return sched;
}

MaterializationSchedule MaterializationScheduler::Greedy(
    const Workload& workload, const std::vector<IndexDef>& indexes) {
  std::vector<int> remaining(indexes.size());
  std::iota(remaining.begin(), remaining.end(), 0);
  std::vector<int> order;
  PhysicalDesign built;
  double current = inum_->WorkloadCost(workload, built);

  while (!remaining.empty()) {
    int best_pos = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    double best_cost = current;
    const DbmsBackend& backend = inum_->backend();
    for (size_t p = 0; p < remaining.size(); ++p) {
      const IndexDef& idx = indexes[static_cast<size_t>(remaining[p])];
      PhysicalDesign trial = built;
      trial.AddIndex(idx);
      double cost = inum_->WorkloadCost(workload, trial);
      double build = backend.EstimateIndexSize(idx).total_pages();
      // Benefit rate: early cheap high-benefit builds maximize the area.
      double score = (current - cost) / std::max(1.0, build);
      if (score > best_score) {
        best_score = score;
        best_pos = static_cast<int>(p);
        best_cost = cost;
      }
    }
    int chosen = remaining[static_cast<size_t>(best_pos)];
    remaining.erase(remaining.begin() + best_pos);
    order.push_back(chosen);
    built.AddIndex(indexes[static_cast<size_t>(chosen)]);
    current = best_cost;
  }
  return Build(workload, indexes, order);
}

MaterializationSchedule MaterializationScheduler::FixedOrder(
    const Workload& workload, const std::vector<IndexDef>& indexes,
    const std::vector<int>& order) {
  return Build(workload, indexes, order);
}

MaterializationSchedule MaterializationScheduler::SoloBenefitOrder(
    const Workload& workload, const std::vector<IndexDef>& indexes) {
  double base = inum_->WorkloadCost(workload, PhysicalDesign{});
  std::vector<std::pair<double, int>> ranked;
  for (size_t i = 0; i < indexes.size(); ++i) {
    PhysicalDesign solo;
    solo.AddIndex(indexes[i]);
    double benefit = base - inum_->WorkloadCost(workload, solo);
    ranked.emplace_back(-benefit, static_cast<int>(i));
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<int> order;
  for (auto& [neg, i] : ranked) order.push_back(i);
  return Build(workload, indexes, order);
}

}  // namespace dbdesign
