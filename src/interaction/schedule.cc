#include "interaction/schedule.h"

#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace dbdesign {

double MaterializationSchedule::BenefitArea() const {
  // Step k's standing benefit (base - cost_after_k) accrues while step
  // k+1 builds; the final configuration's benefit accrues for one more
  // normalized unit.
  double area = 0.0;
  for (size_t k = 0; k + 1 < steps.size(); ++k) {
    double standing = base_cost - steps[k].cost_after;
    area += standing * std::max(1.0, steps[k + 1].build_pages);
  }
  if (!steps.empty()) {
    area += (base_cost - final_cost) * 1.0;
  }
  // Normalize by total build effort so schedules over the same set are
  // comparable regardless of page units.
  double effort = 0.0;
  for (const ScheduleStep& s : steps) effort += std::max(1.0, s.build_pages);
  return effort > 0 ? area / effort : 0.0;
}

MaterializationSchedule MaterializationScheduler::Build(
    const Workload& workload, const std::vector<IndexDef>& indexes,
    const std::vector<int>& order, const DesignConstraints& constraints) {
  MaterializationSchedule sched;
  PhysicalDesign built;
  sched.base_cost = inum_->WorkloadCost(workload, built);
  double prev_cost = sched.base_cost;
  double budget = constraints.storage_budget_pages;
  double pages = 0.0;

  const DbmsBackend& backend = inum_->backend();
  for (int i : order) {
    const IndexDef& idx = indexes[static_cast<size_t>(i)];
    double build = backend.EstimateIndexSize(idx).total_pages();
    if (pages + build > budget) {
      // Budget respected at every intermediate step, by construction.
      sched.skipped.push_back(idx);
      continue;
    }
    DBD_DCHECK_GE(build, 0.0);
    built.AddIndex(idx);
    pages += build;
    double cost = inum_->WorkloadCost(workload, built);
    ScheduleStep step;
    step.index = idx;
    step.build_pages = build;
    step.cumulative_pages = pages;
    step.marginal_benefit = prev_cost - cost;
    step.cost_after = cost;
    step.pinned = constraints.IsPinned(idx);
    prev_cost = cost;
    // Cumulative pages are monotone non-decreasing and never exceed the
    // budget at ANY intermediate step — the schedule's core contract.
    DBD_DCHECK_GE(step.cumulative_pages,
                  sched.steps.empty() ? 0.0
                                      : sched.steps.back().cumulative_pages);
    DBD_DCHECK_LE(step.cumulative_pages, budget);
    sched.steps.push_back(std::move(step));
  }
  sched.total_pages = pages;

  // Invariant: the last step's incrementally maintained cost must equal
  // a from-scratch evaluation of the full scheduled design — the same
  // number Designer::EvaluateDesigns reports for it. Recomputing from a
  // freshly assembled design (rather than trusting `built`) is what
  // catches bookkeeping drift; tests compare it to steps.back().
  PhysicalDesign full;
  for (const ScheduleStep& s : sched.steps) full.AddIndex(s.index);
  sched.final_cost = inum_->WorkloadCost(workload, full);
  return sched;
}

void MaterializationScheduler::GreedyPhase(
    const Workload& workload, const std::vector<IndexDef>& indexes,
    std::vector<int> candidates, PhysicalDesign* built, double* current,
    std::vector<int>* order) {
  const DbmsBackend& backend = inum_->backend();
  while (!candidates.empty()) {
    int best_pos = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    double best_cost = *current;
    for (size_t p = 0; p < candidates.size(); ++p) {
      const IndexDef& idx = indexes[static_cast<size_t>(candidates[p])];
      PhysicalDesign trial = *built;
      trial.AddIndex(idx);
      double cost = inum_->WorkloadCost(workload, trial);
      double build = backend.EstimateIndexSize(idx).total_pages();
      // Benefit rate: early cheap high-benefit builds maximize the area.
      double score = (*current - cost) / std::max(1.0, build);
      if (score > best_score) {
        best_score = score;
        best_pos = static_cast<int>(p);
        best_cost = cost;
      }
    }
    int chosen = candidates[static_cast<size_t>(best_pos)];
    candidates.erase(candidates.begin() + best_pos);
    order->push_back(chosen);
    built->AddIndex(indexes[static_cast<size_t>(chosen)]);
    *current = best_cost;
  }
}

MaterializationSchedule MaterializationScheduler::Greedy(
    const Workload& workload, const std::vector<IndexDef>& indexes) {
  return Greedy(workload, indexes, DesignConstraints{});
}

MaterializationSchedule MaterializationScheduler::Greedy(
    const Workload& workload, const std::vector<IndexDef>& indexes,
    const DesignConstraints& constraints) {
  // Vetoes are impossible by construction: a vetoed index never enters
  // the candidate phases, so no step can contain one. Pins build first
  // (greedy among themselves), then the rest.
  std::vector<int> pinned;
  std::vector<int> rest;
  std::vector<int> vetoed;
  for (size_t i = 0; i < indexes.size(); ++i) {
    if (constraints.IsVetoed(indexes[i])) {
      vetoed.push_back(static_cast<int>(i));
    } else if (constraints.IsPinned(indexes[i])) {
      pinned.push_back(static_cast<int>(i));
    } else {
      rest.push_back(static_cast<int>(i));
    }
  }

  std::vector<int> order;
  PhysicalDesign built;
  double current = inum_->WorkloadCost(workload, built);
  GreedyPhase(workload, indexes, std::move(pinned), &built, &current, &order);
  GreedyPhase(workload, indexes, std::move(rest), &built, &current, &order);

  MaterializationSchedule sched =
      Build(workload, indexes, order, constraints);
  for (int v : vetoed) sched.skipped.push_back(indexes[static_cast<size_t>(v)]);
  return sched;
}

MaterializationSchedule MaterializationScheduler::FixedOrder(
    const Workload& workload, const std::vector<IndexDef>& indexes,
    const std::vector<int>& order) {
  return Build(workload, indexes, order, DesignConstraints{});
}

MaterializationSchedule MaterializationScheduler::SoloBenefitOrder(
    const Workload& workload, const std::vector<IndexDef>& indexes) {
  double base = inum_->WorkloadCost(workload, PhysicalDesign{});
  std::vector<std::pair<double, int>> ranked;
  for (size_t i = 0; i < indexes.size(); ++i) {
    PhysicalDesign solo;
    solo.AddIndex(indexes[i]);
    double benefit = base - inum_->WorkloadCost(workload, solo);
    ranked.emplace_back(-benefit, static_cast<int>(i));
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<int> order;
  for (auto& [neg, i] : ranked) order.push_back(i);
  return Build(workload, indexes, order, DesignConstraints{});
}

}  // namespace dbdesign
