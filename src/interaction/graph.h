// Interaction graph rendering — the paper's Figure 2: an undirected
// graph whose vertices are indexes and whose edge weights are degrees
// of interaction, with a user-adjustable top-k edge filter ("if the
// graph has too many edges, the user can dynamically change the number
// of interactions that are being displayed").

#ifndef DBDESIGN_INTERACTION_GRAPH_H_
#define DBDESIGN_INTERACTION_GRAPH_H_

#include <string>
#include <vector>

#include "catalog/design.h"
#include "interaction/doi.h"

namespace dbdesign {

class InteractionGraph {
 public:
  InteractionGraph(const Catalog& catalog, std::vector<IndexDef> indexes,
                   std::vector<InteractionEdge> edges);

  /// Keeps only the k heaviest edges (the demo's display slider).
  /// k < 0 restores all edges.
  void SetDisplayedEdges(int k);

  int num_nodes() const { return static_cast<int>(indexes_.size()); }
  /// Currently displayed edges (heaviest first).
  const std::vector<InteractionEdge>& edges() const { return visible_; }
  const std::vector<IndexDef>& indexes() const { return indexes_; }

  /// Independent interaction clusters: connected components over ALL
  /// edges (not just the displayed ones). Indexes in different clusters
  /// do not interact, so their deployment benefits compose
  /// independently — the deployment planner schedules across clusters
  /// and reports them to the DBA. Singletons included; clusters ordered
  /// by smallest member, members ascending.
  std::vector<std::vector<int>> Clusters() const;

  /// Clusters plus per-index membership (see ClusterPartition): which
  /// cluster each candidate belongs to, not just the cluster lists.
  ClusterPartition Partition() const;

  /// Graphviz DOT rendering (what the demo GUI would draw).
  std::string ToDot() const;

  /// Plain-text adjacency rendering for terminals.
  std::string ToAscii() const;

  /// JSON rendering ({"nodes": [...], "edges": [...]}) for GUI front
  /// ends; respects the display filter.
  std::string ToJson() const;

 private:
  const Catalog* catalog_;
  std::vector<IndexDef> indexes_;
  std::vector<InteractionEdge> all_edges_;  // sorted heaviest first
  std::vector<InteractionEdge> visible_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_INTERACTION_GRAPH_H_
