// Degree of interaction between indexes (paper §3.5, ref [12] —
// Schnaitter, Polyzotis, Getoor, PVLDB 2009).
//
// The benefit of index a under configuration X is
//   b_q(a, X) = cost(q, X) - cost(q, X ∪ {a}).
// Indexes a and b interact in query q when adding b changes a's benefit:
//   doi_q(a, b) = max over X ⊆ S∖{a,b} of
//                 |b_q(a, X) - b_q(a, X ∪ {b})| / cost(q, ∅),
// and the workload degree is the weighted sum over queries. Exhaustive
// maximization over X is exponential; following the paper's stability
// observation we sample structured subsets (empty, singletons, the full
// remainder, plus random subsets) — INUM makes the 4 cost calls per
// sample cheap, and every cost here is a cached-atom reprice
// (InumCostModel::CostCached): once the workload is populated, a full
// DoI matrix makes ZERO backend optimizer calls.
//
// Hard properties (tested in properties_test):
//   * symmetry: PairDoi(a, b) == PairDoi(b, a) bit-for-bit (pairs are
//     canonicalized to (min, max) before any arithmetic or sampling),
//   * zero self-interaction: PairDoi(a, a) == 0,
//   * determinism: AnalyzeMatrix shards work by query over the thread
//     pool and reduces in workload order, so the matrix is bit-identical
//     at any thread count.

#ifndef DBDESIGN_INTERACTION_DOI_H_
#define DBDESIGN_INTERACTION_DOI_H_

#include <vector>

#include "inum/inum.h"

namespace dbdesign {

struct DoiOptions {
  /// Random configuration samples per pair (plus structured ones).
  int random_samples = 8;
  uint64_t seed = 20100610;  // demo date
};

/// One weighted interaction edge between candidate positions a < b.
struct InteractionEdge {
  int a = 0;
  int b = 0;
  double doi = 0.0;

  bool operator==(const InteractionEdge&) const = default;
};

/// Connected components of `num_nodes` vertices under `edges`:
/// singletons included, clusters ordered by smallest member, members
/// ascending. Shared by DoiMatrix::Clusters and
/// InteractionGraph::Clusters.
std::vector<std::vector<int>> ClustersFromEdges(
    int num_nodes, const std::vector<InteractionEdge>& edges);

/// A cluster decomposition with membership lookup: `clusters` is exactly
/// what ClustersFromEdges returns (ordered by smallest member, members
/// ascending — deterministic by construction), and `cluster_of[v]` is
/// the position in `clusters` of the cluster containing node v. This is
/// the form the CoPhy solver consumes: membership is needed per
/// CANDIDATE (to route a pin/veto to the one subproblem it dirties),
/// not just per recommended index.
struct ClusterPartition {
  std::vector<std::vector<int>> clusters;
  std::vector<int> cluster_of;

  int num_nodes() const { return static_cast<int>(cluster_of.size()); }
  int num_clusters() const { return static_cast<int>(clusters.size()); }
  bool empty() const { return clusters.empty(); }
};

/// ClustersFromEdges plus the inverse membership map.
ClusterPartition PartitionFromEdges(int num_nodes,
                                    const std::vector<InteractionEdge>& edges);

/// The full pairwise DoI matrix over a candidate set, plus the
/// per-query contribution rows behind it. The rows are what make the
/// matrix incrementally maintainable: doi(a,b) is the weighted sum of
/// per-query contributions, so a workload delta only has to (re)compute
/// the rows of the queries it touched — DesignSession caches rows per
/// template class and reuses every untouched one.
struct DoiMatrix {
  int num_indexes = 0;
  /// Upper triangle in PairIndex order: weighted workload DoI per pair.
  std::vector<double> doi;
  /// contributions[i][p]: query i's unweighted worst-case interaction
  /// for pair p (doi[p] = sum_i weight_i * contributions[i][p]).
  std::vector<std::vector<double>> contributions;

  /// Dense upper-triangle position of pair (a, b), order-insensitive.
  int PairIndex(int a, int b) const;
  double Doi(int a, int b) const {
    return a == b ? 0.0 : doi[static_cast<size_t>(PairIndex(a, b))];
  }
  size_t num_pairs() const { return doi.size(); }

  /// Edges with doi > min_doi, sorted heaviest first (ties broken by
  /// (a, b) so the order is deterministic).
  std::vector<InteractionEdge> Edges(double min_doi = 1e-6) const;

  /// Connected components of the interaction graph induced by edges
  /// with doi > min_doi: indexes in different clusters do not interact,
  /// so their deployment benefits compose independently. Singleton
  /// clusters included; clusters ordered by smallest member.
  std::vector<std::vector<int>> Clusters(double min_doi = 1e-6) const;

  /// Clusters plus per-index membership (see ClusterPartition).
  ClusterPartition Partition(double min_doi = 1e-6) const;
};

class InteractionAnalyzer {
 public:
  explicit InteractionAnalyzer(InumCostModel& inum, DoiOptions options = {})
      : inum_(&inum), options_(options) {}

  /// Degree of interaction for one pair within candidate set `indexes`.
  /// Exactly symmetric in (a, b); zero when a == b.
  double PairDoi(const Workload& workload,
                 const std::vector<IndexDef>& indexes, int a, int b);

  /// The full pairwise matrix. Populates INUM for the workload once,
  /// then computes every query's contribution row via cached-atom
  /// repricing — queries fan out across the thread pool (shard by
  /// query, matching the costing engine's ownership model) and the
  /// weighted reduction runs in workload order, so the result is
  /// bit-identical at any backend num_threads setting.
  DoiMatrix AnalyzeMatrix(const Workload& workload,
                          const std::vector<IndexDef>& indexes);

  /// Contribution rows for `queries` only (each row in input order),
  /// against the same pair layout AnalyzeMatrix uses for `indexes`.
  /// The incremental entry point: DesignSession calls this for the
  /// template classes whose atoms changed and stitches the rows into
  /// its cached matrix.
  std::vector<std::vector<double>> ContributionRows(
      const std::vector<BoundQuery>& queries,
      const std::vector<IndexDef>& indexes);

  /// Status-returning form of ContributionRows: cached-atom repricing
  /// is client-side, but an unseen query (or an over-wide one) falls
  /// back to the backend — a backend failure there cancels the
  /// remaining per-query shards and returns as its Status instead of
  /// aborting or poisoning the matrix.
  Result<std::vector<std::vector<double>>> TryContributionRows(
      const std::vector<BoundQuery>& queries,
      const std::vector<IndexDef>& indexes);

  /// All pairwise interactions; edges with doi ~ 0 are dropped.
  std::vector<InteractionEdge> Analyze(const Workload& workload,
                                       const std::vector<IndexDef>& indexes);

  /// Individual benefit of indexes[a] on the empty configuration.
  double SoloBenefit(const Workload& workload,
                     const std::vector<IndexDef>& indexes, int a);

 private:
  /// The sampled configurations X ⊆ S∖{a,b} for one (canonical) pair.
  /// Depends only on (n, a, b, options) — query-independent, so the
  /// matrix entry points build each pair's sample designs once and
  /// share them read-only across the per-query workers.
  std::vector<std::vector<int>> PairSamples(int n, int a, int b) const;

  InumCostModel* inum_;
  DoiOptions options_;
};

/// Approximate in-memory footprint of one cached contribution row under
/// its cache key (DesignSession keys rows by the template class's SQL
/// rendering) — the accounting unit for CacheBudget::doi_rows_bytes.
/// Deterministic (it reads sizes, not capacities), so eviction order
/// under a budget is bit-stable across runs.
size_t ContributionRowBytes(const std::string& key,
                            const std::vector<double>& row);

}  // namespace dbdesign

#endif  // DBDESIGN_INTERACTION_DOI_H_
