// Degree of interaction between indexes (paper §3.5, ref [12] —
// Schnaitter, Polyzotis, Getoor, PVLDB 2009).
//
// The benefit of index a under configuration X is
//   b_q(a, X) = cost(q, X) - cost(q, X ∪ {a}).
// Indexes a and b interact in query q when adding b changes a's benefit:
//   doi_q(a, b) = max over X ⊆ S∖{a,b} of
//                 |b_q(a, X) - b_q(a, X ∪ {b})| / cost(q, ∅),
// and the workload degree is the weighted sum over queries. Exhaustive
// maximization over X is exponential; following the paper's stability
// observation we sample structured subsets (empty, singletons, the full
// remainder, plus random subsets) — INUM makes the 4 cost calls per
// sample cheap.

#ifndef DBDESIGN_INTERACTION_DOI_H_
#define DBDESIGN_INTERACTION_DOI_H_

#include <vector>

#include "inum/inum.h"

namespace dbdesign {

struct DoiOptions {
  /// Random configuration samples per pair (plus structured ones).
  int random_samples = 8;
  uint64_t seed = 20100610;  // demo date
};

/// One weighted interaction edge between candidate positions a < b.
struct InteractionEdge {
  int a = 0;
  int b = 0;
  double doi = 0.0;
};

class InteractionAnalyzer {
 public:
  explicit InteractionAnalyzer(InumCostModel& inum, DoiOptions options = {})
      : inum_(&inum), options_(options) {}

  /// Degree of interaction for one pair within candidate set `indexes`.
  double PairDoi(const Workload& workload,
                 const std::vector<IndexDef>& indexes, int a, int b);

  /// All pairwise interactions; edges with doi ~ 0 are dropped.
  std::vector<InteractionEdge> Analyze(const Workload& workload,
                                       const std::vector<IndexDef>& indexes);

  /// Individual benefit of indexes[a] on the empty configuration.
  double SoloBenefit(const Workload& workload,
                     const std::vector<IndexDef>& indexes, int a);

 private:
  InumCostModel* inum_;
  DoiOptions options_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_INTERACTION_DOI_H_
