// Selectivity estimation from column statistics.

#ifndef DBDESIGN_OPTIMIZER_SELECTIVITY_H_
#define DBDESIGN_OPTIMIZER_SELECTIVITY_H_

#include <vector>

#include "catalog/stats.h"
#include "sql/bound_query.h"

namespace dbdesign {

/// Default selectivity when statistics offer no information (PG's
/// DEFAULT_EQ_SEL / DEFAULT_RANGE_INEQ_SEL spirit).
constexpr double kDefaultEqSelectivity = 0.005;
constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;

/// Fraction of rows with column value strictly less than `v`, estimated
/// from MCVs + histogram.
double FractionBelow(const ColumnStats& stats, const Value& v);

/// Selectivity of a single predicate against its column's statistics.
double PredicateSelectivity(const ColumnStats& stats,
                            const BoundPredicate& pred);

/// Combined selectivity of conjunctive predicates on one table slot,
/// assuming independence, clamped to [1e-9, 1].
double ConjunctionSelectivity(const TableStats& stats,
                              const std::vector<BoundPredicate>& preds);

/// Equijoin selectivity: 1 / max(ndv_left, ndv_right) (System R).
double EquiJoinSelectivity(const ColumnStats& left, const ColumnStats& right);

/// Estimated number of distinct groups when grouping rows (post-filter
/// cardinality `rows`) by columns with the given per-column NDVs; applies
/// the standard containment cap.
double EstimateGroupCount(double rows, const std::vector<double>& ndvs);

}  // namespace dbdesign

#endif  // DBDESIGN_OPTIMIZER_SELECTIVITY_H_
