// Physical plan representation.
//
// Plans are immutable trees of shared nodes (the DP memo shares
// subplans across alternatives). The executor interprets the same
// representation the optimizer emits.

#ifndef DBDESIGN_OPTIMIZER_PLAN_H_
#define DBDESIGN_OPTIMIZER_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/design.h"
#include "optimizer/cost_params.h"
#include "sql/bound_query.h"

namespace dbdesign {

enum class PlanNodeType {
  kSeqScan,
  kIndexScan,
  kIndexOnlyScan,
  kNestLoopJoin,       ///< materialized-inner nested loops
  kIndexNestLoopJoin,  ///< inner is an index lookup on the join key
  kHashJoin,
  kMergeJoin,
  kSort,
  kHashAggregate,
  kGroupAggregate,  ///< aggregate over sorted input
  kLimit,
  kAbstractLeaf,  ///< INUM signature-mode placeholder leaf
};

const char* PlanNodeTypeName(PlanNodeType type);

struct PlanNode;
using PlanNodeRef = std::shared_ptr<const PlanNode>;

struct PlanNode {
  PlanNodeType type = PlanNodeType::kSeqScan;
  Cost cost;
  double rows = 0.0;   ///< estimated output rows
  double width = 0.0;  ///< estimated output row bytes

  // --- Scan / leaf fields ---
  int slot = -1;                        ///< FROM slot for scans
  std::optional<IndexDef> index;        ///< kIndexScan/kIndexOnlyScan/kIndexNestLoopJoin
  std::vector<BoundPredicate> index_conds;  ///< preds satisfied by the index
  std::vector<BoundPredicate> filter;       ///< residual predicate conjuncts

  // --- Join fields ---
  std::optional<BoundJoin> join_cond;       ///< driving equijoin
  std::vector<BoundJoin> extra_join_conds;  ///< additional equijoins (filtered)

  // --- Sort / aggregate / limit fields ---
  std::vector<BoundColumn> sort_cols;
  std::vector<BoundColumn> group_cols;
  int64_t limit_count = -1;

  /// Sort order of the output (ascending prefix), empty = unordered.
  std::vector<BoundColumn> output_order;

  std::vector<PlanNodeRef> children;

  const PlanNode* child(size_t i) const { return children[i].get(); }

  /// Set of FROM slots this subtree produces (bitmask).
  uint64_t SlotMask() const;

  /// Multi-line indented tree rendering, EXPLAIN style.
  std::string ToString(const Catalog& catalog, const BoundQuery& query) const;
};

/// True if `provided` delivers the required prefix order (required must be
/// a prefix of provided).
bool OrderSatisfies(const std::vector<BoundColumn>& provided,
                    const std::vector<BoundColumn>& required);

/// Result of a full optimization.
struct PlanResult {
  PlanNodeRef root;
  double cost = 0.0;  ///< root->cost.total
};

}  // namespace dbdesign

#endif  // DBDESIGN_OPTIMIZER_PLAN_H_
