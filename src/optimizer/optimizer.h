// Optimizer facade: produces a complete physical plan (joins +
// aggregation + ordering + limit) for a bound query under a physical
// design. This is the engine surface the paper's what-if component
// instruments.

#ifndef DBDESIGN_OPTIMIZER_OPTIMIZER_H_
#define DBDESIGN_OPTIMIZER_OPTIMIZER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "optimizer/access_paths.h"
#include "optimizer/join_enum.h"
#include "optimizer/plan.h"

namespace dbdesign {

class Optimizer {
 public:
  Optimizer(const Catalog& catalog, const std::vector<TableStats>& stats,
            CostParams params = {}, PlannerKnobs knobs = {})
      : catalog_(&catalog),
        stats_(&stats),
        params_(params),
        knobs_(knobs) {}

  /// Full cost-based optimization of `query` under `design`.
  PlanResult Optimize(const BoundQuery& query,
                      const PhysicalDesign& design) const {
    return Optimize(query, design, knobs_);
  }

  /// Optimization under explicit planner knobs. Unlike set_knobs() +
  /// Optimize(), this mutates no member state, so concurrent calls on
  /// one Optimizer are safe (the call counter is atomic).
  PlanResult Optimize(const BoundQuery& query, const PhysicalDesign& design,
                      const PlannerKnobs& knobs) const;

  /// Optimization with custom leaves (INUM's abstract signature mode).
  /// `design` is still consulted for partitions via the provider's
  /// context; pass an empty design for fully abstract planning.
  PlanResult OptimizeWithProvider(const BoundQuery& query,
                                  const PhysicalDesign& design,
                                  const PathProvider& provider) const;

  /// Number of full optimizations performed (the expensive operation
  /// INUM exists to avoid; benchmarks report it). Atomic so concurrent
  /// Optimize calls (parallel CostBatch, INUM populate) count exactly.
  uint64_t num_calls() const {
    return num_calls_.load(std::memory_order_relaxed);
  }
  void ResetCallCount() { num_calls_.store(0, std::memory_order_relaxed); }

  const CostParams& params() const { return params_; }
  PlannerKnobs& mutable_knobs() { return knobs_; }
  const PlannerKnobs& knobs() const { return knobs_; }
  void set_knobs(const PlannerKnobs& knobs) { knobs_ = knobs; }

  /// Builds the planner context used by path providers.
  PlannerContext MakeContext(const BoundQuery& query,
                             const PhysicalDesign& design) const;
  PlannerContext MakeContext(const BoundQuery& query,
                             const PhysicalDesign& design,
                             const PlannerKnobs& knobs) const;

  /// Applies aggregation / ORDER BY / LIMIT on top of the join
  /// alternatives and returns the cheapest finished plan. Exposed for
  /// INUM, which runs the same finishing pass over abstract plans.
  PlanResult FinishPlan(const PlannerContext& ctx,
                        std::vector<JoinAlternative> alternatives) const;

 private:
  const Catalog* catalog_;
  const std::vector<TableStats>* stats_;
  CostParams params_;
  PlannerKnobs knobs_;
  mutable std::atomic<uint64_t> num_calls_{0};
};

}  // namespace dbdesign

#endif  // DBDESIGN_OPTIMIZER_OPTIMIZER_H_
