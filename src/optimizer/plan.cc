#include "optimizer/plan.h"

#include "util/str.h"

namespace dbdesign {

const char* PlanNodeTypeName(PlanNodeType type) {
  switch (type) {
    case PlanNodeType::kSeqScan: return "SeqScan";
    case PlanNodeType::kIndexScan: return "IndexScan";
    case PlanNodeType::kIndexOnlyScan: return "IndexOnlyScan";
    case PlanNodeType::kNestLoopJoin: return "NestLoop";
    case PlanNodeType::kIndexNestLoopJoin: return "IndexNestLoop";
    case PlanNodeType::kHashJoin: return "HashJoin";
    case PlanNodeType::kMergeJoin: return "MergeJoin";
    case PlanNodeType::kSort: return "Sort";
    case PlanNodeType::kHashAggregate: return "HashAggregate";
    case PlanNodeType::kGroupAggregate: return "GroupAggregate";
    case PlanNodeType::kLimit: return "Limit";
    case PlanNodeType::kAbstractLeaf: return "AbstractLeaf";
  }
  return "?";
}

uint64_t PlanNode::SlotMask() const {
  if (children.empty()) {
    return slot >= 0 ? (uint64_t{1} << slot) : 0;
  }
  uint64_t mask = slot >= 0 ? (uint64_t{1} << slot) : 0;
  for (const PlanNodeRef& c : children) mask |= c->SlotMask();
  return mask;
}

bool OrderSatisfies(const std::vector<BoundColumn>& provided,
                    const std::vector<BoundColumn>& required) {
  if (required.size() > provided.size()) return false;
  for (size_t i = 0; i < required.size(); ++i) {
    if (!(provided[i] == required[i])) return false;
  }
  return true;
}

namespace {

void Render(const PlanNode& node, const Catalog& catalog,
            const BoundQuery& query, int depth, std::string* out) {
  auto col_name = [&](const BoundColumn& c) {
    return query.aliases[c.slot] + "." +
           catalog.table(query.tables[c.slot]).column(c.column).name;
  };
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += PlanNodeTypeName(node.type);
  if (node.slot >= 0 && node.children.empty()) {
    *out += " on " + query.aliases[node.slot];
  }
  if (node.index.has_value()) {
    *out += " using " + node.index->DisplayName(catalog);
  }
  if (node.join_cond.has_value()) {
    *out += StrFormat(" (%s = %s)", col_name(node.join_cond->left).c_str(),
                      col_name(node.join_cond->right).c_str());
  }
  if (!node.sort_cols.empty()) {
    std::vector<std::string> names;
    for (const BoundColumn& c : node.sort_cols) names.push_back(col_name(c));
    *out += " by " + StrJoin(names, ", ");
  }
  if (!node.group_cols.empty()) {
    std::vector<std::string> names;
    for (const BoundColumn& c : node.group_cols) names.push_back(col_name(c));
    *out += " group by " + StrJoin(names, ", ");
  }
  if (node.limit_count >= 0 && node.type == PlanNodeType::kLimit) {
    *out += StrFormat(" %lld", static_cast<long long>(node.limit_count));
  }
  *out += StrFormat("  (cost=%.2f..%.2f rows=%.0f)", node.cost.startup,
                    node.cost.total, node.rows);
  if (!node.index_conds.empty()) {
    std::vector<std::string> conds;
    for (const BoundPredicate& p : node.index_conds) {
      conds.push_back(StrFormat("%s %s %s", col_name(p.column).c_str(),
                                CompareOpName(p.op),
                                p.value.ToString().c_str()));
    }
    *out += "\n";
    out->append(static_cast<size_t>(depth) * 2 + 2, ' ');
    *out += "Index Cond: " + StrJoin(conds, " AND ");
  }
  if (!node.filter.empty()) {
    std::vector<std::string> conds;
    for (const BoundPredicate& p : node.filter) {
      conds.push_back(StrFormat("%s %s %s", col_name(p.column).c_str(),
                                CompareOpName(p.op),
                                p.value.ToString().c_str()));
    }
    *out += "\n";
    out->append(static_cast<size_t>(depth) * 2 + 2, ' ');
    *out += "Filter: " + StrJoin(conds, " AND ");
  }
  for (const PlanNodeRef& c : node.children) {
    *out += "\n";
    Render(*c, catalog, query, depth + 1, out);
  }
}

}  // namespace

std::string PlanNode::ToString(const Catalog& catalog,
                               const BoundQuery& query) const {
  std::string out;
  Render(*this, catalog, query, 0, &out);
  return out;
}

}  // namespace dbdesign
