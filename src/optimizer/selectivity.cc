#include "optimizer/selectivity.h"

#include <algorithm>
#include <cmath>

namespace dbdesign {

namespace {

/// Linear interpolation position of `v` within [lo, hi].
double Interpolate(const Value& v, const Value& lo, const Value& hi) {
  double pv = v.NumericPosition();
  double plo = lo.NumericPosition();
  double phi = hi.NumericPosition();
  if (phi - plo < 1e-12) return 0.5;
  return std::clamp((pv - plo) / (phi - plo), 0.0, 1.0);
}

double EqualitySelectivity(const ColumnStats& stats, const Value& v) {
  // MCV exact hit first.
  for (const McvEntry& e : stats.mcv) {
    if (e.value == v) return e.frequency;
  }
  if (stats.n_distinct <= 0.0) return kDefaultEqSelectivity;
  // Mass not covered by MCVs spreads over remaining distinct values.
  double mcv_mass = 0.0;
  for (const McvEntry& e : stats.mcv) mcv_mass += e.frequency;
  double remaining_ndv = stats.n_distinct - static_cast<double>(stats.mcv.size());
  if (remaining_ndv < 1.0) return kDefaultEqSelectivity;
  // Out-of-range equality matches nothing.
  if (v < stats.min || stats.max < v) return 0.0;
  return std::max(0.0, (1.0 - mcv_mass)) / remaining_ndv;
}

}  // namespace

double FractionBelow(const ColumnStats& stats, const Value& v) {
  if (v <= stats.min) return 0.0;
  if (stats.max < v) return 1.0;
  if (!stats.HasHistogram()) {
    // Uniform interpolation between min and max.
    return Interpolate(v, stats.min, stats.max);
  }
  const std::vector<Value>& h = stats.histogram;
  // h[0] = min; h[i] = upper bound of bucket i (1-based buckets).
  size_t buckets = h.size() - 1;
  // Binary search for the first bound >= v.
  size_t lo = 0;
  size_t hi = h.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (h[mid] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // v lies in bucket `lo` (between h[lo-1] and h[lo]).
  if (lo == 0) return 0.0;
  double below_full = static_cast<double>(lo - 1) / static_cast<double>(buckets);
  double within = Interpolate(v, h[lo - 1], h[lo]);
  return std::clamp(below_full + within / static_cast<double>(buckets),
                    0.0, 1.0);
}

double PredicateSelectivity(const ColumnStats& stats,
                            const BoundPredicate& pred) {
  double sel;
  if (pred.value2.has_value()) {
    // BETWEEN lo AND hi (inclusive both ends).
    double f_lo = FractionBelow(stats, pred.value);
    double f_hi = FractionBelow(stats, *pred.value2);
    sel = std::max(0.0, f_hi - f_lo) + EqualitySelectivity(stats, *pred.value2);
  } else {
    switch (pred.op) {
      case CompareOp::kEq:
        sel = EqualitySelectivity(stats, pred.value);
        break;
      case CompareOp::kNe:
        sel = 1.0 - EqualitySelectivity(stats, pred.value);
        break;
      case CompareOp::kLt:
        sel = FractionBelow(stats, pred.value);
        break;
      case CompareOp::kLe:
        sel = FractionBelow(stats, pred.value) +
              EqualitySelectivity(stats, pred.value);
        break;
      case CompareOp::kGt:
        sel = 1.0 - FractionBelow(stats, pred.value) -
              EqualitySelectivity(stats, pred.value);
        break;
      case CompareOp::kGe:
        sel = 1.0 - FractionBelow(stats, pred.value);
        break;
      default:
        sel = kDefaultRangeSelectivity;
    }
  }
  return std::clamp(sel, 0.0, 1.0);
}

double ConjunctionSelectivity(const TableStats& stats,
                              const std::vector<BoundPredicate>& preds) {
  double sel = 1.0;
  for (const BoundPredicate& p : preds) {
    sel *= PredicateSelectivity(stats.column(p.column.column), p);
  }
  return std::clamp(sel, 1e-9, 1.0);
}

double EquiJoinSelectivity(const ColumnStats& left,
                           const ColumnStats& right) {
  double ndv = std::max({left.n_distinct, right.n_distinct, 1.0});
  return 1.0 / ndv;
}

double EstimateGroupCount(double rows, const std::vector<double>& ndvs) {
  double groups = 1.0;
  for (double ndv : ndvs) groups *= std::max(1.0, ndv);
  return std::max(1.0, std::min(groups, rows));
}

}  // namespace dbdesign
