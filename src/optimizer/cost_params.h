// Cost-model parameters and planner knobs.
//
// Parameter names and defaults mirror PostgreSQL's cost GUCs so that the
// cost model's shape (seq vs index crossover, hash vs merge choices)
// matches the system the paper instruments. The PlannerKnobs struct is
// the "what-if join component" of the paper (§3.1c): it lets the tool
// control which join methods and access paths the optimizer may use.

#ifndef DBDESIGN_OPTIMIZER_COST_PARAMS_H_
#define DBDESIGN_OPTIMIZER_COST_PARAMS_H_

namespace dbdesign {

/// Cost units follow PostgreSQL: 1.0 = one sequential page fetch.
struct CostParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_index_tuple_cost = 0.005;
  double cpu_operator_cost = 0.0025;
  /// Pages assumed cached across repeated index descents (PG GUC).
  double effective_cache_size_pages = 16384.0;  // 128 MB
  /// Memory budget for sorts and hash tables, in bytes.
  double work_mem_bytes = 4.0 * 1024 * 1024;  // 4 MB
  /// Minimum number of rows an estimate may produce.
  double min_rows = 1.0;
  /// Worker threads for batched costing (CostBatch, INUM populate and
  /// workload costing, EvaluateDesigns, CoPhy atom building). 0 = use
  /// hardware concurrency, 1 = serial. Results are bit-identical at any
  /// setting; this knob trades only wall time. Not a PostgreSQL GUC —
  /// it configures the designer's client-side costing engine.
  int num_threads = 0;
};

/// Enables/disables plan operators, PostgreSQL enable_* style. The
/// what-if join component toggles these to steer plans.
struct PlannerKnobs {
  bool enable_seqscan = true;
  bool enable_indexscan = true;
  bool enable_indexonlyscan = true;
  bool enable_nestloop = true;
  bool enable_indexnestloop = true;
  bool enable_hashjoin = true;
  bool enable_mergejoin = true;
  bool enable_sort = true;

  bool AllowsAnyJoin() const {
    return enable_nestloop || enable_indexnestloop || enable_hashjoin ||
           enable_mergejoin;
  }
};

/// Startup/total cost pair, PostgreSQL style. `startup` is the cost to
/// produce the first row (relevant under LIMIT), `total` the cost to
/// produce all rows.
struct Cost {
  double startup = 0.0;
  double total = 0.0;

  Cost operator+(const Cost& o) const {
    return Cost{startup + o.startup, total + o.total};
  }
};

}  // namespace dbdesign

#endif  // DBDESIGN_OPTIMIZER_COST_PARAMS_H_
