#include "optimizer/join_enum.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>

#include "optimizer/selectivity.h"

namespace dbdesign {

JoinEnumerator::JoinEnumerator(const PlannerContext& ctx,
                               const PathProvider& provider)
    : ctx_(ctx), provider_(provider) {
  const BoundQuery& q = *ctx_.query;
  base_rows_.resize(static_cast<size_t>(q.num_slots()));
  for (int s = 0; s < q.num_slots(); ++s) {
    const TableStats& stats = ctx_.StatsFor(s);
    double sel = ConjunctionSelectivity(stats, q.FiltersOn(s));
    base_rows_[static_cast<size_t>(s)] =
        std::max(ctx_.params.min_rows, stats.row_count * sel);
  }
  CollectInterestingOrders();
}

void JoinEnumerator::CollectInterestingOrders() {
  const BoundQuery& q = *ctx_.query;
  auto add = [&](std::vector<BoundColumn> order) {
    if (order.empty()) return;
    for (const auto& existing : interesting_orders_) {
      if (existing == order) return;
    }
    interesting_orders_.push_back(std::move(order));
  };
  for (const BoundJoin& j : q.joins) {
    add({j.left});
    add({j.right});
  }
  add(q.group_by);
  std::vector<BoundColumn> ob;
  for (const BoundOrderItem& o : q.order_by) {
    if (o.descending) break;  // descending ends the usable ascending prefix
    ob.push_back(o.column);
  }
  add(ob);
}

std::vector<BoundColumn> JoinEnumerator::TrimToUseful(
    const std::vector<BoundColumn>& order) const {
  size_t best = 0;
  for (const auto& interesting : interesting_orders_) {
    size_t n = std::min(order.size(), interesting.size());
    size_t match = 0;
    while (match < n && order[match] == interesting[match]) ++match;
    best = std::max(best, match);
  }
  return {order.begin(), order.begin() + static_cast<long>(best)};
}

double JoinEnumerator::SubsetRows(uint64_t mask) const {
  const BoundQuery& q = *ctx_.query;
  double rows = 1.0;
  for (int s = 0; s < q.num_slots(); ++s) {
    if (mask & (uint64_t{1} << s)) rows *= base_rows_[static_cast<size_t>(s)];
  }
  for (const BoundJoin& j : q.joins) {
    uint64_t l = uint64_t{1} << j.left.slot;
    uint64_t r = uint64_t{1} << j.right.slot;
    if ((mask & l) && (mask & r)) {
      const ColumnStats& ls = ctx_.StatsFor(j.left.slot).column(j.left.column);
      const ColumnStats& rs =
          ctx_.StatsFor(j.right.slot).column(j.right.column);
      rows *= EquiJoinSelectivity(ls, rs);
    }
  }
  return std::max(ctx_.params.min_rows, rows);
}

void JoinEnumerator::AddEntry(std::vector<Entry>* entries, Entry entry) {
  for (size_t i = 0; i < entries->size(); ++i) {
    Entry& e = (*entries)[i];
    if (e.order == entry.order) {
      if (e.node->cost.total <= entry.node->cost.total) return;
      e = std::move(entry);
      return;
    }
  }
  entries->push_back(std::move(entry));
}

namespace {

double JoinedWidth(const PlanNode& a, const PlanNode& b) {
  return a.width + b.width;
}

}  // namespace

void JoinEnumerator::JoinPair(uint64_t outer_mask, uint64_t inner_mask,
                              const std::vector<Entry>& outer_entries,
                              const std::vector<Entry>& inner_entries,
                              std::vector<Entry>* out) {
  const BoundQuery& q = *ctx_.query;
  const CostParams& P = ctx_.params;
  const PlannerKnobs& K = ctx_.knobs;

  // Collect join predicates crossing the two sides, oriented so that
  // `left` lives in the outer mask.
  std::vector<BoundJoin> cross;
  for (const BoundJoin& j : q.joins) {
    uint64_t l = uint64_t{1} << j.left.slot;
    uint64_t r = uint64_t{1} << j.right.slot;
    if ((outer_mask & l) && (inner_mask & r)) {
      cross.push_back(j);
    } else if ((outer_mask & r) && (inner_mask & l)) {
      cross.push_back(BoundJoin{j.right, j.left});
    }
  }

  double out_rows = SubsetRows(outer_mask | inner_mask);
  int n_extra = cross.empty() ? 0 : static_cast<int>(cross.size()) - 1;

  for (const Entry& oe : outer_entries) {
    for (const Entry& ie : inner_entries) {
      const PlanNode& O = *oe.node;
      const PlanNode& I = *ie.node;
      double width = JoinedWidth(O, I);

      // --- Hash join (probe side = outer; preserves outer order) ---
      if (K.enable_hashjoin && !cross.empty()) {
        double build_cpu = I.rows * (P.cpu_operator_cost + P.cpu_tuple_cost);
        double spill_io = 0.0;
        double inner_bytes = I.rows * std::max(8.0, I.width);
        if (inner_bytes > P.work_mem_bytes) {
          double pages =
              (inner_bytes + O.rows * std::max(8.0, O.width)) / kPageSizeBytes;
          spill_io = 2.0 * pages * P.seq_page_cost;
        }
        auto node = std::make_shared<PlanNode>();
        node->type = PlanNodeType::kHashJoin;
        node->join_cond = cross[0];
        node->extra_join_conds.assign(cross.begin() + 1, cross.end());
        node->rows = out_rows;
        node->width = width;
        node->cost.startup = O.cost.startup + I.cost.total + build_cpu;
        node->cost.total = O.cost.total + I.cost.total + build_cpu +
                           spill_io +
                           O.rows * P.cpu_operator_cost * (1 + n_extra) +
                           out_rows * P.cpu_tuple_cost;
        node->output_order = oe.order;
        node->children = {oe.node, ie.node};
        AddEntry(out, Entry{std::move(node), oe.order});
      }

      // --- Merge join ---
      if (K.enable_mergejoin && !cross.empty() && K.enable_sort) {
        const BoundJoin& j = cross[0];
        PlanNodeRef outer_sorted = oe.node;
        std::vector<BoundColumn> outer_order = oe.order;
        if (!OrderSatisfies(oe.order, {j.left})) {
          outer_sorted = MakeSortNode(P, oe.node, {j.left});
          outer_order = {j.left};
        }
        PlanNodeRef inner_sorted = ie.node;
        if (!OrderSatisfies(ie.order, {j.right})) {
          inner_sorted = MakeSortNode(P, ie.node, {j.right});
        }
        auto node = std::make_shared<PlanNode>();
        node->type = PlanNodeType::kMergeJoin;
        node->join_cond = j;
        node->extra_join_conds.assign(cross.begin() + 1, cross.end());
        node->rows = out_rows;
        node->width = width;
        node->cost.startup =
            outer_sorted->cost.startup + inner_sorted->cost.startup;
        node->cost.total =
            outer_sorted->cost.total + inner_sorted->cost.total +
            (outer_sorted->rows + inner_sorted->rows) * P.cpu_operator_cost *
                (1 + n_extra) +
            out_rows * P.cpu_tuple_cost;
        node->output_order = TrimToUseful(outer_order);
        node->children = {outer_sorted, inner_sorted};
        AddEntry(out, Entry{node, node->output_order});
      }

      // --- Nested loop with materialized inner ---
      if (K.enable_nestloop) {
        double mat_cpu = I.rows * P.cpu_tuple_cost;
        double pair_cpu = O.rows * I.rows * P.cpu_operator_cost *
                          std::max<size_t>(1, cross.size());
        auto node = std::make_shared<PlanNode>();
        node->type = PlanNodeType::kNestLoopJoin;
        if (!cross.empty()) {
          node->join_cond = cross[0];
          node->extra_join_conds.assign(cross.begin() + 1, cross.end());
        }
        node->rows = out_rows;
        node->width = width;
        node->cost.startup = O.cost.startup + I.cost.total + mat_cpu;
        node->cost.total = O.cost.total + I.cost.total + mat_cpu + pair_cpu +
                           out_rows * P.cpu_tuple_cost;
        node->output_order = oe.order;
        node->children = {oe.node, ie.node};
        AddEntry(out, Entry{std::move(node), oe.order});
      }

      // --- Index nested loop (inner must be a single base slot) ---
      if (!cross.empty() && std::popcount(inner_mask) == 1 &&
          ie.node->children.empty()) {
        int inner_slot = std::countr_zero(inner_mask);
        for (const BoundJoin& j : cross) {
          auto lookup = provider_.ParamLookup(inner_slot, j.right);
          if (!lookup.has_value()) continue;
          auto node = std::make_shared<PlanNode>();
          node->type = PlanNodeType::kIndexNestLoopJoin;
          node->slot = inner_slot;
          node->index = lookup->index;
          node->join_cond = j;
          for (const BoundJoin& other : cross) {
            if (!(other.left == j.left && other.right == j.right)) {
              node->extra_join_conds.push_back(other);
            }
          }
          node->filter = q.FiltersOn(inner_slot);
          node->rows = out_rows;
          node->width = width;
          node->cost.startup = O.cost.startup;
          node->cost.total =
              O.cost.total + O.rows * lookup->per_lookup.total +
              O.rows * lookup->rows_per_lookup * n_extra *
                  P.cpu_operator_cost +
              out_rows * P.cpu_tuple_cost;
          node->output_order = oe.order;
          node->children = {oe.node};
          AddEntry(out, Entry{std::move(node), oe.order});
        }
      }
    }
  }
}

std::vector<JoinAlternative> JoinEnumerator::Enumerate() {
  const BoundQuery& q = *ctx_.query;
  int n = q.num_slots();
  uint64_t full = (n >= 64) ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);

  std::map<uint64_t, std::vector<Entry>> memo;

  // Singletons.
  for (int s = 0; s < n; ++s) {
    std::vector<Entry> entries;
    for (AccessPath& path : provider_.Paths(s)) {
      Entry e;
      e.order = TrimToUseful(path.order);
      e.node = std::move(path.node);
      AddEntry(&entries, std::move(e));
    }
    memo[uint64_t{1} << s] = std::move(entries);
  }
  if (n == 1) {
    std::vector<JoinAlternative> out;
    for (Entry& e : memo[1]) {
      out.push_back(JoinAlternative{std::move(e.node), std::move(e.order)});
    }
    return out;
  }

  // Subsets by increasing size.
  std::vector<uint64_t> masks;
  for (uint64_t m = 1; m <= full; ++m) {
    if (std::popcount(m) >= 2) masks.push_back(m);
  }
  std::sort(masks.begin(), masks.end(), [](uint64_t a, uint64_t b) {
    int pa = std::popcount(a);
    int pb = std::popcount(b);
    return pa != pb ? pa < pb : a < b;
  });

  for (uint64_t mask : masks) {
    std::vector<Entry> entries;
    // Enumerate ordered splits (outer, inner); both bushy and linear.
    for (uint64_t sub = (mask - 1) & mask; sub != 0;
         sub = (sub - 1) & mask) {
      uint64_t other = mask & ~sub;
      auto it_sub = memo.find(sub);
      auto it_other = memo.find(other);
      if (it_sub == memo.end() || it_other == memo.end()) continue;
      if (it_sub->second.empty() || it_other->second.empty()) continue;

      // Avoid cartesian products unless the subset is disconnected.
      bool connected = false;
      for (const BoundJoin& j : q.joins) {
        uint64_t l = uint64_t{1} << j.left.slot;
        uint64_t r = uint64_t{1} << j.right.slot;
        if (((sub & l) && (other & r)) || ((sub & r) && (other & l))) {
          connected = true;
          break;
        }
      }
      if (!connected) {
        // Allow cartesian only when no split of this subset is connected
        // (checked lazily: try connected splits first, fall back below).
        continue;
      }
      JoinPair(sub, other, it_sub->second, it_other->second, &entries);
    }
    if (entries.empty()) {
      // Disconnected subset: allow cartesian splits.
      for (uint64_t sub = (mask - 1) & mask; sub != 0;
           sub = (sub - 1) & mask) {
        uint64_t other = mask & ~sub;
        auto it_sub = memo.find(sub);
        auto it_other = memo.find(other);
        if (it_sub == memo.end() || it_other == memo.end()) continue;
        if (it_sub->second.empty() || it_other->second.empty()) continue;
        JoinPair(sub, other, it_sub->second, it_other->second, &entries);
      }
    }
    memo[mask] = std::move(entries);
  }

  std::vector<JoinAlternative> out;
  for (Entry& e : memo[full]) {
    out.push_back(JoinAlternative{std::move(e.node), std::move(e.order)});
  }
  return out;
}

}  // namespace dbdesign
