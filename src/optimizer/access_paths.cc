#include "optimizer/access_paths.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "optimizer/selectivity.h"

namespace dbdesign {

double IndexPagesFetched(double tuples, double pages, double cache_pages) {
  // Mackert & Lohman, as implemented by PostgreSQL's index_pages_fetched().
  double T = std::max(1.0, pages);
  double N = std::max(0.0, tuples);
  if (N <= 0) return 0.0;
  double b = std::max(1.0, cache_pages);
  double fetched;
  if (T <= b) {
    fetched = (2.0 * T * N) / (2.0 * T + N);
    if (fetched > T) fetched = T;
  } else {
    double lim = (2.0 * T * b) / (2.0 * T - b);
    if (N <= lim) {
      fetched = (2.0 * T * N) / (2.0 * T + N);
    } else {
      fetched = b + (N - lim) * (T - b) / T;
    }
  }
  return std::ceil(fetched);
}

double SlotOutputWidth(const PlannerContext& ctx, int slot) {
  const TableDef& def = ctx.DefFor(slot);
  double w = 0.0;
  for (ColumnId c : ctx.query->ReferencedColumns(slot)) {
    w += def.column(c).Width();
  }
  return std::max(8.0, w);
}

namespace {

/// Fraction of a horizontally partitioned table's partitions that
/// survive pruning by the slot's filters on the partitioning column.
double HorizontalSurvivingFraction(const PlannerContext& ctx, int slot,
                                   const HorizontalPartitioning& hp) {
  const TableStats& stats = ctx.StatsFor(slot);
  const ColumnStats& cs = stats.column(hp.column);
  int nparts = hp.num_partitions();
  if (nparts <= 1) return 1.0;

  // Collect the tightest [lo, hi] window implied by filters on hp.column.
  bool has_bound = false;
  double sel_window = 1.0;
  for (const BoundPredicate& p : ctx.query->FiltersOn(slot)) {
    if (p.column.column != hp.column) continue;
    double sel = PredicateSelectivity(cs, p);
    sel_window = std::min(sel_window, sel);
    has_bound = true;
  }
  if (!has_bound) return 1.0;
  // Partitions intersected ≈ sel * nparts rounded up, plus one boundary
  // partition; equality predicates hit a single partition.
  double parts = std::ceil(sel_window * nparts) + 1.0;
  parts = std::min(parts, static_cast<double>(nparts));
  return parts / static_cast<double>(nparts);
}

/// Greedy minimum-page fragment cover for the referenced columns.
double VerticalCoverPages(const PlannerContext& ctx, int slot,
                          const VerticalPartitioning& vp,
                          int* fragments_used) {
  const TableDef& def = ctx.DefFor(slot);
  const TableStats& stats = ctx.StatsFor(slot);
  std::set<ColumnId> needed;
  for (ColumnId c : ctx.query->ReferencedColumns(slot)) needed.insert(c);
  if (needed.empty() && def.num_columns() > 0) needed.insert(0);

  double pages = 0.0;
  int used = 0;
  // Greedy set cover: repeatedly take the fragment covering the most
  // still-needed columns per page.
  std::set<ColumnId> remaining = needed;
  while (!remaining.empty()) {
    const VerticalFragment* best = nullptr;
    double best_ratio = -1.0;
    for (const VerticalFragment& f : vp.fragments) {
      int covers = 0;
      for (ColumnId c : remaining) {
        if (f.Covers(c)) ++covers;
      }
      if (covers == 0) continue;
      double fp = stats.FragmentPages(def, f.columns);
      double ratio = static_cast<double>(covers) / std::max(1.0, fp);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = &f;
      }
    }
    if (best == nullptr) {
      // Partitioning does not cover a referenced column — treat the
      // remainder as a full-width scan (defensive; AutoPart always emits
      // covering partitionings).
      pages += stats.HeapPages(def);
      ++used;
      break;
    }
    pages += stats.FragmentPages(def, best->columns);
    ++used;
    for (ColumnId c : best->columns) remaining.erase(c);
  }
  if (fragments_used != nullptr) *fragments_used = used;
  return std::max(1.0, pages);
}

}  // namespace

double EffectiveScanPages(const PlannerContext& ctx, int slot,
                          double* rows_scanned_fraction) {
  const TableDef& def = ctx.DefFor(slot);
  const TableStats& stats = ctx.StatsFor(slot);
  TableId tid = ctx.query->tables[slot];

  double pages;
  int fragments_used = 1;
  const VerticalPartitioning* vp = ctx.design->vertical(tid);
  if (vp != nullptr && !vp->fragments.empty()) {
    pages = VerticalCoverPages(ctx, slot, *vp, &fragments_used);
  } else {
    pages = stats.HeapPages(def);
  }

  double fraction = 1.0;
  const HorizontalPartitioning* hp = ctx.design->horizontal(tid);
  if (hp != nullptr) {
    fraction = HorizontalSurvivingFraction(ctx, slot, *hp);
    pages = std::max(1.0, std::ceil(pages * fraction));
  }
  if (rows_scanned_fraction != nullptr) *rows_scanned_fraction = fraction;
  return pages;
}

Cost SortCost(const CostParams& params, double rows, double width) {
  rows = std::max(rows, params.min_rows);
  double cmp = 2.0 * params.cpu_operator_cost;
  double cpu = rows * std::log2(std::max(2.0, rows)) * cmp;
  double bytes = rows * width;
  double io = 0.0;
  if (bytes > params.work_mem_bytes) {
    // External sort: write + read runs, one merge pass per 4x overflow.
    double pages = std::ceil(bytes / kPageSizeBytes);
    double passes =
        std::max(1.0, std::ceil(std::log(bytes / params.work_mem_bytes) /
                                std::log(4.0)));
    io = 2.0 * pages * passes * params.seq_page_cost;
  }
  Cost c;
  c.startup = cpu + io;  // sorts deliver the first row only when done
  c.total = c.startup + rows * params.cpu_operator_cost;
  return c;
}

PlanNodeRef MakeSortNode(const CostParams& params, PlanNodeRef input,
                         std::vector<BoundColumn> order) {
  auto node = std::make_shared<PlanNode>();
  node->type = PlanNodeType::kSort;
  node->rows = input->rows;
  node->width = input->width;
  Cost sc = SortCost(params, input->rows, input->width);
  node->cost.startup = input->cost.total + sc.startup;
  node->cost.total = input->cost.total + sc.total;
  node->sort_cols = order;
  node->output_order = std::move(order);
  node->children.push_back(std::move(input));
  return node;
}

namespace {

/// Predicates on `slot` split into those matched by the index prefix
/// (index conditions) and the residual filter.
struct IndexMatch {
  std::vector<BoundPredicate> index_conds;
  std::vector<BoundPredicate> residual;
  double index_selectivity = 1.0;  ///< selectivity of index_conds
  int matched_cols = 0;            ///< # leading index columns with conds
};

IndexMatch MatchIndexConditions(const PlannerContext& ctx, int slot,
                                const IndexDef& index) {
  IndexMatch m;
  std::vector<BoundPredicate> preds = ctx.query->FiltersOn(slot);
  const TableStats& stats = ctx.StatsFor(slot);
  std::vector<bool> used(preds.size(), false);

  for (ColumnId col : index.columns) {
    bool consumed_eq = false;
    bool consumed_range = false;
    for (size_t i = 0; i < preds.size(); ++i) {
      if (used[i] || preds[i].column.column != col) continue;
      if (preds[i].IsEquality()) {
        used[i] = true;
        m.index_conds.push_back(preds[i]);
        m.index_selectivity *=
            PredicateSelectivity(stats.column(col), preds[i]);
        consumed_eq = true;
      } else if (preds[i].IsRange()) {
        used[i] = true;
        m.index_conds.push_back(preds[i]);
        m.index_selectivity *=
            PredicateSelectivity(stats.column(col), preds[i]);
        consumed_range = true;
      }
    }
    if (consumed_eq && !consumed_range) {
      ++m.matched_cols;
      continue;  // equality on this column: later columns still usable
    }
    if (consumed_range) {
      ++m.matched_cols;
    }
    break;  // range (or nothing) ends the usable prefix
  }
  for (size_t i = 0; i < preds.size(); ++i) {
    if (!used[i]) m.residual.push_back(preds[i]);
  }
  m.index_selectivity = std::clamp(m.index_selectivity, 1e-9, 1.0);
  return m;
}

std::vector<BoundColumn> IndexOrder(int slot, const IndexDef& index) {
  std::vector<BoundColumn> order;
  order.reserve(index.columns.size());
  for (ColumnId c : index.columns) order.push_back(BoundColumn{slot, c});
  return order;
}

/// Shared per-slot scan inputs.
struct SlotScanInfo {
  std::vector<BoundPredicate> preds;
  double sel_all = 1.0;
  double out_rows = 1.0;
  double width = 8.0;
  double heap_pages_for_fetch = 1.0;
};

SlotScanInfo ComputeSlotScanInfo(const PlannerContext& ctx, int slot) {
  SlotScanInfo info;
  const TableStats& stats = ctx.StatsFor(slot);
  const TableDef& def = ctx.DefFor(slot);
  TableId tid = ctx.query->tables[slot];
  info.preds = ctx.query->FiltersOn(slot);
  info.sel_all = ConjunctionSelectivity(stats, info.preds);
  info.out_rows =
      std::max(ctx.params.min_rows, stats.row_count * info.sel_all);
  info.width = SlotOutputWidth(ctx, slot);
  info.heap_pages_for_fetch = stats.HeapPages(def);
  if (const VerticalPartitioning* vp = ctx.design->vertical(tid);
      vp != nullptr && !vp->fragments.empty()) {
    info.heap_pages_for_fetch = VerticalCoverPages(ctx, slot, *vp, nullptr);
  }
  return info;
}

/// Cost figures for one index against one slot, used by both the
/// node-building Paths() and the cost-only CostIndexLeaf().
struct IndexCostNumbers {
  IndexMatch match;
  bool covering = false;
  bool has_conds = false;
  double descent_cpu = 0.0;
  double index_io = 0.0;
  double index_cpu = 0.0;
  double residual_cpu = 0.0;
  double tuples = 0.0;
  double heap_io = 0.0;  ///< plain index scan heap fetch IO
};

IndexCostNumbers ComputeIndexCostNumbers(const PlannerContext& ctx, int slot,
                                         const IndexDef& index,
                                         const SlotScanInfo& info) {
  const CostParams& P = ctx.params;
  const TableStats& stats = ctx.StatsFor(slot);
  const TableDef& def = ctx.DefFor(slot);

  IndexCostNumbers n;
  n.match = MatchIndexConditions(ctx, slot, index);
  n.covering = true;
  for (ColumnId c : ctx.query->ReferencedColumns(slot)) {
    if (std::find(index.columns.begin(), index.columns.end(), c) ==
        index.columns.end()) {
      n.covering = false;
      break;
    }
  }
  IndexSizeEstimate size = EstimateIndexSize(index, def, stats);
  double entries = std::max(1.0, stats.row_count);
  n.descent_cpu = std::log2(std::max(2.0, entries)) * P.cpu_operator_cost +
                  size.height * 50.0 * P.cpu_operator_cost;
  n.has_conds = !n.match.index_conds.empty();
  double sel_idx = n.has_conds ? n.match.index_selectivity : 1.0;
  n.tuples = std::max(P.min_rows, stats.row_count * sel_idx);
  double leaf_pages_touched =
      std::max(1.0, std::ceil(size.leaf_pages * sel_idx));
  n.index_io =
      P.random_page_cost + (leaf_pages_touched - 1.0) * P.seq_page_cost;
  n.index_cpu = n.tuples * P.cpu_index_tuple_cost;
  n.residual_cpu = n.tuples *
                   static_cast<double>(n.match.residual.size()) *
                   P.cpu_operator_cost;

  const ColumnStats& lead = stats.column(index.columns[0]);
  double corr2 = lead.correlation * lead.correlation;
  double max_pages = IndexPagesFetched(n.tuples, info.heap_pages_for_fetch,
                                       P.effective_cache_size_pages);
  double min_pages =
      std::max(1.0, std::ceil(sel_idx * info.heap_pages_for_fetch));
  double max_io = max_pages * P.random_page_cost;
  double min_io = P.random_page_cost + (min_pages - 1.0) * P.seq_page_cost;
  n.heap_io = std::max(min_io, max_io + corr2 * (min_io - max_io));
  return n;
}

}  // namespace

double CostSeqLeaf(const PlannerContext& ctx, int slot) {
  const CostParams& P = ctx.params;
  const TableStats& stats = ctx.StatsFor(slot);
  std::vector<BoundPredicate> preds = ctx.query->FiltersOn(slot);
  double scanned_fraction = 1.0;
  double pages = EffectiveScanPages(ctx, slot, &scanned_fraction);
  double rows_scanned = stats.row_count * scanned_fraction;
  return pages * P.seq_page_cost + rows_scanned * P.cpu_tuple_cost +
         rows_scanned * static_cast<double>(preds.size()) *
             P.cpu_operator_cost;
}

IndexLeafCost CostIndexLeaf(const PlannerContext& ctx, int slot,
                            const IndexDef& index) {
  const CostParams& P = ctx.params;
  SlotScanInfo info = ComputeSlotScanInfo(ctx, slot);
  IndexCostNumbers n = ComputeIndexCostNumbers(ctx, slot, index, info);
  IndexLeafCost leaf;
  leaf.order = IndexOrder(slot, index);
  double common = n.descent_cpu + n.index_io + n.index_cpu +
                  n.tuples * P.cpu_tuple_cost + n.residual_cpu;
  if (n.has_conds || !n.covering) {
    leaf.scan_cost = common + n.heap_io;
  }
  if (n.covering) {
    leaf.index_only_cost = common;
  }
  return leaf;
}

std::vector<AccessPath> CatalogPathProvider::Paths(int slot) const {
  std::vector<AccessPath> paths;
  const PlannerContext& ctx = ctx_;
  const CostParams& P = ctx.params;
  TableId tid = ctx.query->tables[slot];

  SlotScanInfo info = ComputeSlotScanInfo(ctx, slot);

  // --- Sequential scan (partition-aware) ---
  if (ctx.knobs.enable_seqscan) {
    auto node = std::make_shared<PlanNode>();
    node->type = PlanNodeType::kSeqScan;
    node->slot = slot;
    node->filter = info.preds;
    node->rows = info.out_rows;
    node->width = info.width;
    node->cost.startup = 0.0;
    node->cost.total = CostSeqLeaf(ctx, slot);
    AccessPath path;
    path.rows = info.out_rows;
    path.node = std::move(node);
    paths.push_back(std::move(path));
  }

  // --- Index paths ---
  for (const IndexDef& index : ctx.design->IndexesOn(tid)) {
    IndexCostNumbers n = ComputeIndexCostNumbers(ctx, slot, index, info);
    double common = n.descent_cpu + n.index_io + n.index_cpu +
                    n.tuples * P.cpu_tuple_cost + n.residual_cpu;

    // --- Plain index scan (heap fetches) ---
    if (ctx.knobs.enable_indexscan && (n.has_conds || !n.covering)) {
      auto node = std::make_shared<PlanNode>();
      node->type = PlanNodeType::kIndexScan;
      node->slot = slot;
      node->index = index;
      node->index_conds = n.match.index_conds;
      node->filter = n.match.residual;
      node->rows = info.out_rows;
      node->width = info.width;
      node->output_order = IndexOrder(slot, index);
      node->cost.startup = n.descent_cpu + P.random_page_cost;
      node->cost.total = common + n.heap_io;
      AccessPath path;
      path.rows = info.out_rows;
      path.order = node->output_order;
      path.node = std::move(node);
      paths.push_back(std::move(path));
    }

    // --- Index-only scan (covering) ---
    if (ctx.knobs.enable_indexonlyscan && n.covering) {
      auto node = std::make_shared<PlanNode>();
      node->type = PlanNodeType::kIndexOnlyScan;
      node->slot = slot;
      node->index = index;
      node->index_conds = n.match.index_conds;
      node->filter = n.match.residual;
      node->rows = info.out_rows;
      node->width = info.width;
      node->output_order = IndexOrder(slot, index);
      node->cost.startup = n.descent_cpu + P.random_page_cost;
      node->cost.total = common;
      AccessPath path;
      path.rows = info.out_rows;
      path.order = node->output_order;
      path.node = std::move(node);
      paths.push_back(std::move(path));
    }
  }

  return paths;
}

std::optional<ParamLookupPath> CostIndexParamLookup(
    const PlannerContext& ctx, int slot, const BoundColumn& inner_col,
    const IndexDef& index) {
  const CostParams& P = ctx.params;
  const TableStats& stats = ctx.StatsFor(slot);
  const TableDef& def = ctx.DefFor(slot);
  std::vector<BoundPredicate> preds = ctx.query->FiltersOn(slot);
  const ColumnStats& jc_stats = stats.column(inner_col.column);
  double rows_per_key =
      std::max(1.0, stats.row_count / std::max(1.0, jc_stats.n_distinct));

  // Usable if the leading columns are all equality-matched by filters
  // until the join column appears.
  size_t pos = 0;
  double prefix_sel = 1.0;
  bool usable = false;
  while (pos < index.columns.size()) {
    if (index.columns[pos] == inner_col.column) {
      usable = true;
      break;
    }
    bool eq = false;
    for (const BoundPredicate& p : preds) {
      if (p.column.column == index.columns[pos] && p.IsEquality()) {
        prefix_sel *=
            PredicateSelectivity(stats.column(index.columns[pos]), p);
        eq = true;
        break;
      }
    }
    if (!eq) break;
    ++pos;
  }
  if (!usable) return std::nullopt;

  IndexSizeEstimate size = EstimateIndexSize(index, def, stats);
  double tuples = std::max(1.0, rows_per_key * prefix_sel);
  double descent_cpu =
      std::log2(std::max(2.0, stats.row_count)) * P.cpu_operator_cost +
      size.height * 50.0 * P.cpu_operator_cost;
  // One leaf page per probe (matches fit on a page for realistic NDV),
  // plus Mackert-Lohman heap fetches amortized by the buffer cache.
  double heap_pages = IndexPagesFetched(tuples, stats.HeapPages(def),
                                        P.effective_cache_size_pages);
  double residual_sel = 1.0;
  int residual_count = 0;
  for (const BoundPredicate& p : preds) {
    residual_sel *= PredicateSelectivity(stats.column(p.column.column), p);
    ++residual_count;
  }

  ParamLookupPath path;
  path.index = index;
  path.per_lookup.startup = 0.0;
  path.per_lookup.total =
      descent_cpu + P.random_page_cost +  // leaf page
      heap_pages * P.random_page_cost * 0.5 +
      tuples * (P.cpu_index_tuple_cost + P.cpu_tuple_cost) +
      tuples * residual_count * P.cpu_operator_cost;
  path.rows_per_lookup = std::max(0.001, tuples * residual_sel);
  return path;
}

std::optional<ParamLookupPath> CatalogPathProvider::ParamLookup(
    int slot, const BoundColumn& inner_col) const {
  const PlannerContext& ctx = ctx_;
  if (!ctx.knobs.enable_indexnestloop) return std::nullopt;
  TableId tid = ctx.query->tables[slot];
  std::optional<ParamLookupPath> best;
  for (const IndexDef& index : ctx.design->IndexesOn(tid)) {
    auto path = CostIndexParamLookup(ctx, slot, inner_col, index);
    if (path.has_value() &&
        (!best.has_value() ||
         path->per_lookup.total < best->per_lookup.total)) {
      best = path;
    }
  }
  return best;
}

}  // namespace dbdesign
