// System-R dynamic-programming join enumeration with interesting orders.
//
// Works against the PathProvider abstraction so that both the real
// catalog-backed leaves and INUM's abstract leaves share one enumerator.

#ifndef DBDESIGN_OPTIMIZER_JOIN_ENUM_H_
#define DBDESIGN_OPTIMIZER_JOIN_ENUM_H_

#include <vector>

#include "optimizer/access_paths.h"

namespace dbdesign {

/// A finished alternative for the full join: a plan plus the canonical
/// order it delivers.
struct JoinAlternative {
  PlanNodeRef node;
  std::vector<BoundColumn> order;
};

class JoinEnumerator {
 public:
  JoinEnumerator(const PlannerContext& ctx, const PathProvider& provider);

  /// Enumerates bushy plans over all FROM slots; returns the surviving
  /// (cost, order)-undominated alternatives for the complete join.
  std::vector<JoinAlternative> Enumerate();

  /// Estimated output rows for a slot subset (consistent across join
  /// orders: product of post-filter base rows and join selectivities).
  double SubsetRows(uint64_t mask) const;

 private:
  struct Entry {
    PlanNodeRef node;
    std::vector<BoundColumn> order;  // canonical (trimmed to useful prefix)
  };

  /// Collects the orders worth tracking (join columns, GROUP BY, ORDER BY).
  void CollectInterestingOrders();

  /// Longest prefix of `order` that is a prefix of an interesting order.
  std::vector<BoundColumn> TrimToUseful(
      const std::vector<BoundColumn>& order) const;

  /// Inserts with dominance pruning (same order, higher cost dies).
  static void AddEntry(std::vector<Entry>* entries, Entry entry);

  void JoinPair(uint64_t outer_mask, uint64_t inner_mask,
                const std::vector<Entry>& outer_entries,
                const std::vector<Entry>& inner_entries,
                std::vector<Entry>* out);

  const PlannerContext& ctx_;
  const PathProvider& provider_;
  std::vector<std::vector<BoundColumn>> interesting_orders_;
  std::vector<double> base_rows_;  // per slot, post-filter
};

}  // namespace dbdesign

#endif  // DBDESIGN_OPTIMIZER_JOIN_ENUM_H_
