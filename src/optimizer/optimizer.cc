#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>

#include "optimizer/selectivity.h"

namespace dbdesign {

PlannerContext Optimizer::MakeContext(const BoundQuery& query,
                                      const PhysicalDesign& design) const {
  return MakeContext(query, design, knobs_);
}

PlannerContext Optimizer::MakeContext(const BoundQuery& query,
                                      const PhysicalDesign& design,
                                      const PlannerKnobs& knobs) const {
  PlannerContext ctx;
  ctx.catalog = catalog_;
  ctx.stats = stats_;
  ctx.query = &query;
  ctx.design = &design;
  ctx.params = params_;
  ctx.knobs = knobs;
  return ctx;
}

namespace {

/// Wraps `input` with aggregation if the query has GROUP BY/aggregates.
/// Returns alternatives (hash agg destroys order; group agg needs it).
std::vector<JoinAlternative> ApplyAggregation(
    const PlannerContext& ctx, const JoinAlternative& input) {
  const BoundQuery& q = *ctx.query;
  const CostParams& P = ctx.params;
  std::vector<JoinAlternative> out;
  if (!q.HasAggregates() && q.group_by.empty()) {
    out.push_back(input);
    return out;
  }

  double in_rows = input.node->rows;
  double n_aggs = static_cast<double>(std::max<size_t>(1, q.aggregates.size()));
  double groups = 1.0;
  if (!q.group_by.empty()) {
    std::vector<double> ndvs;
    for (const BoundColumn& c : q.group_by) {
      ndvs.push_back(ctx.StatsFor(c.slot).column(c.column).n_distinct);
    }
    groups = EstimateGroupCount(in_rows, ndvs);
  }
  double n_group = static_cast<double>(q.group_by.size());

  // Hash aggregate: consumes everything, then emits.
  {
    auto node = std::make_shared<PlanNode>();
    node->type = PlanNodeType::kHashAggregate;
    node->group_cols = q.group_by;
    node->rows = groups;
    node->width = std::max(8.0, (n_group + n_aggs) * 8.0);
    double cpu = in_rows * (n_group + n_aggs) * P.cpu_operator_cost +
                 groups * P.cpu_tuple_cost;
    node->cost.startup = input.node->cost.total + cpu;
    node->cost.total = node->cost.startup;
    node->children = {input.node};
    out.push_back(JoinAlternative{std::move(node), {}});
  }

  // Group (streaming) aggregate over sorted input.
  if (!q.group_by.empty() && OrderSatisfies(input.order, q.group_by)) {
    auto node = std::make_shared<PlanNode>();
    node->type = PlanNodeType::kGroupAggregate;
    node->group_cols = q.group_by;
    node->rows = groups;
    node->width = std::max(8.0, (n_group + n_aggs) * 8.0);
    double cpu = in_rows * (n_group + n_aggs) * P.cpu_operator_cost;
    node->cost.startup = input.node->cost.startup;
    node->cost.total = input.node->cost.total + cpu +
                       groups * P.cpu_tuple_cost;
    node->output_order = q.group_by;
    node->children = {input.node};
    out.push_back(JoinAlternative{node, q.group_by});
  }
  return out;
}

/// Adds Sort for ORDER BY when the input order does not already satisfy
/// it, then Limit.
JoinAlternative ApplyOrderingAndLimit(const PlannerContext& ctx,
                                      JoinAlternative input) {
  const BoundQuery& q = *ctx.query;
  const CostParams& P = ctx.params;

  if (!q.order_by.empty()) {
    std::vector<BoundColumn> required;
    bool any_desc = false;
    for (const BoundOrderItem& o : q.order_by) {
      required.push_back(o.column);
      any_desc |= o.descending;
    }
    bool satisfied = !any_desc && OrderSatisfies(input.order, required);
    if (!satisfied) {
      input.node = MakeSortNode(P, input.node, required);
      input.order = required;
    }
  }

  if (q.limit >= 0) {
    auto node = std::make_shared<PlanNode>();
    node->type = PlanNodeType::kLimit;
    node->limit_count = q.limit;
    const PlanNode& child = *input.node;
    double fraction =
        child.rows > 0
            ? std::min(1.0, static_cast<double>(q.limit) / child.rows)
            : 1.0;
    node->rows = std::min(child.rows, static_cast<double>(q.limit));
    node->width = child.width;
    node->cost.startup = child.cost.startup;
    node->cost.total =
        child.cost.startup + (child.cost.total - child.cost.startup) * fraction;
    node->output_order = input.order;
    node->children = {input.node};
    input.node = std::move(node);
  }
  return input;
}

}  // namespace

PlanResult Optimizer::FinishPlan(
    const PlannerContext& ctx,
    std::vector<JoinAlternative> alternatives) const {
  PlanResult best;
  best.cost = std::numeric_limits<double>::infinity();
  for (const JoinAlternative& alt : alternatives) {
    for (const JoinAlternative& agg : ApplyAggregation(ctx, alt)) {
      JoinAlternative finished = ApplyOrderingAndLimit(ctx, agg);
      if (finished.node->cost.total < best.cost) {
        best.cost = finished.node->cost.total;
        best.root = finished.node;
      }
    }
  }
  return best;
}

PlanResult Optimizer::Optimize(const BoundQuery& query,
                               const PhysicalDesign& design,
                               const PlannerKnobs& knobs) const {
  num_calls_.fetch_add(1, std::memory_order_relaxed);
  PlannerContext ctx = MakeContext(query, design, knobs);
  CatalogPathProvider provider(ctx);
  JoinEnumerator enumerator(ctx, provider);
  PlanResult result = FinishPlan(ctx, enumerator.Enumerate());
  if (result.root == nullptr) {
    // Knobs disabled every viable plan; PostgreSQL treats enable_* as
    // soft hints. Retry with everything enabled.
    PlannerContext relaxed = ctx;
    relaxed.knobs = PlannerKnobs{};
    CatalogPathProvider relaxed_provider(relaxed);
    JoinEnumerator relaxed_enum(relaxed, relaxed_provider);
    result = FinishPlan(relaxed, relaxed_enum.Enumerate());
  }
  return result;
}

PlanResult Optimizer::OptimizeWithProvider(
    const BoundQuery& query, const PhysicalDesign& design,
    const PathProvider& provider) const {
  num_calls_.fetch_add(1, std::memory_order_relaxed);
  PlannerContext ctx = MakeContext(query, design);
  JoinEnumerator enumerator(ctx, provider);
  return FinishPlan(ctx, enumerator.Enumerate());
}

}  // namespace dbdesign
