// Access-path generation and leaf costing.
//
// Produces the candidate scans for one FROM slot under a physical
// design: sequential scan (partition-aware), index scan, index-only
// scan, and full-index-order scan. Also costs parameterized index
// lookups used by index-nested-loop joins.
//
// The PathProvider interface lets INUM substitute abstract leaves while
// reusing the same join enumeration (see src/inum).

#ifndef DBDESIGN_OPTIMIZER_ACCESS_PATHS_H_
#define DBDESIGN_OPTIMIZER_ACCESS_PATHS_H_

#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "catalog/design.h"
#include "optimizer/cost_params.h"
#include "optimizer/plan.h"
#include "sql/bound_query.h"

namespace dbdesign {

/// A costed candidate leaf for one slot.
struct AccessPath {
  PlanNodeRef node;                      ///< fully formed leaf plan
  double rows = 0.0;                     ///< output rows (post-filter)
  std::vector<BoundColumn> order;        ///< provided sort order
};

/// A parameterized index lookup (the inner side of an index-nested-loop
/// join): cost and output of one probe with a bound join key.
struct ParamLookupPath {
  std::optional<IndexDef> index;  ///< nullopt only for abstract (INUM) paths
  Cost per_lookup;                ///< cost of one probe
  double rows_per_lookup = 0.0;   ///< post-filter rows per probe
};

/// Everything leaf costing needs; cheap to copy around the planner.
struct PlannerContext {
  const Catalog* catalog = nullptr;
  const std::vector<TableStats>* stats = nullptr;
  const BoundQuery* query = nullptr;
  const PhysicalDesign* design = nullptr;
  CostParams params;
  PlannerKnobs knobs;

  const TableStats& StatsFor(int slot) const {
    return (*stats)[(*query).tables[slot]];
  }
  const TableDef& DefFor(int slot) const {
    return (*catalog).table((*query).tables[slot]);
  }
};

/// Abstract source of leaves for the join enumerator.
class PathProvider {
 public:
  virtual ~PathProvider() = default;

  /// All candidate access paths for `slot`.
  virtual std::vector<AccessPath> Paths(int slot) const = 0;

  /// Best parameterized lookup on `inner_col` (a join column of `slot`),
  /// or nullopt if none is possible under the design.
  virtual std::optional<ParamLookupPath> ParamLookup(
      int slot, const BoundColumn& inner_col) const = 0;
};

/// Catalog-backed provider: real paths from the design's indexes and
/// partitions.
class CatalogPathProvider : public PathProvider {
 public:
  explicit CatalogPathProvider(const PlannerContext& ctx) : ctx_(ctx) {}

  std::vector<AccessPath> Paths(int slot) const override;
  std::optional<ParamLookupPath> ParamLookup(
      int slot, const BoundColumn& inner_col) const override;

 private:
  const PlannerContext& ctx_;
};

/// --- Shared costing helpers (used by INUM's reuse formulas too) ---

/// PostgreSQL's Mackert-Lohman approximation of heap page fetches when
/// retrieving `tuples` random tuples from a `pages`-page relation with
/// `cache_pages` of buffer. Matches index_pages_fetched(): when the
/// relation exceeds the cache the result counts *fetches* including
/// cache-miss refetches, so it may exceed `pages` (by design).
double IndexPagesFetched(double tuples, double pages, double cache_pages);

/// Heap pages read by a sequential scan of `slot` given the design's
/// partitions and the query's referenced columns (fragment set-cover for
/// vertical partitioning, partition pruning for horizontal).
double EffectiveScanPages(const PlannerContext& ctx, int slot,
                          double* rows_scanned_fraction);

/// Output row width for `slot` = sum of referenced column widths.
double SlotOutputWidth(const PlannerContext& ctx, int slot);

/// Cost of sorting `rows` rows of `width` bytes (PG-style n log n +
/// external merge IO when exceeding work_mem).
Cost SortCost(const CostParams& params, double rows, double width);

/// Builds a Sort node on top of `input` delivering `order`.
PlanNodeRef MakeSortNode(const CostParams& params, PlanNodeRef input,
                         std::vector<BoundColumn> order);

/// Costs a parameterized lookup on `inner_col` through one specific
/// index, or nullopt if the index cannot serve the lookup (the join
/// column must follow an equality-matched prefix). Used by the join
/// enumerator (via CatalogPathProvider) and by CoPhy's atom builder.
std::optional<ParamLookupPath> CostIndexParamLookup(
    const PlannerContext& ctx, int slot, const BoundColumn& inner_col,
    const IndexDef& index);

/// Cost-only view of one index's leaf alternatives for a slot — the same
/// numbers Paths() puts into plan nodes, without allocating nodes. INUM's
/// reuse phase memoizes these (plan-node construction would dominate the
/// microsecond-scale reuse path).
struct IndexLeafCost {
  /// Plain index scan (heap fetches); +inf when not applicable.
  double scan_cost = std::numeric_limits<double>::infinity();
  /// Covering index-only scan; +inf when the index does not cover.
  double index_only_cost = std::numeric_limits<double>::infinity();
  /// Sort order the index delivers (its column sequence).
  std::vector<BoundColumn> order;

  double best() const { return std::min(scan_cost, index_only_cost); }
  bool usable() const { return std::isfinite(best()); }
};

IndexLeafCost CostIndexLeaf(const PlannerContext& ctx, int slot,
                            const IndexDef& index);

/// Sequential-scan leaf cost for `slot` (partition-aware).
double CostSeqLeaf(const PlannerContext& ctx, int slot);

}  // namespace dbdesign

#endif  // DBDESIGN_OPTIMIZER_ACCESS_PATHS_H_
