// Runtime values and column data types.

#ifndef DBDESIGN_CATALOG_VALUE_H_
#define DBDESIGN_CATALOG_VALUE_H_

#include "util/logging.h"
#include <cstdint>
#include <string>
#include <variant>

namespace dbdesign {

/// Column data types supported by the engine.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

/// Returns "int64" / "double" / "string".
const char* DataTypeName(DataType type);

/// Default on-disk width in bytes used for size estimation.
int DataTypeWidth(DataType type);

/// A single runtime value (no NULL: the synthetic workloads are
/// NULL-free; null_frac is still modeled statistically in ColumnStats).
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  DataType type() const {
    switch (v_.index()) {
      case 0:
        return DataType::kInt64;
      case 1:
        return DataType::kDouble;
      default:
        return DataType::kString;
    }
  }

  int64_t AsInt() const {
    DBD_DCHECK(std::holds_alternative<int64_t>(v_));
    return std::get<int64_t>(v_);
  }
  double AsDouble() const {
    if (std::holds_alternative<int64_t>(v_)) {
      return static_cast<double>(std::get<int64_t>(v_));
    }
    DBD_DCHECK(std::holds_alternative<double>(v_));
    return std::get<double>(v_);
  }
  const std::string& AsString() const {
    DBD_DCHECK(std::holds_alternative<std::string>(v_));
    return std::get<std::string>(v_);
  }

  /// Three-way comparison; values must have compatible types
  /// (int64 and double compare numerically).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Numeric position of the value used for selectivity interpolation;
  /// strings hash to a stable [0,1) position.
  double NumericPosition() const;

  std::string ToString() const;

  /// Stable 64-bit hash (used by hash joins and grouping).
  uint64_t Hash() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_CATALOG_VALUE_H_
