// JSON (de)serialization for physical-design descriptors.
//
// Used by the constraint system (core/constraints) and the session
// save/resume path (core/session): a DBA's pins, vetoes, snapshots and
// the current hypothetical design all survive a process restart as a
// single JSON document. Deserialization validates ids against the
// catalog so a stale file cannot smuggle out-of-range table/column ids
// into the designer.

#ifndef DBDESIGN_CATALOG_DESIGN_JSON_H_
#define DBDESIGN_CATALOG_DESIGN_JSON_H_

#include "catalog/design.h"
#include "util/json.h"

namespace dbdesign {

// --- Value (int64 encoded as string to keep full precision) ---
Json ValueToJson(const Value& v);
Result<Value> ValueFromJson(const Json& j);

// --- IndexDef ---
Json IndexDefToJson(const IndexDef& index);
Result<IndexDef> IndexDefFromJson(const Json& j, const Catalog& catalog);

// --- Partitionings ---
Json VerticalPartitioningToJson(const VerticalPartitioning& p);
Result<VerticalPartitioning> VerticalPartitioningFromJson(
    const Json& j, const Catalog& catalog);

Json HorizontalPartitioningToJson(const HorizontalPartitioning& p);
Result<HorizontalPartitioning> HorizontalPartitioningFromJson(
    const Json& j, const Catalog& catalog);

// --- Whole configurations ---
Json PhysicalDesignToJson(const PhysicalDesign& design);
Result<PhysicalDesign> PhysicalDesignFromJson(const Json& j,
                                              const Catalog& catalog);

}  // namespace dbdesign

#endif  // DBDESIGN_CATALOG_DESIGN_JSON_H_
