// Physical design descriptors: indexes, vertical and horizontal
// partitions, and the PhysicalDesign configuration object that the
// what-if optimizer, INUM, CoPhy, AutoPart, COLT and the interaction
// analyzer all exchange.

#ifndef DBDESIGN_CATALOG_DESIGN_H_
#define DBDESIGN_CATALOG_DESIGN_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/stats.h"

namespace dbdesign {

/// A (possibly multi-column) B-tree index descriptor.
///
/// An IndexDef is purely logical: it may refer to a materialized index or
/// to a hypothetical (what-if) one. Identity is structural — same table
/// and same column sequence.
struct IndexDef {
  TableId table = kInvalidTableId;
  std::vector<ColumnId> columns;  ///< key columns, in order
  bool unique = false;

  bool operator==(const IndexDef& other) const {
    return table == other.table && columns == other.columns;
  }
  bool operator<(const IndexDef& other) const {
    if (table != other.table) return table < other.table;
    return columns < other.columns;
  }

  ColumnId leading_column() const { return columns.empty() ? kInvalidColumnId : columns[0]; }

  /// Canonical key, e.g. "2:(4,1)" — unique per structure.
  std::string Key() const;

  /// Human-readable name, e.g. "idx_photoobj_ra_dec".
  std::string DisplayName(const Catalog& catalog) const;
};

/// Estimated size and shape of a B-tree index.
struct IndexSizeEstimate {
  double leaf_pages = 0.0;
  double internal_pages = 0.0;
  double height = 1.0;  ///< levels above the leaf level, >= 1
  double total_pages() const { return leaf_pages + internal_pages; }
};

/// Estimates B-tree size from table statistics (never zero-sized; the
/// paper notes that zero-size what-if indexes "severely affect" optimizer
/// accuracy).
IndexSizeEstimate EstimateIndexSize(const IndexDef& index,
                                    const TableDef& def,
                                    const TableStats& stats);

/// A vertical fragment: a subset of a table's columns stored together.
struct VerticalFragment {
  std::vector<ColumnId> columns;  ///< sorted ascending

  bool Covers(ColumnId c) const;
  bool operator==(const VerticalFragment&) const = default;
};

/// A vertical partitioning of one table into fragments. Fragments may
/// overlap (column replication) subject to AutoPart's space constraint;
/// their union must cover the whole table.
struct VerticalPartitioning {
  TableId table = kInvalidTableId;
  std::vector<VerticalFragment> fragments;

  /// Total heap pages across fragments.
  double TotalPages(const TableDef& def, const TableStats& stats) const;

  /// Replication factor: total stored column-bytes / original column-bytes.
  double ReplicationFactor(const TableDef& def) const;

  /// True if every table column appears in at least one fragment.
  bool CoversTable(const TableDef& def) const;
};

/// A horizontal range partitioning of one table on a single column.
/// bounds = {b1, ..., bk} produce k+1 partitions:
/// (-inf, b1), [b1, b2), ..., [bk, +inf).
struct HorizontalPartitioning {
  TableId table = kInvalidTableId;
  ColumnId column = kInvalidColumnId;
  std::vector<Value> bounds;  ///< strictly increasing

  int num_partitions() const { return static_cast<int>(bounds.size()) + 1; }
};

/// A complete physical configuration: a set of indexes plus optional
/// per-table partitionings. Cheap to copy; used as the unit of what-if
/// evaluation everywhere.
class PhysicalDesign {
 public:
  PhysicalDesign() = default;

  /// Adds an index if not already present. Returns true if added.
  bool AddIndex(const IndexDef& index);
  /// Removes a structurally equal index. Returns true if removed.
  bool RemoveIndex(const IndexDef& index);
  bool HasIndex(const IndexDef& index) const;

  const std::vector<IndexDef>& indexes() const { return indexes_; }

  /// Indexes on a given table.
  std::vector<IndexDef> IndexesOn(TableId table) const;

  /// Contiguous view of the indexes on `table` (indexes_ is sorted by
  /// table first). Allocation-free alternative to IndexesOn for hot
  /// paths (INUM reuse).
  std::pair<const IndexDef*, const IndexDef*> IndexRange(TableId table) const;

  void SetVerticalPartitioning(VerticalPartitioning p);
  void ClearVerticalPartitioning(TableId table);
  const VerticalPartitioning* vertical(TableId table) const;

  void SetHorizontalPartitioning(HorizontalPartitioning p);
  void ClearHorizontalPartitioning(TableId table);
  const HorizontalPartitioning* horizontal(TableId table) const;

  /// All partitionings, keyed by table (serialization + reporting).
  const std::map<TableId, VerticalPartitioning>& verticals() const {
    return vertical_;
  }
  const std::map<TableId, HorizontalPartitioning>& horizontals() const {
    return horizontal_;
  }

  bool HasPartitions() const {
    return !vertical_.empty() || !horizontal_.empty();
  }

  /// Total pages of all indexes under the given catalog/stats.
  double TotalIndexPages(const Catalog& catalog,
                         const std::vector<TableStats>& stats) const;

  /// Canonical fingerprint of the whole design (indexes + partitions);
  /// used as an INUM / memo cache key component.
  std::string Fingerprint() const;

  bool operator==(const PhysicalDesign& other) const;

 private:
  std::vector<IndexDef> indexes_;  // kept sorted for canonical fingerprints
  std::map<TableId, VerticalPartitioning> vertical_;
  std::map<TableId, HorizontalPartitioning> horizontal_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_CATALOG_DESIGN_H_
