#include "catalog/design.h"

#include <algorithm>
#include <cmath>

#include "util/str.h"

namespace dbdesign {

std::string IndexDef::Key() const {
  std::string key = StrFormat("%d:(", table);
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) key += ',';
    key += StrFormat("%d", columns[i]);
  }
  key += ')';
  return key;
}

std::string IndexDef::DisplayName(const Catalog& catalog) const {
  const TableDef& def = catalog.table(table);
  std::string name = "idx_" + def.name();
  for (ColumnId c : columns) name += "_" + def.column(c).name;
  return name;
}

IndexSizeEstimate EstimateIndexSize(const IndexDef& index,
                                    const TableDef& def,
                                    const TableStats& stats) {
  IndexSizeEstimate est;
  double entry_bytes = kIndexEntryOverheadBytes;
  for (ColumnId c : index.columns) entry_bytes += def.column(c).Width();
  double entries_per_leaf = kPageSizeBytes * kPageFillFactor / entry_bytes;
  est.leaf_pages = std::max(1.0, std::ceil(stats.row_count / entries_per_leaf));
  // Internal fanout: separator key + child pointer.
  double fanout =
      std::max(2.0, kPageSizeBytes * kPageFillFactor / (entry_bytes + 8.0));
  double level_pages = est.leaf_pages;
  est.height = 1.0;
  while (level_pages > 1.0) {
    level_pages = std::ceil(level_pages / fanout);
    est.internal_pages += level_pages;
    est.height += 1.0;
  }
  return est;
}

bool VerticalFragment::Covers(ColumnId c) const {
  return std::binary_search(columns.begin(), columns.end(), c);
}

double VerticalPartitioning::TotalPages(const TableDef& def,
                                        const TableStats& stats) const {
  double pages = 0.0;
  for (const VerticalFragment& f : fragments) {
    pages += stats.FragmentPages(def, f.columns);
  }
  return pages;
}

double VerticalPartitioning::ReplicationFactor(const TableDef& def) const {
  double stored = 0.0;
  double original = 0.0;
  for (const ColumnDef& c : def.columns()) original += c.Width();
  for (const VerticalFragment& f : fragments) {
    for (ColumnId c : f.columns) stored += def.column(c).Width();
  }
  return original > 0 ? stored / original : 1.0;
}

bool VerticalPartitioning::CoversTable(const TableDef& def) const {
  for (ColumnId c = 0; c < def.num_columns(); ++c) {
    bool covered = false;
    for (const VerticalFragment& f : fragments) {
      if (f.Covers(c)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

bool PhysicalDesign::AddIndex(const IndexDef& index) {
  auto it = std::lower_bound(indexes_.begin(), indexes_.end(), index);
  if (it != indexes_.end() && *it == index) return false;
  indexes_.insert(it, index);
  return true;
}

bool PhysicalDesign::RemoveIndex(const IndexDef& index) {
  auto it = std::lower_bound(indexes_.begin(), indexes_.end(), index);
  if (it == indexes_.end() || !(*it == index)) return false;
  indexes_.erase(it);
  return true;
}

bool PhysicalDesign::HasIndex(const IndexDef& index) const {
  return std::binary_search(indexes_.begin(), indexes_.end(), index);
}

std::vector<IndexDef> PhysicalDesign::IndexesOn(TableId table) const {
  std::vector<IndexDef> out;
  for (const IndexDef& idx : indexes_) {
    if (idx.table == table) out.push_back(idx);
  }
  return out;
}

std::pair<const IndexDef*, const IndexDef*> PhysicalDesign::IndexRange(
    TableId table) const {
  auto lo = std::lower_bound(
      indexes_.begin(), indexes_.end(), table,
      [](const IndexDef& idx, TableId t) { return idx.table < t; });
  auto hi = lo;
  while (hi != indexes_.end() && hi->table == table) ++hi;
  return {indexes_.data() + (lo - indexes_.begin()),
          indexes_.data() + (hi - indexes_.begin())};
}

void PhysicalDesign::SetVerticalPartitioning(VerticalPartitioning p) {
  vertical_[p.table] = std::move(p);
}

void PhysicalDesign::ClearVerticalPartitioning(TableId table) {
  vertical_.erase(table);
}

const VerticalPartitioning* PhysicalDesign::vertical(TableId table) const {
  auto it = vertical_.find(table);
  return it == vertical_.end() ? nullptr : &it->second;
}

void PhysicalDesign::SetHorizontalPartitioning(HorizontalPartitioning p) {
  horizontal_[p.table] = std::move(p);
}

void PhysicalDesign::ClearHorizontalPartitioning(TableId table) {
  horizontal_.erase(table);
}

const HorizontalPartitioning* PhysicalDesign::horizontal(TableId table) const {
  auto it = horizontal_.find(table);
  return it == horizontal_.end() ? nullptr : &it->second;
}

double PhysicalDesign::TotalIndexPages(
    const Catalog& catalog, const std::vector<TableStats>& stats) const {
  double pages = 0.0;
  for (const IndexDef& idx : indexes_) {
    pages += EstimateIndexSize(idx, catalog.table(idx.table),
                               stats[idx.table])
                 .total_pages();
  }
  return pages;
}

std::string PhysicalDesign::Fingerprint() const {
  std::string fp = "I[";
  for (const IndexDef& idx : indexes_) {
    fp += idx.Key();
    fp += ';';
  }
  fp += "]V[";
  for (const auto& [table, vp] : vertical_) {
    fp += StrFormat("%d:", table);
    for (const VerticalFragment& f : vp.fragments) {
      fp += '(';
      for (ColumnId c : f.columns) fp += StrFormat("%d,", c);
      fp += ')';
    }
    fp += ';';
  }
  fp += "]H[";
  for (const auto& [table, hp] : horizontal_) {
    fp += StrFormat("%d:%d:", table, hp.column);
    for (const Value& b : hp.bounds) {
      fp += b.ToString();
      fp += ',';
    }
    fp += ';';
  }
  fp += ']';
  return fp;
}

bool PhysicalDesign::operator==(const PhysicalDesign& other) const {
  return Fingerprint() == other.Fingerprint();
}

}  // namespace dbdesign
