// Logical schema: tables, columns, and the catalog registry.

#ifndef DBDESIGN_CATALOG_SCHEMA_H_
#define DBDESIGN_CATALOG_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/value.h"
#include "util/status.h"

namespace dbdesign {

/// Identifies a table in the catalog.
using TableId = int;

/// Identifies a column by position within its table.
using ColumnId = int;

constexpr TableId kInvalidTableId = -1;
constexpr ColumnId kInvalidColumnId = -1;

/// PostgreSQL-style page size used for all size estimation.
constexpr double kPageSizeBytes = 8192.0;

/// Per-tuple overhead (header + item pointer), mirroring PostgreSQL's
/// 23-byte heap tuple header + 4-byte line pointer, rounded.
constexpr double kTupleOverheadBytes = 28.0;

/// Per-index-entry overhead in a B-tree leaf.
constexpr double kIndexEntryOverheadBytes = 12.0;

/// Fill factor applied to heap and index pages.
constexpr double kPageFillFactor = 0.9;

/// Column definition.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
  /// Average stored width in bytes; 0 means "use the type default".
  int avg_width = 0;

  int Width() const { return avg_width > 0 ? avg_width : DataTypeWidth(type); }
};

/// Table definition: an ordered list of columns.
class TableDef {
 public:
  TableDef() = default;
  TableDef(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(ColumnId id) const { return columns_[id]; }

  /// Column position by name, or kInvalidColumnId.
  ColumnId FindColumn(const std::string& name) const;

  /// Sum of column widths plus tuple overhead — bytes per heap row.
  double RowWidthBytes() const;

  /// Bytes per row when only `cols` are stored (vertical fragment width).
  double PartialRowWidthBytes(const std::vector<ColumnId>& cols) const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

/// Registry of table definitions; the single source of truth for names.
class Catalog {
 public:
  /// Registers a table; fails if the name exists.
  Result<TableId> AddTable(TableDef def);

  TableId FindTable(const std::string& name) const;
  bool HasTable(const std::string& name) const {
    return FindTable(name) != kInvalidTableId;
  }

  const TableDef& table(TableId id) const { return tables_[id]; }
  int num_tables() const { return static_cast<int>(tables_.size()); }

 private:
  std::vector<TableDef> tables_;
  std::unordered_map<std::string, TableId> by_name_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_CATALOG_SCHEMA_H_
