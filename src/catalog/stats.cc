#include "catalog/stats.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.h"

namespace dbdesign {

double TableStats::HeapPages(const TableDef& def) const {
  double bytes = row_count * def.RowWidthBytes();
  return std::max(1.0, std::ceil(bytes / (kPageSizeBytes * kPageFillFactor)));
}

double TableStats::FragmentPages(const TableDef& def,
                                 const std::vector<ColumnId>& cols) const {
  double bytes = row_count * def.PartialRowWidthBytes(cols);
  return std::max(1.0, std::ceil(bytes / (kPageSizeBytes * kPageFillFactor)));
}

ColumnStats BuildColumnStats(const std::vector<Value>& values,
                             const AnalyzeOptions& options) {
  DBD_CHECK(!values.empty());
  ColumnStats stats;

  // Sort a copy to derive order statistics; keep original order for the
  // correlation estimate.
  std::vector<Value> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  stats.min = sorted.front();
  stats.max = sorted.back();

  // Distinct count (exact; synthetic tables fit in memory).
  double ndv = 1.0;
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (!(sorted[i] == sorted[i - 1])) ndv += 1.0;
  }
  stats.n_distinct = ndv;

  // Most common values.
  std::map<std::string, std::pair<Value, size_t>> freq;
  if (ndv <= 4096) {
    for (const Value& v : values) {
      auto [it, inserted] = freq.try_emplace(v.ToString(), v, 0);
      it->second.second++;
    }
    std::vector<std::pair<Value, size_t>> entries;
    entries.reserve(freq.size());
    for (auto& [k, ve] : freq) entries.push_back(ve);
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    double n = static_cast<double>(values.size());
    for (int i = 0;
         i < options.mcv_entries && i < static_cast<int>(entries.size());
         ++i) {
      double f = static_cast<double>(entries[i].second) / n;
      if (f < options.mcv_min_frequency) break;
      stats.mcv.push_back(McvEntry{entries[i].first, f});
    }
  }

  // Equi-depth histogram over all values (PostgreSQL excludes MCVs from
  // the histogram; including them slightly smooths range estimates and
  // keeps the estimator simpler).
  int buckets = std::min<int>(options.histogram_buckets,
                              std::max<int>(1, static_cast<int>(ndv)));
  if (buckets >= 2) {
    stats.histogram.reserve(static_cast<size_t>(buckets) + 1);
    stats.histogram.push_back(sorted.front());
    for (int b = 1; b <= buckets; ++b) {
      size_t idx = static_cast<size_t>(
          static_cast<double>(b) / buckets * (sorted.size() - 1));
      stats.histogram.push_back(sorted[idx]);
    }
  }

  // Correlation between physical position and value rank, computed as the
  // Pearson correlation of (i, position(values[i])).
  if (values.size() >= 2 && values.front().type() != DataType::kString) {
    double n = static_cast<double>(values.size());
    double sum_x = 0, sum_y = 0, sum_xx = 0, sum_yy = 0, sum_xy = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      double x = static_cast<double>(i);
      double y = values[i].NumericPosition();
      sum_x += x;
      sum_y += y;
      sum_xx += x * x;
      sum_yy += y * y;
      sum_xy += x * y;
    }
    double cov = sum_xy - sum_x * sum_y / n;
    double var_x = sum_xx - sum_x * sum_x / n;
    double var_y = sum_yy - sum_y * sum_y / n;
    if (var_x > 1e-12 && var_y > 1e-12) {
      stats.correlation = cov / std::sqrt(var_x * var_y);
      stats.correlation = std::clamp(stats.correlation, -1.0, 1.0);
    } else {
      stats.correlation = 1.0;  // constant column: perfectly "clustered"
    }
  }

  return stats;
}

}  // namespace dbdesign
