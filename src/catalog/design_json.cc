#include "catalog/design_json.h"

#include <cstdlib>

#include "util/str.h"

namespace dbdesign {

namespace {

/// Validates a table id parsed from JSON against the catalog.
Status CheckTable(TableId table, const Catalog& catalog) {
  if (table < 0 || table >= catalog.num_tables()) {
    return Status::InvalidArgument(StrFormat("table id %d out of range",
                                             table));
  }
  return Status::OK();
}

Status CheckColumn(TableId table, ColumnId column, const Catalog& catalog) {
  if (column < 0 || column >= catalog.table(table).num_columns()) {
    return Status::InvalidArgument(
        StrFormat("column id %d out of range for table %s", column,
                  catalog.table(table).name().c_str()));
  }
  return Status::OK();
}

const Json* Require(const Json& j, const char* key, Status* status) {
  const Json* member = j.Find(key);
  if (member == nullptr && status->ok()) {
    *status = Status::ParseError(std::string("missing member '") + key + "'");
  }
  return member;
}

}  // namespace

Json ValueToJson(const Value& v) {
  Json j = Json::Object();
  switch (v.type()) {
    case DataType::kInt64:
      j["t"] = Json::Str("i");
      // Stringified to round-trip the full 64-bit range (Json numbers
      // are IEEE doubles).
      j["v"] = Json::Str(StrFormat("%lld", static_cast<long long>(v.AsInt())));
      break;
    case DataType::kDouble:
      j["t"] = Json::Str("d");
      j["v"] = Json::Number(v.AsDouble());
      break;
    case DataType::kString:
      j["t"] = Json::Str("s");
      j["v"] = Json::Str(v.AsString());
      break;
  }
  return j;
}

Result<Value> ValueFromJson(const Json& j) {
  Status status;
  const Json* t = Require(j, "t", &status);
  const Json* v = Require(j, "v", &status);
  if (!status.ok()) return status;
  if (!t->is_string()) return Status::ParseError("value 't' must be a string");
  if (t->str() == "i") {
    if (!v->is_string()) {
      return Status::ParseError("int64 value must be encoded as a string");
    }
    return Value(static_cast<int64_t>(std::strtoll(v->str().c_str(),
                                                   nullptr, 10)));
  }
  if (t->str() == "d") {
    if (!v->is_number()) return Status::ParseError("double value expected");
    return Value(v->number());
  }
  if (t->str() == "s") {
    if (!v->is_string()) return Status::ParseError("string value expected");
    return Value(v->str());
  }
  return Status::ParseError("unknown value type '" + t->str() + "'");
}

Json IndexDefToJson(const IndexDef& index) {
  Json j = Json::Object();
  j["table"] = Json::Number(index.table);
  Json cols = Json::Array();
  for (ColumnId c : index.columns) cols.Append(Json::Number(c));
  j["columns"] = std::move(cols);
  if (index.unique) j["unique"] = Json::Bool(true);
  return j;
}

Result<IndexDef> IndexDefFromJson(const Json& j, const Catalog& catalog) {
  Status status;
  const Json* table = Require(j, "table", &status);
  const Json* columns = Require(j, "columns", &status);
  if (!status.ok()) return status;
  if (!table->is_number() || !columns->is_array()) {
    return Status::ParseError("index must have numeric table + column array");
  }
  IndexDef index;
  index.table = static_cast<TableId>(table->number());
  Status s = CheckTable(index.table, catalog);
  if (!s.ok()) return s;
  for (const Json& c : columns->items()) {
    if (!c.is_number()) return Status::ParseError("index column must be a number");
    ColumnId col = static_cast<ColumnId>(c.number());
    s = CheckColumn(index.table, col, catalog);
    if (!s.ok()) return s;
    index.columns.push_back(col);
  }
  if (index.columns.empty()) {
    return Status::InvalidArgument("index must have at least one column");
  }
  if (const Json* unique = j.Find("unique")) {
    index.unique = unique->is_bool() && unique->bool_value();
  }
  return index;
}

Json VerticalPartitioningToJson(const VerticalPartitioning& p) {
  Json j = Json::Object();
  j["table"] = Json::Number(p.table);
  Json frags = Json::Array();
  for (const VerticalFragment& f : p.fragments) {
    Json cols = Json::Array();
    for (ColumnId c : f.columns) cols.Append(Json::Number(c));
    frags.Append(std::move(cols));
  }
  j["fragments"] = std::move(frags);
  return j;
}

Result<VerticalPartitioning> VerticalPartitioningFromJson(
    const Json& j, const Catalog& catalog) {
  Status status;
  const Json* table = Require(j, "table", &status);
  const Json* fragments = Require(j, "fragments", &status);
  if (!status.ok()) return status;
  if (!table->is_number() || !fragments->is_array()) {
    return Status::ParseError("vertical partitioning shape invalid");
  }
  VerticalPartitioning p;
  p.table = static_cast<TableId>(table->number());
  Status s = CheckTable(p.table, catalog);
  if (!s.ok()) return s;
  for (const Json& frag : fragments->items()) {
    if (!frag.is_array()) return Status::ParseError("fragment must be an array");
    VerticalFragment f;
    for (const Json& c : frag.items()) {
      if (!c.is_number()) return Status::ParseError("fragment column must be a number");
      ColumnId col = static_cast<ColumnId>(c.number());
      s = CheckColumn(p.table, col, catalog);
      if (!s.ok()) return s;
      f.columns.push_back(col);
    }
    p.fragments.push_back(std::move(f));
  }
  return p;
}

Json HorizontalPartitioningToJson(const HorizontalPartitioning& p) {
  Json j = Json::Object();
  j["table"] = Json::Number(p.table);
  j["column"] = Json::Number(p.column);
  Json bounds = Json::Array();
  for (const Value& b : p.bounds) bounds.Append(ValueToJson(b));
  j["bounds"] = std::move(bounds);
  return j;
}

Result<HorizontalPartitioning> HorizontalPartitioningFromJson(
    const Json& j, const Catalog& catalog) {
  Status status;
  const Json* table = Require(j, "table", &status);
  const Json* column = Require(j, "column", &status);
  const Json* bounds = Require(j, "bounds", &status);
  if (!status.ok()) return status;
  if (!table->is_number() || !column->is_number() || !bounds->is_array()) {
    return Status::ParseError("horizontal partitioning shape invalid");
  }
  HorizontalPartitioning p;
  p.table = static_cast<TableId>(table->number());
  Status s = CheckTable(p.table, catalog);
  if (!s.ok()) return s;
  p.column = static_cast<ColumnId>(column->number());
  s = CheckColumn(p.table, p.column, catalog);
  if (!s.ok()) return s;
  for (const Json& b : bounds->items()) {
    Result<Value> v = ValueFromJson(b);
    if (!v.ok()) return v.status();
    p.bounds.push_back(std::move(v).value());
  }
  return p;
}

Json PhysicalDesignToJson(const PhysicalDesign& design) {
  Json j = Json::Object();
  Json indexes = Json::Array();
  for (const IndexDef& idx : design.indexes()) {
    indexes.Append(IndexDefToJson(idx));
  }
  j["indexes"] = std::move(indexes);
  Json vertical = Json::Array();
  for (const auto& [t, vp] : design.verticals()) {
    vertical.Append(VerticalPartitioningToJson(vp));
  }
  Json horizontal = Json::Array();
  for (const auto& [t, hp] : design.horizontals()) {
    horizontal.Append(HorizontalPartitioningToJson(hp));
  }
  j["vertical"] = std::move(vertical);
  j["horizontal"] = std::move(horizontal);
  return j;
}

Result<PhysicalDesign> PhysicalDesignFromJson(const Json& j,
                                              const Catalog& catalog) {
  Status status;
  const Json* indexes = Require(j, "indexes", &status);
  if (!status.ok()) return status;
  if (!indexes->is_array()) return Status::ParseError("'indexes' must be an array");
  PhysicalDesign design;
  for (const Json& idx : indexes->items()) {
    Result<IndexDef> def = IndexDefFromJson(idx, catalog);
    if (!def.ok()) return def.status();
    design.AddIndex(def.value());
  }
  if (const Json* vertical = j.Find("vertical")) {
    for (const Json& vp : vertical->items()) {
      Result<VerticalPartitioning> p = VerticalPartitioningFromJson(vp, catalog);
      if (!p.ok()) return p.status();
      design.SetVerticalPartitioning(std::move(p).value());
    }
  }
  if (const Json* horizontal = j.Find("horizontal")) {
    for (const Json& hp : horizontal->items()) {
      Result<HorizontalPartitioning> p =
          HorizontalPartitioningFromJson(hp, catalog);
      if (!p.ok()) return p.status();
      design.SetHorizontalPartitioning(std::move(p).value());
    }
  }
  return design;
}

}  // namespace dbdesign
