#include "catalog/value.h"

#include "util/str.h"

namespace dbdesign {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "?";
}

int DataTypeWidth(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 16;  // short inline strings dominate the synthetic schemas
  }
  return 8;
}

int Value::Compare(const Value& other) const {
  if (type() == DataType::kString || other.type() == DataType::kString) {
    DBD_CHECK(type() == DataType::kString &&
              other.type() == DataType::kString);
    const std::string& a = AsString();
    const std::string& b = other.AsString();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  // Numeric comparison (int64 vs double promotes to double).
  if (type() == DataType::kInt64 && other.type() == DataType::kInt64) {
    int64_t a = AsInt();
    int64_t b = other.AsInt();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  double a = AsDouble();
  double b = other.AsDouble();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

double Value::NumericPosition() const {
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(AsInt());
    case DataType::kDouble:
      return AsDouble();
    case DataType::kString: {
      // Map the first 8 bytes to a monotone-ish position in [0, 1).
      const std::string& s = AsString();
      double pos = 0.0;
      double scale = 1.0 / 256.0;
      for (size_t i = 0; i < 8 && i < s.size(); ++i) {
        pos += static_cast<unsigned char>(s[i]) * scale;
        scale /= 256.0;
      }
      return pos;
    }
  }
  return 0.0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kInt64:
      return StrFormat("%lld", static_cast<long long>(AsInt()));
    case DataType::kDouble:
      return StrFormat("%.6g", AsDouble());
    case DataType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

uint64_t Value::Hash() const {
  auto mix = [](uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  };
  switch (type()) {
    case DataType::kInt64:
      return mix(static_cast<uint64_t>(AsInt()));
    case DataType::kDouble: {
      double d = AsDouble();
      // Normalize -0.0 and integral doubles so 1.0 and int 1 hash alike
      // when joined; joins in the engine are same-type so this is cosmetic.
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(d));
      return mix(bits);
    }
    case DataType::kString: {
      uint64_t h = 1469598103934665603ULL;  // FNV-1a
      for (char c : AsString()) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
      }
      return mix(h);
    }
  }
  return 0;
}

}  // namespace dbdesign
