// Table and column statistics used by the cost-based optimizer.
//
// Mirrors the statistics PostgreSQL's ANALYZE collects: row counts,
// per-column n_distinct, min/max, equi-depth histogram bounds, most
// common values, and the physical-order correlation coefficient that
// drives index-scan IO cost interpolation.

#ifndef DBDESIGN_CATALOG_STATS_H_
#define DBDESIGN_CATALOG_STATS_H_

#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"

namespace dbdesign {

/// A most-common-value entry.
struct McvEntry {
  Value value;
  double frequency = 0.0;  // fraction of rows
};

/// Statistics for one column.
struct ColumnStats {
  double n_distinct = 1.0;  ///< estimated number of distinct values
  double null_frac = 0.0;   ///< fraction of NULLs (modeled, data is NULL-free)
  Value min;
  Value max;
  /// Equi-depth histogram bounds: histogram[i] is the upper bound of
  /// bucket i; buckets hold equal row counts. Empty for low-NDV columns
  /// fully described by MCVs.
  std::vector<Value> histogram;
  /// Most common values (only populated for skewed, low-NDV columns).
  std::vector<McvEntry> mcv;
  /// Pearson correlation between value order and physical row order,
  /// in [-1, 1]. 1 = perfectly clustered.
  double correlation = 0.0;

  bool HasHistogram() const { return histogram.size() >= 2; }
};

/// Statistics for one table.
struct TableStats {
  double row_count = 0.0;
  std::vector<ColumnStats> columns;

  const ColumnStats& column(ColumnId id) const { return columns[id]; }

  /// Heap pages = rows * row_width / (page_size * fill_factor), >= 1.
  double HeapPages(const TableDef& def) const;

  /// Heap pages for a vertical fragment storing only `cols`.
  double FragmentPages(const TableDef& def,
                       const std::vector<ColumnId>& cols) const;
};

/// Options controlling statistics construction.
struct AnalyzeOptions {
  int histogram_buckets = 64;
  int mcv_entries = 8;
  /// MCVs are kept only if the value's frequency exceeds this threshold.
  double mcv_min_frequency = 0.01;
};

/// Builds ColumnStats from a full column of values in physical row order.
/// `values` must be non-empty.
ColumnStats BuildColumnStats(const std::vector<Value>& values,
                             const AnalyzeOptions& options = {});

}  // namespace dbdesign

#endif  // DBDESIGN_CATALOG_STATS_H_
