#include "catalog/schema.h"

namespace dbdesign {

ColumnId TableDef::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<ColumnId>(i);
  }
  return kInvalidColumnId;
}

double TableDef::RowWidthBytes() const {
  double w = kTupleOverheadBytes;
  for (const ColumnDef& c : columns_) w += c.Width();
  return w;
}

double TableDef::PartialRowWidthBytes(const std::vector<ColumnId>& cols) const {
  double w = kTupleOverheadBytes;
  for (ColumnId c : cols) w += columns_[c].Width();
  return w;
}

Result<TableId> Catalog::AddTable(TableDef def) {
  if (by_name_.count(def.name()) > 0) {
    return Status::AlreadyExists("table " + def.name());
  }
  TableId id = static_cast<TableId>(tables_.size());
  by_name_[def.name()] = id;
  tables_.push_back(std::move(def));
  return id;
}

TableId Catalog::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidTableId : it->second;
}

}  // namespace dbdesign
