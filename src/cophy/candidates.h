// Candidate index generation for the advisors (CoPhy, greedy baseline,
// interaction analysis).
//
// Candidates are mined from the workload's sargable surface: equality
// and range predicate columns, join columns, and GROUP BY / ORDER BY
// prefixes. Multi-column candidates follow the classic recipe of
// equality columns first (most selective leading), then one range
// column, optionally widened into a covering index. Mining needs only
// catalog + statistics, so it runs against any DbmsBackend.

#ifndef DBDESIGN_COPHY_CANDIDATES_H_
#define DBDESIGN_COPHY_CANDIDATES_H_

#include <vector>

#include "backend/backend.h"
#include "catalog/design.h"
#include "core/constraints.h"
#include "sql/bound_query.h"

namespace dbdesign {

class Database;  // legacy convenience overload only

struct CandidateOptions {
  /// Maximum total candidates (kept by workload relevance).
  int max_candidates = 64;
  /// Maximum key columns per candidate.
  int max_key_columns = 3;
  /// Also emit covering candidates (key + referenced columns) when the
  /// widened key stays within max_key_columns + 2.
  bool covering_candidates = true;
};

/// A candidate with its estimated size.
struct CandidateIndex {
  IndexDef index;
  double size_pages = 0.0;
  /// Number of workload queries whose predicates the candidate matches.
  int relevant_queries = 0;
};

/// Mines candidates from the workload.
std::vector<CandidateIndex> GenerateCandidates(
    const DbmsBackend& backend, const Workload& workload,
    const CandidateOptions& options = {});

/// Legacy convenience overload (defined in backend/compat.cc).
std::vector<CandidateIndex> GenerateCandidates(
    const Database& db, const Workload& workload,
    const CandidateOptions& options = {});

/// Appends the constraints' pinned indexes to `candidates` (sized via
/// the backend) unless already present. CoPhy keeps vetoed candidates
/// in the universe (they become y = 0 fixings so a later un-veto
/// re-solves without re-preparing); advisors without a solver filter
/// them out with RemoveVetoedCandidates instead.
void MergePinnedCandidates(const DbmsBackend& backend,
                           const DesignConstraints& constraints,
                           std::vector<CandidateIndex>* candidates);

/// Drops candidates the constraints veto (directly or via a vetoed
/// column). Used by the greedy baseline and COLT, which enumerate
/// candidates instead of fixing solver variables.
void RemoveVetoedCandidates(const DesignConstraints& constraints,
                            std::vector<CandidateIndex>* candidates);

}  // namespace dbdesign

#endif  // DBDESIGN_COPHY_CANDIDATES_H_
