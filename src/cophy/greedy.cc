#include "cophy/greedy.h"

#include <algorithm>
#include <chrono>
#include <map>

namespace dbdesign {

GreedyAdvisor::GreedyAdvisor(DbmsBackend& backend, GreedyOptions options)
    : backend_(&backend), options_(options), inum_(backend) {}

GreedyAdvisor::GreedyAdvisor(std::shared_ptr<DbmsBackend> owned,
                             GreedyOptions options)
    : owned_backend_(std::move(owned)),
      backend_(owned_backend_.get()),
      options_(options),
      inum_(*backend_) {}

GreedyResult GreedyAdvisor::Recommend(const Workload& workload) {
  return RecommendWithCandidates(
      workload, GenerateCandidates(*backend_, workload, options_.candidates));
}

GreedyResult GreedyAdvisor::RecommendWithCandidates(
    const Workload& workload,
    const std::vector<CandidateIndex>& candidates) {
  // Unconstrained solves cannot fail; keep the legacy signature.
  Result<GreedyResult> r =
      TryRecommendWithCandidates(workload, candidates, {});
  return r.ok() ? std::move(r).value() : GreedyResult{};
}

Result<GreedyResult> GreedyAdvisor::TryRecommend(
    const Workload& workload, const DesignConstraints& constraints) {
  return TryRecommendWithCandidates(
      workload, GenerateCandidates(*backend_, workload, options_.candidates),
      constraints);
}

Result<GreedyResult> GreedyAdvisor::TryRecommendWithCandidates(
    const Workload& workload,
    const std::vector<CandidateIndex>& candidates,
    const DesignConstraints& constraints) {
  Status s = constraints.Validate(backend_->catalog());
  if (!s.ok()) return s;
  auto t0 = std::chrono::steady_clock::now();  // NOLINT(determinism): solve_time_sec telemetry only; never feeds candidate choice or costs
  GreedyResult result;
  inum_.ResetStats();

  std::vector<CandidateIndex> pool = candidates;
  MergePinnedCandidates(*backend_, constraints, &pool);
  RemoveVetoedCandidates(constraints, &pool);
  double budget = constraints.EffectiveBudget(options_.storage_budget_pages);

  PhysicalDesign current;
  result.base_cost = inum_.WorkloadCost(workload, current);

  // Seed the configuration with the DBA's pins before any benefit math:
  // they are mandatory, not candidates to be ranked.
  std::vector<bool> used(pool.size(), false);
  double used_pages = 0.0;
  std::map<TableId, int> per_table;
  for (const IndexDef& pin : constraints.pinned_indexes) {
    for (size_t i = 0; i < pool.size(); ++i) {
      if (!(pool[i].index == pin) || used[i]) continue;
      if (used_pages + pool[i].size_pages > budget) {
        return Status::ResourceExhausted(
            "pinned index " + pin.DisplayName(backend_->catalog()) +
            " does not fit the storage budget");
      }
      used[i] = true;
      used_pages += pool[i].size_pages;
      per_table[pin.table]++;
      current.AddIndex(pin);
    }
  }
  double current_cost = current.indexes().empty()
                            ? result.base_cost
                            : inum_.WorkloadCost(workload, current);

  while (true) {
    int best = -1;
    double best_score = 0.0;
    double best_cost = current_cost;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (used[i]) continue;
      if (used_pages + pool[i].size_pages > budget) continue;
      if (per_table[pool[i].index.table] + 1 >
          constraints.TableCapOrUnlimited(pool[i].index.table)) {
        continue;
      }
      PhysicalDesign trial = current;
      trial.AddIndex(pool[i].index);
      double cost = inum_.WorkloadCost(workload, trial);
      double benefit = current_cost - cost;
      if (benefit <= 1e-9) continue;
      double score = options_.benefit_per_page
                         ? benefit / std::max(1.0, pool[i].size_pages)
                         : benefit;
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
        best_cost = cost;
      }
    }
    if (best < 0) break;
    used[static_cast<size_t>(best)] = true;
    used_pages += pool[static_cast<size_t>(best)].size_pages;
    per_table[pool[static_cast<size_t>(best)].index.table]++;
    current.AddIndex(pool[static_cast<size_t>(best)].index);
    current_cost = best_cost;
    ++result.iterations;
  }

  result.indexes = current.indexes();
  result.total_size_pages = used_pages;
  result.final_cost = current_cost;
  result.cost_evaluations = inum_.stats().reuse_calls;
  result.solve_time_sec =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() -  // NOLINT(determinism): solve_time_sec telemetry only; never feeds candidate choice or costs
          t0)
          .count();
  return result;
}

}  // namespace dbdesign
