#include "cophy/greedy.h"

#include <algorithm>
#include <chrono>

namespace dbdesign {

GreedyAdvisor::GreedyAdvisor(DbmsBackend& backend, GreedyOptions options)
    : backend_(&backend), options_(options), inum_(backend) {}

GreedyAdvisor::GreedyAdvisor(std::shared_ptr<DbmsBackend> owned,
                             GreedyOptions options)
    : owned_backend_(std::move(owned)),
      backend_(owned_backend_.get()),
      options_(options),
      inum_(*backend_) {}

GreedyResult GreedyAdvisor::Recommend(const Workload& workload) {
  return RecommendWithCandidates(
      workload, GenerateCandidates(*backend_, workload, options_.candidates));
}

GreedyResult GreedyAdvisor::RecommendWithCandidates(
    const Workload& workload,
    const std::vector<CandidateIndex>& candidates) {
  auto t0 = std::chrono::steady_clock::now();
  GreedyResult result;
  inum_.ResetStats();

  PhysicalDesign current;
  double current_cost = inum_.WorkloadCost(workload, current);
  result.base_cost = current_cost;

  std::vector<bool> used(candidates.size(), false);
  double used_pages = 0.0;

  while (true) {
    int best = -1;
    double best_score = 0.0;
    double best_cost = current_cost;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      if (used_pages + candidates[i].size_pages >
          options_.storage_budget_pages) {
        continue;
      }
      PhysicalDesign trial = current;
      trial.AddIndex(candidates[i].index);
      double cost = inum_.WorkloadCost(workload, trial);
      double benefit = current_cost - cost;
      if (benefit <= 1e-9) continue;
      double score = options_.benefit_per_page
                         ? benefit / std::max(1.0, candidates[i].size_pages)
                         : benefit;
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
        best_cost = cost;
      }
    }
    if (best < 0) break;
    used[static_cast<size_t>(best)] = true;
    used_pages += candidates[static_cast<size_t>(best)].size_pages;
    current.AddIndex(candidates[static_cast<size_t>(best)].index);
    current_cost = best_cost;
    ++result.iterations;
  }

  result.indexes = current.indexes();
  result.total_size_pages = used_pages;
  result.final_cost = current_cost;
  result.cost_evaluations = inum_.stats().reuse_calls;
  result.solve_time_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace dbdesign
