#include "cophy/candidates.h"

#include <algorithm>
#include <map>
#include <set>

#include "optimizer/selectivity.h"

namespace dbdesign {

namespace {

/// Per-slot sargable columns of one query, classified.
struct SlotColumns {
  std::vector<ColumnId> eq;     // equality predicate columns, most selective first
  std::vector<ColumnId> range;  // range predicate columns, most selective first
  std::vector<ColumnId> join;   // join columns
  std::vector<ColumnId> sort;   // group-by / order-by prefix columns
};

SlotColumns ClassifySlot(const DbmsBackend& backend, const BoundQuery& q,
                         int slot) {
  SlotColumns out;
  const TableStats& stats = backend.stats(q.tables[slot]);

  std::vector<std::pair<double, ColumnId>> eq;
  std::vector<std::pair<double, ColumnId>> range;
  for (const BoundPredicate& p : q.FiltersOn(slot)) {
    double sel = PredicateSelectivity(stats.column(p.column.column), p);
    if (p.IsEquality()) {
      eq.emplace_back(sel, p.column.column);
    } else if (p.IsRange()) {
      range.emplace_back(sel, p.column.column);
    }
  }
  std::sort(eq.begin(), eq.end());
  std::sort(range.begin(), range.end());
  std::set<ColumnId> seen;
  for (auto& [sel, c] : eq) {
    if (seen.insert(c).second) out.eq.push_back(c);
  }
  for (auto& [sel, c] : range) {
    if (seen.insert(c).second) out.range.push_back(c);
  }
  for (const BoundJoin& j : q.JoinsOn(slot)) {
    ColumnId c = j.SideOn(slot)->column;
    if (std::find(out.join.begin(), out.join.end(), c) == out.join.end()) {
      out.join.push_back(c);
    }
  }
  bool group_local = !q.group_by.empty();
  for (const BoundColumn& c : q.group_by) group_local &= c.slot == slot;
  if (group_local) {
    for (const BoundColumn& c : q.group_by) out.sort.push_back(c.column);
  } else if (!q.order_by.empty()) {
    bool order_local = true;
    for (const BoundOrderItem& o : q.order_by) {
      order_local &= o.column.slot == slot && !o.descending;
    }
    if (order_local) {
      for (const BoundOrderItem& o : q.order_by) {
        out.sort.push_back(o.column.column);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<CandidateIndex> GenerateCandidates(
    const DbmsBackend& backend, const Workload& workload,
    const CandidateOptions& options) {
  // key -> (IndexDef, hit count)
  std::map<std::string, std::pair<IndexDef, int>> pool;
  auto add = [&](IndexDef idx) {
    if (idx.columns.empty() ||
        static_cast<int>(idx.columns.size()) >
            options.max_key_columns + 2) {
      return;
    }
    auto [it, inserted] = pool.try_emplace(idx.Key(), idx, 0);
    it->second.second++;
  };

  for (const BoundQuery& q : workload.queries) {
    for (int s = 0; s < q.num_slots(); ++s) {
      TableId tid = q.tables[s];
      SlotColumns cols = ClassifySlot(backend, q, s);

      // Single-column candidates on every sargable column.
      for (ColumnId c : cols.eq) add(IndexDef{tid, {c}, false});
      for (ColumnId c : cols.range) add(IndexDef{tid, {c}, false});
      for (ColumnId c : cols.join) add(IndexDef{tid, {c}, false});
      if (!cols.sort.empty()) add(IndexDef{tid, cols.sort, false});

      // Multi-column: equality prefix (selective first) + one range col.
      std::vector<ColumnId> key;
      for (ColumnId c : cols.eq) {
        if (static_cast<int>(key.size()) < options.max_key_columns) {
          key.push_back(c);
        }
      }
      if (key.size() >= 2) add(IndexDef{tid, key, false});
      if (!cols.range.empty() &&
          static_cast<int>(key.size()) < options.max_key_columns) {
        std::vector<ColumnId> with_range = key;
        with_range.push_back(cols.range[0]);
        add(IndexDef{tid, with_range, false});
        if (cols.range.size() >= 2 && key.empty()) {
          // Two-range composite (e.g. cone search ra+dec).
          add(IndexDef{tid, {cols.range[0], cols.range[1]}, false});
        }
      }
      // Join column + most selective filter column behind it.
      for (ColumnId jc : cols.join) {
        ColumnId extra = kInvalidColumnId;
        if (!cols.eq.empty()) {
          extra = cols.eq[0];
        } else if (!cols.range.empty()) {
          extra = cols.range[0];
        }
        if (extra != kInvalidColumnId && extra != jc) {
          add(IndexDef{tid, {jc, extra}, false});
        }
      }

      // Covering: widen the best key with remaining referenced columns.
      if (options.covering_candidates) {
        std::vector<ColumnId> covering =
            !key.empty()
                ? key
                : (!cols.range.empty() ? std::vector<ColumnId>{cols.range[0]}
                                       : std::vector<ColumnId>{});
        if (!covering.empty()) {
          for (ColumnId c : q.ReferencedColumns(s)) {
            if (static_cast<int>(covering.size()) >=
                options.max_key_columns + 2) {
              break;
            }
            if (std::find(covering.begin(), covering.end(), c) ==
                covering.end()) {
              covering.push_back(c);
            }
          }
          if (covering.size() >= 2 &&
              static_cast<int>(covering.size()) <=
                  options.max_key_columns + 2) {
            add(IndexDef{tid, covering, false});
          }
        }
      }
    }
  }

  std::vector<CandidateIndex> out;
  out.reserve(pool.size());
  for (auto& [k, entry] : pool) {
    CandidateIndex c;
    c.index = entry.first;
    c.relevant_queries = entry.second;
    c.size_pages = backend.EstimateIndexSize(c.index).total_pages();
    out.push_back(std::move(c));
  }
  // Keep the most workload-relevant candidates.
  std::sort(out.begin(), out.end(),
            [](const CandidateIndex& a, const CandidateIndex& b) {
              if (a.relevant_queries != b.relevant_queries) {
                return a.relevant_queries > b.relevant_queries;
              }
              return a.index.Key() < b.index.Key();
            });
  if (static_cast<int>(out.size()) > options.max_candidates) {
    out.resize(static_cast<size_t>(options.max_candidates));
  }
  return out;
}

void MergePinnedCandidates(const DbmsBackend& backend,
                           const DesignConstraints& constraints,
                           std::vector<CandidateIndex>* candidates) {
  for (const IndexDef& pin : constraints.pinned_indexes) {
    bool present = false;
    for (const CandidateIndex& c : *candidates) present |= c.index == pin;
    if (present) continue;
    CandidateIndex c;
    c.index = pin;
    c.size_pages = backend.EstimateIndexSize(pin).total_pages();
    candidates->push_back(std::move(c));
  }
}

void RemoveVetoedCandidates(const DesignConstraints& constraints,
                            std::vector<CandidateIndex>* candidates) {
  candidates->erase(
      std::remove_if(candidates->begin(), candidates->end(),
                     [&](const CandidateIndex& c) {
                       return constraints.IsVetoed(c.index);
                     }),
      candidates->end());
}

}  // namespace dbdesign
