// Versioned binary codec for CoPhyAtomRow — the payload format of the
// AtomStore's cold (spilled-to-disk) tier.
//
// An atom row is pure value data: a base cost plus (cost, used
// candidate ids) pairs. The encoding is little-endian (util/binio.h)
// with a magic + version header so future layout changes stay
// detectable, and doubles travel as raw IEEE-754 bits so the non-finite
// costs INUM legitimately produces (an atom whose plan is infeasible
// under some option costs +inf) round-trip exactly — the same contract
// util/json's __nonfinite sentinel provides for text, at a fraction of
// the bytes.
//
// Decode is total: any truncated, corrupt, or version-mismatched buffer
// yields a clean Status, never a partial row or an out-of-bounds read.
// The spill tier treats a decode failure as a cache miss (the row is
// repopulated from the backend), so codec robustness is a performance
// property, not a correctness one.

#ifndef DBDESIGN_COPHY_ATOM_CODEC_H_
#define DBDESIGN_COPHY_ATOM_CODEC_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "cophy/cophy.h"
#include "util/status.h"

namespace dbdesign {

/// Serializes a row: magic "DBAR", u32 version, f64 base cost, u64 atom
/// count, then per atom a f64 cost, u64 id count, and u32 candidate ids.
std::string EncodeAtomRow(const CoPhyAtomRow& row);

/// Parses EncodeAtomRow output. Rejects bad magic, unknown versions,
/// truncation, and trailing bytes with an InvalidArgument Status.
Result<CoPhyAtomRow> DecodeAtomRow(std::string_view bytes);

/// Approximate in-memory footprint of a row (the unit of AtomStore
/// budget accounting): struct overhead plus atom vectors plus each
/// atom's candidate-id vector. An estimate, not malloc truth — but a
/// deterministic one, so eviction order and budget checks are
/// bit-stable across runs.
size_t AtomRowBytes(const CoPhyAtomRow& row);

}  // namespace dbdesign

#endif  // DBDESIGN_COPHY_ATOM_CODEC_H_
