#include "cophy/cophy.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "util/logging.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace dbdesign {

uint64_t CandidateUniverseFingerprint(
    const std::vector<CandidateIndex>& candidates) {
  // FNV-1a over each candidate's structural key and size, in order —
  // atom `used` ids are positional, so a reordered universe must
  // fingerprint differently. Each key is prefixed with its length so
  // adjacent keys cannot alias across the concatenation.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const CandidateIndex& c : candidates) {
    std::string key = c.index.Key();
    mix(key.size());
    for (char ch : key) {
      h ^= static_cast<unsigned char>(ch);
      h *= 1099511628211ull;
    }
    mix(std::bit_cast<uint64_t>(c.size_pages));
  }
  return h;
}

CoPhyAdvisor::CoPhyAdvisor(DbmsBackend& backend, CoPhyOptions options)
    : backend_(&backend),
      params_(backend.cost_params()),
      options_(options),
      inum_(backend, options.inum),
      optimizer_(backend.catalog(), backend.all_stats(), params_) {}

CoPhyAdvisor::CoPhyAdvisor(std::shared_ptr<DbmsBackend> owned,
                           CoPhyOptions options)
    : owned_backend_(std::move(owned)),
      backend_(owned_backend_.get()),
      params_(backend_->cost_params()),
      options_(options),
      inum_(*backend_, options.inum),
      optimizer_(backend_->catalog(), backend_->all_stats(), params_) {}

std::vector<CoPhyAtom> CoPhyAdvisor::BuildAtoms(
    const BoundQuery& query, const std::vector<CandidateIndex>& candidates) {
  inum_.Prepare(query);
  const auto* plans = inum_.CachedPlansFor(query);
  if (plans == nullptr || plans->empty()) return {};

  // Design containing every candidate: one Paths() call per slot yields
  // per-candidate leaf costs.
  PhysicalDesign all;
  for (const CandidateIndex& c : candidates) all.AddIndex(c.index);
  PlannerContext ctx = optimizer_.MakeContext(query, all);
  CatalogPathProvider provider(ctx);

  // Candidate lookup by structural key — one map build instead of a
  // per-path linear scan over the candidate vector.
  std::unordered_map<std::string, int> id_by_key;
  id_by_key.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    id_by_key.emplace(candidates[i].index.Key(), static_cast<int>(i));
  }
  auto candidate_id = [&](const IndexDef& idx) {
    auto it = id_by_key.find(idx.Key());
    if (it == id_by_key.end()) return -1;
    // Key() is a structural rendering, so a hit must be the same index;
    // a mismatch means the key scheme lost information.
    DBD_DCHECK(candidates[static_cast<size_t>(it->second)].index == idx &&
               "IndexDef::Key collision in the candidate map");
    return it->second;
  };

  // One access option: leaf cost + the candidate it needs (-1 = none).
  struct Option {
    double cost = 0.0;
    int candidate = -1;
  };

  int n = query.num_slots();
  // Per-slot paths, annotated with candidate ids.
  struct AnnotatedPath {
    double cost;
    int candidate;
    std::vector<BoundColumn> order;
  };
  std::vector<std::vector<AnnotatedPath>> slot_paths(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    for (const AccessPath& p : provider.Paths(s)) {
      AnnotatedPath ap;
      ap.cost = p.node->cost.total;
      ap.candidate =
          p.node->index.has_value() ? candidate_id(*p.node->index) : -1;
      ap.order = p.order;
      // Paths over non-candidate indexes (already-materialized ones)
      // keep candidate = -1: they are free to use.
      slot_paths[static_cast<size_t>(s)].push_back(std::move(ap));
    }
  }

  using Kind = InumCostModel::SlotSignature::Kind;
  std::map<std::string, CoPhyAtom> dedup;  // used-set key -> best atom

  for (const InumCostModel::CachedPlan& plan : *plans) {
    // Build the option list per slot.
    std::vector<std::vector<Option>> options(static_cast<size_t>(n));
    bool feasible = true;
    for (int s = 0; s < n && feasible; ++s) {
      const auto& sig = plan.slots[static_cast<size_t>(s)];
      std::vector<Option>& opts = options[static_cast<size_t>(s)];
      if (sig.kind == Kind::kParamLookup) {
        // Price each candidate lookup through the matching INLJ term.
        double outer_rows = 0.0;
        for (const auto& term : plan.inlj_terms) {
          if (term.slot == s) outer_rows = term.outer_rows;
        }
        for (size_t c = 0; c < candidates.size(); ++c) {
          if (candidates[c].index.table != query.tables[s]) continue;
          auto lk = CostIndexParamLookup(ctx, s, sig.lookup_col,
                                         candidates[c].index);
          if (lk.has_value()) {
            opts.push_back(Option{outer_rows * lk->per_lookup.total,
                                  static_cast<int>(c)});
          }
        }
      } else {
        // Best path per candidate id consistent with the signature.
        std::map<int, double> best;
        for (const AnnotatedPath& p : slot_paths[static_cast<size_t>(s)]) {
          if (sig.kind == Kind::kOrdered &&
              !OrderSatisfies(p.order, sig.order)) {
            continue;
          }
          auto [it, inserted] = best.try_emplace(p.candidate, p.cost);
          if (!inserted) it->second = std::min(it->second, p.cost);
        }
        for (auto [cand, cost] : best) opts.push_back(Option{cost, cand});
      }
      if (opts.empty()) {
        feasible = false;
        break;
      }
      // Keep the cheapest few, but never drop the no-index option.
      std::sort(opts.begin(), opts.end(),
                [](const Option& a, const Option& b) {
                  return a.cost < b.cost;
                });
      if (static_cast<int>(opts.size()) > options_.max_leaf_options_per_slot) {
        bool has_free = false;
        for (int k = 0; k < options_.max_leaf_options_per_slot; ++k) {
          has_free |= opts[static_cast<size_t>(k)].candidate < 0;
        }
        Option free_opt;
        bool found_free = false;
        if (!has_free) {
          for (const Option& o : opts) {
            if (o.candidate < 0) {
              free_opt = o;
              found_free = true;
              break;
            }
          }
        }
        opts.resize(static_cast<size_t>(options_.max_leaf_options_per_slot));
        if (!has_free && found_free) opts.back() = free_opt;
      }
    }
    if (!feasible) continue;

    // Cross product of slot options.
    std::vector<size_t> idx(static_cast<size_t>(n), 0);
    while (true) {
      CoPhyAtom atom;
      atom.cost = plan.internal_cost;
      for (int s = 0; s < n; ++s) {
        const Option& o =
            options[static_cast<size_t>(s)][idx[static_cast<size_t>(s)]];
        atom.cost += o.cost;
        if (o.candidate >= 0) atom.used.push_back(o.candidate);
      }
      std::sort(atom.used.begin(), atom.used.end());
      atom.used.erase(std::unique(atom.used.begin(), atom.used.end()),
                      atom.used.end());
      std::string key;
      for (int u : atom.used) key += StrFormat("%d,", u);
      auto [it, inserted] = dedup.try_emplace(key, atom);
      if (!inserted && atom.cost < it->second.cost) it->second = atom;

      int pos = 0;
      while (pos < n) {
        if (++idx[static_cast<size_t>(pos)] <
            options[static_cast<size_t>(pos)].size()) {
          break;
        }
        idx[static_cast<size_t>(pos)] = 0;
        ++pos;
      }
      if (pos == n) break;
    }
  }

  std::vector<CoPhyAtom> atoms;
  atoms.reserve(dedup.size());
  for (auto& [k, atom] : dedup) atoms.push_back(std::move(atom));
  std::sort(atoms.begin(), atoms.end(),
            [](const CoPhyAtom& a, const CoPhyAtom& b) {
              return a.cost < b.cost;
            });
  if (static_cast<int>(atoms.size()) > options_.max_atoms_per_query) {
    // Truncate but preserve the index-free atom (feasibility anchor).
    CoPhyAtom free_atom;
    bool found = false;
    for (const CoPhyAtom& a : atoms) {
      if (a.used.empty()) {
        free_atom = a;
        found = true;
        break;
      }
    }
    atoms.resize(static_cast<size_t>(options_.max_atoms_per_query));
    if (found) {
      bool present = false;
      for (const CoPhyAtom& a : atoms) present |= a.used.empty();
      if (!present) atoms.back() = free_atom;
    }
  }
  return atoms;
}

IndexRecommendation CoPhyAdvisor::Recommend(const Workload& workload) {
  return RecommendWithCandidates(
      workload, GenerateCandidates(*backend_, workload, options_.candidates));
}

IndexRecommendation CoPhyAdvisor::RecommendWithCandidates(
    const Workload& workload,
    const std::vector<CandidateIndex>& candidates) {
  CoPhyPrepared prepared = Prepare(workload, candidates);
  Result<IndexRecommendation> rec = SolvePrepared(prepared, {});
  // Unconstrained solves cannot fail validation; keep the legacy
  // non-Status signature for existing callers.
  return rec.ok() ? std::move(rec).value() : IndexRecommendation{};
}

Result<IndexRecommendation> CoPhyAdvisor::TryRecommend(
    const Workload& workload, const DesignConstraints& constraints) {
  Status s = constraints.Validate(backend_->catalog());
  if (!s.ok()) return s;
  std::vector<CandidateIndex> candidates =
      GenerateCandidates(*backend_, workload, options_.candidates);
  MergePinnedCandidates(*backend_, constraints, &candidates);
  return SolvePrepared(Prepare(workload, std::move(candidates)), constraints);
}

Result<IndexRecommendation> CoPhyAdvisor::TryRecommendWithCandidates(
    const Workload& workload, const std::vector<CandidateIndex>& candidates,
    const DesignConstraints& constraints) {
  Status s = constraints.Validate(backend_->catalog());
  if (!s.ok()) return s;
  std::vector<CandidateIndex> merged = candidates;
  MergePinnedCandidates(*backend_, constraints, &merged);
  return SolvePrepared(Prepare(workload, std::move(merged)), constraints);
}

CoPhyPrepared CoPhyAdvisor::Prepare(const Workload& workload,
                                    std::vector<CandidateIndex> candidates) {
  CoPhyPrepared prep;
  prep.candidates = std::move(candidates);
  prep.universe_fingerprint = CandidateUniverseFingerprint(prep.candidates);

  // Atom rows per query: built once per structurally distinct query
  // (duplicates share the row by pointer — identical queries expand to
  // identical atom sets). With an atom source attached, rows another
  // session already built for this (schema, query, universe) are
  // adopted as-is and skip their INUM populate entirely.
  StructuralDedup dedup = DedupByStructure(std::span<const BoundQuery>(
      workload.queries.data(), workload.queries.size()));
  const std::vector<size_t>& distinct = dedup.distinct;

  std::vector<std::shared_ptr<const CoPhyAtomRow>> distinct_rows(
      distinct.size());
  std::vector<size_t> misses;  // indexes into `distinct` still to build
  if (atom_source_ != nullptr) {
    for (size_t u = 0; u < distinct.size(); ++u) {
      distinct_rows[u] = atom_source_->Lookup(
          workload.queries[distinct[u]].ToSql(backend_->catalog()),
          prep.universe_fingerprint);
      if (distinct_rows[u] == nullptr) misses.push_back(u);
    }
  } else {
    misses.resize(distinct.size());
    for (size_t u = 0; u < distinct.size(); ++u) misses[u] = u;
  }

  if (!misses.empty()) {
    // INUM caches for the missed queries are populated up front so the
    // parallel BuildAtoms calls only read them.
    Workload to_build;
    for (size_t u : misses) to_build.Add(workload.queries[distinct[u]]);
    inum_.PrepareWorkload(to_build);

    std::vector<std::shared_ptr<CoPhyAtomRow>> built(misses.size());
    int threads = ThreadPool::Resolve(params_.num_threads);
    ThreadPool::Shared().ParallelFor(misses.size(), threads, [&](size_t m) {
      auto row = std::make_shared<CoPhyAtomRow>();
      row->atoms =
          BuildAtoms(workload.queries[distinct[misses[m]]], prep.candidates);
      built[m] = std::move(row);
    });
    for (size_t m = 0; m < misses.size(); ++m) {
      const BoundQuery& q = workload.queries[distinct[misses[m]]];
      built[m]->base_cost = inum_.Cost(q, PhysicalDesign{});
      std::shared_ptr<const CoPhyAtomRow> row = std::move(built[m]);
      if (atom_source_ != nullptr) {
        // Publish for other sessions; adopt the canonical entry so a
        // concurrent builder of the same row and this session end up
        // sharing one object.
        row = atom_source_->Publish(q.ToSql(backend_->catalog()),
                                    prep.universe_fingerprint, std::move(row));
      }
      distinct_rows[misses[m]] = std::move(row);
    }
  }

  prep.rows.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    prep.rows.push_back(distinct_rows[dedup.owner[i]]);
    prep.num_atoms += prep.rows.back()->atoms.size();
    prep.weights.push_back(workload.WeightOf(i));
    prep.base_cost += prep.weights.back() * prep.rows.back()->base_cost;
  }
  return prep;
}

Result<CoPhyPrepared> CoPhyAdvisor::TryPrepare(
    const Workload& workload, std::vector<CandidateIndex> candidates) {
  try {
    return Prepare(workload, std::move(candidates));
  } catch (const StatusException& e) {
    return e.status();
  }
}

Result<IndexRecommendation> CoPhyAdvisor::SolvePrepared(
    const CoPhyPrepared& prepared,
    const DesignConstraints& constraints) const {
  Status s = constraints.Validate(backend_->catalog());
  if (!s.ok()) return s;

  const std::vector<CandidateIndex>& candidates = prepared.candidates;
  auto atoms = [&prepared](size_t q) -> const std::vector<CoPhyAtom>& {
    return prepared.rows[q]->atoms;
  };
  size_t nq = prepared.rows.size();
  int ny = static_cast<int>(candidates.size());
  double budget = constraints.EffectiveBudget(options_.storage_budget_pages);

  IndexRecommendation rec;
  rec.num_candidates = candidates.size();
  rec.num_atoms = prepared.num_atoms;
  rec.base_cost = prepared.base_cost;

  // --- Resolve constraints against the candidate universe ---
  // Pins must be in the universe (callers merge them via
  // MergePinnedCandidates before Prepare); a pin outside it means the
  // prepared state is stale.
  std::unordered_map<std::string, int> id_by_key;
  id_by_key.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    id_by_key.emplace(candidates[i].index.Key(), static_cast<int>(i));
  }
  std::vector<int> pin_ids;
  for (const IndexDef& pin : constraints.pinned_indexes) {
    auto it = id_by_key.find(pin.Key());
    if (it == id_by_key.end()) {
      return Status::InvalidArgument(
          "pinned index " + pin.DisplayName(backend_->catalog()) +
          " is not in the prepared candidate universe; re-prepare with the "
          "pin merged into the candidates");
    }
    pin_ids.push_back(it->second);
  }
  // Admit pins smallest-first under the budget; the rest are reported
  // as infeasible instead of silently failing the whole solve.
  std::sort(pin_ids.begin(), pin_ids.end(), [&](int a, int b) {
    double sa = candidates[static_cast<size_t>(a)].size_pages;
    double sb = candidates[static_cast<size_t>(b)].size_pages;
    if (sa != sb) return sa < sb;
    return a < b;
  });
  std::set<int> admitted_pins;
  double pin_pages = 0.0;
  for (int i : pin_ids) {
    double sz = candidates[static_cast<size_t>(i)].size_pages;
    if (pin_pages + sz <= budget) {
      admitted_pins.insert(i);
      pin_pages += sz;
    } else {
      rec.infeasible_pins.push_back(candidates[static_cast<size_t>(i)].index);
      DBD_LOG_WARN(StrFormat(
          "CoPhy: pinned index %s (%.0f pages) does not fit the remaining "
          "budget (%.0f of %.0f pages used)",
          candidates[static_cast<size_t>(i)]
              .index.DisplayName(backend_->catalog())
              .c_str(),
          sz, pin_pages, budget));
    }
  }
  std::vector<bool> vetoed(candidates.size(), false);
  for (size_t i = 0; i < candidates.size(); ++i) {
    vetoed[i] = constraints.IsVetoed(candidates[i].index);
  }

  // --- BIP construction ---
  // y variables carry a tiny size-proportional penalty: among equal-cost
  // configurations the solver then uniquely prefers the one with the
  // smallest storage footprint. This deterministic tie-break is what
  // makes an incremental Refine provably bit-identical to a
  // from-scratch solve — a unique optimum of the relaxed problem that
  // stays feasible under tightened constraints is also the unique
  // optimum of the tightened problem. The scale sits well above the
  // simplex tolerances (1e-9) so one page discriminates, and well below
  // any meaningful cost difference (a whole 1000-page configuration
  // adds 0.01 cost units).
  constexpr double kTieBreakPerPage = 1e-5;
  MipProblem mip;
  for (int i = 0; i < ny; ++i) {
    mip.lp.AddVariable(kTieBreakPerPage *
                       candidates[static_cast<size_t>(i)].size_pages);
    mip.binary_vars.push_back(i);
  }
  // DBA pins and vetoes are pure variable fixings: the atom matrix and
  // every other row survive a constraint edit untouched.
  for (int i : admitted_pins) mip.fixed_vars.emplace_back(i, 1);
  for (int i = 0; i < ny; ++i) {
    if (vetoed[static_cast<size_t>(i)]) mip.fixed_vars.emplace_back(i, 0);
  }
  // x variables.
  std::vector<std::vector<int>> xvar(nq);
  for (size_t q = 0; q < nq; ++q) {
    double w = prepared.weights[q];
    for (const CoPhyAtom& a : atoms(q)) {
      xvar[q].push_back(mip.lp.AddVariable(w * a.cost));
    }
  }
  // One atom per query.
  for (size_t q = 0; q < nq; ++q) {
    LpConstraint one;
    for (int v : xvar[q]) one.terms.emplace_back(v, 1.0);
    one.rel = LpRelation::kEq;
    one.rhs = 1.0;
    mip.lp.AddConstraint(std::move(one));
  }
  // Aggregated linking: sum_{a of q using i} x <= y_i.
  for (size_t q = 0; q < nq; ++q) {
    std::map<int, std::vector<int>> by_index;
    for (size_t a = 0; a < atoms(q).size(); ++a) {
      for (int i : atoms(q)[a].used) {
        by_index[i].push_back(xvar[q][a]);
      }
    }
    for (auto& [i, xs] : by_index) {
      LpConstraint link;
      for (int v : xs) link.terms.emplace_back(v, 1.0);
      link.terms.emplace_back(i, -1.0);
      link.rel = LpRelation::kLe;
      link.rhs = 0.0;
      mip.lp.AddConstraint(std::move(link));
    }
  }
  // Storage budget.
  if (std::isfinite(budget)) {
    LpConstraint budget_row;
    for (int i = 0; i < ny; ++i) {
      budget_row.terms.emplace_back(
          i, candidates[static_cast<size_t>(i)].size_pages);
    }
    budget_row.rel = LpRelation::kLe;
    budget_row.rhs = budget;
    mip.lp.AddConstraint(std::move(budget_row));
  }
  // Per-table caps: sum_{i on t} y_i <= cap_t.
  for (const auto& [table, cap] : constraints.max_indexes_per_table) {
    LpConstraint cap_row;
    for (int i = 0; i < ny; ++i) {
      if (candidates[static_cast<size_t>(i)].index.table == table) {
        cap_row.terms.emplace_back(i, 1.0);
      }
    }
    if (cap_row.terms.empty()) continue;
    cap_row.rel = LpRelation::kLe;
    cap_row.rhs = static_cast<double>(cap);
    mip.lp.AddConstraint(std::move(cap_row));
  }
  rec.num_variables = static_cast<size_t>(mip.lp.num_vars);
  rec.num_constraints = mip.lp.constraints.size();

  // Primal heuristic: pins first, then round y by LP value under the
  // budget/cap/veto constraints, then pick the cheapest compatible atom
  // per query.
  auto complete = [&](const std::set<int>& chosen) {
    // Mirrors the MIP objective, including the tie-break penalty, so
    // heuristic incumbents compare consistently against node bounds.
    double obj = 0.0;
    for (int i : chosen) {
      obj += kTieBreakPerPage * candidates[static_cast<size_t>(i)].size_pages;
    }
    for (size_t q = 0; q < nq; ++q) {
      double best = std::numeric_limits<double>::infinity();
      for (const CoPhyAtom& a : atoms(q)) {
        bool ok = true;
        for (int i : a.used) ok &= chosen.count(i) > 0;
        if (ok) best = std::min(best, a.cost);
      }
      obj += prepared.weights[q] * best;
    }
    return obj;
  };
  auto heuristic = [&](const std::vector<double>& lp,
                       std::vector<double>* out, double* obj) {
    std::set<int> chosen = admitted_pins;
    double used_pages = pin_pages;
    std::map<TableId, int> per_table;
    for (int i : chosen) {
      per_table[candidates[static_cast<size_t>(i)].index.table]++;
    }
    std::vector<std::pair<double, int>> ranked;
    for (int i = 0; i < ny; ++i) {
      if (vetoed[static_cast<size_t>(i)] || chosen.count(i) > 0) continue;
      if (lp[static_cast<size_t>(i)] > 1e-6) {
        ranked.emplace_back(-lp[static_cast<size_t>(i)], i);
      }
    }
    std::sort(ranked.begin(), ranked.end());
    for (auto& [neg, i] : ranked) {
      const CandidateIndex& c = candidates[static_cast<size_t>(i)];
      if (used_pages + c.size_pages > budget) continue;
      if (per_table[c.index.table] + 1 >
          constraints.TableCapOrUnlimited(c.index.table)) {
        continue;
      }
      chosen.insert(i);
      used_pages += c.size_pages;
      per_table[c.index.table]++;
    }
    *obj = complete(chosen);
    if (!std::isfinite(*obj)) return false;
    out->assign(static_cast<size_t>(mip.lp.num_vars), 0.0);
    for (int i : chosen) (*out)[static_cast<size_t>(i)] = 1.0;
    // x assignment is implied; B&B only reads binary positions, and the
    // objective is passed explicitly.
    return true;
  };

  BnbResult bnb = SolveBinaryMip(mip, options_.bnb, heuristic);
  rec.bnb_nodes = bnb.nodes_explored;
  rec.solve_time_sec = bnb.solve_time_sec;
  rec.proven_optimal = bnb.proven_optimal;

  // Extract the chosen configuration. Admitted pins are always part of
  // it, even when the node budget starved the search.
  std::set<int> chosen = admitted_pins;
  if (bnb.feasible) {
    for (int i = 0; i < ny; ++i) {
      if (bnb.values[static_cast<size_t>(i)] > 0.5) chosen.insert(i);
    }
  }
  // Per-query best atom under the chosen set; drop unpinned indexes no
  // atom uses.
  std::set<int> kept = admitted_pins;
  rec.per_query_cost.resize(nq, 0.0);
  rec.recommended_cost = 0.0;
  for (size_t q = 0; q < nq; ++q) {
    double best = std::numeric_limits<double>::infinity();
    const CoPhyAtom* best_atom = nullptr;
    for (const CoPhyAtom& a : atoms(q)) {
      bool ok = true;
      for (int i : a.used) ok &= chosen.count(i) > 0;
      if (ok && a.cost < best) {
        best = a.cost;
        best_atom = &a;
      }
    }
    rec.per_query_cost[q] = best;
    rec.recommended_cost += prepared.weights[q] * best;
    if (best_atom != nullptr) {
      for (int i : best_atom->used) kept.insert(i);
    }
  }
  for (int i : kept) {
    rec.indexes.push_back(candidates[static_cast<size_t>(i)].index);
    rec.total_size_pages += candidates[static_cast<size_t>(i)].size_pages;
  }

  // The solver bound includes the tie-break penalty; strip a safe cap
  // on it so the reported bound is a true lower bound on the atom-cost
  // objective alone.
  double penalty_cap = 0.0;
  for (const CandidateIndex& c : candidates) {
    penalty_cap += kTieBreakPerPage * c.size_pages;
  }
  if (std::isfinite(budget)) {
    penalty_cap = std::min(penalty_cap, kTieBreakPerPage * budget);
  }
  rec.lower_bound = std::max(0.0, bnb.lower_bound - penalty_cap);
  double denom = std::max(1e-12, rec.recommended_cost);
  rec.gap = std::max(0.0, (rec.recommended_cost - rec.lower_bound) / denom);

  DBD_LOG_INFO(StrFormat(
      "CoPhy: %zu candidates, %zu atoms, %zu vars, %zu rows -> %zu indexes, "
      "cost %.1f -> %.1f (gap %.4f, %d nodes, %zu pins, %zu infeasible)",
      rec.num_candidates, rec.num_atoms, rec.num_variables,
      rec.num_constraints, rec.indexes.size(), rec.base_cost,
      rec.recommended_cost, rec.gap, rec.bnb_nodes, admitted_pins.size(),
      rec.infeasible_pins.size()));
  return rec;
}

}  // namespace dbdesign
