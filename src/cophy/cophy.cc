#include "cophy/cophy.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "util/logging.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace dbdesign {

uint64_t CandidateUniverseFingerprint(
    const std::vector<CandidateIndex>& candidates) {
  // FNV-1a over each candidate's structural key and size, in order —
  // atom `used` ids are positional, so a reordered universe must
  // fingerprint differently. Each key is prefixed with its length so
  // adjacent keys cannot alias across the concatenation.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const CandidateIndex& c : candidates) {
    std::string key = c.index.Key();
    mix(key.size());
    for (char ch : key) {
      h ^= static_cast<unsigned char>(ch);
      h *= 1099511628211ull;
    }
    mix(std::bit_cast<uint64_t>(c.size_pages));
  }
  return h;
}

void CoPhyPrepared::RefreshClusters() {
  int ny = static_cast<int>(candidates.size());
  // Star edges per query row: the one-atom-per-query constraint couples
  // every candidate any of the row's atoms can use, so linking each such
  // candidate to the row's smallest one gives exactly the connectivity
  // of the monolithic BIP (minus the budget/cap rows, which the solver
  // handles via the stitch-or-fallback check).
  std::vector<InteractionEdge> edges;
  std::vector<int> anchor(rows.size(), -1);  // smallest used candidate per row
  std::vector<int> used;
  for (size_t q = 0; q < rows.size(); ++q) {
    used.clear();
    for (const CoPhyAtom& a : rows[q]->atoms) {
      used.insert(used.end(), a.used.begin(), a.used.end());
    }
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    if (used.empty()) continue;
    anchor[q] = used.front();
    for (size_t t = 1; t < used.size(); ++t) {
      edges.push_back(InteractionEdge{used.front(), used[t], 1.0});
    }
  }
  clusters = PartitionFromEdges(ny, edges);
  row_cluster.assign(rows.size(), -1);
  for (size_t q = 0; q < rows.size(); ++q) {
    if (anchor[q] >= 0) {
      row_cluster[q] = clusters.cluster_of[static_cast<size_t>(anchor[q])];
    }
  }
}

namespace {

size_t SolverEntryBytes(const CoPhySolverCache::Entry& e) {
  size_t bytes = sizeof(CoPhySolverCache::Entry);
  bytes += e.chosen.size() * sizeof(int);
  bytes += e.root_basis.size() * sizeof(int);
  for (const CoPhySolverCache::Entry::ParetoPoint& p : e.frontier) {
    bytes += sizeof(CoPhySolverCache::Entry::ParetoPoint);
    bytes += p.chosen.size() * sizeof(int);
  }
  return bytes;
}

}  // namespace

size_t CoPhySolverCache::ApproxBytes() const {
  size_t bytes = sizeof(CoPhySolverCache);
  for (const Entry& e : entries) bytes += SolverEntryBytes(e);
  bytes += SolverEntryBytes(mono);
  return bytes;
}

void CoPhySolverCache::TrimToBytes(size_t max_bytes) {
  if (max_bytes == 0 || ApproxBytes() <= max_bytes) return;
  ++trims;
  // Entries in deterministic trim order: clusters by index, mono last.
  size_t n = entries.size() + 1;
  auto entry_at = [&](size_t i) -> Entry& {
    return i < entries.size() ? entries[i] : mono;
  };

  // Phase 1: shorten frontiers, always dropping the deepest point of
  // the currently longest frontier (down to one point — the top point
  // doubles as the entry's full-budget optimum). A shortened frontier
  // is exactly the state lazy enumeration passes through, so the next
  // solve deepens it on demand instead of going cold.
  while (ApproxBytes() > max_bytes) {
    size_t best = n;
    size_t best_len = 1;
    for (size_t i = 0; i < n; ++i) {
      if (entry_at(i).frontier.size() > best_len) {
        best = i;
        best_len = entry_at(i).frontier.size();
      }
    }
    if (best == n) break;
    Entry& e = entry_at(best);
    double dropped_cost = e.frontier.back().cost;
    e.frontier.pop_back();
    e.frontier_complete = false;
    // The dropped point's budget band joins the unexplored tail, and
    // by budget monotonicity its cost lower-bounds the whole new tail
    // (any certificate-tightened bound applied only below the dropped
    // point and no longer covers the exposed band).
    e.tail_bound = dropped_cost;
    ++points_dropped;
  }

  // Phase 2: frontiers are all minimal and the cache is still over
  // budget — invalidate whole entries, largest first, freeing their
  // vectors. Their next solve is cold (signature mismatch), which
  // costs work, never correctness.
  while (ApproxBytes() > max_bytes) {
    size_t best = n;
    size_t best_bytes = sizeof(Entry);
    for (size_t i = 0; i < n; ++i) {
      size_t b = SolverEntryBytes(entry_at(i));
      if (b > best_bytes) {
        best = i;
        best_bytes = b;
      }
    }
    if (best == n) break;  // floor: nothing holds freeable data
    entry_at(best) = Entry{};
    ++entries_invalidated;
  }
}

CoPhyAdvisor::CoPhyAdvisor(DbmsBackend& backend, CoPhyOptions options)
    : backend_(&backend),
      params_(backend.cost_params()),
      options_(options),
      inum_(backend, options.inum),
      optimizer_(backend.catalog(), backend.all_stats(), params_) {}

CoPhyAdvisor::CoPhyAdvisor(std::shared_ptr<DbmsBackend> owned,
                           CoPhyOptions options)
    : owned_backend_(std::move(owned)),
      backend_(owned_backend_.get()),
      params_(backend_->cost_params()),
      options_(options),
      inum_(*backend_, options.inum),
      optimizer_(backend_->catalog(), backend_->all_stats(), params_) {}

std::vector<CoPhyAtom> CoPhyAdvisor::BuildAtoms(
    const BoundQuery& query, const std::vector<CandidateIndex>& candidates) {
  inum_.Prepare(query);
  const auto* plans = inum_.CachedPlansFor(query);
  if (plans == nullptr || plans->empty()) return {};

  // Design containing every candidate: one Paths() call per slot yields
  // per-candidate leaf costs.
  PhysicalDesign all;
  for (const CandidateIndex& c : candidates) all.AddIndex(c.index);
  PlannerContext ctx = optimizer_.MakeContext(query, all);
  CatalogPathProvider provider(ctx);

  // Candidate lookup by structural key — one map build instead of a
  // per-path linear scan over the candidate vector.
  std::unordered_map<std::string, int> id_by_key;
  id_by_key.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    id_by_key.emplace(candidates[i].index.Key(), static_cast<int>(i));
  }
  auto candidate_id = [&](const IndexDef& idx) {
    auto it = id_by_key.find(idx.Key());
    if (it == id_by_key.end()) return -1;
    // Key() is a structural rendering, so a hit must be the same index;
    // a mismatch means the key scheme lost information.
    DBD_DCHECK(candidates[static_cast<size_t>(it->second)].index == idx &&
               "IndexDef::Key collision in the candidate map");
    return it->second;
  };

  // One access option: leaf cost + the candidate it needs (-1 = none).
  struct Option {
    double cost = 0.0;
    int candidate = -1;
  };

  int n = query.num_slots();
  // Per-slot paths, annotated with candidate ids.
  struct AnnotatedPath {
    double cost;
    int candidate;
    std::vector<BoundColumn> order;
  };
  std::vector<std::vector<AnnotatedPath>> slot_paths(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    for (const AccessPath& p : provider.Paths(s)) {
      AnnotatedPath ap;
      ap.cost = p.node->cost.total;
      ap.candidate =
          p.node->index.has_value() ? candidate_id(*p.node->index) : -1;
      ap.order = p.order;
      // Paths over non-candidate indexes (already-materialized ones)
      // keep candidate = -1: they are free to use.
      slot_paths[static_cast<size_t>(s)].push_back(std::move(ap));
    }
  }

  using Kind = InumCostModel::SlotSignature::Kind;
  std::map<std::string, CoPhyAtom> dedup;  // used-set key -> best atom

  for (const InumCostModel::CachedPlan& plan : *plans) {
    // Build the option list per slot.
    std::vector<std::vector<Option>> options(static_cast<size_t>(n));
    bool feasible = true;
    for (int s = 0; s < n && feasible; ++s) {
      const auto& sig = plan.slots[static_cast<size_t>(s)];
      std::vector<Option>& opts = options[static_cast<size_t>(s)];
      if (sig.kind == Kind::kParamLookup) {
        // Price each candidate lookup through the matching INLJ term.
        double outer_rows = 0.0;
        for (const auto& term : plan.inlj_terms) {
          if (term.slot == s) outer_rows = term.outer_rows;
        }
        for (size_t c = 0; c < candidates.size(); ++c) {
          if (candidates[c].index.table != query.tables[s]) continue;
          auto lk = CostIndexParamLookup(ctx, s, sig.lookup_col,
                                         candidates[c].index);
          if (lk.has_value()) {
            opts.push_back(Option{outer_rows * lk->per_lookup.total,
                                  static_cast<int>(c)});
          }
        }
      } else {
        // Best path per candidate id consistent with the signature.
        std::map<int, double> best;
        for (const AnnotatedPath& p : slot_paths[static_cast<size_t>(s)]) {
          if (sig.kind == Kind::kOrdered &&
              !OrderSatisfies(p.order, sig.order)) {
            continue;
          }
          auto [it, inserted] = best.try_emplace(p.candidate, p.cost);
          if (!inserted) it->second = std::min(it->second, p.cost);
        }
        for (auto [cand, cost] : best) opts.push_back(Option{cost, cand});
      }
      if (opts.empty()) {
        feasible = false;
        break;
      }
      // Keep the cheapest few, but never drop the no-index option.
      std::sort(opts.begin(), opts.end(),
                [](const Option& a, const Option& b) {
                  return a.cost < b.cost;
                });
      if (static_cast<int>(opts.size()) > options_.max_leaf_options_per_slot) {
        bool has_free = false;
        for (int k = 0; k < options_.max_leaf_options_per_slot; ++k) {
          has_free |= opts[static_cast<size_t>(k)].candidate < 0;
        }
        Option free_opt;
        bool found_free = false;
        if (!has_free) {
          for (const Option& o : opts) {
            if (o.candidate < 0) {
              free_opt = o;
              found_free = true;
              break;
            }
          }
        }
        opts.resize(static_cast<size_t>(options_.max_leaf_options_per_slot));
        if (!has_free && found_free) opts.back() = free_opt;
      }
    }
    if (!feasible) continue;

    // Cross product of slot options.
    std::vector<size_t> idx(static_cast<size_t>(n), 0);
    while (true) {
      CoPhyAtom atom;
      atom.cost = plan.internal_cost;
      for (int s = 0; s < n; ++s) {
        const Option& o =
            options[static_cast<size_t>(s)][idx[static_cast<size_t>(s)]];
        atom.cost += o.cost;
        if (o.candidate >= 0) atom.used.push_back(o.candidate);
      }
      std::sort(atom.used.begin(), atom.used.end());
      atom.used.erase(std::unique(atom.used.begin(), atom.used.end()),
                      atom.used.end());
      std::string key;
      for (int u : atom.used) key += StrFormat("%d,", u);
      auto [it, inserted] = dedup.try_emplace(key, atom);
      if (!inserted && atom.cost < it->second.cost) it->second = atom;

      int pos = 0;
      while (pos < n) {
        if (++idx[static_cast<size_t>(pos)] <
            options[static_cast<size_t>(pos)].size()) {
          break;
        }
        idx[static_cast<size_t>(pos)] = 0;
        ++pos;
      }
      if (pos == n) break;
    }
  }

  std::vector<CoPhyAtom> atoms;
  atoms.reserve(dedup.size());
  for (auto& [k, atom] : dedup) atoms.push_back(std::move(atom));
  std::sort(atoms.begin(), atoms.end(),
            [](const CoPhyAtom& a, const CoPhyAtom& b) {
              return a.cost < b.cost;
            });
  if (static_cast<int>(atoms.size()) > options_.max_atoms_per_query) {
    // Truncate but preserve the index-free atom (feasibility anchor).
    CoPhyAtom free_atom;
    bool found = false;
    for (const CoPhyAtom& a : atoms) {
      if (a.used.empty()) {
        free_atom = a;
        found = true;
        break;
      }
    }
    atoms.resize(static_cast<size_t>(options_.max_atoms_per_query));
    if (found) {
      bool present = false;
      for (const CoPhyAtom& a : atoms) present |= a.used.empty();
      if (!present) atoms.back() = free_atom;
    }
  }
  return atoms;
}

IndexRecommendation CoPhyAdvisor::Recommend(const Workload& workload) {
  return RecommendWithCandidates(
      workload, GenerateCandidates(*backend_, workload, options_.candidates));
}

IndexRecommendation CoPhyAdvisor::RecommendWithCandidates(
    const Workload& workload,
    const std::vector<CandidateIndex>& candidates) {
  CoPhyPrepared prepared = Prepare(workload, candidates);
  Result<IndexRecommendation> rec = SolvePrepared(prepared, {});
  // Unconstrained solves cannot fail validation; keep the legacy
  // non-Status signature for existing callers.
  return rec.ok() ? std::move(rec).value() : IndexRecommendation{};
}

Result<IndexRecommendation> CoPhyAdvisor::TryRecommend(
    const Workload& workload, const DesignConstraints& constraints) {
  Status s = constraints.Validate(backend_->catalog());
  if (!s.ok()) return s;
  std::vector<CandidateIndex> candidates =
      GenerateCandidates(*backend_, workload, options_.candidates);
  MergePinnedCandidates(*backend_, constraints, &candidates);
  return SolvePrepared(Prepare(workload, std::move(candidates)), constraints);
}

Result<IndexRecommendation> CoPhyAdvisor::TryRecommendWithCandidates(
    const Workload& workload, const std::vector<CandidateIndex>& candidates,
    const DesignConstraints& constraints) {
  Status s = constraints.Validate(backend_->catalog());
  if (!s.ok()) return s;
  std::vector<CandidateIndex> merged = candidates;
  MergePinnedCandidates(*backend_, constraints, &merged);
  return SolvePrepared(Prepare(workload, std::move(merged)), constraints);
}

CoPhyPrepared CoPhyAdvisor::Prepare(const Workload& workload,
                                    std::vector<CandidateIndex> candidates) {
  CoPhyPrepared prep;
  prep.candidates = std::move(candidates);
  prep.universe_fingerprint = CandidateUniverseFingerprint(prep.candidates);

  // Atom rows per query: built once per structurally distinct query
  // (duplicates share the row by pointer — identical queries expand to
  // identical atom sets). With an atom source attached, rows another
  // session already built for this (schema, query, universe) are
  // adopted as-is and skip their INUM populate entirely.
  StructuralDedup dedup = DedupByStructure(std::span<const BoundQuery>(
      workload.queries.data(), workload.queries.size()));
  const std::vector<size_t>& distinct = dedup.distinct;

  std::vector<std::shared_ptr<const CoPhyAtomRow>> distinct_rows(
      distinct.size());
  std::vector<size_t> misses;  // indexes into `distinct` still to build
  if (atom_source_ != nullptr) {
    for (size_t u = 0; u < distinct.size(); ++u) {
      distinct_rows[u] = atom_source_->Lookup(
          workload.queries[distinct[u]].ToSql(backend_->catalog()),
          prep.universe_fingerprint);
      if (distinct_rows[u] == nullptr) misses.push_back(u);
    }
  } else {
    misses.resize(distinct.size());
    for (size_t u = 0; u < distinct.size(); ++u) misses[u] = u;
  }

  if (!misses.empty()) {
    // INUM caches for the missed queries are populated up front so the
    // parallel BuildAtoms calls only read them.
    Workload to_build;
    for (size_t u : misses) to_build.Add(workload.queries[distinct[u]]);
    inum_.PrepareWorkload(to_build);

    std::vector<std::shared_ptr<CoPhyAtomRow>> built(misses.size());
    int threads = ThreadPool::Resolve(params_.num_threads);
    ThreadPool::Shared().ParallelFor(misses.size(), threads, [&](size_t m) {
      auto row = std::make_shared<CoPhyAtomRow>();
      row->atoms =
          BuildAtoms(workload.queries[distinct[misses[m]]], prep.candidates);
      built[m] = std::move(row);
    });
    for (size_t m = 0; m < misses.size(); ++m) {
      const BoundQuery& q = workload.queries[distinct[misses[m]]];
      built[m]->base_cost = inum_.Cost(q, PhysicalDesign{});
      std::shared_ptr<const CoPhyAtomRow> row = std::move(built[m]);
      if (atom_source_ != nullptr) {
        // Publish for other sessions; adopt the canonical entry so a
        // concurrent builder of the same row and this session end up
        // sharing one object.
        row = atom_source_->Publish(q.ToSql(backend_->catalog()),
                                    prep.universe_fingerprint, std::move(row));
      }
      distinct_rows[misses[m]] = std::move(row);
    }
  }

  prep.rows.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    prep.rows.push_back(distinct_rows[dedup.owner[i]]);
    prep.num_atoms += prep.rows.back()->atoms.size();
    prep.weights.push_back(workload.WeightOf(i));
    prep.base_cost += prep.weights.back() * prep.rows.back()->base_cost;
  }
  prep.RefreshClusters();
  return prep;
}

Result<CoPhyPrepared> CoPhyAdvisor::TryPrepare(
    const Workload& workload, std::vector<CandidateIndex> candidates) {
  try {
    return Prepare(workload, std::move(candidates));
  } catch (const StatusException& e) {
    return e.status();
  }
}

Result<IndexRecommendation> CoPhyAdvisor::SolvePrepared(
    const CoPhyPrepared& prepared, const DesignConstraints& constraints,
    CoPhySolverCache* cache) const {
  Status s = constraints.Validate(backend_->catalog());
  if (!s.ok()) return s;

  const std::vector<CandidateIndex>& candidates = prepared.candidates;
  auto atoms = [&prepared](size_t q) -> const std::vector<CoPhyAtom>& {
    return prepared.rows[q]->atoms;
  };
  size_t nq = prepared.rows.size();
  int ny = static_cast<int>(candidates.size());
  double budget = constraints.EffectiveBudget(options_.storage_budget_pages);

  IndexRecommendation rec;
  rec.num_candidates = candidates.size();
  rec.num_atoms = prepared.num_atoms;
  rec.base_cost = prepared.base_cost;
  rec.num_clusters = prepared.clusters.num_clusters();

  // --- Resolve constraints against the candidate universe ---
  // Pins must be in the universe (callers merge them via
  // MergePinnedCandidates before Prepare); a pin outside it means the
  // prepared state is stale.
  std::unordered_map<std::string, int> id_by_key;
  id_by_key.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    id_by_key.emplace(candidates[i].index.Key(), static_cast<int>(i));
  }
  std::vector<int> pin_ids;
  for (const IndexDef& pin : constraints.pinned_indexes) {
    auto it = id_by_key.find(pin.Key());
    if (it == id_by_key.end()) {
      return Status::InvalidArgument(
          "pinned index " + pin.DisplayName(backend_->catalog()) +
          " is not in the prepared candidate universe; re-prepare with the "
          "pin merged into the candidates");
    }
    pin_ids.push_back(it->second);
  }
  // Admit pins smallest-first under the budget; the rest are reported
  // as infeasible instead of silently failing the whole solve.
  std::sort(pin_ids.begin(), pin_ids.end(), [&](int a, int b) {
    double sa = candidates[static_cast<size_t>(a)].size_pages;
    double sb = candidates[static_cast<size_t>(b)].size_pages;
    if (sa != sb) return sa < sb;
    return a < b;
  });
  std::set<int> admitted_pins;
  double pin_pages = 0.0;
  for (int i : pin_ids) {
    double sz = candidates[static_cast<size_t>(i)].size_pages;
    if (pin_pages + sz <= budget) {
      admitted_pins.insert(i);
      pin_pages += sz;
    } else {
      rec.infeasible_pins.push_back(candidates[static_cast<size_t>(i)].index);
      DBD_LOG_WARN(StrFormat(
          "CoPhy: pinned index %s (%.0f pages) does not fit the remaining "
          "budget (%.0f of %.0f pages used)",
          candidates[static_cast<size_t>(i)]
              .index.DisplayName(backend_->catalog())
              .c_str(),
          sz, pin_pages, budget));
    }
  }
  std::vector<bool> vetoed(candidates.size(), false);
  for (size_t i = 0; i < candidates.size(); ++i) {
    vetoed[i] = constraints.IsVetoed(candidates[i].index);
  }

  // --- BIP construction ---
  // y variables carry a tiny size-proportional penalty: among equal-cost
  // configurations the solver then uniquely prefers the one with the
  // smallest storage footprint. This deterministic tie-break is what
  // makes an incremental Refine provably bit-identical to a
  // from-scratch solve — a unique optimum of the relaxed problem that
  // stays feasible under tightened constraints is also the unique
  // optimum of the tightened problem. The scale sits well above the
  // simplex tolerances (1e-9) so one page discriminates, and well below
  // any meaningful cost difference (a whole 1000-page configuration
  // adds 0.01 cost units). Uniqueness is also what makes the cluster
  // decomposition exact: the stitched per-cluster optima, when globally
  // feasible, attain the monolithic optimum and therefore ARE it.
  constexpr double kTieBreakPerPage = 1e-5;

  // Objective of a y-set over a subset of query rows: the tie-break on
  // the chosen indexes plus each row's cheapest compatible atom. With
  // all rows this mirrors the monolithic MIP objective; with a cluster's
  // rows and a chosen set inside the cluster it mirrors the cluster
  // subproblem's objective — both paths price incumbents with it.
  auto complete_rows = [&](const std::set<int>& chosen_set,
                           const std::vector<int>& row_subset) {
    double obj = 0.0;
    for (int i : chosen_set) {
      obj += kTieBreakPerPage * candidates[static_cast<size_t>(i)].size_pages;
    }
    for (int q : row_subset) {
      double best = std::numeric_limits<double>::infinity();
      for (const CoPhyAtom& a : atoms(static_cast<size_t>(q))) {
        bool ok = true;
        for (int i : a.used) ok &= chosen_set.count(i) > 0;
        if (ok) best = std::min(best, a.cost);
      }
      obj += prepared.weights[static_cast<size_t>(q)] * best;
    }
    return obj;
  };

  std::set<int> chosen;        // final y set (filled by whichever path runs)
  double solver_lower = 0.0;   // raw solver bound incl. tie-break penalty
  bool solved = false;

  // Signature of a subproblem over candidate subset `ck` and query rows
  // `qk`: everything a constraint edit can change about its BIP (budget,
  // pins/vetoes, relevant caps, row weights). Matching signature +
  // proven optimum in the cache => the subproblem is clean and its
  // optimum is reused. Used per cluster by the decomposed path and over
  // the full candidate/row sets by the monolithic path.
  auto subproblem_signature = [&](const std::vector<int>& ck,
                                  const std::vector<int>& qk) {
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xff;
        h *= 1099511628211ull;
      }
    };
    mix(std::bit_cast<uint64_t>(budget));
    for (int i : ck) {
      uint64_t bits = static_cast<uint64_t>(i) << 2;
      if (admitted_pins.count(i) > 0) bits |= 1;
      if (vetoed[static_cast<size_t>(i)]) bits |= 2;
      mix(bits);
    }
    for (const auto& [table, cap] : constraints.max_indexes_per_table) {
      bool relevant = false;
      for (int i : ck) {
        relevant |= candidates[static_cast<size_t>(i)].index.table == table;
      }
      if (relevant) {
        mix(static_cast<uint64_t>(table));
        mix(static_cast<uint64_t>(cap));
      }
    }
    mix(qk.size());
    for (int q : qk) {
      mix(static_cast<uint64_t>(q));
      mix(std::bit_cast<uint64_t>(prepared.weights[static_cast<size_t>(q)]));
    }
    return h;
  };

  // ---------------- Decomposed path ----------------
  // Each cluster BIP is the monolithic BIP restricted to the cluster's
  // candidates and query rows — coupled to the rest only through the
  // budget row and the per-table cap rows. The budget coupling is
  // arbitrated exactly: every active cluster exposes a budget/cost
  // FRONTIER (its proven optimum as a function of allocated pages,
  // enumerated lazily top-down: solve at the full budget, then re-solve
  // just below the footprint the optimum actually used, and so on), and
  // a deterministic allocation DP picks one frontier point per cluster
  // minimizing total cost under the global budget. Unexplored frontier
  // tails enter the DP as lower-bound sentinels (footprint = the
  // cluster's pin floor, cost = the last enumerated point's cost — a
  // true bound, since shrinking the budget never cheapens an optimum);
  // when the best real combination matches the sentinel-augmented bound,
  // it is the exact optimal split, and by the tie-break uniqueness the
  // stitched union is the monolithic optimum. Otherwise the sentinel
  // clusters deepen their frontiers and the DP repeats.
  //
  // Caps are kept at full rhs per cluster (a relaxation): if the winning
  // combination violates a cap across clusters — or a frontier/DP size
  // guard trips, or a cluster solve fails to prove its point — the code
  // provably falls back to the monolithic solve below.
  if (options_.solve_mode == CoPhySolveMode::kAuto &&
      prepared.clusters.num_nodes() == ny &&
      prepared.row_cluster.size() == nq) {
    solved = [&]() {
      const ClusterPartition& part = prepared.clusters;
      int num_k = part.num_clusters();
      // Must exceed the simplex feasibility tolerance (1e-7): the next
      // frontier budget must genuinely exclude the previous footprint.
      constexpr double kAllocEps = 1e-6;

      // Rows per cluster; rows using no candidate contribute a constant.
      std::vector<std::vector<int>> cluster_rows(
          static_cast<size_t>(num_k));
      double const_cost = 0.0;
      for (size_t q = 0; q < nq; ++q) {
        if (atoms(q).empty()) return false;  // degenerate: let mono handle
        int k = prepared.row_cluster[q];
        if (k < 0) {
          double best = std::numeric_limits<double>::infinity();
          for (const CoPhyAtom& a : atoms(q)) best = std::min(best, a.cost);
          const_cost += prepared.weights[q] * best;
        } else {
          cluster_rows[static_cast<size_t>(k)].push_back(static_cast<int>(q));
        }
      }

      if (cache != nullptr &&
          (cache->universe_fingerprint != prepared.universe_fingerprint ||
           cache->num_rows != nq ||
           cache->entries.size() != static_cast<size_t>(num_k))) {
        cache->Clear();
        cache->universe_fingerprint = prepared.universe_fingerprint;
        cache->num_rows = nq;
        cache->entries.assign(static_cast<size_t>(num_k),
                              CoPhySolverCache::Entry{});
      }
      // Entries live in the session cache when present, else locally for
      // the duration of this one solve (no reuse, same algorithm).
      std::vector<CoPhySolverCache::Entry> local_entries;
      if (cache == nullptr) {
        local_entries.assign(static_cast<size_t>(num_k),
                             CoPhySolverCache::Entry{});
      }
      auto entry_of = [&](int k) -> CoPhySolverCache::Entry& {
        return cache != nullptr ? cache->entries[static_cast<size_t>(k)]
                                : local_entries[static_cast<size_t>(k)];
      };

      // Split clusters into active (some query row can use them) and
      // inactive. Inactive clusters keep exactly their pins — any other
      // y adds pure tie-break cost — and those pins still consume budget
      // pages, so they are charged against the DP's budget up front.
      double lb_sum = const_cost;
      double outside_pages = 0.0;
      std::vector<int> active;
      std::vector<double> floor_of(static_cast<size_t>(num_k), 0.0);
      for (int k = 0; k < num_k; ++k) {
        const std::vector<int>& ck = part.clusters[static_cast<size_t>(k)];
        double pin_sz = 0.0;
        for (int i : ck) {
          if (admitted_pins.count(i) > 0) {
            pin_sz += candidates[static_cast<size_t>(i)].size_pages;
          }
        }
        if (cluster_rows[static_cast<size_t>(k)].empty()) {
          lb_sum += kTieBreakPerPage * pin_sz;
          outside_pages += pin_sz;
        } else {
          active.push_back(k);
          floor_of[static_cast<size_t>(k)] = pin_sz;
        }
      }
      // Pages the allocation DP may distribute across active clusters.
      double dp_budget = budget - outside_pages;  // inf stays inf

      // Frontier deepening cut per cluster: the next budget must exclude
      // the previous optimum BEYOND the simplex/integrality tolerances,
      // or the LP shaves every y to 1-1e-6 and returns the same set
      // "fitting" the reduced budget. Total shave capacity is
      // sum(sizes) * 1e-6; a 10x margin stays far below any real
      // footprint step (index sizes are tens-to-hundreds of pages).
      std::vector<double> cut_of(static_cast<size_t>(num_k), kAllocEps);
      for (int k : active) {
        double sum = 0.0;
        for (int i : part.clusters[static_cast<size_t>(k)]) {
          sum += candidates[static_cast<size_t>(i)].size_pages;
        }
        cut_of[static_cast<size_t>(k)] = std::max(kAllocEps, sum * 1e-5);
      }

      std::vector<int> local_of(static_cast<size_t>(ny), -1);
      std::vector<char> ran(static_cast<size_t>(num_k), 0);

      // Builds cluster k's sub-BIP under an allocation of `budget_rhs`
      // pages: the monolithic BIP restricted to the cluster's candidates
      // and rows, with the budget row at the allocation (omitted when
      // infinite) and cap rows at full rhs. Fills `local_of` for the
      // cluster's candidates; the caller resets those slots after use.
      auto build_sub = [&](int k, double budget_rhs) -> MipProblem {
        const std::vector<int>& ck = part.clusters[static_cast<size_t>(k)];
        const std::vector<int>& qk = cluster_rows[static_cast<size_t>(k)];
        int nk = static_cast<int>(ck.size());
        for (int j = 0; j < nk; ++j) {
          local_of[static_cast<size_t>(ck[static_cast<size_t>(j)])] = j;
        }
        MipProblem sub;
        for (int j = 0; j < nk; ++j) {
          sub.lp.AddVariable(
              kTieBreakPerPage *
              candidates[static_cast<size_t>(ck[static_cast<size_t>(j)])]
                  .size_pages);
          sub.binary_vars.push_back(j);
        }
        for (int j = 0; j < nk; ++j) {
          if (admitted_pins.count(ck[static_cast<size_t>(j)]) > 0) {
            sub.fixed_vars.emplace_back(j, 1);
          }
        }
        for (int j = 0; j < nk; ++j) {
          if (vetoed[static_cast<size_t>(ck[static_cast<size_t>(j)])]) {
            sub.fixed_vars.emplace_back(j, 0);
          }
        }
        std::vector<std::vector<int>> sxvar(qk.size());
        for (size_t qi = 0; qi < qk.size(); ++qi) {
          size_t q = static_cast<size_t>(qk[qi]);
          double w = prepared.weights[q];
          for (const CoPhyAtom& a : atoms(q)) {
            sxvar[qi].push_back(sub.lp.AddVariable(w * a.cost));
          }
        }
        for (size_t qi = 0; qi < qk.size(); ++qi) {
          LpConstraint one;
          for (int v : sxvar[qi]) one.terms.emplace_back(v, 1.0);
          one.rel = LpRelation::kEq;
          one.rhs = 1.0;
          sub.lp.AddConstraint(std::move(one));
        }
        for (size_t qi = 0; qi < qk.size(); ++qi) {
          size_t q = static_cast<size_t>(qk[qi]);
          std::map<int, std::vector<int>> by_index;
          for (size_t a = 0; a < atoms(q).size(); ++a) {
            for (int i : atoms(q)[a].used) {
              by_index[i].push_back(sxvar[qi][a]);
            }
          }
          for (auto& [i, xs] : by_index) {
            LpConstraint link;
            for (int v : xs) link.terms.emplace_back(v, 1.0);
            link.terms.emplace_back(local_of[static_cast<size_t>(i)], -1.0);
            link.rel = LpRelation::kLe;
            link.rhs = 0.0;
            sub.lp.AddConstraint(std::move(link));
          }
        }
        if (std::isfinite(budget_rhs)) {
          LpConstraint budget_row;  // this cluster's allocation
          for (int j = 0; j < nk; ++j) {
            budget_row.terms.emplace_back(
                j, candidates[static_cast<size_t>(ck[static_cast<size_t>(j)])]
                       .size_pages);
          }
          budget_row.rel = LpRelation::kLe;
          budget_row.rhs = budget_rhs;
          sub.lp.AddConstraint(std::move(budget_row));
        }
        for (const auto& [table, cap] : constraints.max_indexes_per_table) {
          LpConstraint cap_row;  // full cap: relaxation (see above)
          for (int j = 0; j < nk; ++j) {
            if (candidates[static_cast<size_t>(ck[static_cast<size_t>(j)])]
                    .index.table == table) {
              cap_row.terms.emplace_back(j, 1.0);
            }
          }
          if (cap_row.terms.empty()) continue;
          cap_row.rel = LpRelation::kLe;
          cap_row.rhs = static_cast<double>(cap);
          sub.lp.AddConstraint(std::move(cap_row));
        }
        return sub;
      };

      // Solves one frontier point of cluster k: its BIP under an
      // allocation of `budget_rhs` pages, warm-started from the
      // cluster's last root basis (plus, for the top point, the previous
      // optimum as the initial incumbent). A finite `stop_at` lets the
      // branch-and-bound stop as soon as its global lower bound reaches
      // that value: the caller then gets a tail-bound CERTIFICATE (the
      // sentinel can no longer win) at a fraction of a full proof's
      // cost, and no point is appended. Returns +1 on a new proven
      // point, 0 when the tail is certified or provably empty, -1 on
      // failure (monolithic fallback).
      auto solve_point = [&](int k, double budget_rhs, double stop_at) -> int {
        const std::vector<int>& ck = part.clusters[static_cast<size_t>(k)];
        const std::vector<int>& qk = cluster_rows[static_cast<size_t>(k)];
        CoPhySolverCache::Entry& e = entry_of(k);
        int nk = static_cast<int>(ck.size());
        MipProblem sub = build_sub(k, budget_rhs);

        auto sub_heuristic = [&](const std::vector<double>& lp,
                                 std::vector<double>* out, double* obj) {
          std::set<int> ch;
          double used_pages = 0.0;
          std::map<TableId, int> per_table;
          for (int i : ck) {
            if (admitted_pins.count(i) > 0) {
              ch.insert(i);
              used_pages += candidates[static_cast<size_t>(i)].size_pages;
              per_table[candidates[static_cast<size_t>(i)].index.table]++;
            }
          }
          std::vector<std::pair<double, int>> ranked;
          for (int j = 0; j < nk; ++j) {
            int i = ck[static_cast<size_t>(j)];
            if (vetoed[static_cast<size_t>(i)] || ch.count(i) > 0) continue;
            if (lp[static_cast<size_t>(j)] > 1e-6) {
              ranked.emplace_back(-lp[static_cast<size_t>(j)], i);
            }
          }
          std::sort(ranked.begin(), ranked.end());
          for (auto& [neg, i] : ranked) {
            const CandidateIndex& c = candidates[static_cast<size_t>(i)];
            if (used_pages + c.size_pages > budget_rhs) continue;
            if (per_table[c.index.table] + 1 >
                constraints.TableCapOrUnlimited(c.index.table)) {
              continue;
            }
            ch.insert(i);
            used_pages += c.size_pages;
            per_table[c.index.table]++;
          }
          *obj = complete_rows(ch, qk);
          if (!std::isfinite(*obj)) return false;
          out->assign(static_cast<size_t>(sub.lp.num_vars), 0.0);
          for (int i : ch) {
            (*out)[static_cast<size_t>(local_of[static_cast<size_t>(i)])] = 1.0;
          }
          return true;
        };

        // Warm start: the cluster's last root basis always (the row
        // space is identical across allocations and constraint edits);
        // the previous optimum as the initial incumbent only for the top
        // point (deeper allocations exclude it by construction).
        BnbWarmStart warm;
        bool have_warm = false;
        if (!e.root_basis.empty()) {
          warm.basis = e.root_basis;
          have_warm = true;
        }
        if (e.valid && e.frontier.empty()) {
          std::set<int> ch;
          for (int i : e.chosen) {
            if (!vetoed[static_cast<size_t>(i)]) ch.insert(i);
          }
          for (int i : ck) {
            if (admitted_pins.count(i) > 0) ch.insert(i);
          }
          double used_pages = 0.0;
          std::map<TableId, int> per_table;
          bool feasible = true;
          for (int i : ch) {
            used_pages += candidates[static_cast<size_t>(i)].size_pages;
            TableId t = candidates[static_cast<size_t>(i)].index.table;
            feasible &= ++per_table[t] <= constraints.TableCapOrUnlimited(t);
          }
          feasible &= used_pages <= budget_rhs;
          if (feasible) {
            double obj = complete_rows(ch, qk);
            if (std::isfinite(obj)) {
              warm.values.assign(static_cast<size_t>(sub.lp.num_vars), 0.0);
              for (int i : ch) {
                warm.values[static_cast<size_t>(
                    local_of[static_cast<size_t>(i)])] = 1.0;
              }
              warm.objective = obj;
              have_warm = true;
            }
          }
        }

        BnbOptions bopt = options_.bnb;
        bopt.stop_at_bound = stop_at;
        BnbResult bnb = SolveBinaryMip(sub, bopt, sub_heuristic,
                                       have_warm ? &warm : nullptr);
        if (ran[static_cast<size_t>(k)] == 0) {
          ran[static_cast<size_t>(k)] = 1;
          ++rec.clusters_solved;
        }
        rec.bnb_nodes += bnb.nodes_explored;
        rec.lp_pivots += bnb.lp_pivots;
        rec.solve_time_sec += bnb.solve_time_sec;
        rec.num_variables += static_cast<size_t>(sub.lp.num_vars);
        rec.num_constraints += sub.lp.constraints.size();
        for (int j = 0; j < nk; ++j) {
          local_of[static_cast<size_t>(ck[static_cast<size_t>(j)])] = -1;
        }
        if (!bnb.feasible && !std::isfinite(bnb.lower_bound)) {
          if (e.frontier.empty()) {
            e.valid = false;  // even the full allocation failed: fallback
            return -1;
          }
          e.frontier_complete = true;  // nothing fits below the last point
          return 0;
        }
        if (!bnb.proven_optimal) {
          if (bnb.lower_bound >= stop_at) {
            // Early stop: every configuration under this allocation
            // costs at least `lower_bound`, which is all the allocation
            // DP needs to retire the sentinel. No exact point to record.
            e.tail_bound = std::max(e.tail_bound, bnb.lower_bound);
            return 0;
          }
          e.valid = false;
          e.frontier.clear();
          e.frontier_complete = false;
          e.tail_bound = 0.0;
          return -1;  // let the monolithic path (with its own node
                      // budget over the whole tree) arbitrate
        }
        CoPhySolverCache::Entry::ParetoPoint p;
        p.cost = bnb.objective;
        for (int j = 0; j < nk; ++j) {
          int i = ck[static_cast<size_t>(j)];
          if (admitted_pins.count(i) > 0 ||
              bnb.values[static_cast<size_t>(j)] > 0.5) {
            p.chosen.push_back(i);
            p.footprint += candidates[static_cast<size_t>(i)].size_pages;
          }
        }
        e.root_basis = bnb.root_basis;
        if (e.frontier.empty()) {
          e.valid = true;
          e.chosen = p.chosen;
          e.objective = bnb.objective;
          e.lower_bound = bnb.lower_bound;
        } else if (p.footprint >
                   e.frontier.back().footprint - kAllocEps * 0.5) {
          // No strict footprint progress (numerically stuck): stop here
          // rather than loop; the tail keeps its sentinel bound.
          e.frontier_complete = true;
          return 0;
        }
        if (p.footprint <= floor_of[static_cast<size_t>(k)] + kAllocEps) {
          e.frontier_complete = true;  // pins-only: nothing below
        }
        // A new point is itself the strongest monotonicity bound for
        // the tail below it (and never contradicts an earlier
        // certificate, which bounded a superset of that tail).
        e.tail_bound = std::max(e.tail_bound, p.cost);
        e.frontier.push_back(std::move(p));
        return 1;
      };

      // Freshness: a matching signature keeps the cached frontier
      // verbatim; an edit keeps only the warm material (basis + previous
      // optimum) and re-enumerates. Every active cluster needs at least
      // its top point before the DP can run.
      for (int k : active) {
        CoPhySolverCache::Entry& e = entry_of(k);
        uint64_t sig = subproblem_signature(
            part.clusters[static_cast<size_t>(k)],
            cluster_rows[static_cast<size_t>(k)]);
        if (e.signature != sig || (!e.valid && !e.frontier.empty())) {
          e.signature = sig;
          e.frontier.clear();
          e.frontier_complete = false;
          e.tail_bound = 0.0;
        }
        if (e.frontier.empty() &&
            solve_point(k, dp_budget,
                        std::numeric_limits<double>::infinity()) != 1) {
          return false;
        }
      }

      // Allocation DP over frontier points. States are Pareto pairs
      // (footprint, cost) with per-cluster picks; `-1` picks a cluster's
      // unexplored tail (sentinel). Two passes per round: best REAL
      // combination (achievable) vs best sentinel-augmented combination
      // (lower bound); equality certifies the split as exactly optimal.
      struct AllocState {
        double f = 0.0;
        double c = 0.0;
        std::vector<int> pick;
      };
      constexpr size_t kMaxDpStates = 65536;
      constexpr size_t kMaxFrontier = 64;
      auto run_dp = [&](bool with_sentinels, AllocState* out) {
        std::vector<AllocState> states(1);
        for (int k : active) {
          CoPhySolverCache::Entry& e = entry_of(k);
          std::vector<AllocState> next;
          for (const AllocState& st : states) {
            for (size_t pi = 0; pi < e.frontier.size(); ++pi) {
              const auto& p = e.frontier[pi];
              double f = st.f + p.footprint;
              if (f > dp_budget + kAllocEps) continue;
              AllocState n = st;
              n.f = f;
              n.c += p.cost;
              n.pick.push_back(static_cast<int>(pi));
              next.push_back(std::move(n));
            }
            if (with_sentinels && !e.frontier_complete) {
              double f = st.f + floor_of[static_cast<size_t>(k)];
              if (f <= dp_budget + kAllocEps) {
                AllocState n = st;
                n.f = f;
                n.c += e.tail_bound;
                n.pick.push_back(-1);
                next.push_back(std::move(n));
              }
            }
          }
          if (next.empty()) return false;
          std::sort(next.begin(), next.end(),
                    [](const AllocState& a, const AllocState& b) {
                      if (a.f != b.f) return a.f < b.f;
                      if (a.c != b.c) return a.c < b.c;
                      return a.pick < b.pick;
                    });
          states.clear();
          double best_c = std::numeric_limits<double>::infinity();
          for (AllocState& st : next) {
            if (st.c < best_c) {
              best_c = st.c;
              states.push_back(std::move(st));
            }
          }
          // Guard on the PRUNED set: only Pareto-optimal (footprint,
          // cost) pairs survive, so this bounds real state growth.
          if (states.size() > kMaxDpStates) return false;
        }
        *out = states.back();  // costs strictly decrease with footprint
        return true;
      };

      for (int round = 0;; ++round) {
        if (round >= 64) return false;
        AllocState real;
        bool have_real = run_dp(/*with_sentinels=*/false, &real);
        AllocState bound;
        if (!run_dp(/*with_sentinels=*/true, &bound)) return false;
        if (have_real &&
            real.c <= bound.c + 1e-9 * std::max(1.0, std::abs(bound.c))) {
          // The achievable split matches the lower bound: exact optimum.
          std::set<int> stitched = admitted_pins;
          for (size_t ai = 0; ai < active.size(); ++ai) {
            const auto& p = entry_of(active[ai])
                                .frontier[static_cast<size_t>(
                                    real.pick[ai])];
            stitched.insert(p.chosen.begin(), p.chosen.end());
          }
          lb_sum += real.c;
          // Caps were relaxed per cluster: the split is only the global
          // optimum when the union honors them too.
          std::map<TableId, int> per_table;
          for (int i : stitched) {
            per_table[candidates[static_cast<size_t>(i)].index.table]++;
          }
          for (const auto& [table, cap] : constraints.max_indexes_per_table) {
            auto it = per_table.find(table);
            if (it != per_table.end() && it->second > cap) return false;
          }
          for (int k : active) {
            if (ran[static_cast<size_t>(k)] == 0) ++rec.clusters_reused;
          }
          chosen = std::move(stitched);
          solver_lower = lb_sum;
          rec.proven_optimal = true;
          return true;
        }
        // The bound lives in an unexplored tail: strengthen every
        // sentinel cluster and re-run. When a real combination exists,
        // the solve only needs to lift this cluster's tail bound past
        // the sentinel's winning margin — a certificate the B&B reaches
        // long before a full proof; without one it must produce exact
        // points until combinations fit the budget at all.
        bool progressed = false;
        double scale = std::max(1.0, std::abs(bound.c));
        for (size_t ai = 0; ai < active.size(); ++ai) {
          if (bound.pick[ai] != -1) continue;
          int k = active[ai];
          CoPhySolverCache::Entry& e = entry_of(k);
          if (e.frontier.size() >= kMaxFrontier) return false;
          double next_rhs = e.frontier.back().footprint -
                            cut_of[static_cast<size_t>(k)];
          double stop_at =
              have_real ? e.tail_bound + (real.c - bound.c) + 1e-7 * scale
                        : std::numeric_limits<double>::infinity();
          if (solve_point(k, next_rhs, stop_at) < 0) return false;
          progressed = true;  // point, certificate, or tail proved empty
        }
        if (!progressed) return false;
      }
    }();
  }

  // ---------------- Monolithic path (mode or fallback) ----------------
  if (!solved) {
    rec.solved_monolithic = true;
    // Self-validate the cache even when the decomposed path did not run
    // (forced monolithic mode, or a stale partition): entries keyed to a
    // different universe or row space must not survive.
    if (cache != nullptr &&
        (cache->universe_fingerprint != prepared.universe_fingerprint ||
         cache->num_rows != nq)) {
      cache->Clear();
      cache->universe_fingerprint = prepared.universe_fingerprint;
      cache->num_rows = nq;
    }
    std::vector<int> all_rows(nq);
    for (size_t q = 0; q < nq; ++q) all_rows[q] = static_cast<int>(q);
    std::vector<int> all_cands(static_cast<size_t>(ny));
    for (int i = 0; i < ny; ++i) all_cands[static_cast<size_t>(i)] = i;
    uint64_t mono_sig = subproblem_signature(all_cands, all_rows);
    CoPhySolverCache::Entry* mono_entry =
        cache != nullptr ? &cache->mono : nullptr;
    if (mono_entry != nullptr && mono_entry->valid &&
        mono_entry->signature == mono_sig) {
      // Unchanged problem: the cached proven optimum IS the answer.
      chosen.insert(mono_entry->chosen.begin(), mono_entry->chosen.end());
      chosen.insert(admitted_pins.begin(), admitted_pins.end());
      solver_lower = mono_entry->lower_bound;
      rec.proven_optimal = true;
    } else {
      MipProblem mip;
      for (int i = 0; i < ny; ++i) {
        mip.lp.AddVariable(kTieBreakPerPage *
                           candidates[static_cast<size_t>(i)].size_pages);
        mip.binary_vars.push_back(i);
      }
      // DBA pins and vetoes are pure variable fixings: the atom matrix
      // and every other row survive a constraint edit untouched.
      for (int i : admitted_pins) mip.fixed_vars.emplace_back(i, 1);
      for (int i = 0; i < ny; ++i) {
        if (vetoed[static_cast<size_t>(i)]) mip.fixed_vars.emplace_back(i, 0);
      }
      // x variables.
      std::vector<std::vector<int>> xvar(nq);
      for (size_t q = 0; q < nq; ++q) {
        double w = prepared.weights[q];
        for (const CoPhyAtom& a : atoms(q)) {
          xvar[q].push_back(mip.lp.AddVariable(w * a.cost));
        }
      }
      // One atom per query.
      for (size_t q = 0; q < nq; ++q) {
        LpConstraint one;
        for (int v : xvar[q]) one.terms.emplace_back(v, 1.0);
        one.rel = LpRelation::kEq;
        one.rhs = 1.0;
        mip.lp.AddConstraint(std::move(one));
      }
      // Aggregated linking: sum_{a of q using i} x <= y_i.
      for (size_t q = 0; q < nq; ++q) {
        std::map<int, std::vector<int>> by_index;
        for (size_t a = 0; a < atoms(q).size(); ++a) {
          for (int i : atoms(q)[a].used) {
            by_index[i].push_back(xvar[q][a]);
          }
        }
        for (auto& [i, xs] : by_index) {
          LpConstraint link;
          for (int v : xs) link.terms.emplace_back(v, 1.0);
          link.terms.emplace_back(i, -1.0);
          link.rel = LpRelation::kLe;
          link.rhs = 0.0;
          mip.lp.AddConstraint(std::move(link));
        }
      }
      // Storage budget.
      if (std::isfinite(budget)) {
        LpConstraint budget_row;
        for (int i = 0; i < ny; ++i) {
          budget_row.terms.emplace_back(
              i, candidates[static_cast<size_t>(i)].size_pages);
        }
        budget_row.rel = LpRelation::kLe;
        budget_row.rhs = budget;
        mip.lp.AddConstraint(std::move(budget_row));
      }
      // Per-table caps: sum_{i on t} y_i <= cap_t.
      for (const auto& [table, cap] : constraints.max_indexes_per_table) {
        LpConstraint cap_row;
        for (int i = 0; i < ny; ++i) {
          if (candidates[static_cast<size_t>(i)].index.table == table) {
            cap_row.terms.emplace_back(i, 1.0);
          }
        }
        if (cap_row.terms.empty()) continue;
        cap_row.rel = LpRelation::kLe;
        cap_row.rhs = static_cast<double>(cap);
        mip.lp.AddConstraint(std::move(cap_row));
      }
      rec.num_variables = static_cast<size_t>(mip.lp.num_vars);
      rec.num_constraints = mip.lp.constraints.size();

      // Primal heuristic: pins first, then round y by LP value under the
      // budget/cap/veto constraints, then pick the cheapest compatible
      // atom per query.
      auto heuristic = [&](const std::vector<double>& lp,
                           std::vector<double>* out, double* obj) {
        std::set<int> ch = admitted_pins;
        double used_pages = pin_pages;
        std::map<TableId, int> per_table;
        for (int i : ch) {
          per_table[candidates[static_cast<size_t>(i)].index.table]++;
        }
        std::vector<std::pair<double, int>> ranked;
        for (int i = 0; i < ny; ++i) {
          if (vetoed[static_cast<size_t>(i)] || ch.count(i) > 0) continue;
          if (lp[static_cast<size_t>(i)] > 1e-6) {
            ranked.emplace_back(-lp[static_cast<size_t>(i)], i);
          }
        }
        std::sort(ranked.begin(), ranked.end());
        for (auto& [neg, i] : ranked) {
          const CandidateIndex& c = candidates[static_cast<size_t>(i)];
          if (used_pages + c.size_pages > budget) continue;
          if (per_table[c.index.table] + 1 >
              constraints.TableCapOrUnlimited(c.index.table)) {
            continue;
          }
          ch.insert(i);
          used_pages += c.size_pages;
          per_table[c.index.table]++;
        }
        *obj = complete_rows(ch, all_rows);
        if (!std::isfinite(*obj)) return false;
        out->assign(static_cast<size_t>(mip.lp.num_vars), 0.0);
        for (int i : ch) (*out)[static_cast<size_t>(i)] = 1.0;
        // x assignment is implied; B&B only reads binary positions, and
        // the objective is passed explicitly.
        return true;
      };

      // Warm start from the cached monolithic solve: the previous root
      // basis always, plus the previous optimum as the initial incumbent
      // when it is still feasible under the edited constraints. This is
      // what keeps a DBA edit cheap in the binding-budget regime, where
      // stitching fails and every solve lands here.
      BnbWarmStart warm;
      bool have_warm = false;
      if (mono_entry != nullptr) {
        if (!mono_entry->root_basis.empty()) {
          warm.basis = mono_entry->root_basis;
          have_warm = true;
        }
        if (mono_entry->valid) {
          std::set<int> ch;
          for (int i : mono_entry->chosen) {
            if (!vetoed[static_cast<size_t>(i)]) ch.insert(i);
          }
          ch.insert(admitted_pins.begin(), admitted_pins.end());
          double used_pages = 0.0;
          std::map<TableId, int> per_table;
          bool feasible = true;
          for (int i : ch) {
            used_pages += candidates[static_cast<size_t>(i)].size_pages;
            TableId t = candidates[static_cast<size_t>(i)].index.table;
            feasible &= ++per_table[t] <= constraints.TableCapOrUnlimited(t);
          }
          feasible &= used_pages <= budget;
          if (feasible) {
            double obj = complete_rows(ch, all_rows);
            if (std::isfinite(obj)) {
              warm.values.assign(static_cast<size_t>(mip.lp.num_vars), 0.0);
              for (int i : ch) warm.values[static_cast<size_t>(i)] = 1.0;
              warm.objective = obj;
              have_warm = true;
            }
          }
        }
      }

      BnbResult bnb = SolveBinaryMip(mip, options_.bnb, heuristic,
                                     have_warm ? &warm : nullptr);
      rec.bnb_nodes += bnb.nodes_explored;
      rec.lp_pivots += bnb.lp_pivots;
      rec.solve_time_sec += bnb.solve_time_sec;
      rec.proven_optimal = bnb.proven_optimal;
      solver_lower = bnb.lower_bound;

      // Extract the chosen configuration. Admitted pins are always part
      // of it, even when the node budget starved the search.
      chosen = admitted_pins;
      if (bnb.feasible) {
        for (int i = 0; i < ny; ++i) {
          if (bnb.values[static_cast<size_t>(i)] > 0.5) chosen.insert(i);
        }
      }
      if (mono_entry != nullptr) {
        if (bnb.feasible && bnb.proven_optimal) {
          mono_entry->valid = true;
          mono_entry->signature = mono_sig;
          mono_entry->chosen.assign(chosen.begin(), chosen.end());
          mono_entry->objective = bnb.objective;
          mono_entry->lower_bound = bnb.lower_bound;
          mono_entry->root_basis = bnb.root_basis;
        } else {
          mono_entry->valid = false;
        }
      }
    }
  }

  // ---------------- Shared extraction ----------------
  // Both paths produce the same `chosen` for the same inputs (that is
  // the decomposition theorem above, exercised by the differential
  // suite), and everything below depends only on `chosen` — so the two
  // paths yield bit-identical recommendations.
  // Per-query best atom under the chosen set; drop unpinned indexes no
  // atom uses.
  std::set<int> kept = admitted_pins;
  rec.per_query_cost.resize(nq, 0.0);
  rec.recommended_cost = 0.0;
  for (size_t q = 0; q < nq; ++q) {
    double best = std::numeric_limits<double>::infinity();
    const CoPhyAtom* best_atom = nullptr;
    for (const CoPhyAtom& a : atoms(q)) {
      bool ok = true;
      for (int i : a.used) ok &= chosen.count(i) > 0;
      if (ok && a.cost < best) {
        best = a.cost;
        best_atom = &a;
      }
    }
    rec.per_query_cost[q] = best;
    rec.recommended_cost += prepared.weights[q] * best;
    if (best_atom != nullptr) {
      for (int i : best_atom->used) kept.insert(i);
    }
  }
  for (int i : kept) {
    rec.indexes.push_back(candidates[static_cast<size_t>(i)].index);
    rec.total_size_pages += candidates[static_cast<size_t>(i)].size_pages;
  }

  // The solver bound includes the tie-break penalty; strip a safe cap
  // on it so the reported bound is a true lower bound on the atom-cost
  // objective alone.
  double penalty_cap = 0.0;
  for (const CandidateIndex& c : candidates) {
    penalty_cap += kTieBreakPerPage * c.size_pages;
  }
  if (std::isfinite(budget)) {
    penalty_cap = std::min(penalty_cap, kTieBreakPerPage * budget);
  }
  rec.lower_bound = std::max(0.0, solver_lower - penalty_cap);
  double denom = std::max(1e-12, rec.recommended_cost);
  rec.gap = std::max(0.0, (rec.recommended_cost - rec.lower_bound) / denom);

  DBD_LOG_INFO(StrFormat(
      "CoPhy: %zu candidates, %zu atoms, %zu vars, %zu rows -> %zu indexes, "
      "cost %.1f -> %.1f (gap %.4f, %d nodes, %d pivots, %zu pins, "
      "%zu infeasible; %d clusters: %d solved, %d reused%s)",
      rec.num_candidates, rec.num_atoms, rec.num_variables,
      rec.num_constraints, rec.indexes.size(), rec.base_cost,
      rec.recommended_cost, rec.gap, rec.bnb_nodes, rec.lp_pivots,
      admitted_pins.size(), rec.infeasible_pins.size(), rec.num_clusters,
      rec.clusters_solved, rec.clusters_reused,
      rec.solved_monolithic ? ", monolithic" : ""));
  return rec;
}

}  // namespace dbdesign
