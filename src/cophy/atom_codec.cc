#include "cophy/atom_codec.h"

#include <cstdint>
#include <utility>

#include "util/binio.h"

namespace dbdesign {

namespace {

// "DBAR" little-endian: DBdesign Atom Row.
constexpr uint32_t kAtomRowMagic = 0x52414244u;
constexpr uint32_t kAtomRowVersion = 1;

}  // namespace

std::string EncodeAtomRow(const CoPhyAtomRow& row) {
  BinaryWriter w;
  w.PutU32(kAtomRowMagic);
  w.PutU32(kAtomRowVersion);
  w.PutDouble(row.base_cost);
  w.PutU64(row.atoms.size());
  for (const CoPhyAtom& atom : row.atoms) {
    w.PutDouble(atom.cost);
    w.PutU64(atom.used.size());
    for (int id : atom.used) {
      // Candidate ids are small nonnegative universe positions; u32
      // keeps spill files compact with headroom of ~4e9 candidates.
      w.PutU32(static_cast<uint32_t>(id));
    }
  }
  return w.Take();
}

Result<CoPhyAtomRow> DecodeAtomRow(std::string_view bytes) {
  BinaryReader r(bytes);
  if (r.U32() != kAtomRowMagic) {
    return Status::InvalidArgument("atom row: bad magic");
  }
  uint32_t version = r.U32();
  if (version != kAtomRowVersion) {
    return Status::InvalidArgument("atom row: unknown version " +
                                   std::to_string(version));
  }
  CoPhyAtomRow row;
  row.base_cost = r.Double();
  uint64_t num_atoms = r.U64();
  // Each atom needs at least 16 bytes (cost + id count), so this bound
  // rejects absurd counts from corrupt buffers before any allocation.
  if (!r.ok() || num_atoms > r.remaining() / 16) {
    return Status::InvalidArgument("atom row: truncated header");
  }
  row.atoms.reserve(static_cast<size_t>(num_atoms));
  for (uint64_t a = 0; a < num_atoms; ++a) {
    CoPhyAtom atom;
    atom.cost = r.Double();
    uint64_t num_used = r.U64();
    if (!r.ok() || num_used > r.remaining() / 4) {
      return Status::InvalidArgument("atom row: truncated atom");
    }
    atom.used.reserve(static_cast<size_t>(num_used));
    for (uint64_t u = 0; u < num_used; ++u) {
      atom.used.push_back(static_cast<int>(r.U32()));
    }
    row.atoms.push_back(std::move(atom));
  }
  if (!r.ok() || !r.AtEnd()) {
    return Status::InvalidArgument("atom row: truncated or trailing bytes");
  }
  return row;
}

size_t AtomRowBytes(const CoPhyAtomRow& row) {
  size_t bytes = sizeof(CoPhyAtomRow);
  bytes += row.atoms.size() * sizeof(CoPhyAtom);
  for (const CoPhyAtom& atom : row.atoms) {
    bytes += atom.used.size() * sizeof(int);
  }
  return bytes;
}

}  // namespace dbdesign
