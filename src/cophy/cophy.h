// CoPhy: index selection as a binary integer program (paper §3.2.1,
// ref [4] — Dash & Ailamaki, CMU-CS-10-109).
//
// Per query, INUM's cached internal plans are expanded into *atomic
// configurations*: (internal plan, one access option per slot) pairs
// with a precomputed cost and the set of candidate indexes they use.
// The BIP then selects one atom per query and a set of indexes:
//
//   minimize    sum_q w_q sum_a cost(q,a) x_{q,a}
//   subject to  sum_a x_{q,a} = 1                        for each q
//               sum_{a uses i} x_{q,a} <= y_i            for each (q, i)
//               sum_i size_i y_i <= storage budget
//               x, y binary
//
// The LP relaxation bound gives the advisor's quality guarantee; the
// branch & bound node/time budget is the time-vs-quality knob the paper
// describes.

#ifndef DBDESIGN_COPHY_COPHY_H_
#define DBDESIGN_COPHY_COPHY_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cophy/candidates.h"
#include "core/constraints.h"
#include "interaction/doi.h"
#include "inum/inum.h"
#include "solver/bnb.h"

namespace dbdesign {

/// How SolvePrepared runs the BIP.
enum class CoPhySolveMode {
  /// Decompose by interaction clusters and solve per-cluster BIPs with
  /// the full budget each; fall back to the monolithic BIP when the
  /// stitched optimum shows the budget (or a table cap) actually binds
  /// across clusters. Always returns the same recommendation as
  /// kMonolithic — the fallback condition is exactly what makes the
  /// stitching provably optimal (see SolvePrepared).
  kAuto,
  /// Always solve the single monolithic BIP (the differential-testing
  /// reference; also useful for benchmarking the decomposition win).
  kMonolithic,
};

struct CoPhyOptions {
  /// Storage budget for the selected indexes, in pages.
  double storage_budget_pages = std::numeric_limits<double>::infinity();
  /// Atom cap per query (cheapest kept; the index-free atom always stays).
  int max_atoms_per_query = 48;
  /// Access options kept per (plan, slot); the no-index option always stays.
  int max_leaf_options_per_slot = 5;
  CandidateOptions candidates;
  BnbOptions bnb;
  /// Cost-model options for the advisor's INUM instance (the session
  /// keeps it for the whole loop); see InumOptions.
  InumOptions inum;
  /// Cluster decomposition knob (see CoPhySolveMode).
  CoPhySolveMode solve_mode = CoPhySolveMode::kAuto;
};

/// An atomic configuration: cost of serving one query one way, plus the
/// candidate indexes (by candidate id) that way requires.
struct CoPhyAtom {
  double cost = 0.0;
  std::vector<int> used;  ///< sorted candidate ids
};

struct IndexRecommendation {
  std::vector<IndexDef> indexes;
  double total_size_pages = 0.0;

  double base_cost = 0.0;         ///< workload cost with no indexes
  double recommended_cost = 0.0;  ///< workload cost under the recommendation
  std::vector<double> per_query_cost;  ///< under the recommendation

  /// Pinned indexes that could not be honored because they do not fit
  /// the storage budget (greedily admitted smallest-first). Never
  /// silently dropped: callers surface these to the DBA.
  std::vector<IndexDef> infeasible_pins;

  /// Solver quality telemetry.
  double lower_bound = 0.0;
  double gap = 0.0;
  bool proven_optimal = false;
  int bnb_nodes = 0;
  double solve_time_sec = 0.0;
  size_t num_candidates = 0;
  size_t num_atoms = 0;
  size_t num_variables = 0;
  size_t num_constraints = 0;

  /// Decomposition telemetry: how the solve was actually executed.
  int num_clusters = 0;      ///< interaction clusters in the prepared state
  int clusters_solved = 0;   ///< cluster BIPs solved this call
  int clusters_reused = 0;   ///< cluster optima reused from the solver cache
  bool solved_monolithic = false;  ///< the monolithic BIP ran (mode/fallback)
  int lp_pivots = 0;               ///< simplex pivots across all BIPs

  /// Set when this recommendation was served from cached session state
  /// because the backend was down (see util/status.h). A degraded
  /// recommendation is the last certified answer, possibly stale.
  DegradedResult degraded;

  double improvement() const {
    return base_cost > 0 ? 1.0 - recommended_cost / base_cost : 0.0;
  }
};

/// One query's share of a prepared state: its atomic configurations
/// plus its empty-design base cost. Immutable once built and shared by
/// shared_ptr — across duplicate queries within one prepared state,
/// across copy-on-write snapshots of a session, and (through the
/// server's atom store) across sessions tuning the same schema. A
/// candidate-universe change builds fresh rows; it never mutates a
/// published one.
struct CoPhyAtomRow {
  /// Atomic configurations, cheapest-first; candidate ids in
  /// CoPhyAtom::used index into the universe the row was built against.
  std::vector<CoPhyAtom> atoms;
  double base_cost = 0.0;  ///< cost of the query under the empty design
};

/// Order-sensitive fingerprint of a candidate universe (structural keys
/// + sizes). Atom rows are only interchangeable between prepared states
/// whose universes fingerprint identically, because CoPhyAtom::used
/// stores positional candidate ids.
uint64_t CandidateUniverseFingerprint(
    const std::vector<CandidateIndex>& candidates);

/// Cross-session atom-reuse seam. Implemented by the tuning server's
/// AtomStore; consulted by CoPhyAdvisor::Prepare once per structurally
/// distinct query. Implementations must be thread-safe, and must only
/// return rows built against the same cost substrate (schema, stats,
/// cost params — the store's keying contract) as the requesting
/// advisor's backend.
class CoPhyAtomSource {
 public:
  virtual ~CoPhyAtomSource() = default;

  /// The cached row for (sql_key, universe fingerprint), or nullptr on
  /// a miss. `sql_key` is the query's full SQL text — collision-free by
  /// construction, the same keying the INUM cache tripwires verify.
  virtual std::shared_ptr<const CoPhyAtomRow> Lookup(
      const std::string& sql_key, uint64_t universe_fingerprint) = 0;

  /// Publishes a freshly built row and returns the canonical entry:
  /// the first writer wins, so concurrent builders of the same row
  /// converge on one shared object (later publishes return the
  /// already-stored row and drop their duplicate).
  virtual std::shared_ptr<const CoPhyAtomRow> Publish(
      const std::string& sql_key, uint64_t universe_fingerprint,
      std::shared_ptr<const CoPhyAtomRow> row) = 0;
};

/// Everything CoPhy needs to (re-)solve one workload: the candidate
/// universe, the per-query atom rows, weights, and baseline costs.
/// Building it is the expensive half of a recommendation (INUM populate
/// + atom expansion); solving against it is pure BIP work. A DBA edit
/// that only changes constraints re-solves against the same prepared
/// state with zero new INUM or backend cost calls — the machinery
/// behind DesignSession::Refine.
///
/// Rows are shared, immutable snapshots (see CoPhyAtomRow): copying a
/// CoPhyPrepared is cheap (vector of shared_ptr + weights), which is
/// what makes the server's copy-on-write session snapshots affordable.
struct CoPhyPrepared {
  std::vector<CandidateIndex> candidates;
  /// Fingerprint of `candidates` (see CandidateUniverseFingerprint).
  uint64_t universe_fingerprint = 0;
  /// rows[q] = atom row of workload query q (atoms + base cost;
  /// candidate ids index into `candidates`). Never null while q exists.
  std::vector<std::shared_ptr<const CoPhyAtomRow>> rows;
  std::vector<double> weights;  ///< per workload query
  double base_cost = 0.0;       ///< weighted total, empty design
  size_t num_atoms = 0;

  /// Interaction clusters over the CANDIDATE universe (plain value data,
  /// so copy-on-write snapshots share it like everything else here).
  /// Two candidates land in one cluster iff some query's atom row can
  /// use both (possibly transitively): the one-atom-per-query rows are
  /// the only coupling between y variables besides the global budget and
  /// table caps, so distinct clusters share no BIP row except those —
  /// which is exactly what lets SolvePrepared solve them independently.
  ClusterPartition clusters;
  /// Per query row: the cluster its atoms' candidates belong to, or -1
  /// when no atom uses any candidate (the row then contributes only a
  /// constant — its cheapest atom — to any solve).
  std::vector<int> row_cluster;

  /// Rebuilds `clusters` / `row_cluster` from the current rows and
  /// candidates. Prepare calls this; incremental row edits (session
  /// add/remove-queries paths) must call it again before the next solve.
  void RefreshClusters();

  bool empty() const { return rows.empty(); }
};

/// Per-cluster solver state carried between SolvePrepared calls by a
/// session (one cache per tuning session; the shared prepared state
/// stays read-only). For each cluster the cache remembers the signature
/// of the subproblem it solved (budget, pins/vetoes/caps touching the
/// cluster, row weights) plus the proven optimum and the root LP basis.
/// On the next solve, clusters whose signature is unchanged reuse their
/// optimum without solving anything; dirtied clusters re-solve warm-
/// started from the cached basis/incumbent. This is what makes a DBA
/// veto cost one small cluster BIP instead of a full re-solve.
///
/// A budget that binds ACROSS clusters no longer forces a monolithic
/// solve: each cluster entry carries a lazily enumerated budget/cost
/// frontier (see Entry::frontier) and an allocation DP in SolvePrepared
/// splits the global budget over those frontiers, deepening a frontier
/// only when the optimal split might lie below its last proven point.
/// Only a per-table cap binding across clusters still falls back to the
/// monolithic BIP — the one coupling the decomposition merely relaxes.
///
/// The cache therefore also keeps one entry for the MONOLITHIC BIP, so
/// a constraint edit under a cap-bound workload does not pay a full
/// cold B&B: the mono entry warm-starts the fallback from the previous
/// root basis and previous optimum (sanitized against the edited
/// constraints), and answers an unchanged re-solve outright.
struct CoPhySolverCache {
  struct Entry {
    bool valid = false;
    uint64_t signature = 0;
    std::vector<int> chosen;  ///< proven-optimal y set (global candidate ids)
    double objective = 0.0;   ///< subproblem objective (incl. tie-break)
    double lower_bound = 0.0;
    std::vector<int> root_basis;  ///< canonical basis of the last root solved

    /// One proven point on a cluster's budget/cost frontier: the optimum
    /// of the cluster BIP under "footprint <= some budget", recorded as
    /// the footprint it actually uses and the objective it achieves.
    struct ParetoPoint {
      double footprint = 0.0;   ///< pages used by `chosen` (pins included)
      double cost = 0.0;        ///< proven cluster optimum at this footprint
      std::vector<int> chosen;  ///< global candidate ids (pins included)
    };
    /// The cluster's budget/cost frontier, footprint strictly decreasing
    /// (cost nondecreasing), enumerated lazily top-down from the full
    /// budget. The allocation DP in SolvePrepared consumes these and
    /// deepens the frontier only when the optimal budget split might lie
    /// below the last enumerated point.
    std::vector<ParetoPoint> frontier;
    /// True once the frontier bottoms out (pin floor reached, or no
    /// feasible configuration below the last point).
    bool frontier_complete = false;
    /// Lower bound on the cost of every configuration BELOW the last
    /// frontier point (the unexplored tail). At least the last point's
    /// cost (budget monotonicity); tightened by bound CERTIFICATES — a
    /// branch-and-bound run at the tail's budget stopped as soon as its
    /// global bound showed the tail cannot win (BnbOptions::
    /// stop_at_bound), sparing the cost of the tail's exact optimum.
    double tail_bound = 0.0;
  };
  uint64_t universe_fingerprint = 0;
  size_t num_rows = 0;
  std::vector<Entry> entries;  ///< one per cluster
  Entry mono;                  ///< the monolithic BIP (fallback path)

  /// Budget-trim telemetry (session-lifetime; Clear() keeps them so
  /// tests and benches can observe trims across workload edits).
  uint64_t trims = 0;                 ///< TrimToBytes calls that cut anything
  uint64_t points_dropped = 0;        ///< frontier points discarded
  uint64_t entries_invalidated = 0;   ///< whole entries reset to cold

  /// Approximate in-memory footprint (struct overhead + chosen/basis
  /// ids + frontier points). Deterministic — it reads sizes, not
  /// capacities — so trim decisions are bit-stable across runs.
  size_t ApproxBytes() const;

  /// Trims the cache to at most `max_bytes` (0 = unbounded, no-op).
  /// Frontier points are dropped deepest-first from the longest
  /// frontier (ties: lowest cluster index, mono last), restoring
  /// exactly the "enumeration stopped earlier" state the lazy top-down
  /// frontier protocol already handles — the allocation DP re-deepens
  /// on demand, so results are bit-identical, only re-solve work is
  /// traded. If shortening frontiers is not enough, whole entries are
  /// invalidated largest-first (their next solve is cold). Never
  /// touches signatures of entries it leaves alone.
  void TrimToBytes(size_t max_bytes);

  void Clear() {
    universe_fingerprint = 0;
    num_rows = 0;
    entries.clear();
    mono = Entry{};
  }
};

class CoPhyAdvisor {
 public:
  /// Attaches to a backend (non-owning); cost parameters come from it.
  explicit CoPhyAdvisor(DbmsBackend& backend, CoPhyOptions options = {});

  /// Legacy convenience: wraps `db` in an owned InMemoryBackend (defined
  /// in backend/compat.cc).
  explicit CoPhyAdvisor(const Database& db, CostParams params = {},
                        CoPhyOptions options = {});

  /// Recommends an index set for the workload under the storage budget.
  IndexRecommendation Recommend(const Workload& workload);

  /// Recommends from a caller-supplied candidate set (the paper's
  /// interactive mode: the DBA seeds the search with her own candidates).
  IndexRecommendation RecommendWithCandidates(
      const Workload& workload, const std::vector<CandidateIndex>& candidates);

  // --- Constraint-aware, Status-bearing API ---
  /// Recommends under DBA constraints: pins become y_i = 1 fixings,
  /// vetoes y_i = 0, per-table caps extra BIP rows, and the effective
  /// budget is min(options budget, constraint budget). Pinned indexes
  /// that do not fit the budget are reported in
  /// IndexRecommendation::infeasible_pins (smallest pins admitted
  /// first) rather than silently dropped. Errors (invalid constraints)
  /// surface as Status.
  Result<IndexRecommendation> TryRecommend(const Workload& workload,
                                           const DesignConstraints& constraints);
  Result<IndexRecommendation> TryRecommendWithCandidates(
      const Workload& workload, const std::vector<CandidateIndex>& candidates,
      const DesignConstraints& constraints);

  // --- Incremental API (prepare once, re-solve many times) ---
  /// Populates INUM for the workload and expands every query into atoms
  /// against `candidates` — the expensive half of a recommendation.
  CoPhyPrepared Prepare(const Workload& workload,
                        std::vector<CandidateIndex> candidates);

  /// Status-returning form of Prepare. Populate and atom expansion are
  /// client-side, but base-cost evaluation can fall back to the
  /// backend; a backend failure there (e.g. the connection is down)
  /// surfaces as its Status instead of aborting or poisoning the
  /// prepared state. The first failing parallel shard cancels the
  /// rest.
  Result<CoPhyPrepared> TryPrepare(const Workload& workload,
                                   std::vector<CandidateIndex> candidates);

  /// Solves the BIP against an existing prepared state under
  /// `constraints`. Makes no INUM and no backend cost calls: after a
  /// constraints-only edit this is the entire cost of re-recommending.
  ///
  /// With solve_mode == kAuto the solve decomposes by interaction
  /// cluster: each cluster's BIP is the restriction of the monolithic
  /// one to the cluster's variables with the budget/cap rows kept at
  /// their FULL right-hand sides (a relaxation). Any monolithic-feasible
  /// solution splits into per-cluster feasible parts, so the sum of
  /// cluster optima lower-bounds the monolithic optimum; when the
  /// stitched union of cluster optima also satisfies the global budget
  /// and caps it attains that bound and — optima being unique under the
  /// tie-break objective — IS the monolithic optimum. Otherwise (the
  /// budget/caps bind across clusters) the solve provably cannot stitch
  /// and falls back to the monolithic BIP, so both modes always return
  /// the same recommendation.
  ///
  /// `cache` (optional, owned by the calling session) carries
  /// per-cluster optima and LP bases between calls: unchanged clusters
  /// are reused without solving, dirtied clusters warm-start. Pass
  /// nullptr for a stateless solve.
  Result<IndexRecommendation> SolvePrepared(
      const CoPhyPrepared& prepared, const DesignConstraints& constraints,
      CoPhySolverCache* cache = nullptr) const;

  /// Expands one query into atomic configurations against `candidates`
  /// (exposed for tests and for the interaction analyzer). Safe to call
  /// concurrently for *distinct* queries once the INUM caches are
  /// populated (Recommend* prepares them, then fans atom building out
  /// across the pool); concurrent calls for unseen queries would race
  /// on the cache and need external synchronization.
  std::vector<CoPhyAtom> BuildAtoms(
      const BoundQuery& query, const std::vector<CandidateIndex>& candidates);

  InumCostModel& inum() { return inum_; }

  /// Attaches a cross-session atom source (non-owning; nullptr detaches).
  /// Prepare then serves structurally distinct queries from the source
  /// when possible — a hit skips that query's INUM populate entirely —
  /// and publishes every row it builds. Results are bit-identical with
  /// or without a source: a cached row is exactly what Prepare would
  /// have built, because the source key pins schema, stats, cost
  /// params, SQL text, and candidate universe.
  void set_atom_source(CoPhyAtomSource* source) { atom_source_ = source; }

 private:
  /// Owning constructor used by the legacy Database path.
  CoPhyAdvisor(std::shared_ptr<DbmsBackend> owned, CoPhyOptions options);

  std::shared_ptr<DbmsBackend> owned_backend_;  // legacy path only
  DbmsBackend* backend_;
  CostParams params_;
  CoPhyOptions options_;
  InumCostModel inum_;
  Optimizer optimizer_;
  CoPhyAtomSource* atom_source_ = nullptr;  // non-owning
};

}  // namespace dbdesign

#endif  // DBDESIGN_COPHY_COPHY_H_
