// Greedy index advisor — the DTA-style baseline the paper contrasts
// CoPhy against ("these tools are based on greedy heuristics ... and
// often suggest locally optimal solutions instead of the globally
// optimal one").
//
// Classic greedy loop: repeatedly add the candidate with the best
// workload benefit (optionally per storage page) until the budget is
// exhausted or no candidate helps. Cost evaluations go through INUM so
// the comparison against CoPhy isolates search quality, not cost-model
// speed.

#ifndef DBDESIGN_COPHY_GREEDY_H_
#define DBDESIGN_COPHY_GREEDY_H_

#include <limits>
#include <memory>
#include <vector>

#include "cophy/candidates.h"
#include "inum/inum.h"

namespace dbdesign {

struct GreedyOptions {
  double storage_budget_pages = std::numeric_limits<double>::infinity();
  /// Rank by benefit/size instead of raw benefit.
  bool benefit_per_page = true;
  CandidateOptions candidates;
};

struct GreedyResult {
  std::vector<IndexDef> indexes;
  double total_size_pages = 0.0;
  double base_cost = 0.0;
  double final_cost = 0.0;
  int iterations = 0;
  uint64_t cost_evaluations = 0;
  double solve_time_sec = 0.0;

  double improvement() const {
    return base_cost > 0 ? 1.0 - final_cost / base_cost : 0.0;
  }
};

class GreedyAdvisor {
 public:
  /// Attaches to a backend (non-owning); cost parameters come from it.
  explicit GreedyAdvisor(DbmsBackend& backend, GreedyOptions options = {});

  /// Legacy convenience: wraps `db` in an owned InMemoryBackend (defined
  /// in backend/compat.cc).
  explicit GreedyAdvisor(const Database& db, CostParams params = {},
                         GreedyOptions options = {});

  GreedyResult Recommend(const Workload& workload);
  GreedyResult RecommendWithCandidates(
      const Workload& workload, const std::vector<CandidateIndex>& candidates);

  /// Constraint-aware recommendation: vetoed candidates are filtered
  /// out, pinned indexes are seeded into the configuration before the
  /// greedy loop (consuming budget and table caps), and the loop honors
  /// per-table caps plus min(options budget, constraint budget). Pins
  /// that do not fit the budget are an error — the greedy baseline has
  /// no partial-feasibility story to fall back on.
  Result<GreedyResult> TryRecommend(const Workload& workload,
                                    const DesignConstraints& constraints);
  Result<GreedyResult> TryRecommendWithCandidates(
      const Workload& workload, const std::vector<CandidateIndex>& candidates,
      const DesignConstraints& constraints);

  InumCostModel& inum() { return inum_; }

 private:
  /// Owning constructor used by the legacy Database path.
  GreedyAdvisor(std::shared_ptr<DbmsBackend> owned, GreedyOptions options);

  std::shared_ptr<DbmsBackend> owned_backend_;  // legacy path only
  DbmsBackend* backend_;
  GreedyOptions options_;
  InumCostModel inum_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_COPHY_GREEDY_H_
