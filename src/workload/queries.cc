#include "workload/queries.h"

#include <cmath>

#include "sql/binder.h"
#include "util/logging.h"
#include "util/str.h"

namespace dbdesign {

const char* SdssTemplateName(SdssTemplate t) {
  switch (t) {
    case SdssTemplate::kConeSearch: return "cone_search";
    case SdssTemplate::kColorCut: return "color_cut";
    case SdssTemplate::kRunFieldScan: return "run_field_scan";
    case SdssTemplate::kSpecJoin: return "spec_join";
    case SdssTemplate::kNeighborJoin: return "neighbor_join";
    case SdssTemplate::kRunAggregate: return "run_aggregate";
    case SdssTemplate::kClassAggregate: return "class_aggregate";
    case SdssTemplate::kThreeWayJoin: return "three_way_join";
    case SdssTemplate::kFieldQuality: return "field_quality";
    case SdssTemplate::kPointLookup: return "point_lookup";
    case SdssTemplate::kTemplateCount: break;
  }
  return "?";
}

std::string GenerateSdssSql(SdssTemplate t, Rng& rng) {
  switch (t) {
    case SdssTemplate::kConeSearch: {
      double ra = rng.UniformDouble(0.0, 350.0);
      double w = rng.UniformDouble(0.5, 6.0);
      double dec = rng.UniformDouble(-40.0, 35.0);
      double h = rng.UniformDouble(0.5, 5.0);
      return StrFormat(
          "SELECT objid, ra, dec, psfmag_r FROM photoobj "
          "WHERE ra BETWEEN %.3f AND %.3f AND dec BETWEEN %.3f AND %.3f",
          ra, ra + w, dec, dec + h);
    }
    case SdssTemplate::kColorCut: {
      double g = rng.UniformDouble(17.0, 21.0);
      double r = rng.UniformDouble(16.5, 20.5);
      int64_t type = rng.Bernoulli(0.7) ? 3 : 6;
      return StrFormat(
          "SELECT objid, psfmag_g, psfmag_r FROM photoobj "
          "WHERE psfmag_g BETWEEN %.2f AND %.2f "
          "AND psfmag_r BETWEEN %.2f AND %.2f AND type = %lld",
          g, g + rng.UniformDouble(0.2, 1.0), r,
          r + rng.UniformDouble(0.2, 1.0), static_cast<long long>(type));
    }
    case SdssTemplate::kRunFieldScan: {
      int64_t run = 94 + 31 * rng.UniformInt(0, 12);
      int64_t camcol = rng.UniformInt(1, 6);
      int64_t f1 = rng.UniformInt(11, 60);
      return StrFormat(
          "SELECT objid, field, rowc, colc FROM photoobj "
          "WHERE run = %lld AND camcol = %lld AND field BETWEEN %lld AND %lld",
          static_cast<long long>(run), static_cast<long long>(camcol),
          static_cast<long long>(f1), static_cast<long long>(f1 + 8));
    }
    case SdssTemplate::kSpecJoin: {
      double z = rng.UniformDouble(0.02, 0.6);
      return StrFormat(
          "SELECT p.objid, p.ra, p.dec, s.z FROM photoobj p "
          "JOIN specobj s ON p.objid = s.bestobjid "
          "WHERE s.z BETWEEN %.3f AND %.3f AND p.type = 3",
          z, z + rng.UniformDouble(0.02, 0.15));
    }
    case SdssTemplate::kNeighborJoin: {
      double ra = rng.UniformDouble(0.0, 340.0);
      double d = rng.UniformDouble(0.005, 0.03);
      return StrFormat(
          "SELECT p.objid, n.neighborobjid, n.distance FROM photoobj p "
          "JOIN neighbors n ON p.objid = n.objid "
          "WHERE p.ra BETWEEN %.3f AND %.3f AND n.distance < %.4f",
          ra, ra + rng.UniformDouble(2.0, 15.0), d);
    }
    case SdssTemplate::kRunAggregate: {
      double dec = rng.UniformDouble(-35.0, 25.0);
      return StrFormat(
          "SELECT run, COUNT(*) FROM photoobj "
          "WHERE dec BETWEEN %.3f AND %.3f GROUP BY run ORDER BY run",
          dec, dec + rng.UniformDouble(3.0, 12.0));
    }
    case SdssTemplate::kClassAggregate: {
      double sn = rng.UniformDouble(2.0, 14.0);
      return StrFormat(
          "SELECT class, COUNT(*), AVG(z) FROM specobj "
          "WHERE sn_median > %.2f GROUP BY class",
          sn);
    }
    case SdssTemplate::kThreeWayJoin: {
      double z = rng.UniformDouble(0.05, 1.2);
      int64_t q = rng.UniformInt(2, 4);
      return StrFormat(
          "SELECT p.objid, s.z, pl.mjd FROM photoobj p "
          "JOIN specobj s ON p.objid = s.bestobjid "
          "JOIN plate pl ON s.plate = pl.plate "
          "WHERE s.z > %.3f AND pl.quality >= %lld AND p.clean = 1",
          z, static_cast<long long>(q));
    }
    case SdssTemplate::kFieldQuality: {
      int64_t mjd = 51000 + rng.UniformInt(0, 500);
      return StrFormat(
          "SELECT run, field, quality FROM field "
          "WHERE quality >= %lld AND mjd BETWEEN %lld AND %lld "
          "ORDER BY mjd",
          static_cast<long long>(rng.UniformInt(2, 3)),
          static_cast<long long>(mjd), static_cast<long long>(mjd + 150));
    }
    case SdssTemplate::kPointLookup: {
      // objid values are i*16+1; draw one that exists with high odds.
      int64_t objid = rng.UniformInt(0, 19999) * 16 + 1;
      return StrFormat(
          "SELECT objid, ra, dec, type, psfmag_r FROM photoobj "
          "WHERE objid = %lld",
          static_cast<long long>(objid));
    }
    case SdssTemplate::kTemplateCount:
      break;
  }
  DBD_CHECK(false && "invalid template");
  return "";
}

BoundQuery GenerateSdssQuery(const Database& db, SdssTemplate t, Rng& rng) {
  std::string sql = GenerateSdssSql(t, rng);
  auto bound = ParseAndBind(db.catalog(), sql);
  DBD_CHECK(bound.ok() && "generated SQL must bind");
  return std::move(bound).value();
}

TemplateMix TemplateMix::Uniform() {
  TemplateMix mix;
  for (double& w : mix.weights) w = 1.0;
  return mix;
}

TemplateMix TemplateMix::OfflineDefault() {
  TemplateMix mix;
  mix.weights[static_cast<int>(SdssTemplate::kConeSearch)] = 3.0;
  mix.weights[static_cast<int>(SdssTemplate::kColorCut)] = 2.0;
  mix.weights[static_cast<int>(SdssTemplate::kRunFieldScan)] = 2.0;
  mix.weights[static_cast<int>(SdssTemplate::kSpecJoin)] = 2.0;
  mix.weights[static_cast<int>(SdssTemplate::kNeighborJoin)] = 1.0;
  mix.weights[static_cast<int>(SdssTemplate::kRunAggregate)] = 1.0;
  mix.weights[static_cast<int>(SdssTemplate::kClassAggregate)] = 1.0;
  mix.weights[static_cast<int>(SdssTemplate::kThreeWayJoin)] = 1.0;
  mix.weights[static_cast<int>(SdssTemplate::kFieldQuality)] = 1.0;
  mix.weights[static_cast<int>(SdssTemplate::kPointLookup)] = 1.0;
  return mix;
}

TemplateMix TemplateMix::PhaseSelections() {
  TemplateMix mix;
  mix.weights[static_cast<int>(SdssTemplate::kConeSearch)] = 5.0;
  mix.weights[static_cast<int>(SdssTemplate::kColorCut)] = 3.0;
  mix.weights[static_cast<int>(SdssTemplate::kPointLookup)] = 2.0;
  return mix;
}

TemplateMix TemplateMix::PhaseJoins() {
  TemplateMix mix;
  mix.weights[static_cast<int>(SdssTemplate::kSpecJoin)] = 4.0;
  mix.weights[static_cast<int>(SdssTemplate::kNeighborJoin)] = 3.0;
  mix.weights[static_cast<int>(SdssTemplate::kThreeWayJoin)] = 2.0;
  return mix;
}

TemplateMix TemplateMix::PhaseAggregates() {
  TemplateMix mix;
  mix.weights[static_cast<int>(SdssTemplate::kRunAggregate)] = 4.0;
  mix.weights[static_cast<int>(SdssTemplate::kClassAggregate)] = 3.0;
  mix.weights[static_cast<int>(SdssTemplate::kFieldQuality)] = 2.0;
  mix.weights[static_cast<int>(SdssTemplate::kRunFieldScan)] = 1.0;
  return mix;
}

namespace {

SdssTemplate DrawTemplate(const TemplateMix& mix, Rng& rng) {
  double total = 0.0;
  for (double w : mix.weights) total += w;
  double x = rng.UniformDouble(0.0, total);
  for (int i = 0; i < kNumSdssTemplates; ++i) {
    x -= mix.weights[i];
    if (x <= 0.0) return static_cast<SdssTemplate>(i);
  }
  return SdssTemplate::kConeSearch;
}

}  // namespace

Workload GenerateWorkload(const Database& db, const TemplateMix& mix, int n,
                          uint64_t seed) {
  Rng rng(seed);
  Workload w;
  for (int i = 0; i < n; ++i) {
    SdssTemplate t = DrawTemplate(mix, rng);
    w.Add(GenerateSdssQuery(db, t, rng));
  }
  return w;
}

std::vector<BoundQuery> GenerateDriftingStream(
    const Database& db, const std::vector<TemplateMix>& phases,
    int queries_per_phase, uint64_t seed) {
  Rng rng(seed);
  std::vector<BoundQuery> stream;
  int id = 0;
  for (const TemplateMix& mix : phases) {
    for (int i = 0; i < queries_per_phase; ++i) {
      SdssTemplate t = DrawTemplate(mix, rng);
      BoundQuery q = GenerateSdssQuery(db, t, rng);
      q.id = id++;
      stream.push_back(std::move(q));
    }
  }
  return stream;
}

}  // namespace dbdesign
