#include "workload/compress.h"

namespace dbdesign {

namespace {

/// Operator class the signature hashes: equality / range / inequality.
/// All range shapes fuse so `ra > x` and `ra BETWEEN x AND y`
/// instantiations of one template land in the same class.
int OperatorClass(const BoundPredicate& p) {
  if (p.IsEquality()) return 0;
  if (p.IsRange()) return 1;
  return 2;  // <>
}

}  // namespace

uint64_t TemplateSignature(const BoundQuery& query) {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  };
  auto col = [&](uint64_t h, const BoundColumn& c) {
    return mix(mix(h, static_cast<uint64_t>(c.slot) + 1),
               static_cast<uint64_t>(c.column) + 3);
  };
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (TableId t : query.tables) h = mix(h, static_cast<uint64_t>(t) + 11);
  for (const BoundColumn& c : query.select_columns) h = col(mix(h, 1), c);
  for (const BoundAggregate& a : query.aggregates) {
    h = mix(h, static_cast<uint64_t>(a.fn) + 100);
    h = a.star ? mix(h, 2) : col(h, a.column);
  }
  for (const BoundPredicate& p : query.filters) {
    h = col(mix(h, 3), p.column);
    h = mix(h, static_cast<uint64_t>(OperatorClass(p)) + 200);
    // Constants intentionally excluded.
  }
  for (const BoundJoin& j : query.joins) h = col(col(mix(h, 4), j.left), j.right);
  for (const BoundColumn& c : query.group_by) h = col(mix(h, 5), c);
  for (const BoundOrderItem& o : query.order_by) {
    h = col(mix(h, o.descending ? 7 : 6), o.column);
  }
  h = mix(h, query.limit >= 0 ? 1 : 0);
  return h;
}

bool SameTemplate(const BoundQuery& a, const BoundQuery& b) {
  if (a.tables != b.tables) return false;
  if (a.select_columns != b.select_columns) return false;
  if (a.aggregates.size() != b.aggregates.size()) return false;
  for (size_t i = 0; i < a.aggregates.size(); ++i) {
    const BoundAggregate& x = a.aggregates[i];
    const BoundAggregate& y = b.aggregates[i];
    if (x.fn != y.fn || x.star != y.star) return false;
    if (!x.star && !(x.column == y.column)) return false;
  }
  if (a.filters.size() != b.filters.size()) return false;
  for (size_t i = 0; i < a.filters.size(); ++i) {
    if (!(a.filters[i].column == b.filters[i].column)) return false;
    if (OperatorClass(a.filters[i]) != OperatorClass(b.filters[i])) {
      return false;
    }
  }
  if (a.joins.size() != b.joins.size()) return false;
  for (size_t i = 0; i < a.joins.size(); ++i) {
    if (!(a.joins[i].left == b.joins[i].left) ||
        !(a.joins[i].right == b.joins[i].right)) {
      return false;
    }
  }
  if (a.group_by != b.group_by) return false;
  if (a.order_by.size() != b.order_by.size()) return false;
  for (size_t i = 0; i < a.order_by.size(); ++i) {
    if (!(a.order_by[i].column == b.order_by[i].column) ||
        a.order_by[i].descending != b.order_by[i].descending) {
      return false;
    }
  }
  return (a.limit >= 0) == (b.limit >= 0);
}

size_t TemplateClassTable::AddInstance(const BoundQuery& query,
                                       double weight) {
  uint64_t sig = signature_(query);
  std::vector<size_t>& chain = by_signature_[sig];
  for (size_t id : chain) {
    // A signature hit is a candidate, not a match: verify structurally
    // so a hash collision cannot fuse different templates.
    if (SameTemplate(classes_[id].representative, query)) {
      classes_[id].weight += weight;
      classes_[id].count += 1;
      return id;
    }
  }
  size_t id = classes_.size();
  TemplateClass cls;
  cls.signature = sig;
  cls.representative = query;
  cls.weight = weight;
  cls.count = 1;
  classes_.push_back(std::move(cls));
  chain.push_back(id);
  return id;
}

size_t TemplateClassTable::Find(const BoundQuery& query) const {
  auto it = by_signature_.find(signature_(query));
  if (it == by_signature_.end()) return npos;
  for (size_t id : it->second) {
    if (SameTemplate(classes_[id].representative, query)) return id;
  }
  return npos;
}

bool TemplateClassTable::RemoveInstance(size_t class_id, double weight) {
  TemplateClass& cls = classes_[class_id];
  cls.weight -= weight;
  cls.count -= 1;
  if (cls.count > 0) return false;
  // Erase the class and compact: ids above class_id shift down by one.
  classes_.erase(classes_.begin() + static_cast<ptrdiff_t>(class_id));
  for (auto it = by_signature_.begin(); it != by_signature_.end();) {
    std::vector<size_t>& chain = it->second;
    for (size_t i = 0; i < chain.size();) {
      if (chain[i] == class_id) {
        chain.erase(chain.begin() + static_cast<ptrdiff_t>(i));
      } else {
        if (chain[i] > class_id) --chain[i];
        ++i;
      }
    }
    it = chain.empty() ? by_signature_.erase(it) : std::next(it);
  }
  return true;
}

void TemplateClassTable::Clear() {
  classes_.clear();
  by_signature_.clear();
}

Workload TemplateClassTable::ClassWorkload() const {
  Workload out;
  for (const TemplateClass& cls : classes_) {
    out.Add(cls.representative, cls.weight);
  }
  return out;
}

Workload CompressWorkload(const Workload& workload, CompressionReport* report,
                          SignatureFn signature) {
  TemplateClassTable table(signature);
  for (size_t i = 0; i < workload.size(); ++i) {
    table.AddInstance(workload.queries[i], workload.WeightOf(i));
  }
  Workload out = table.ClassWorkload();
  if (report != nullptr) {
    report->original_queries = workload.size();
    report->compressed_queries = out.size();
  }
  return out;
}

}  // namespace dbdesign
