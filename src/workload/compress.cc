#include "workload/compress.h"

#include <unordered_map>

namespace dbdesign {

uint64_t TemplateSignature(const BoundQuery& query) {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  };
  auto col = [&](uint64_t h, const BoundColumn& c) {
    return mix(mix(h, static_cast<uint64_t>(c.slot) + 1),
               static_cast<uint64_t>(c.column) + 3);
  };
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (TableId t : query.tables) h = mix(h, static_cast<uint64_t>(t) + 11);
  for (const BoundColumn& c : query.select_columns) h = col(mix(h, 1), c);
  for (const BoundAggregate& a : query.aggregates) {
    h = mix(h, static_cast<uint64_t>(a.fn) + 100);
    h = a.star ? mix(h, 2) : col(h, a.column);
  }
  for (const BoundPredicate& p : query.filters) {
    h = col(mix(h, 3), p.column);
    // Operator *class* only: all range shapes fuse, so `ra > x` and
    // `ra BETWEEN x AND y` instantiations of one template collide.
    uint64_t op_class;
    if (p.IsEquality()) {
      op_class = 0;
    } else if (p.IsRange()) {
      op_class = 1;
    } else {
      op_class = 2;  // <>
    }
    h = mix(h, op_class + 200);
    // Constants intentionally excluded.
  }
  for (const BoundJoin& j : query.joins) h = col(col(mix(h, 4), j.left), j.right);
  for (const BoundColumn& c : query.group_by) h = col(mix(h, 5), c);
  for (const BoundOrderItem& o : query.order_by) {
    h = col(mix(h, o.descending ? 7 : 6), o.column);
  }
  h = mix(h, query.limit >= 0 ? 1 : 0);
  return h;
}

Workload CompressWorkload(const Workload& workload,
                          CompressionReport* report) {
  Workload out;
  std::unordered_map<uint64_t, size_t> representative;  // sig -> out index
  for (size_t i = 0; i < workload.size(); ++i) {
    uint64_t sig = TemplateSignature(workload.queries[i]);
    auto it = representative.find(sig);
    if (it == representative.end()) {
      representative.emplace(sig, out.size());
      out.Add(workload.queries[i], workload.WeightOf(i));
    } else {
      out.weights[it->second] += workload.WeightOf(i);
    }
  }
  if (report != nullptr) {
    report->original_queries = workload.size();
    report->compressed_queries = out.size();
  }
  return out;
}

}  // namespace dbdesign
