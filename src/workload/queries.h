// SDSS-style query template families and workload generation.
//
// Ten template families cover the demo's workload space: selective
// region scans, color cuts, catalog joins, aggregations and point
// lookups. Each instantiation draws parameters from the generator's RNG
// so repeated queries hit different regions with controlled selectivity.

#ifndef DBDESIGN_WORKLOAD_QUERIES_H_
#define DBDESIGN_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

#include "sql/bound_query.h"
#include "storage/database.h"
#include "util/rng.h"

namespace dbdesign {

enum class SdssTemplate {
  kConeSearch = 0,     ///< ra/dec window on photoobj
  kColorCut,           ///< magnitude band cuts + type
  kRunFieldScan,       ///< run/camcol/field navigation
  kSpecJoin,           ///< photoobj x specobj by objid, redshift window
  kNeighborJoin,       ///< photoobj x neighbors, distance cut
  kRunAggregate,       ///< count per run in a dec band
  kClassAggregate,     ///< specobj class histogram
  kThreeWayJoin,       ///< photoobj x specobj x plate
  kFieldQuality,       ///< field table range scan + order
  kPointLookup,        ///< objid point query
  kTemplateCount,
};

constexpr int kNumSdssTemplates = static_cast<int>(SdssTemplate::kTemplateCount);

/// Returns a short name ("cone_search", ...) for reports.
const char* SdssTemplateName(SdssTemplate t);

/// Generates one random instantiation of `t` as SQL text.
std::string GenerateSdssSql(SdssTemplate t, Rng& rng);

/// Parses + binds one instantiation against `db`.
BoundQuery GenerateSdssQuery(const Database& db, SdssTemplate t, Rng& rng);

/// Template mix: weight per template (unnormalized).
struct TemplateMix {
  double weights[kNumSdssTemplates] = {0};

  static TemplateMix Uniform();
  /// The paper's offline tuning mix: selection + join heavy.
  static TemplateMix OfflineDefault();
  /// Phase mixes for the online (COLT) scenario.
  static TemplateMix PhaseSelections();  ///< cone searches + color cuts
  static TemplateMix PhaseJoins();       ///< spec/neighbor joins
  static TemplateMix PhaseAggregates();  ///< aggregates + field scans
};

/// Draws `n` queries from the mix.
Workload GenerateWorkload(const Database& db, const TemplateMix& mix, int n,
                          uint64_t seed);

/// A drifting stream for the online scenario: each phase draws
/// `queries_per_phase` queries from its mix.
std::vector<BoundQuery> GenerateDriftingStream(
    const Database& db, const std::vector<TemplateMix>& phases,
    int queries_per_phase, uint64_t seed);

}  // namespace dbdesign

#endif  // DBDESIGN_WORKLOAD_QUERIES_H_
