#include "workload/sdss.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace dbdesign {

namespace {

TableDef PhotoObjDef() {
  return TableDef(
      kPhotoObj,
      {
          {"objid", DataType::kInt64, 8},
          {"ra", DataType::kDouble, 8},
          {"dec", DataType::kDouble, 8},
          {"run", DataType::kInt64, 8},
          {"rerun", DataType::kInt64, 8},
          {"camcol", DataType::kInt64, 8},
          {"field", DataType::kInt64, 8},
          {"obj", DataType::kInt64, 8},
          {"type", DataType::kInt64, 8},
          {"flags", DataType::kInt64, 8},
          {"psfmag_u", DataType::kDouble, 8},
          {"psfmag_g", DataType::kDouble, 8},
          {"psfmag_r", DataType::kDouble, 8},
          {"psfmag_i", DataType::kDouble, 8},
          {"psfmag_z", DataType::kDouble, 8},
          {"petror50_r", DataType::kDouble, 8},
          {"extinction_r", DataType::kDouble, 8},
          {"rowc", DataType::kDouble, 8},
          {"colc", DataType::kDouble, 8},
          {"mode", DataType::kInt64, 8},
          {"clean", DataType::kInt64, 8},
          {"score", DataType::kDouble, 8},
          {"mjd", DataType::kInt64, 8},
          {"nchild", DataType::kInt64, 8},
          {"parentid", DataType::kInt64, 8},
      });
}

TableDef SpecObjDef() {
  return TableDef(
      kSpecObj,
      {
          {"specobjid", DataType::kInt64, 8},
          {"bestobjid", DataType::kInt64, 8},
          {"plate", DataType::kInt64, 8},
          {"mjd", DataType::kInt64, 8},
          {"fiberid", DataType::kInt64, 8},
          {"class", DataType::kInt64, 8},
          {"z", DataType::kDouble, 8},
          {"zerr", DataType::kDouble, 8},
          {"zwarning", DataType::kInt64, 8},
          {"sn_median", DataType::kDouble, 8},
          {"veldisp", DataType::kDouble, 8},
          {"veldisperr", DataType::kDouble, 8},
      });
}

TableDef NeighborsDef() {
  return TableDef(kNeighbors,
                  {
                      {"objid", DataType::kInt64, 8},
                      {"neighborobjid", DataType::kInt64, 8},
                      {"distance", DataType::kDouble, 8},
                      {"neighbortype", DataType::kInt64, 8},
                      {"mode", DataType::kInt64, 8},
                  });
}

TableDef FieldDef() {
  return TableDef(kField,
                  {
                      {"fieldid", DataType::kInt64, 8},
                      {"run", DataType::kInt64, 8},
                      {"camcol", DataType::kInt64, 8},
                      {"field", DataType::kInt64, 8},
                      {"ra", DataType::kDouble, 8},
                      {"dec", DataType::kDouble, 8},
                      {"mjd", DataType::kInt64, 8},
                      {"quality", DataType::kInt64, 8},
                      {"nobjects", DataType::kInt64, 8},
                      {"sky", DataType::kDouble, 8},
                  });
}

TableDef PlateDef() {
  return TableDef(kPlate,
                  {
                      {"plateid", DataType::kInt64, 8},
                      {"plate", DataType::kInt64, 8},
                      {"mjd", DataType::kInt64, 8},
                      {"ra", DataType::kDouble, 8},
                      {"dec", DataType::kDouble, 8},
                      {"quality", DataType::kInt64, 8},
                      {"nspec", DataType::kInt64, 8},
                      {"sn1", DataType::kDouble, 8},
                  });
}

}  // namespace

Database BuildSdssDatabase(const SdssConfig& config) {
  Database db;
  Rng rng(config.seed);

  TableId photoobj = db.CreateTable(PhotoObjDef()).value();
  TableId specobj = db.CreateTable(SpecObjDef()).value();
  TableId neighbors = db.CreateTable(NeighborsDef()).value();
  TableId field = db.CreateTable(FieldDef()).value();
  TableId plate = db.CreateTable(PlateDef()).value();

  const int n_photo = config.photoobj_rows;
  const int n_spec = std::max(10, n_photo / 5);
  const int n_neigh = n_photo * 2;
  const int n_field = std::max(5, n_photo / 50);
  const int n_plate = std::max(3, n_photo / 200);

  // --- photoobj ---
  // Rows arrive in (run, camcol, field) order: run, field and mjd are
  // highly correlated with physical position; ra drifts along each run's
  // scan stripe; magnitudes and dec are unclustered.
  const int n_runs = std::max(2, n_photo / 2500);
  db.mutable_data(photoobj).Reserve(static_cast<size_t>(n_photo));
  int64_t mjd_base = 51000;
  for (int i = 0; i < n_photo; ++i) {
    int run_idx = i / std::max(1, n_photo / n_runs);
    int64_t run = 94 + run_idx * 31;
    int64_t camcol = 1 + rng.UniformInt(0, 5);
    int64_t fieldno = 11 + (i % std::max(1, n_photo / n_runs)) / 40;
    double stripe_base = std::fmod(run * 47.0, 320.0);
    double ra = std::fmod(stripe_base + rng.UniformDouble(0.0, 40.0), 360.0);
    double dec = rng.Normal(0.0, 25.0);
    dec = std::clamp(dec, -90.0, 90.0);
    // type is skewed: 3=galaxy (65%), 6=star (30%), others rare.
    int64_t type;
    double tp = rng.UniformDouble();
    if (tp < 0.65) {
      type = 3;
    } else if (tp < 0.95) {
      type = 6;
    } else {
      type = rng.UniformInt(0, 8);
    }
    double mag_r = rng.Normal(20.0, 1.6);
    Row row;
    row.reserve(25);
    row.push_back(Value(static_cast<int64_t>(i) * 16 + 1));     // objid
    row.push_back(Value(ra));                                   // ra
    row.push_back(Value(dec));                                  // dec
    row.push_back(Value(run));                                  // run
    row.push_back(Value(static_cast<int64_t>(301)));            // rerun
    row.push_back(Value(camcol));                               // camcol
    row.push_back(Value(fieldno));                              // field
    row.push_back(Value(rng.UniformInt(0, 400)));               // obj
    row.push_back(Value(type));                                 // type
    row.push_back(Value(rng.UniformInt(0, 1) << 12 |
                        rng.UniformInt(0, 255)));               // flags
    row.push_back(Value(mag_r + rng.Normal(1.8, 0.4)));         // psfmag_u
    row.push_back(Value(mag_r + rng.Normal(0.9, 0.3)));         // psfmag_g
    row.push_back(Value(mag_r));                                // psfmag_r
    row.push_back(Value(mag_r - rng.Normal(0.4, 0.2)));         // psfmag_i
    row.push_back(Value(mag_r - rng.Normal(0.7, 0.3)));         // psfmag_z
    row.push_back(Value(std::abs(rng.Normal(2.5, 1.2))));       // petror50_r
    row.push_back(Value(std::abs(rng.Normal(0.08, 0.05))));     // extinction_r
    row.push_back(Value(rng.UniformDouble(0.0, 1489.0)));       // rowc
    row.push_back(Value(rng.UniformDouble(0.0, 2048.0)));       // colc
    row.push_back(Value(rng.Zipf(3, 1.2) + 1));                 // mode
    row.push_back(Value(rng.Bernoulli(0.85) ? int64_t{1}
                                            : int64_t{0}));     // clean
    row.push_back(Value(rng.UniformDouble(0.0, 1.0)));          // score
    row.push_back(Value(mjd_base + run_idx * 37 +
                        rng.UniformInt(0, 3)));                 // mjd
    row.push_back(Value(rng.Zipf(6, 1.5)));                     // nchild
    row.push_back(Value(rng.Bernoulli(0.2)
                            ? Value(static_cast<int64_t>(
                                  rng.UniformInt(0, n_photo - 1)) * 16 + 1)
                                  .AsInt()
                            : int64_t{0}));                     // parentid
    db.InsertRow(photoobj, std::move(row));
  }

  // --- plate (generated before specobj so plates exist to reference) ---
  for (int i = 0; i < n_plate; ++i) {
    Row row;
    row.reserve(8);
    int64_t plate_no = 266 + i;
    row.push_back(Value(static_cast<int64_t>(i) * 1024 + 7));  // plateid
    row.push_back(Value(plate_no));                            // plate
    row.push_back(Value(mjd_base + rng.UniformInt(0, 900)));   // mjd
    row.push_back(Value(rng.UniformDouble(0.0, 360.0)));       // ra
    row.push_back(Value(rng.Normal(0.0, 25.0)));               // dec
    row.push_back(Value(rng.Zipf(4, 1.0) + 1));                // quality
    row.push_back(Value(rng.UniformInt(400, 640)));            // nspec
    row.push_back(Value(rng.Normal(12.0, 3.0)));               // sn1
    db.InsertRow(plate, std::move(row));
  }

  // --- specobj ---
  // Rows grouped by plate (plate and mjd correlated with position);
  // bestobjid points at a uniformly random photoobj.
  for (int i = 0; i < n_spec; ++i) {
    int plate_idx = (i * n_plate) / n_spec;
    int64_t plate_no = 266 + plate_idx;
    int64_t cls;
    double cp = rng.UniformDouble();
    double z;
    if (cp < 0.70) {
      cls = 0;  // GALAXY
      z = std::abs(rng.Normal(0.12, 0.08));
    } else if (cp < 0.90) {
      cls = 1;  // STAR
      z = std::abs(rng.Normal(0.0004, 0.0003));
    } else {
      cls = 2;  // QSO
      z = std::abs(rng.Normal(1.4, 0.7));
    }
    Row row;
    row.reserve(12);
    row.push_back(Value(static_cast<int64_t>(i) * 256 + 3));  // specobjid
    row.push_back(Value(rng.UniformInt(0, n_photo - 1) * 16 + 1));  // bestobjid
    row.push_back(Value(plate_no));                           // plate
    row.push_back(Value(mjd_base + plate_idx * 11 +
                        rng.UniformInt(0, 2)));               // mjd
    row.push_back(Value(rng.UniformInt(1, 640)));             // fiberid
    row.push_back(Value(cls));                                // class
    row.push_back(Value(z));                                  // z
    row.push_back(Value(std::abs(rng.Normal(0.0002, 0.0002))));  // zerr
    row.push_back(Value(rng.Bernoulli(0.93) ? int64_t{0}
                                            : rng.UniformInt(1, 128)));
    row.push_back(Value(std::abs(rng.Normal(8.0, 5.0))));     // sn_median
    row.push_back(Value(std::abs(rng.Normal(150.0, 80.0))));  // veldisp
    row.push_back(Value(std::abs(rng.Normal(20.0, 10.0))));   // veldisperr
    db.InsertRow(specobj, std::move(row));
  }

  // --- neighbors ---
  for (int i = 0; i < n_neigh; ++i) {
    Row row;
    row.reserve(5);
    row.push_back(Value(rng.UniformInt(0, n_photo - 1) * 16 + 1));  // objid
    row.push_back(Value(rng.UniformInt(0, n_photo - 1) * 16 + 1));
    row.push_back(Value(std::abs(rng.Normal(0.02, 0.015))));  // distance
    row.push_back(Value(rng.Bernoulli(0.6) ? int64_t{3} : int64_t{6}));
    row.push_back(Value(rng.Zipf(3, 1.2) + 1));               // mode
    db.InsertRow(neighbors, std::move(row));
  }

  // --- field ---
  for (int i = 0; i < n_field; ++i) {
    int run_idx = (i * n_runs) / n_field;
    Row row;
    row.reserve(10);
    row.push_back(Value(static_cast<int64_t>(i) * 32 + 5));  // fieldid
    row.push_back(Value(static_cast<int64_t>(94 + run_idx * 31)));  // run
    row.push_back(Value(1 + rng.UniformInt(0, 5)));          // camcol
    row.push_back(Value(11 + static_cast<int64_t>(i % 80))); // field
    row.push_back(Value(rng.UniformDouble(0.0, 360.0)));     // ra
    row.push_back(Value(rng.Normal(0.0, 25.0)));             // dec
    row.push_back(Value(mjd_base + run_idx * 37));           // mjd
    row.push_back(Value(rng.Zipf(3, 0.8) + 1));              // quality
    row.push_back(Value(rng.UniformInt(80, 900)));           // nobjects
    row.push_back(Value(rng.Normal(21.0, 0.6)));             // sky
    db.InsertRow(field, std::move(row));
  }

  AnalyzeOptions opts;
  opts.histogram_buckets = config.histogram_buckets;
  db.AnalyzeAll(opts);
  return db;
}

}  // namespace dbdesign
