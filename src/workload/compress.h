// Workload compression: collapse structurally identical queries
// (same tables, predicate columns/operators, joins, grouping, ordering —
// different constants) into one representative with a summed weight.
//
// Physical-design advisors scale with workload size; production traces
// repeat a few templates thousands of times. Compression preserves the
// advisor's objective almost exactly — leaf costs vary only mildly with
// the constants — while cutting CoPhy/AutoPart input by orders of
// magnitude. (Standard advisor practice, e.g. Chaudhuri et al.'s
// workload compression; the demo's SDSS trace is template-generated and
// compresses extremely well.)
//
// Correctness note: the 64-bit TemplateSignature is a hash, not an
// identity. Every class merge verifies structural equality with
// SameTemplate; queries that collide on the signature but differ
// structurally chain into separate classes instead of silently fusing
// their weights.

#ifndef DBDESIGN_WORKLOAD_COMPRESS_H_
#define DBDESIGN_WORKLOAD_COMPRESS_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sql/bound_query.h"

namespace dbdesign {

/// Template signature: hashes everything about the query *except* the
/// literal constants (and the workload id). Queries from the same
/// template instantiation family collide by construction.
uint64_t TemplateSignature(const BoundQuery& query);

/// Pluggable signature function (tests inject degenerate hashes to
/// force collisions and exercise the structural-verification chain).
using SignatureFn = uint64_t (*)(const BoundQuery&);

/// Structural template equality: compares, field by field, exactly what
/// TemplateSignature hashes — tables, select list, aggregates, filter
/// columns and operator *classes* (all range shapes fuse), joins, group
/// by, order by, and LIMIT presence. Constants, aliases and workload
/// ids are ignored. This is the ground truth the signature approximates;
/// class merges must pass it, never the hash alone.
bool SameTemplate(const BoundQuery& a, const BoundQuery& b);

struct CompressionReport {
  size_t original_queries = 0;
  size_t compressed_queries = 0;
  /// Fraction of the input retained after compression (compressed /
  /// original, in [0, 1]; smaller = better compression).
  double fraction_retained() const {
    return original_queries > 0
               ? static_cast<double>(compressed_queries) /
                     static_cast<double>(original_queries)
               : 1.0;
  }
  /// Compression factor (original / compressed): "compresses Nx".
  double factor() const {
    return compressed_queries > 0
               ? static_cast<double>(original_queries) /
                     static_cast<double>(compressed_queries)
               : 1.0;
  }
};

/// One template class: the first-seen instance is the representative;
/// weight and count aggregate every instance folded into the class.
struct TemplateClass {
  uint64_t signature = 0;
  BoundQuery representative;
  double weight = 0.0;  ///< summed instance weights
  size_t count = 0;     ///< number of instances
};

/// Signature-keyed, collision-verified registry of template classes —
/// the bookkeeping layer behind CompressWorkload, DesignSession's
/// compressed recommendation pipeline and COLT's per-template epoch
/// statistics. Class ids are dense indexes in first-seen order; erasing
/// a class compacts ids above it down by one (callers that store ids
/// must remap, see RemoveInstance).
class TemplateClassTable {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  explicit TemplateClassTable(SignatureFn signature = &TemplateSignature)
      : signature_(signature) {}

  /// Folds one instance into its class (verifying SameTemplate on every
  /// signature hit; colliding-but-different templates get their own
  /// class). Returns the class id.
  size_t AddInstance(const BoundQuery& query, double weight = 1.0);

  /// Class id of `query`'s template, or npos when unseen.
  size_t Find(const BoundQuery& query) const;

  /// Removes one instance of weight `weight` from `class_id`. When the
  /// instance count hits zero the class is erased and every id above it
  /// shifts down by one; returns true in that case so callers can remap
  /// their stored ids.
  bool RemoveInstance(size_t class_id, double weight = 1.0);

  const std::vector<TemplateClass>& classes() const { return classes_; }
  size_t size() const { return classes_.size(); }
  bool empty() const { return classes_.empty(); }
  void Clear();

  /// The compressed workload: one representative per class, weighted by
  /// the class weight (ids reassigned densely).
  Workload ClassWorkload() const;

 private:
  SignatureFn signature_;
  std::vector<TemplateClass> classes_;
  /// signature -> class ids with that signature (a chain longer than one
  /// means the hash collided across different templates).
  std::unordered_map<uint64_t, std::vector<size_t>> by_signature_;
};

/// Compresses `workload` by template. The first query of each class
/// becomes the representative; its weight is the sum of the class's
/// weights. Total weight is preserved exactly. `signature` is
/// injectable for tests; every hit is structurally verified.
Workload CompressWorkload(const Workload& workload,
                          CompressionReport* report = nullptr,
                          SignatureFn signature = &TemplateSignature);

}  // namespace dbdesign

#endif  // DBDESIGN_WORKLOAD_COMPRESS_H_
