// Workload compression: collapse structurally identical queries
// (same tables, predicate columns/operators, joins, grouping, ordering —
// different constants) into one representative with a summed weight.
//
// Physical-design advisors scale with workload size; production traces
// repeat a few templates thousands of times. Compression preserves the
// advisor's objective almost exactly — leaf costs vary only mildly with
// the constants — while cutting CoPhy/AutoPart input by orders of
// magnitude. (Standard advisor practice, e.g. Chaudhuri et al.'s
// workload compression; the demo's SDSS trace is template-generated and
// compresses extremely well.)

#ifndef DBDESIGN_WORKLOAD_COMPRESS_H_
#define DBDESIGN_WORKLOAD_COMPRESS_H_

#include <cstdint>

#include "sql/bound_query.h"

namespace dbdesign {

/// Template signature: hashes everything about the query *except* the
/// literal constants (and the workload id). Queries from the same
/// template instantiation family collide by construction.
uint64_t TemplateSignature(const BoundQuery& query);

struct CompressionReport {
  size_t original_queries = 0;
  size_t compressed_queries = 0;
  double ratio() const {
    return original_queries > 0
               ? static_cast<double>(compressed_queries) /
                     static_cast<double>(original_queries)
               : 1.0;
  }
};

/// Compresses `workload` by template signature. The first query of each
/// class becomes the representative; its weight is the sum of the
/// class's weights. Total weight is preserved exactly.
Workload CompressWorkload(const Workload& workload,
                          CompressionReport* report = nullptr);

}  // namespace dbdesign

#endif  // DBDESIGN_WORKLOAD_COMPRESS_H_
