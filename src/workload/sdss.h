// Synthetic SDSS-like database.
//
// The paper demonstrates on the Sloan Digital Sky Survey: large, wide
// tables (photoobj has hundreds of columns in the real survey) and
// selective astronomy queries. This generator reproduces the properties
// that matter for physical design studies:
//   * a wide fact table (photoobj, 25 columns) where vertical
//     partitioning pays off,
//   * clustered columns (objid, mjd, run) vs unclustered (ra, magnitudes)
//     so index-scan correlation effects show up,
//   * skewed categorical columns (type, class) for MCV-based estimation,
//   * foreign-key joins (specobj.bestobjid -> photoobj.objid,
//     neighbors.objid -> photoobj.objid, specobj.plate -> plate.plate).

#ifndef DBDESIGN_WORKLOAD_SDSS_H_
#define DBDESIGN_WORKLOAD_SDSS_H_

#include <cstdint>

#include "storage/database.h"

namespace dbdesign {

struct SdssConfig {
  /// Rows in photoobj; other tables scale proportionally:
  /// specobj = /5, neighbors = x2, field = /50, plate = /200.
  int photoobj_rows = 20000;
  uint64_t seed = 42;
  /// ANALYZE histogram resolution.
  int histogram_buckets = 64;
};

/// Table name constants.
inline constexpr const char* kPhotoObj = "photoobj";
inline constexpr const char* kSpecObj = "specobj";
inline constexpr const char* kNeighbors = "neighbors";
inline constexpr const char* kField = "field";
inline constexpr const char* kPlate = "plate";

/// Builds the schema, generates data, and runs ANALYZE.
Database BuildSdssDatabase(const SdssConfig& config = {});

}  // namespace dbdesign

#endif  // DBDESIGN_WORKLOAD_SDSS_H_
