// INUM: cache-based what-if cost model (paper §3.1/§3.2.1, ref [9]).
//
// Key insight (Papadomanolakis, Dash, Ailamaki, VLDB'07): for a fixed
// query, the optimal *internal* plan (join order, join methods, sorts,
// aggregation) depends only on which *interesting orders* the leaf
// access paths deliver — not on which physical index delivers them, nor
// on what the leaves cost. INUM therefore:
//
//   1. (populate) per query, enumerates per-slot order signatures —
//      none / a specific sort order / a parameterized index lookup —
//      and for each signature combination invokes the real join
//      enumerator with zero-cost abstract leaves, caching the resulting
//      internal-plan cost,
//   2. (reuse) costs the query under an arbitrary PhysicalDesign by
//      pricing only the leaves: min over cached plans of
//      internal_cost + best leaf cost per slot consistent with the
//      signature (+ actual index-nested-loop lookup costs).
//
// Our extension (the paper's "cache table partitions and partial
// plans"): leaf prices are computed by the partition-aware access-path
// generator, so one populated cache serves designs that add or change
// vertical/horizontal partitions as well as indexes.
//
// Concurrency: the model is thread-compatible (concurrent calls on one
// instance need external synchronization), but the batched entry points
// (PrepareQueries, WorkloadCost, CostMatrix) parallelize internally —
// per-query caches are sharded so each worker owns whole queries, and
// results are bit-identical to serial execution at any num_threads.

#ifndef DBDESIGN_INUM_INUM_H_
#define DBDESIGN_INUM_INUM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "optimizer/optimizer.h"
#include "whatif/whatif.h"

namespace dbdesign {

struct InumOptions {
  /// Hard cap on signature combinations enumerated per query; beyond it,
  /// parameterized-lookup signatures are dropped first.
  int max_combos = 128;
  /// Consider index-nested-loop (parameterized) signatures.
  bool enable_param_signatures = true;
  /// When reuse produces a cost that is worse than this factor times the
  /// best cached bound... (diagnostic only; exactness is validated in
  /// tests against the full optimizer).
  double fallback_slack = 0.0;  // 0 = never fall back on slack
  /// Route every costing call through the exact (backend-backed)
  /// optimizer instead of the client-side reuse cache. Models a port
  /// whose reuse layer is unavailable: every cost call traverses the
  /// DbmsBackend seam and can therefore fail. The fault-injection
  /// tests drive the full session loop under this configuration.
  bool force_exact = false;
};

/// Counters exposed for the E3 benchmark.
struct InumStats {
  uint64_t populate_optimizations = 0;  ///< abstract DP runs (one per combo)
  uint64_t reuse_calls = 0;             ///< fast cost evaluations served
  uint64_t fallback_calls = 0;          ///< full optimizer fallbacks
  size_t queries_cached = 0;
  size_t plans_cached = 0;
};

class InumCostModel {
 public:
  /// Attaches to a backend (non-owning). Cost parameters come from the
  /// backend so client-side reuse formulas agree with backend calls.
  explicit InumCostModel(DbmsBackend& backend, InumOptions options = {});

  /// Legacy convenience: wraps `db` in an owned InMemoryBackend (defined
  /// in backend/compat.cc so this header stays storage-free).
  InumCostModel(const Database& db, CostParams params = {},
                InumOptions options = {});

  /// Fast what-if cost of `query` under `design`. Populates the cache on
  /// first sight of the query.
  ///
  /// Error contract (applies to every double-returning costing entry
  /// point here): population and reuse are client-side and infallible,
  /// but the exact-optimizer fallback paths reach the backend. A
  /// backend failure there propagates as a StatusException (internal
  /// carrier — see util/status.h) rather than a silent sentinel cost;
  /// the Try* wrappers below convert it to a Result for callers that
  /// want Status-based handling. With an infallible backend these
  /// entry points never throw.
  double Cost(const BoundQuery& query, const PhysicalDesign& design);

  /// Status-returning form of Cost: a backend failure in the fallback
  /// path surfaces as the backend's Status.
  Result<double> TryCost(const BoundQuery& query,
                         const PhysicalDesign& design);

  /// Weighted workload cost. Structurally distinct queries are costed
  /// once and fanned out across backend cost_params().num_threads
  /// workers (shard-by-query: one worker owns a query's cache end to
  /// end), then reduced in workload order — the total and the stats
  /// counters are bit-identical at any thread count.
  double WorkloadCost(const Workload& workload,
                      const PhysicalDesign& design);

  /// Status-returning form of WorkloadCost.
  Result<double> TryWorkloadCost(const Workload& workload,
                                 const PhysicalDesign& design);

  /// Per-(design, query) cost matrix: result[d][i] is the cost of
  /// workload query i under designs[d]. The batched engine behind
  /// WorkloadCost and Designer::EvaluateDesigns — each distinct query's
  /// populate + per-design repricing runs on one worker.
  std::vector<std::vector<double>> CostMatrix(
      const Workload& workload, std::span<const PhysicalDesign> designs);

  /// Status-returning form of CostMatrix: the first backend failure
  /// (by shard index) cancels the remaining parallel shards and
  /// returns as a Status.
  Result<std::vector<std::vector<double>>> TryCostMatrix(
      const Workload& workload, std::span<const PhysicalDesign> designs);

  /// Cached-atom costing: prices `query` under `design` purely from the
  /// already-populated plan cache (leaf repricing only — no backend
  /// optimizer calls, no new populations for cached queries; an unseen
  /// query falls back to the exact optimizer). Reuse/fallback counters
  /// accumulate into caller-owned `stats` instead of the model's, so
  /// parallel drivers (the interaction analyzer's DoI matrix, the cost
  /// matrix) keep shard-local counters and merge them deterministically
  /// via AccumulateStats. Thread-compatibility contract matches the rest
  /// of the engine: concurrent callers must shard by query (one worker
  /// owns a query's leaf memos end to end).
  double CostCached(const BoundQuery& query, const PhysicalDesign& design,
                    InumStats* stats);

  /// Status-returning form of CostCached.
  Result<double> TryCostCached(const BoundQuery& query,
                               const PhysicalDesign& design, InumStats* stats);

  /// Merges shard-local reuse/fallback counters gathered around
  /// CostCached back into stats() (populate/cache counters are owned by
  /// the model itself and ignored here).
  void AccumulateStats(const InumStats& delta) {
    stats_.reuse_calls += delta.reuse_calls;
    stats_.fallback_calls += delta.fallback_calls;
  }

  /// Forces population for a query (useful to front-load cache warmup).
  void Prepare(const BoundQuery& query);

  /// Populates every structurally distinct query in `queries`, running
  /// the independent per-query abstract enumerations across the pool.
  /// Cache contents and stats match serial Prepare calls in order.
  void PrepareQueries(std::span<const BoundQuery> queries);
  void PrepareWorkload(const Workload& workload) {
    PrepareQueries(std::span<const BoundQuery>(workload.queries.data(),
                                               workload.queries.size()));
  }

  const InumStats& stats() const { return stats_; }
  void ResetStats() { stats_ = InumStats{}; }

  /// The underlying exact optimizer (for tests and fallback).
  const WhatIfOptimizer& exact() const { return exact_; }

  /// The backend this cost model is attached to.
  DbmsBackend& backend() const { return *backend_; }

  /// Per-slot leaf requirement of a cached plan.
  struct SlotSignature {
    enum class Kind { kAny, kOrdered, kParamLookup };
    Kind kind = Kind::kAny;
    std::vector<BoundColumn> order;  ///< kOrdered
    BoundColumn lookup_col;          ///< kParamLookup: inner join column
  };

  /// One cached internal plan.
  struct CachedPlan {
    double internal_cost = 0.0;  ///< plan cost minus all leaf/lookup costs
    std::vector<SlotSignature> slots;
    /// Per slot: index into the query's order-requirement list when the
    /// signature is kOrdered, -1 otherwise (reuse-path acceleration).
    std::vector<int> order_req;
    /// Index-nested-loop contributions: (slot, inner col, outer rows).
    struct InljTerm {
      int slot;
      BoundColumn inner_col;
      double outer_rows;
    };
    std::vector<InljTerm> inlj_terms;
  };

  /// Cached plans for a query (exposed for tests/benchmarks).
  const std::vector<CachedPlan>* CachedPlansFor(const BoundQuery& query) const;

 private:
  /// Memoized leaf price of one index for one slot: the best scan cost
  /// plus a bitmask of which of the query's order requirements the
  /// index satisfies. Keyed by (slot, index key, partition fingerprint),
  /// so the paper's partition extension falls out: changing a table's
  /// partitioning changes only that table's fingerprint.
  struct LeafEntry {
    double scan_cost = 0.0;        ///< plain index scan (may be +inf)
    double index_only_cost = 0.0;  ///< covering scan (may be +inf)
    uint32_t satisfies_mask = 0;   ///< bit k: provides slot order-req k
  };

  /// Everything cached for one query.
  struct QueryCache {
    /// Canonical SQL of the query this cache was built for — the
    /// collision tripwire for the 64-bit StructuralHash cache key
    /// (debug builds verify every hit; the PR 4 template-signature
    /// collision lesson applied to the atom cache).
    std::string sql_key;
    std::vector<CachedPlan> plans;
    /// Distinct kOrdered requirements per slot, in first-seen order
    /// (indexes into satisfies_mask bits).
    std::vector<std::vector<std::vector<BoundColumn>>> slot_orders;
    /// mix(slot, index hash, partition hash) -> leaf price.
    std::unordered_map<uint64_t, LeafEntry> leaf_memo;
    /// mix(slot, partition hash) -> sequential scan price.
    std::unordered_map<uint64_t, double> seq_memo;
    /// mix(slot, lookup column, index hash) -> per-probe lookup price
    /// (+inf = index unusable for that lookup).
    std::unordered_map<uint64_t, double> param_memo;
  };

  /// Owning constructor used by the legacy Database path.
  InumCostModel(std::shared_ptr<DbmsBackend> owned, InumOptions options);

  /// A fully built (but not yet inserted) query cache.
  struct BuiltCache {
    QueryCache qc;
    uint64_t combos = 0;  ///< abstract DP runs performed
  };

  /// Builds the cache for one query: enumerates signature combinations
  /// and runs the abstract DP per combo across the pool. Mutates no
  /// member state besides the (atomic) optimizer call counter, so
  /// distinct queries build concurrently; plans are assembled in combo
  /// order, bit-identical to a serial build.
  BuiltCache BuildCache(const BoundQuery& query);

  QueryCache& Populate(const BoundQuery& query);
  void PreparePtrs(const std::vector<const BoundQuery*>& missing);
  /// Exact-optimizer fallback: backend failures throw StatusException
  /// (converted to Status by the Try* entry points) instead of
  /// returning the legacy +inf sentinel.
  double ExactCost(const BoundQuery& query, const PhysicalDesign& design);
  double ReuseCost(const BoundQuery& query, QueryCache& qc,
                   const PhysicalDesign& design);
  /// Reuse-or-fallback costing against an already populated cache;
  /// reuse/fallback counters accumulate into `stats` (shard-local in
  /// parallel runs, merged afterwards).
  double CostPrepared(const BoundQuery& query, const PhysicalDesign& design,
                      InumStats* stats);

  std::shared_ptr<DbmsBackend> owned_backend_;  // legacy path only
  DbmsBackend* backend_;
  CostParams params_;
  InumOptions options_;
  WhatIfOptimizer exact_;
  Optimizer optimizer_;  // all knobs enabled; used for abstract DP runs
  std::unordered_map<uint64_t, QueryCache> cache_;
  InumStats stats_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_INUM_INUM_H_
