#include "inum/inum.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "optimizer/selectivity.h"
#include "util/logging.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace dbdesign {

namespace {

/// Cost assigned to marker leaves of parameterized slots so that any
/// plan consuming them other than via an index-nested-loop join is
/// priced out of contention.
constexpr double kForbiddenLeafCost = 1e18;
constexpr double kInfeasibleThreshold = 1e17;

/// Representative per-probe cost of an index lookup on `col` assuming a
/// single-column index exists (populate-time stand-in; reuse substitutes
/// the design's actual best lookup).
ParamLookupPath AbstractLookup(const PlannerContext& ctx, int slot,
                               const BoundColumn& col) {
  const CostParams& P = ctx.params;
  const TableStats& stats = ctx.StatsFor(slot);
  const TableDef& def = ctx.DefFor(slot);
  IndexDef rep;
  rep.table = ctx.query->tables[slot];
  rep.columns = {col.column};
  IndexSizeEstimate size = EstimateIndexSize(rep, def, stats);
  const ColumnStats& jc = stats.column(col.column);
  double rows_per_key =
      std::max(1.0, stats.row_count / std::max(1.0, jc.n_distinct));
  double descent_cpu =
      std::log2(std::max(2.0, stats.row_count)) * P.cpu_operator_cost +
      size.height * 50.0 * P.cpu_operator_cost;
  double heap_pages = IndexPagesFetched(rows_per_key, stats.HeapPages(def),
                                        P.effective_cache_size_pages);
  std::vector<BoundPredicate> preds = ctx.query->FiltersOn(slot);
  double residual_sel = 1.0;
  for (const BoundPredicate& p : preds) {
    residual_sel *= PredicateSelectivity(stats.column(p.column.column), p);
  }
  ParamLookupPath path;
  path.index = std::nullopt;
  path.per_lookup.total =
      descent_cpu + P.random_page_cost + heap_pages * P.random_page_cost * 0.5 +
      rows_per_key * (P.cpu_index_tuple_cost + P.cpu_tuple_cost) +
      rows_per_key * static_cast<double>(preds.size()) * P.cpu_operator_cost;
  path.rows_per_lookup = std::max(0.001, rows_per_key * residual_sel);
  return path;
}

/// PathProvider serving zero-cost abstract leaves per the signature
/// combination.
class AbstractProvider : public PathProvider {
 public:
  AbstractProvider(const PlannerContext& ctx,
                   const std::vector<InumCostModel::SlotSignature>& combo)
      : ctx_(ctx), combo_(combo) {}

  std::vector<AccessPath> Paths(int slot) const override {
    using Kind = InumCostModel::SlotSignature::Kind;
    const auto& sig = combo_[static_cast<size_t>(slot)];
    const TableStats& stats = ctx_.StatsFor(slot);
    double sel = ConjunctionSelectivity(stats, ctx_.query->FiltersOn(slot));
    double rows = std::max(ctx_.params.min_rows, stats.row_count * sel);

    auto node = std::make_shared<PlanNode>();
    node->type = PlanNodeType::kAbstractLeaf;
    node->slot = slot;
    node->rows = rows;
    node->width = SlotOutputWidth(ctx_, slot);
    node->filter = ctx_.query->FiltersOn(slot);
    AccessPath path;
    path.rows = rows;
    if (sig.kind == Kind::kParamLookup) {
      node->cost.total = kForbiddenLeafCost;
    } else if (sig.kind == Kind::kOrdered) {
      node->output_order = sig.order;
      path.order = sig.order;
    }
    path.node = std::move(node);
    return {std::move(path)};
  }

  std::optional<ParamLookupPath> ParamLookup(
      int slot, const BoundColumn& inner_col) const override {
    using Kind = InumCostModel::SlotSignature::Kind;
    const auto& sig = combo_[static_cast<size_t>(slot)];
    if (sig.kind != Kind::kParamLookup || !(sig.lookup_col == inner_col)) {
      return std::nullopt;
    }
    return AbstractLookup(ctx_, slot, inner_col);
  }

 private:
  const PlannerContext& ctx_;
  const std::vector<InumCostModel::SlotSignature>& combo_;
};

/// Collects abstract index-nested-loop terms from a populated plan.
void CollectInljTerms(const PlanNode& node,
                      std::vector<InumCostModel::CachedPlan::InljTerm>* out) {
  if (node.type == PlanNodeType::kIndexNestLoopJoin &&
      !node.index.has_value()) {
    InumCostModel::CachedPlan::InljTerm term;
    term.slot = node.slot;
    term.inner_col = node.join_cond->right;
    term.outer_rows = node.children[0]->rows;
    out->push_back(term);
  }
  for (const PlanNodeRef& c : node.children) CollectInljTerms(*c, out);
}

}  // namespace

InumCostModel::InumCostModel(DbmsBackend& backend, InumOptions options)
    : backend_(&backend),
      params_(backend.cost_params()),
      options_(options),
      exact_(backend),
      optimizer_(backend.catalog(), backend.all_stats(), params_) {}

InumCostModel::InumCostModel(std::shared_ptr<DbmsBackend> owned,
                             InumOptions options)
    : owned_backend_(std::move(owned)),
      backend_(owned_backend_.get()),
      params_(backend_->cost_params()),
      options_(options),
      exact_(*backend_),
      optimizer_(backend_->catalog(), backend_->all_stats(), params_) {}

const std::vector<InumCostModel::CachedPlan>* InumCostModel::CachedPlansFor(
    const BoundQuery& query) const {
  auto it = cache_.find(query.StructuralHash());
  return it == cache_.end() ? nullptr : &it->second.plans;
}

void InumCostModel::Prepare(const BoundQuery& query) { Populate(query); }

InumCostModel::QueryCache& InumCostModel::Populate(const BoundQuery& query) {
  // Structural key: identical queries share one cache entry regardless
  // of workload-assigned ids.
  uint64_t key = query.StructuralHash();
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    DBD_DCHECK(it->second.sql_key == query.ToSql(backend_->catalog()) &&
               "StructuralHash collision: two different queries share an "
               "atom-cache key");
    return it->second;
  }

  BuiltCache built = BuildCache(query);
  auto [ins, ok] = cache_.emplace(key, std::move(built.qc));
  stats_.populate_optimizations += built.combos;
  stats_.queries_cached = cache_.size();
  stats_.plans_cached += ins->second.plans.size();
  return ins->second;
}

InumCostModel::BuiltCache InumCostModel::BuildCache(const BoundQuery& query) {
  PhysicalDesign empty;
  PlannerContext ctx = optimizer_.MakeContext(query, empty);

  // Per-slot signature options.
  using Kind = SlotSignature::Kind;
  int n = query.num_slots();
  std::vector<std::vector<SlotSignature>> options(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    auto& opts = options[static_cast<size_t>(s)];
    opts.push_back(SlotSignature{});  // kAny

    auto add_order = [&](std::vector<BoundColumn> order) {
      if (order.empty()) return;
      for (const SlotSignature& sig : opts) {
        if (sig.kind == Kind::kOrdered && sig.order == order) return;
      }
      SlotSignature sig;
      sig.kind = Kind::kOrdered;
      sig.order = std::move(order);
      opts.push_back(std::move(sig));
    };
    for (const BoundJoin& j : query.JoinsOn(s)) {
      auto side = j.SideOn(s);
      add_order({*side});
    }
    if (!query.group_by.empty()) {
      bool all_here = true;
      for (const BoundColumn& c : query.group_by) all_here &= c.slot == s;
      if (all_here) add_order(query.group_by);
    }
    if (!query.order_by.empty()) {
      std::vector<BoundColumn> ob;
      for (const BoundOrderItem& o : query.order_by) {
        if (o.descending || o.column.slot != s) break;
        ob.push_back(o.column);
      }
      if (ob.size() == query.order_by.size()) add_order(ob);
    }
    if (options_.enable_param_signatures && n > 1) {
      for (const BoundJoin& j : query.JoinsOn(s)) {
        auto side = j.SideOn(s);
        bool dup = false;
        for (const SlotSignature& sig : opts) {
          if (sig.kind == Kind::kParamLookup && sig.lookup_col == *side) {
            dup = true;
            break;
          }
        }
        if (dup) continue;
        SlotSignature sig;
        sig.kind = Kind::kParamLookup;
        sig.lookup_col = *side;
        opts.push_back(std::move(sig));
      }
    }
  }

  // Bound the combination count (drop param signatures first).
  auto combo_count = [&]() {
    long long c = 1;
    for (const auto& o : options) c *= static_cast<long long>(o.size());
    return c;
  };
  if (combo_count() > options_.max_combos) {
    for (auto& opts : options) {
      opts.erase(std::remove_if(opts.begin(), opts.end(),
                                [](const SlotSignature& s) {
                                  return s.kind == Kind::kParamLookup;
                                }),
                 opts.end());
    }
  }
  while (combo_count() > options_.max_combos) {
    // Still too many: drop the last order option of the widest slot.
    size_t widest = 0;
    for (size_t s = 1; s < options.size(); ++s) {
      if (options[s].size() > options[widest].size()) widest = s;
    }
    if (options[widest].size() <= 1) break;
    options[widest].pop_back();
  }

  // Materialize the combination list (odometer order), then run the
  // independent abstract DP enumerations across the pool. Per-combo
  // results land in their own slots and are collected back in odometer
  // order, so the plan list is bit-identical to a serial build.
  std::vector<std::vector<SlotSignature>> combos;
  std::vector<size_t> idx(static_cast<size_t>(n), 0);
  while (true) {
    std::vector<SlotSignature> combo;
    combo.reserve(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s) {
      combo.push_back(options[static_cast<size_t>(s)][idx[static_cast<size_t>(s)]]);
    }
    combos.push_back(std::move(combo));

    // Advance the odometer.
    int pos = 0;
    while (pos < n) {
      if (++idx[static_cast<size_t>(pos)] <
          options[static_cast<size_t>(pos)].size()) {
        break;
      }
      idx[static_cast<size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == n) break;
  }

  std::vector<std::optional<CachedPlan>> slots_out(combos.size());
  int threads = ThreadPool::Resolve(params_.num_threads);
  ThreadPool::Shared().ParallelFor(combos.size(), threads, [&](size_t c) {
    AbstractProvider provider(ctx, combos[c]);
    PlanResult result = optimizer_.OptimizeWithProvider(query, empty, provider);
    if (result.root != nullptr && result.cost < kInfeasibleThreshold) {
      CachedPlan plan;
      plan.slots = combos[c];
      CollectInljTerms(*result.root, &plan.inlj_terms);
      double inlj_total = 0.0;
      for (const auto& term : plan.inlj_terms) {
        ParamLookupPath lk = AbstractLookup(ctx, term.slot, term.inner_col);
        inlj_total += term.outer_rows * lk.per_lookup.total;
      }
      plan.internal_cost = result.cost - inlj_total;
      slots_out[c] = std::move(plan);
    }
  });

  std::vector<CachedPlan> plans;
  plans.reserve(combos.size());
  for (std::optional<CachedPlan>& p : slots_out) {
    if (p.has_value()) plans.push_back(std::move(*p));
  }

  DBD_LOG_DEBUG(StrFormat("INUM populated %zu plans for query", plans.size()));

  // Assemble the reuse-side acceleration structures: the distinct order
  // requirements per slot and each plan's requirement index.
  BuiltCache built;
  built.combos = combos.size();
  QueryCache& qc = built.qc;
  qc.sql_key = query.ToSql(backend_->catalog());
  qc.plans = std::move(plans);
  qc.slot_orders.resize(static_cast<size_t>(n));
  for (CachedPlan& plan : qc.plans) {
    plan.order_req.assign(static_cast<size_t>(n), -1);
    for (int s = 0; s < n; ++s) {
      const SlotSignature& sig = plan.slots[static_cast<size_t>(s)];
      if (sig.kind != Kind::kOrdered) continue;
      auto& reqs = qc.slot_orders[static_cast<size_t>(s)];
      int found = -1;
      for (size_t k = 0; k < reqs.size(); ++k) {
        if (reqs[k] == sig.order) found = static_cast<int>(k);
      }
      if (found < 0) {
        found = static_cast<int>(reqs.size());
        reqs.push_back(sig.order);
      }
      plan.order_req[static_cast<size_t>(s)] = found;
    }
  }
  return built;
}

void InumCostModel::PreparePtrs(const std::vector<const BoundQuery*>& missing) {
  // Build the missing caches in parallel (each task owns one query),
  // then insert serially in first-seen order so cache contents and
  // stats counters match serial Prepare calls exactly.
  std::vector<BuiltCache> built(missing.size());
  int threads = ThreadPool::Resolve(params_.num_threads);
  ThreadPool::Shared().ParallelFor(missing.size(), threads, [&](size_t u) {
    built[u] = BuildCache(*missing[u]);
  });
  for (size_t u = 0; u < missing.size(); ++u) {
    auto [ins, ok] =
        cache_.emplace(missing[u]->StructuralHash(), std::move(built[u].qc));
    stats_.populate_optimizations += built[u].combos;
    stats_.plans_cached += ins->second.plans.size();
  }
  stats_.queries_cached = cache_.size();
}

void InumCostModel::PrepareQueries(std::span<const BoundQuery> queries) {
  std::vector<const BoundQuery*> missing;
  std::unordered_set<uint64_t> seen;
  for (const BoundQuery& q : queries) {
    uint64_t key = q.StructuralHash();
    auto hit = cache_.find(key);
    if (hit != cache_.end()) {
      DBD_DCHECK(hit->second.sql_key == q.ToSql(backend_->catalog()) &&
                 "StructuralHash collision: two different queries share an "
                 "atom-cache key");
      continue;
    }
    if (seen.insert(key).second) missing.push_back(&q);
  }
  PreparePtrs(missing);
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t MixHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Structural hash of an index (no allocation).
uint64_t IndexHash(const IndexDef& idx) {
  uint64_t h = MixHash(static_cast<uint64_t>(idx.table) + 0x517cc1b7ULL);
  for (ColumnId c : idx.columns) {
    h = MixHash(h ^ (static_cast<uint64_t>(c) + 0x9e3779b97f4a7c15ULL));
  }
  return h;
}

/// Structural hash of a table's partitioning under `design`
/// (0 = unpartitioned, the common fast path).
uint64_t PartitionHash(const PhysicalDesign& design, TableId t) {
  const VerticalPartitioning* vp = design.vertical(t);
  const HorizontalPartitioning* hp = design.horizontal(t);
  if (vp == nullptr && hp == nullptr) return 0;
  uint64_t h = 0x2545f4914f6cdd1dULL;
  if (vp != nullptr) {
    for (const VerticalFragment& f : vp->fragments) {
      h = MixHash(h ^ 0xf1ea5eedULL);
      for (ColumnId c : f.columns) {
        h = MixHash(h ^ (static_cast<uint64_t>(c) + 1));
      }
    }
  }
  if (hp != nullptr) {
    h = MixHash(h ^ (static_cast<uint64_t>(hp->column) + 0xabcdULL));
    for (const Value& b : hp->bounds) h = MixHash(h ^ b.Hash());
  }
  return h;
}

}  // namespace

double InumCostModel::ReuseCost(const BoundQuery& query, QueryCache& qc,
                                const PhysicalDesign& design) {
  PlannerContext ctx = optimizer_.MakeContext(query, design);
  int n = query.num_slots();
  using Kind = SlotSignature::Kind;

  // Per-slot leaf prices under this design, via the query's leaf memo.
  // slot_any[s] = cheapest unordered leaf; slot_order[s][k] = cheapest
  // leaf delivering order requirement k. Fixed-size scratch: at most 16
  // slots and 16 order requirements per slot (enforced at populate).
  double slot_any[16];
  double slot_order[16][16];
  for (int s = 0; s < n; ++s) {
    TableId t = query.tables[s];
    uint64_t ph = PartitionHash(design, t);

    uint64_t seq_key = MixHash(ph ^ (static_cast<uint64_t>(s) + 0x51ULL));
    auto [seq_it, seq_new] = qc.seq_memo.try_emplace(seq_key, 0.0);
    if (seq_new) seq_it->second = CostSeqLeaf(ctx, s);

    double any = seq_it->second;
    double* order_min = slot_order[s];
    size_t num_orders = qc.slot_orders[static_cast<size_t>(s)].size();
    for (size_t k = 0; k < num_orders; ++k) order_min[k] = kInf;

    auto [first, last] = design.IndexRange(t);
    for (const IndexDef* idx = first; idx != last; ++idx) {
      uint64_t lkey =
          MixHash(IndexHash(*idx) ^ ph ^ (static_cast<uint64_t>(s) << 32));
      auto [it, inserted] = qc.leaf_memo.try_emplace(lkey);
      if (inserted) {
        IndexLeafCost lc = CostIndexLeaf(ctx, s, *idx);
        it->second.scan_cost = lc.scan_cost;
        it->second.index_only_cost = lc.index_only_cost;
        it->second.satisfies_mask = 0;
        const auto& reqs = qc.slot_orders[static_cast<size_t>(s)];
        for (size_t k = 0; k < reqs.size(); ++k) {
          if (OrderSatisfies(lc.order, reqs[k])) {
            it->second.satisfies_mask |= uint32_t{1} << k;
          }
        }
      }
      const LeafEntry& e = it->second;
      double best = std::min(e.scan_cost, e.index_only_cost);
      if (best < any) any = best;
      uint32_t mask = e.satisfies_mask;
      while (mask != 0) {
        int k = std::countr_zero(mask);
        mask &= mask - 1;
        if (best < order_min[static_cast<size_t>(k)]) {
          order_min[static_cast<size_t>(k)] = best;
        }
      }
    }
    slot_any[s] = any;
  }

  // Parameterized lookup price per (slot, column) under this design.
  auto param_cost = [&](int s, const BoundColumn& col) {
    TableId t = query.tables[s];
    double best = kInf;
    auto [first, last] = design.IndexRange(t);
    for (const IndexDef* idx = first; idx != last; ++idx) {
      uint64_t pkey =
          MixHash(IndexHash(*idx) ^
                  (static_cast<uint64_t>(col.column) + 7) ^
                  (static_cast<uint64_t>(s) << 48));
      auto [it, inserted] = qc.param_memo.try_emplace(pkey, kInf);
      if (inserted) {
        auto lk = CostIndexParamLookup(ctx, s, col, *idx);
        if (lk.has_value()) it->second = lk->per_lookup.total;
      }
      best = std::min(best, it->second);
    }
    return best;
  };

  double best = kInf;
  for (const CachedPlan& plan : qc.plans) {
    double cost = plan.internal_cost;
    bool usable = true;
    for (int s = 0; s < n && usable; ++s) {
      const SlotSignature& sig = plan.slots[static_cast<size_t>(s)];
      switch (sig.kind) {
        case Kind::kAny:
          cost += slot_any[s];
          break;
        case Kind::kOrdered: {
          double leaf = slot_order[static_cast<size_t>(s)]
                                  [static_cast<size_t>(
                                      plan.order_req[static_cast<size_t>(s)])];
          if (!std::isfinite(leaf)) {
            usable = false;
          } else {
            cost += leaf;
          }
          break;
        }
        case Kind::kParamLookup:
          break;  // priced via the INLJ term below
      }
    }
    if (!usable) continue;
    for (const CachedPlan::InljTerm& term : plan.inlj_terms) {
      double lk = param_cost(term.slot, term.inner_col);
      if (!std::isfinite(lk)) {
        usable = false;
        break;
      }
      cost += term.outer_rows * lk;
    }
    if (usable && cost < best) best = cost;
  }
  return best;
}

double InumCostModel::ExactCost(const BoundQuery& query,
                                const PhysicalDesign& design) {
  Result<double> cost = exact_.TryCostUnder(query, design);
  if (!cost.ok()) {
    // Never a sentinel: the failure travels as a Status (wrapped in the
    // internal exception carrier so it can cross double-returning
    // frames and cancel parallel shards) until a Try* boundary
    // converts it back.
    throw StatusException(cost.status());
  }
  return cost.value();
}

double InumCostModel::Cost(const BoundQuery& query,
                           const PhysicalDesign& design) {
  if (options_.force_exact || query.num_slots() > 16) {
    // force_exact routes everything to the backend; num_slots is the
    // reuse scratch capacity (never hit by the engine, which caps FROM
    // lists well below this). Either way: answer exactly.
    ++stats_.fallback_calls;
    return ExactCost(query, design);
  }
  QueryCache& qc = Populate(query);
  ++stats_.reuse_calls;
  double cost = ReuseCost(query, qc, design);
  if (!std::isfinite(cost)) {
    ++stats_.fallback_calls;
    return ExactCost(query, design);
  }
  return cost;
}

Result<double> InumCostModel::TryCost(const BoundQuery& query,
                                      const PhysicalDesign& design) {
  try {
    return Cost(query, design);
  } catch (const StatusException& e) {
    return e.status();
  }
}

double InumCostModel::CostCached(const BoundQuery& query,
                                 const PhysicalDesign& design,
                                 InumStats* stats) {
  return CostPrepared(query, design, stats);
}

Result<double> InumCostModel::TryCostCached(const BoundQuery& query,
                                            const PhysicalDesign& design,
                                            InumStats* stats) {
  try {
    return CostPrepared(query, design, stats);
  } catch (const StatusException& e) {
    return e.status();
  }
}

double InumCostModel::CostPrepared(const BoundQuery& query,
                                   const PhysicalDesign& design,
                                   InumStats* stats) {
  if (options_.force_exact || query.num_slots() > 16) {
    ++stats->fallback_calls;
    return ExactCost(query, design);
  }
  auto it = cache_.find(query.StructuralHash());
  if (it == cache_.end()) {
    // Callers populate first; an unseen query still answers correctly.
    ++stats->fallback_calls;
    return ExactCost(query, design);
  }
  ++stats->reuse_calls;
  double cost = ReuseCost(query, it->second, design);
  if (!std::isfinite(cost)) {
    ++stats->fallback_calls;
    return ExactCost(query, design);
  }
  return cost;
}

std::vector<std::vector<double>> InumCostModel::CostMatrix(
    const Workload& workload, std::span<const PhysicalDesign> designs) {
  // Shard by query: distinct queries (first-seen order) are the work
  // units, and one worker prices a query under every design so its
  // cache memos never see two threads.
  StructuralDedup dedup = DedupByStructure(std::span<const BoundQuery>(
      workload.queries.data(), workload.queries.size()));
  const std::vector<size_t>& distinct = dedup.distinct;

  // Populate reuse-eligible caches up front (parallel inside).
  std::vector<const BoundQuery*> to_prepare;
  for (size_t u : distinct) {
    const BoundQuery& q = workload.queries[u];
    if (q.num_slots() <= 16 && cache_.find(q.StructuralHash()) == cache_.end()) {
      to_prepare.push_back(&q);
    }
  }
  PreparePtrs(to_prepare);

  std::vector<std::vector<double>> per_distinct(
      designs.size(), std::vector<double>(distinct.size(), 0.0));
  std::vector<InumStats> deltas(distinct.size());
  int threads = ThreadPool::Resolve(params_.num_threads);
  ThreadPool::Shared().ParallelFor(distinct.size(), threads, [&](size_t u) {
    const BoundQuery& q = workload.queries[distinct[u]];
    for (size_t d = 0; d < designs.size(); ++d) {
      per_distinct[d][u] = CostPrepared(q, designs[d], &deltas[u]);
    }
  });
  for (const InumStats& delta : deltas) {
    stats_.reuse_calls += delta.reuse_calls;
    stats_.fallback_calls += delta.fallback_calls;
  }

  std::vector<std::vector<double>> out(
      designs.size(), std::vector<double>(workload.size(), 0.0));
  for (size_t d = 0; d < designs.size(); ++d) {
    for (size_t i = 0; i < workload.size(); ++i) {
      out[d][i] = per_distinct[d][dedup.owner[i]];
    }
  }
  return out;
}

Result<std::vector<std::vector<double>>> InumCostModel::TryCostMatrix(
    const Workload& workload, std::span<const PhysicalDesign> designs) {
  try {
    return CostMatrix(workload, designs);
  } catch (const StatusException& e) {
    return e.status();
  }
}

double InumCostModel::WorkloadCost(const Workload& workload,
                                   const PhysicalDesign& design) {
  std::vector<std::vector<double>> m =
      CostMatrix(workload, std::span<const PhysicalDesign>(&design, 1));
  double total = 0.0;
  for (size_t i = 0; i < workload.size(); ++i) {
    total += workload.WeightOf(i) * m[0][i];
  }
  return total;
}

Result<double> InumCostModel::TryWorkloadCost(const Workload& workload,
                                              const PhysicalDesign& design) {
  try {
    return WorkloadCost(workload, design);
  } catch (const StatusException& e) {
    return e.status();
  }
}

}  // namespace dbdesign
