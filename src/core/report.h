// Text renderers for the designer's outputs — the portable equivalents
// of the demo GUI's panels (Figure 3's suggestion panel, index lists,
// materialization schedules, benefit breakdowns).

#ifndef DBDESIGN_CORE_REPORT_H_
#define DBDESIGN_CORE_REPORT_H_

#include <string>

#include "core/designer.h"

namespace dbdesign {

class Database;  // legacy convenience overloads only

/// Figure 3-style panel: per-query benefit plus the average workload
/// benefit for a proposed design.
std::string RenderBenefitPanel(const Catalog& catalog,
                               const Workload& workload,
                               const BenefitReport& report);

/// Suggested-index list with sizes, one row per index.
std::string RenderIndexList(const Catalog& catalog,
                            const DbmsBackend& backend,
                            const std::vector<IndexDef>& indexes);
/// Legacy convenience overload (defined in backend/compat.cc).
std::string RenderIndexList(const Catalog& catalog, const Database& db,
                            const std::vector<IndexDef>& indexes);

/// Suggested-partition panel (fragments per table, replication factors,
/// horizontal ranges) for a partition recommendation.
std::string RenderPartitionPanel(const Catalog& catalog,
                                 const PartitionRecommendation& rec);

/// Materialization schedule table: step, index, build effort, marginal
/// benefit, workload cost after the step.
std::string RenderSchedule(const Catalog& catalog,
                           const MaterializationSchedule& schedule);

/// Scenario-2 summary combining all of the above.
std::string RenderOfflineRecommendation(const Catalog& catalog,
                                        const DbmsBackend& backend,
                                        const Workload& workload,
                                        const OfflineRecommendation& rec);
/// Legacy convenience overload (defined in backend/compat.cc).
std::string RenderOfflineRecommendation(const Catalog& catalog,
                                        const Database& db,
                                        const Workload& workload,
                                        const OfflineRecommendation& rec);

/// JSON rendering of a benefit report (per-query costs + averages) for
/// GUI front ends.
std::string RenderBenefitJson(const Catalog& catalog,
                              const Workload& workload,
                              const BenefitReport& report);

}  // namespace dbdesign

#endif  // DBDESIGN_CORE_REPORT_H_
