// DesignConstraints: the DBA's side of the interactive tuning loop.
//
// The paper's demo is a conversation: the designer proposes, the DBA
// reacts — "keep this index no matter what", "never suggest an index on
// that column", "at most two indexes on photoobj", "here is the real
// storage budget", "don't touch partitioning on the fact table" — and
// the system re-solves fast enough to feel interactive. This header is
// the vocabulary of that conversation:
//
//   * DesignConstraints — the full constraint state every advisor
//     honors. CoPhy encodes pins/vetoes as variable fixings (y_i = 1 /
//     y_i = 0) and per-table caps as extra BIP rows, so a constraint
//     edit re-solves against the cached atom matrix without touching
//     INUM or the backend. Greedy and COLT filter candidates; AutoPart
//     consults the partitioning allow/deny lists.
//   * ConstraintDelta — one DBA edit between recommendations, the
//     argument of DesignSession::Refine.
//
// Constraints serialize to JSON (util/json) so a tuning session —
// constraints, snapshots, current design — survives process restart.

#ifndef DBDESIGN_CORE_CONSTRAINTS_H_
#define DBDESIGN_CORE_CONSTRAINTS_H_

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "catalog/design.h"
#include "util/json.h"

namespace dbdesign {

/// A (table, column) pair the DBA has vetoed for indexing: no
/// recommended index may contain the column anywhere in its key.
struct ColumnRef {
  TableId table = kInvalidTableId;
  ColumnId column = kInvalidColumnId;

  bool operator==(const ColumnRef&) const = default;
  bool operator<(const ColumnRef& o) const {
    if (table != o.table) return table < o.table;
    return column < o.column;
  }

  std::string DisplayName(const Catalog& catalog) const;
};

/// The complete constraint state of a tuning session. Default
/// constructed = unconstrained (every advisor behaves as before).
struct DesignConstraints {
  /// Indexes that must appear in every recommendation, feasibility
  /// permitting (infeasible pins are reported, never silently dropped).
  std::vector<IndexDef> pinned_indexes;
  /// Indexes that must never be recommended.
  std::vector<IndexDef> vetoed_indexes;
  /// Columns no recommended index may touch.
  std::vector<ColumnRef> vetoed_columns;
  /// Per-table ceiling on the number of *recommended* indexes.
  std::map<TableId, int> max_indexes_per_table;
  /// Storage budget for recommended indexes, in pages. Combined with an
  /// advisor's own budget as min(both).
  double storage_budget_pages = std::numeric_limits<double>::infinity();

  /// Partitioning control (AutoPart): master switch + per-table lists.
  /// An empty allow list means "all tables allowed".
  bool partitioning_enabled = true;
  std::vector<TableId> partition_allowed_tables;
  std::vector<TableId> partition_denied_tables;

  // --- Queries ---
  bool unconstrained() const;
  bool IsPinned(const IndexDef& index) const;
  /// True when `index` is explicitly vetoed or touches a vetoed column.
  bool IsVetoed(const IndexDef& index) const;
  bool PartitioningAllowed(TableId table) const;
  /// Per-table cap, or nullopt when the table is uncapped.
  std::optional<int> TableCap(TableId table) const;
  /// Loop-friendly form: the cap, or INT_MAX when uncapped.
  int TableCapOrUnlimited(TableId table) const;
  /// min(advisor_budget, storage_budget_pages).
  double EffectiveBudget(double advisor_budget_pages) const;

  // --- Mutations (idempotent; Pin removes a matching veto and vice
  // versa is rejected by Validate, not silently resolved) ---
  void Pin(const IndexDef& index);
  void Unpin(const IndexDef& index);
  void Veto(const IndexDef& index);
  void Unveto(const IndexDef& index);
  void VetoColumn(const ColumnRef& column);
  void UnvetoColumn(const ColumnRef& column);

  /// Checks internal consistency and id validity: table/column ids in
  /// range, no index both pinned and vetoed, no pin touching a vetoed
  /// column, pins per table within the table's cap, caps non-negative.
  Status Validate(const Catalog& catalog) const;

  /// Deterministic JSON encoding (round-trips via FromJson).
  Json ToJson() const;
  static Result<DesignConstraints> FromJson(const Json& j,
                                            const Catalog& catalog);

  bool operator==(const DesignConstraints&) const = default;
};

/// One DBA edit between recommendations — the argument of
/// DesignSession::Refine. Every field is optional; an empty delta
/// re-solves under unchanged constraints.
struct ConstraintDelta {
  std::vector<IndexDef> pin;
  std::vector<IndexDef> unpin;
  std::vector<IndexDef> veto;
  std::vector<IndexDef> unveto;
  std::vector<ColumnRef> veto_columns;
  std::vector<ColumnRef> unveto_columns;
  /// New storage budget; infinity clears it.
  std::optional<double> storage_budget_pages;
  /// Per-table caps to set; a negative cap clears the table's cap.
  std::map<TableId, int> table_caps;
  std::optional<bool> partitioning_enabled;
  std::vector<TableId> allow_partitioning;
  std::vector<TableId> deny_partitioning;

  bool empty() const;
  /// Human-readable summary for the session action log, e.g.
  /// "PIN idx_photoobj_ra, VETO idx_specobj_z, BUDGET 1200".
  std::string Describe(const Catalog& catalog) const;
};

/// Applies `delta` to `constraints` (in order: unpin/unveto first, then
/// pins/vetoes/caps/budget) and validates the result; on error the
/// constraints are left unchanged.
Status ApplyConstraintDelta(const ConstraintDelta& delta,
                            const Catalog& catalog,
                            DesignConstraints* constraints);

/// True when `now` only tightens the *index-selection* feasible region
/// relative to `solved`: pins and vetoes are supersets, the budget is
/// no larger, and every old per-table cap still holds (possibly
/// tighter). Partitioning fields are ignored — they do not enter the
/// index BIP. This is the certificate behind instant re-recommendation:
/// a proven-optimal solution of the `solved` problem that stays
/// feasible under `now` is still optimal (the feasible set only
/// shrank), so Refine can reuse it without any solver work.
bool TightensIndexConstraints(const DesignConstraints& solved,
                              const DesignConstraints& now);

}  // namespace dbdesign

#endif  // DBDESIGN_CORE_CONSTRAINTS_H_
