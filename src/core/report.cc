#include "core/report.h"

#include <algorithm>

#include "util/str.h"

namespace dbdesign {

std::string RenderBenefitPanel(const Catalog& catalog,
                               const Workload& workload,
                               const BenefitReport& report) {
  std::string out;
  out += "+-----+----------------------------------------------+------------+------------+---------+\n";
  out += "| q#  | query                                        |   base     |   new      | benefit |\n";
  out += "+-----+----------------------------------------------+------------+------------+---------+\n";
  for (size_t i = 0; i < workload.size(); ++i) {
    std::string sql = workload.queries[i].ToSql(catalog);
    if (sql.size() > 44) sql = sql.substr(0, 41) + "...";
    out += StrFormat("| %-3zu | %-44s | %10.1f | %10.1f | %6.1f%% |\n", i,
                     sql.c_str(), report.base_costs[i], report.new_costs[i],
                     report.query_benefit(i) * 100.0);
  }
  out += "+-----+----------------------------------------------+------------+------------+---------+\n";
  out += StrFormat("| average workload benefit: %5.1f%%  (total %.1f -> %.1f)%*s|\n",
                   report.average_benefit() * 100.0, report.base_total,
                   report.new_total, 22, "");
  out += "+--------------------------------------------------------------------------------------+\n";
  return out;
}

std::string RenderIndexList(const Catalog& catalog,
                            const DbmsBackend& backend,
                            const std::vector<IndexDef>& indexes) {
  std::string out;
  out += "Suggested indexes:\n";
  if (indexes.empty()) {
    out += "  (none)\n";
    return out;
  }
  for (const IndexDef& idx : indexes) {
    IndexSizeEstimate sz = backend.EstimateIndexSize(idx);
    std::vector<std::string> cols;
    for (ColumnId c : idx.columns) {
      cols.push_back(catalog.table(idx.table).column(c).name);
    }
    out += StrFormat("  CREATE INDEX %s ON %s (%s);  -- %s\n",
                     idx.DisplayName(catalog).c_str(),
                     catalog.table(idx.table).name().c_str(),
                     StrJoin(cols, ", ").c_str(),
                     FormatBytes(sz.total_pages() * kPageSizeBytes).c_str());
  }
  return out;
}

std::string RenderPartitionPanel(const Catalog& catalog,
                                 const PartitionRecommendation& rec) {
  std::string out;
  out += "Suggested partitions:\n";
  bool any = false;
  for (const auto& report : rec.tables) {
    const TableDef& def = catalog.table(report.table);
    if (report.num_fragments > 1) {
      any = true;
      const VerticalPartitioning* vp = rec.design.vertical(report.table);
      out += StrFormat("  %s: %d vertical fragments (replication %.2fx)\n",
                       def.name().c_str(), report.num_fragments,
                       report.replication_factor);
      if (vp != nullptr) {
        for (size_t f = 0; f < vp->fragments.size(); ++f) {
          std::vector<std::string> cols;
          for (ColumnId c : vp->fragments[f].columns) {
            cols.push_back(def.column(c).name);
          }
          out += StrFormat("    %s__f%zu (%s)\n", def.name().c_str(), f,
                           StrJoin(cols, ", ").c_str());
        }
      }
    }
    if (report.horizontal) {
      any = true;
      const HorizontalPartitioning* hp = rec.design.horizontal(report.table);
      out += StrFormat("  %s: %d horizontal range partitions on %s\n",
                       def.name().c_str(), report.horizontal_parts,
                       hp != nullptr
                           ? def.column(hp->column).name.c_str()
                           : "?");
    }
  }
  if (!any) out += "  (none beneficial)\n";
  out += StrFormat("Average workload benefit from partitioning: %.1f%%\n",
                   rec.AverageBenefit() * 100.0);
  return out;
}

std::string RenderSchedule(const Catalog& catalog,
                           const MaterializationSchedule& schedule) {
  std::string out;
  out += "Materialization schedule (interaction-aware greedy):\n";
  out += "  step  index                                     build(pages)  benefit     cost-after\n";
  for (size_t k = 0; k < schedule.steps.size(); ++k) {
    const ScheduleStep& s = schedule.steps[k];
    out += StrFormat("  %-5zu %-40s  %11.0f  %10.1f  %10.1f\n", k + 1,
                     s.index.DisplayName(catalog).c_str(), s.build_pages,
                     s.marginal_benefit, s.cost_after);
  }
  out += StrFormat("  workload cost: %.1f -> %.1f, benefit area %.1f\n",
                   schedule.base_cost, schedule.final_cost,
                   schedule.BenefitArea());
  return out;
}

std::string RenderBenefitJson(const Catalog& /*catalog*/,
                              const Workload& workload,
                              const BenefitReport& report) {
  std::string out = "{\n  \"queries\": [";
  for (size_t i = 0; i < workload.size(); ++i) {
    if (i > 0) out += ", ";
    // Escape is unnecessary: generated SQL contains no quotes beyond
    // single-quoted literals.
    out += StrFormat(
        "{\"id\": %zu, \"base_cost\": %.4f, \"new_cost\": %.4f, "
        "\"benefit\": %.6f}",
        i, report.base_costs[i], report.new_costs[i],
        report.query_benefit(i));
  }
  out += StrFormat(
      "],\n  \"base_total\": %.4f,\n  \"new_total\": %.4f,\n"
      "  \"average_benefit\": %.6f\n}\n",
      report.base_total, report.new_total, report.average_benefit());
  return out;
}

std::string RenderOfflineRecommendation(const Catalog& catalog,
                                        const DbmsBackend& backend,
                                        const Workload& workload,
                                        const OfflineRecommendation& rec) {
  std::string out;
  out += StrFormat(
      "=== Automatic physical design recommendation ===\n"
      "workload: %zu queries; base cost %.1f\n\n",
      workload.size(), rec.base_cost);
  out += RenderIndexList(catalog, backend, rec.indexes.indexes);
  out += StrFormat(
      "  index-only cost: %.1f (%.1f%% better; solver gap %.2f%%, %s)\n\n",
      rec.indexes.recommended_cost, rec.indexes.improvement() * 100.0,
      rec.indexes.gap * 100.0,
      rec.indexes.proven_optimal ? "proven optimal" : "budget-limited");
  out += RenderPartitionPanel(catalog, rec.partitions);
  out += "\n";
  out += RenderSchedule(catalog, rec.schedule);
  out += StrFormat("\ncombined design cost: %.1f (%.1f%% better than base)\n",
                   rec.combined_cost, rec.improvement() * 100.0);
  return out;
}

}  // namespace dbdesign
