#include "core/designer.h"

#include <span>

namespace dbdesign {

Designer::Designer(DbmsBackend& backend, DesignerOptions options)
    : backend_(&backend),
      options_(std::move(options)),
      whatif_(backend),
      inum_(backend, options_.cophy.inum) {}

Designer::Designer(std::shared_ptr<DbmsBackend> owned, DesignerOptions options)
    : owned_backend_(std::move(owned)),
      backend_(owned_backend_.get()),
      options_(std::move(options)),
      whatif_(*backend_),
      inum_(*backend_, options_.cophy.inum) {}

BenefitReport Designer::EvaluateDesign(const Workload& workload,
                                       const PhysicalDesign& design) {
  std::vector<BenefitReport> reports = EvaluateDesigns(workload, {design});
  return std::move(reports.front());
}

std::vector<BenefitReport> Designer::EvaluateDesigns(
    const Workload& workload, const std::vector<PhysicalDesign>& designs) {
  // One INUM populate per query serves the baseline and every candidate
  // design; each additional design reprices only the plan leaves. The
  // cost matrix shards distinct queries across the pool (baseline is
  // row 0), so K candidates evaluate in parallel with results identical
  // to the serial loops.
  std::vector<PhysicalDesign> all;
  all.reserve(designs.size() + 1);
  all.emplace_back();  // empty baseline design
  for (const PhysicalDesign& d : designs) all.push_back(d);
  std::vector<std::vector<double>> matrix = inum_.CostMatrix(
      workload, std::span<const PhysicalDesign>(all.data(), all.size()));

  std::vector<BenefitReport> reports;
  reports.reserve(designs.size());
  for (size_t d = 0; d < designs.size(); ++d) {
    BenefitReport report;
    report.base_costs = matrix[0];
    report.new_costs = std::move(matrix[d + 1]);
    for (size_t i = 0; i < workload.size(); ++i) {
      double w = workload.WeightOf(i);
      report.base_total += w * report.base_costs[i];
      report.new_total += w * report.new_costs[i];
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

Result<std::vector<BenefitReport>> Designer::TryEvaluateDesigns(
    const Workload& workload, const std::vector<PhysicalDesign>& designs) {
  try {
    return EvaluateDesigns(workload, designs);
  } catch (const StatusException& e) {
    return e.status();
  }
}

InteractionGraph Designer::AnalyzeInteractions(
    const Workload& workload, const std::vector<IndexDef>& indexes) {
  InteractionAnalyzer analyzer(inum_, options_.doi);
  std::vector<InteractionEdge> edges = analyzer.Analyze(workload, indexes);
  return InteractionGraph(backend_->catalog(), indexes, std::move(edges));
}

OfflineRecommendation Designer::RecommendOffline(
    const Workload& workload, double storage_budget_pages) {
  Result<OfflineRecommendation> rec =
      TryRecommendOffline(workload, storage_budget_pages, {});
  // Unconstrained pipelines cannot fail validation.
  return rec.ok() ? std::move(rec).value() : OfflineRecommendation{};
}

Result<OfflineRecommendation> Designer::TryRecommendOffline(
    const Workload& workload, double storage_budget_pages,
    const DesignConstraints& constraints) {
  OfflineRecommendation rec;

  CoPhyOptions copts = options_.cophy;
  copts.storage_budget_pages = storage_budget_pages;
  CoPhyAdvisor cophy(*backend_, copts);
  Result<IndexRecommendation> indexes =
      cophy.TryRecommend(workload, constraints);
  if (!indexes.ok()) return indexes.status();
  rec.indexes = std::move(indexes).value();

  AutoPartAdvisor autopart(*backend_, options_.autopart);
  rec.partitions = autopart.Recommend(workload, constraints);

  // Combined design: partitions plus the recommended indexes.
  rec.combined = rec.partitions.design;
  for (const IndexDef& idx : rec.indexes.indexes) rec.combined.AddIndex(idx);

  rec.base_cost = inum_.WorkloadCost(workload, PhysicalDesign{});
  rec.combined_cost = inum_.WorkloadCost(workload, rec.combined);

  MaterializationScheduler scheduler(inum_);
  rec.schedule = scheduler.Greedy(workload, rec.indexes.indexes);
  return rec;
}

IndexRecommendation Designer::RecommendIndexes(
    const Workload& workload,
    const std::vector<CandidateIndex>& seed_candidates) {
  CoPhyAdvisor cophy(*backend_, options_.cophy);
  // Seed candidates are merged with mined ones (the DBA's suggestions
  // become part of the search space, as in the demo's interactive mode).
  std::vector<CandidateIndex> merged =
      GenerateCandidates(*backend_, workload, options_.cophy.candidates);
  for (const CandidateIndex& seed : seed_candidates) {
    bool dup = false;
    for (const CandidateIndex& c : merged) dup |= c.index == seed.index;
    if (!dup) merged.push_back(seed);
  }
  return cophy.RecommendWithCandidates(workload, merged);
}

MaterializationSchedule Designer::ScheduleMaterialization(
    const Workload& workload, const std::vector<IndexDef>& indexes) {
  MaterializationScheduler scheduler(inum_);
  return scheduler.Greedy(workload, indexes);
}

std::unique_ptr<ColtTuner> Designer::StartContinuousTuning() const {
  return std::make_unique<ColtTuner>(*backend_, options_.colt);
}

}  // namespace dbdesign
