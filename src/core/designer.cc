#include "core/designer.h"

namespace dbdesign {

Designer::Designer(const Database& db, DesignerOptions options)
    : db_(&db),
      options_(std::move(options)),
      whatif_(db, options_.params),
      inum_(db, options_.params) {}

BenefitReport Designer::EvaluateDesign(const Workload& workload,
                                       const PhysicalDesign& design) {
  BenefitReport report;
  report.base_costs.reserve(workload.size());
  report.new_costs.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    const BoundQuery& q = workload.queries[i];
    double w = workload.WeightOf(i);
    double base = inum_.Cost(q, PhysicalDesign{});
    double now = inum_.Cost(q, design);
    report.base_costs.push_back(base);
    report.new_costs.push_back(now);
    report.base_total += w * base;
    report.new_total += w * now;
  }
  return report;
}

InteractionGraph Designer::AnalyzeInteractions(
    const Workload& workload, const std::vector<IndexDef>& indexes) {
  InteractionAnalyzer analyzer(inum_, options_.doi);
  std::vector<InteractionEdge> edges = analyzer.Analyze(workload, indexes);
  return InteractionGraph(db_->catalog(), indexes, std::move(edges));
}

OfflineRecommendation Designer::RecommendOffline(
    const Workload& workload, double storage_budget_pages) {
  OfflineRecommendation rec;

  CoPhyOptions copts = options_.cophy;
  copts.storage_budget_pages = storage_budget_pages;
  CoPhyAdvisor cophy(*db_, options_.params, copts);
  rec.indexes = cophy.Recommend(workload);

  AutoPartAdvisor autopart(*db_, options_.params, options_.autopart);
  rec.partitions = autopart.Recommend(workload);

  // Combined design: partitions plus the recommended indexes.
  rec.combined = rec.partitions.design;
  for (const IndexDef& idx : rec.indexes.indexes) rec.combined.AddIndex(idx);

  rec.base_cost = inum_.WorkloadCost(workload, PhysicalDesign{});
  rec.combined_cost = inum_.WorkloadCost(workload, rec.combined);

  MaterializationScheduler scheduler(inum_);
  rec.schedule = scheduler.Greedy(workload, rec.indexes.indexes);
  return rec;
}

IndexRecommendation Designer::RecommendIndexes(
    const Workload& workload,
    const std::vector<CandidateIndex>& seed_candidates) {
  CoPhyAdvisor cophy(*db_, options_.params, options_.cophy);
  // Seed candidates are merged with mined ones (the DBA's suggestions
  // become part of the search space, as in the demo's interactive mode).
  std::vector<CandidateIndex> merged =
      GenerateCandidates(*db_, workload, options_.cophy.candidates);
  for (const CandidateIndex& seed : seed_candidates) {
    bool dup = false;
    for (const CandidateIndex& c : merged) dup |= c.index == seed.index;
    if (!dup) merged.push_back(seed);
  }
  return cophy.RecommendWithCandidates(workload, merged);
}

MaterializationSchedule Designer::ScheduleMaterialization(
    const Workload& workload, const std::vector<IndexDef>& indexes) {
  MaterializationScheduler scheduler(inum_);
  return scheduler.Greedy(workload, indexes);
}

std::unique_ptr<ColtTuner> Designer::StartContinuousTuning() const {
  return std::make_unique<ColtTuner>(*db_, options_.params, options_.colt);
}

}  // namespace dbdesign
