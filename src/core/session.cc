#include "core/session.h"

#include "util/str.h"

namespace dbdesign {

DesignSession::DesignSession(Designer& designer) : designer_(&designer) {}

void DesignSession::Checkpoint(std::string action) {
  undo_stack_.push_back(design());
  redo_stack_.clear();
  log_.push_back(std::move(action));
}

void DesignSession::Apply(const PhysicalDesign& target) {
  WhatIfOptimizer& whatif = designer_->whatif();
  whatif.ResetHypothetical();
  // Rebuild the overlay from the target design. ResetHypothetical
  // restores the materialized baseline; drop baseline indexes absent
  // from the target (copy first: dropping mutates the design), then add
  // the target's hypothetical indexes.
  std::vector<IndexDef> baseline = whatif.hypothetical_design().indexes();
  for (const IndexDef& idx : baseline) {
    if (!target.HasIndex(idx)) whatif.DropHypotheticalIndex(idx);
  }
  for (const IndexDef& idx : target.indexes()) {
    if (!whatif.hypothetical_design().HasIndex(idx)) {
      whatif.CreateHypotheticalIndex(idx);
    }
  }
  for (TableId t = 0; t < designer_->backend().catalog().num_tables(); ++t) {
    if (const VerticalPartitioning* vp = target.vertical(t)) {
      whatif.SetHypotheticalVerticalPartitioning(*vp);
    } else {
      whatif.ClearHypotheticalVerticalPartitioning(t);
    }
    if (const HorizontalPartitioning* hp = target.horizontal(t)) {
      whatif.SetHypotheticalHorizontalPartitioning(*hp);
    } else {
      whatif.ClearHypotheticalHorizontalPartitioning(t);
    }
  }
}

Status DesignSession::CreateIndex(const IndexDef& index) {
  Checkpoint("CREATE INDEX " +
             index.DisplayName(designer_->backend().catalog()));
  Status s = designer_->whatif().CreateHypotheticalIndex(index);
  if (!s.ok()) {
    undo_stack_.pop_back();
    log_.pop_back();
  }
  return s;
}

Status DesignSession::DropIndex(const IndexDef& index) {
  Checkpoint("DROP INDEX " + index.DisplayName(designer_->backend().catalog()));
  Status s = designer_->whatif().DropHypotheticalIndex(index);
  if (!s.ok()) {
    undo_stack_.pop_back();
    log_.pop_back();
  }
  return s;
}

Status DesignSession::SetVerticalPartitioning(VerticalPartitioning p) {
  const TableDef& def = designer_->backend().catalog().table(p.table);
  if (!p.CoversTable(def)) {
    return Status::InvalidArgument(
        "vertical partitioning does not cover table " + def.name());
  }
  Checkpoint(StrFormat("PARTITION %s INTO %zu FRAGMENTS",
                       def.name().c_str(), p.fragments.size()));
  designer_->whatif().SetHypotheticalVerticalPartitioning(std::move(p));
  return Status::OK();
}

Status DesignSession::ClearVerticalPartitioning(TableId table) {
  Checkpoint("UNPARTITION " +
             designer_->backend().catalog().table(table).name());
  designer_->whatif().ClearHypotheticalVerticalPartitioning(table);
  return Status::OK();
}

Status DesignSession::SetHorizontalPartitioning(HorizontalPartitioning p) {
  for (size_t i = 1; i < p.bounds.size(); ++i) {
    if (!(p.bounds[i - 1] < p.bounds[i])) {
      return Status::InvalidArgument(
          "horizontal partition bounds must be strictly increasing");
    }
  }
  const TableDef& def = designer_->backend().catalog().table(p.table);
  Checkpoint(StrFormat("PARTITION %s BY RANGE (%s), %d PARTITIONS",
                       def.name().c_str(),
                       def.column(p.column).name.c_str(),
                       p.num_partitions()));
  designer_->whatif().SetHypotheticalHorizontalPartitioning(std::move(p));
  return Status::OK();
}

Status DesignSession::ClearHorizontalPartitioning(TableId table) {
  Checkpoint("UNPARTITION RANGE " +
             designer_->backend().catalog().table(table).name());
  designer_->whatif().ClearHypotheticalHorizontalPartitioning(table);
  return Status::OK();
}

bool DesignSession::Undo() {
  if (undo_stack_.empty()) return false;
  redo_stack_.push_back(design());
  Apply(undo_stack_.back());
  undo_stack_.pop_back();
  log_.push_back("UNDO");
  return true;
}

bool DesignSession::Redo() {
  if (redo_stack_.empty()) return false;
  undo_stack_.push_back(design());
  Apply(redo_stack_.back());
  redo_stack_.pop_back();
  log_.push_back("REDO");
  return true;
}

void DesignSession::SaveSnapshot(const std::string& name) {
  snapshots_[name] = design();
  log_.push_back("SAVE " + name);
}

Status DesignSession::RestoreSnapshot(const std::string& name) {
  auto it = snapshots_.find(name);
  if (it == snapshots_.end()) {
    return Status::NotFound("snapshot '" + name + "'");
  }
  Checkpoint("RESTORE " + name);
  Apply(it->second);
  return Status::OK();
}

std::vector<std::string> DesignSession::SnapshotNames() const {
  std::vector<std::string> names;
  names.reserve(snapshots_.size());
  for (const auto& [name, d] : snapshots_) names.push_back(name);
  return names;
}

Result<BenefitReport> DesignSession::CompareSnapshot(
    const std::string& name, const Workload& workload) {
  auto it = snapshots_.find(name);
  if (it == snapshots_.end()) {
    return Status::NotFound("snapshot '" + name + "'");
  }
  return designer_->EvaluateDesign(workload, it->second);
}

}  // namespace dbdesign
