#include "core/session.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <span>
#include <sstream>

#include "catalog/design_json.h"
#include "interaction/doi.h"
#include "sql/binder.h"
#include "util/logging.h"
#include "util/str.h"

namespace dbdesign {

DesignSession::DesignSession(Designer& designer) : designer_(&designer) {}

DesignSession::~DesignSession() = default;

void DesignSession::Checkpoint(std::string action) {
  undo_stack_.push_back(design());
  redo_stack_.clear();
  log_.push_back(std::move(action));
}

void DesignSession::Apply(const PhysicalDesign& target) {
  WhatIfOptimizer& whatif = designer_->whatif();
  whatif.ResetHypothetical();
  // Rebuild the overlay from the target design. ResetHypothetical
  // restores the materialized baseline; drop baseline indexes absent
  // from the target (copy first: dropping mutates the design), then add
  // the target's hypothetical indexes.
  std::vector<IndexDef> baseline = whatif.hypothetical_design().indexes();
  for (const IndexDef& idx : baseline) {
    if (!target.HasIndex(idx)) whatif.DropHypotheticalIndex(idx);
  }
  for (const IndexDef& idx : target.indexes()) {
    if (!whatif.hypothetical_design().HasIndex(idx)) {
      whatif.CreateHypotheticalIndex(idx);
    }
  }
  for (TableId t = 0; t < designer_->backend().catalog().num_tables(); ++t) {
    if (const VerticalPartitioning* vp = target.vertical(t)) {
      whatif.SetHypotheticalVerticalPartitioning(*vp);
    } else {
      whatif.ClearHypotheticalVerticalPartitioning(t);
    }
    if (const HorizontalPartitioning* hp = target.horizontal(t)) {
      whatif.SetHypotheticalHorizontalPartitioning(*hp);
    } else {
      whatif.ClearHypotheticalHorizontalPartitioning(t);
    }
  }
}

Status DesignSession::CreateIndex(const IndexDef& index) {
  Checkpoint("CREATE INDEX " +
             index.DisplayName(designer_->backend().catalog()));
  Status s = designer_->whatif().CreateHypotheticalIndex(index);
  if (!s.ok()) {
    undo_stack_.pop_back();
    log_.pop_back();
  }
  return s;
}

Status DesignSession::DropIndex(const IndexDef& index) {
  Checkpoint("DROP INDEX " + index.DisplayName(designer_->backend().catalog()));
  Status s = designer_->whatif().DropHypotheticalIndex(index);
  if (!s.ok()) {
    undo_stack_.pop_back();
    log_.pop_back();
  }
  return s;
}

Status DesignSession::SetVerticalPartitioning(VerticalPartitioning p) {
  const TableDef& def = designer_->backend().catalog().table(p.table);
  if (!p.CoversTable(def)) {
    return Status::InvalidArgument(
        "vertical partitioning does not cover table " + def.name());
  }
  Checkpoint(StrFormat("PARTITION %s INTO %zu FRAGMENTS",
                       def.name().c_str(), p.fragments.size()));
  designer_->whatif().SetHypotheticalVerticalPartitioning(std::move(p));
  return Status::OK();
}

Status DesignSession::ClearVerticalPartitioning(TableId table) {
  Checkpoint("UNPARTITION " +
             designer_->backend().catalog().table(table).name());
  designer_->whatif().ClearHypotheticalVerticalPartitioning(table);
  return Status::OK();
}

Status DesignSession::SetHorizontalPartitioning(HorizontalPartitioning p) {
  for (size_t i = 1; i < p.bounds.size(); ++i) {
    if (!(p.bounds[i - 1] < p.bounds[i])) {
      return Status::InvalidArgument(
          "horizontal partition bounds must be strictly increasing");
    }
  }
  const TableDef& def = designer_->backend().catalog().table(p.table);
  Checkpoint(StrFormat("PARTITION %s BY RANGE (%s), %d PARTITIONS",
                       def.name().c_str(),
                       def.column(p.column).name.c_str(),
                       p.num_partitions()));
  designer_->whatif().SetHypotheticalHorizontalPartitioning(std::move(p));
  return Status::OK();
}

Status DesignSession::ClearHorizontalPartitioning(TableId table) {
  Checkpoint("UNPARTITION RANGE " +
             designer_->backend().catalog().table(table).name());
  designer_->whatif().ClearHypotheticalHorizontalPartitioning(table);
  return Status::OK();
}

bool DesignSession::Undo() {
  if (undo_stack_.empty()) return false;
  redo_stack_.push_back(design());
  Apply(undo_stack_.back());
  undo_stack_.pop_back();
  log_.push_back("UNDO");
  return true;
}

bool DesignSession::Redo() {
  if (redo_stack_.empty()) return false;
  undo_stack_.push_back(design());
  Apply(redo_stack_.back());
  redo_stack_.pop_back();
  log_.push_back("REDO");
  return true;
}

// --- Workload deltas ---

void DesignSession::RebuildClasses() {
  classes_.Clear();
  class_of_.clear();
  class_of_.reserve(workload_.size());
  for (size_t i = 0; i < workload_.size(); ++i) {
    class_of_.push_back(
        classes_.AddInstance(workload_.queries[i], workload_.WeightOf(i)));
  }
}

void DesignSession::SyncPreparedWeights() {
  prepared_.base_cost = 0.0;
  for (size_t c = 0; c < prepared_.weights.size(); ++c) {
    prepared_.weights[c] = classes_.classes()[c].weight;
    prepared_.base_cost += prepared_.weights[c] * prepared_.rows[c]->base_cost;
  }
}

void DesignSession::SetCacheBudget(const CacheBudget& budget) {
  cache_budget_ = budget;
  // Apply immediately so a shrink takes effect now: evicted DoI rows
  // recompute from cached atoms, trimmed frontiers re-enumerate — both
  // transparent to results.
  if (cache_budget_.solver_cache_bytes != 0) {
    solver_cache_.TrimToBytes(cache_budget_.solver_cache_bytes);
  }
  EvictDoiRowsToBudget();
}

size_t DesignSession::DoiRowsBytes() const {
  size_t bytes = 0;
  for (const auto& [key, entry] : doi_rows_) {
    bytes += ContributionRowBytes(key, entry.row);
  }
  return bytes;
}

void DesignSession::EvictDoiRowsToBudget() {
  if (cache_budget_.doi_rows_bytes == 0) return;
  while (!doi_rows_.empty() && DoiRowsBytes() > cache_budget_.doi_rows_bytes) {
    auto victim = doi_rows_.begin();
    for (auto it = std::next(doi_rows_.begin()); it != doi_rows_.end(); ++it) {
      if (it->second.lru < victim->second.lru) victim = it;
    }
    doi_rows_.erase(victim);
    ++doi_rows_evicted_;
  }
}

void DesignSession::InvalidateDeployment() {
  doi_rows_.clear();
  doi_indexes_.clear();
  deployment_.reset();
  deployment_class_keys_.clear();
  deployment_weights_.clear();
  deployment_constraints_ = DesignConstraints{};
}

void DesignSession::SetWorkload(Workload workload) {
  workload_ = std::move(workload);
  RebuildClasses();
  prepared_ = CoPhyPrepared{};
  prepared_valid_ = false;
  solver_cache_.Clear();
  certificate_valid_ = false;
  InvalidateDeployment();
  log_.push_back(StrFormat("SET WORKLOAD (%zu queries, %zu template classes)",
                           workload_.size(), classes_.size()));
}

void DesignSession::AddQueries(const std::vector<BoundQuery>& queries,
                               double weight) {
  size_t first_new_class = classes_.size();
  std::vector<size_t> bumped;  // pre-existing classes that gained weight
  for (const BoundQuery& q : queries) {
    size_t id = classes_.AddInstance(q, weight);
    workload_.Add(q, weight);
    class_of_.push_back(id);
    if (id < first_new_class) bumped.push_back(id);
  }
  bool new_classes = classes_.size() > first_new_class;

  if (prepared_valid_ && new_classes) {
    // New templates may warrant candidates the original mining never
    // saw (e.g. they touch a table no prior class did). Mine just the
    // new representatives — stats-only, no backend cost calls — and
    // extend the universe when something new surfaces.
    //
    // Extending atoms for new templates is the one workload delta that
    // needs the backend. If it fails the delta still lands (AddQueries
    // never throws): the warm prepared state is dropped and the next
    // Recommend rebuilds it — surfacing the backend Status there.
    try {
      Workload added_only;
      for (size_t c = first_new_class; c < classes_.size(); ++c) {
        const TemplateClass& cls = classes_.classes()[c];
        added_only.Add(cls.representative, cls.weight);
      }
      std::vector<CandidateIndex> fresh =
          GenerateCandidates(designer_->backend(), added_only,
                             designer_->options().cophy.candidates);
      std::vector<CandidateIndex> universe = prepared_.candidates;
      bool grew = false;
      for (const CandidateIndex& c : fresh) {
        bool present = false;
        for (const CandidateIndex& have : universe) {
          present |= have.index == c.index;
        }
        if (!present) {
          universe.push_back(c);
          grew = true;
        }
      }
      if (grew) {
        // The atom matrix is per-candidate-universe: rebuild it from the
        // warm INUM cache (only the new representatives populate).
        prepared_ = cophy_->Prepare(classes_.ClassWorkload(),
                                    std::move(universe));
      } else {
        // Incremental atom maintenance: only the new classes' rows are
        // built; every existing row of the prepared matrix stays valid
        // (rows are immutable and shared, so this never perturbs a
        // snapshot or another session holding the same row).
        for (size_t c = first_new_class; c < classes_.size(); ++c) {
          const BoundQuery& rep = classes_.classes()[c].representative;
          auto row = std::make_shared<CoPhyAtomRow>();
          row->atoms = cophy_->BuildAtoms(rep, prepared_.candidates);
          row->base_cost = cophy_->inum().Cost(rep, PhysicalDesign{});
          prepared_.num_atoms += row->atoms.size();
          prepared_.rows.push_back(std::move(row));
          prepared_.weights.push_back(classes_.classes()[c].weight);
        }
        // New rows can couple previously independent candidates: refresh
        // the cluster partition so the decomposed solver sees them.
        prepared_.RefreshClusters();
      }
      // The row space changed shape either way; per-cluster solver state
      // no longer lines up with it.
      solver_cache_.Clear();
    } catch (const StatusException& e) {
      DBD_LOG_WARN("AddQueries: backend failure extending prepared state (" +
                   e.status().ToString() + "); dropping warm cache");
      prepared_ = CoPhyPrepared{};
      prepared_valid_ = false;
      solver_cache_.Clear();
      certificate_valid_ = false;
    }
  }
  if (prepared_valid_) SyncPreparedWeights();

  // Same-template appends are pure weight bumps. The optimality
  // certificate survives one exactly when every bumped class was
  // already served at its cheapest possible atom: scaling w_c up by
  // delta changes any configuration X's objective by
  // delta * cost_c(X) >= delta * cost_c(optimum), so no X can overtake.
  // (Atom rows are sorted cheapest-first, so front() is the floor.
  // The argument needs delta > 0 — a non-positive weight shifts the
  // objective the other way, so it never keeps the certificate.)
  bool bumps_preserve = !new_classes && prepared_valid_ &&
                        certificate_valid_ && last_rec_.has_value() &&
                        (bumped.empty() || weight > 0.0);
  if (bumps_preserve) {
    for (size_t id : bumped) {
      bumps_preserve &=
          id < last_class_cost_.size() && !prepared_.rows[id]->atoms.empty() &&
          last_class_cost_[id] <= prepared_.rows[id]->atoms.front().cost;
    }
  }
  certificate_valid_ = bumps_preserve;
  log_.push_back(StrFormat("ADD %zu QUERIES (%zu new template classes)",
                           queries.size(),
                           classes_.size() - first_new_class));
}

Status DesignSession::RemoveQueries(std::vector<size_t> positions) {
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  if (!positions.empty() && positions.back() >= workload_.size()) {
    return Status::OutOfRange(
        StrFormat("query position %zu out of range (workload has %zu)",
                  positions.back(), workload_.size()));
  }
  for (auto it = positions.rbegin(); it != positions.rend(); ++it) {
    size_t pos = *it;
    size_t id = class_of_[pos];
    double w = workload_.WeightOf(pos);
    workload_.queries.erase(workload_.queries.begin() +
                            static_cast<ptrdiff_t>(pos));
    if (!workload_.weights.empty()) {
      workload_.weights.erase(workload_.weights.begin() +
                              static_cast<ptrdiff_t>(pos));
    }
    class_of_.erase(class_of_.begin() + static_cast<ptrdiff_t>(pos));
    if (classes_.RemoveInstance(id, w)) {
      // Last instance gone: the class and its atoms go with it, and
      // every class id above shifts down by one.
      for (size_t& c : class_of_) {
        if (c > id) --c;
      }
      if (prepared_valid_) {
        prepared_.rows.erase(prepared_.rows.begin() +
                             static_cast<ptrdiff_t>(id));
        prepared_.weights.erase(prepared_.weights.begin() +
                                static_cast<ptrdiff_t>(id));
      }
    }
  }
  if (prepared_valid_) {
    prepared_.num_atoms = 0;
    for (const auto& row : prepared_.rows) {
      prepared_.num_atoms += row->atoms.size();
    }
    SyncPreparedWeights();
    // Removing rows can split clusters (rows are what couple
    // candidates); the old per-cluster solver state is meaningless.
    prepared_.RefreshClusters();
    solver_cache_.Clear();
  }
  certificate_valid_ = false;  // the solved problem no longer matches
  log_.push_back(StrFormat("REMOVE %zu QUERIES", positions.size()));
  return Status::OK();
}

// --- Constraints + the recommendation loop ---

Status DesignSession::SetConstraints(DesignConstraints constraints) {
  Status s = constraints.Validate(designer_->backend().catalog());
  if (!s.ok()) return s;
  constraints_ = std::move(constraints);
  log_.push_back(StrFormat(
      "SET CONSTRAINTS (%zu pins, %zu vetoes, %zu column vetoes, %zu caps)",
      constraints_.pinned_indexes.size(), constraints_.vetoed_indexes.size(),
      constraints_.vetoed_columns.size(),
      constraints_.max_indexes_per_table.size()));
  return Status::OK();
}

Status DesignSession::EnsurePrepared() {
  if (workload_.empty()) {
    return Status::InvalidArgument(
        "session has no workload; call SetWorkload or AddQueries first");
  }
  if (cophy_ == nullptr) {
    cophy_ = std::make_unique<CoPhyAdvisor>(designer_->backend(),
                                            designer_->options().cophy);
    cophy_->set_atom_source(atom_source_);
  }
  if (!prepared_valid_) {
    // Everything downstream runs on the compressed class workload: one
    // INUM populate and one atom row per template class, however many
    // instances the raw trace repeats.
    Workload class_workload = classes_.ClassWorkload();
    std::vector<CandidateIndex> candidates =
        GenerateCandidates(designer_->backend(), class_workload,
                           designer_->options().cophy.candidates);
    MergePinnedCandidates(designer_->backend(), constraints_, &candidates);
    Result<CoPhyPrepared> prepared =
        cophy_->TryPrepare(class_workload, std::move(candidates));
    if (!prepared.ok()) return prepared.status();
    prepared_ = std::move(prepared).value();
    prepared_valid_ = true;
    return Status::OK();
  }
  // Prepared state is live. A pin on an index outside the candidate
  // universe extends it and rebuilds atoms from the warm INUM cache —
  // client-side pricing only, still zero backend optimizer calls.
  bool missing_pin = false;
  for (const IndexDef& pin : constraints_.pinned_indexes) {
    bool present = false;
    for (const CandidateIndex& c : prepared_.candidates) {
      present |= c.index == pin;
    }
    missing_pin |= !present;
  }
  if (missing_pin) {
    std::vector<CandidateIndex> candidates = prepared_.candidates;
    MergePinnedCandidates(designer_->backend(), constraints_, &candidates);
    // On failure the old prepared state (without the pin) is kept
    // untouched; the next call retries the extension.
    Result<CoPhyPrepared> prepared =
        cophy_->TryPrepare(classes_.ClassWorkload(), std::move(candidates));
    if (!prepared.ok()) return prepared.status();
    prepared_ = std::move(prepared).value();
  }
  return Status::OK();
}

namespace {

std::string RecommendationSummary(const char* verb,
                                  const IndexRecommendation& rec) {
  std::string text = StrFormat("%s -> %zu indexes, cost %.1f -> %.1f", verb,
                               rec.indexes.size(), rec.base_cost,
                               rec.recommended_cost);
  if (!rec.infeasible_pins.empty()) {
    text += StrFormat(" (%zu pins infeasible)", rec.infeasible_pins.size());
  }
  return text;
}

}  // namespace

void DesignSession::ApplyRecommendation(const IndexRecommendation& rec,
                                        std::string action) {
  Checkpoint(std::move(action));
  PhysicalDesign target = design();
  // The recommendation replaces the index overlay; partitions (and the
  // rest of the hypothetical state) are preserved.
  std::vector<IndexDef> existing = target.indexes();
  for (const IndexDef& idx : existing) target.RemoveIndex(idx);
  for (const IndexDef& idx : rec.indexes) target.AddIndex(idx);
  Apply(target);
}

std::vector<double> DesignSession::ExpandPerQueryCost(
    const std::vector<double>& class_cost) const {
  std::vector<double> out(workload_.size(), 0.0);
  for (size_t i = 0; i < workload_.size(); ++i) {
    out[i] = class_of_[i] < class_cost.size() ? class_cost[class_of_[i]] : 0.0;
  }
  return out;
}

IndexRecommendation DesignSession::ReweightedLastRecommendation() const {
  // Certificate-reuse precondition: the per-class costs of the reused
  // solve must still line up 1:1 with the live class table — a class
  // added or dropped since the solve invalidates the certificate, and
  // the callers are responsible for having checked that already.
  DBD_DCHECK(last_rec_.has_value());
  DBD_DCHECK_EQ(last_class_cost_.size(), classes_.size());
  IndexRecommendation rec = *last_rec_;
  rec.per_query_cost = ExpandPerQueryCost(last_class_cost_);
  rec.recommended_cost = 0.0;
  for (size_t c = 0; c < last_class_cost_.size(); ++c) {
    rec.recommended_cost += classes_.classes()[c].weight * last_class_cost_[c];
  }
  rec.base_cost = prepared_.base_cost;
  // Telemetry must describe THIS answer, not the pre-bump solve: the
  // certificate proves the reused configuration optimal at the current
  // weights, and no solver ran.
  rec.lower_bound = rec.recommended_cost;
  rec.gap = 0.0;
  rec.bnb_nodes = 0;
  rec.solve_time_sec = 0.0;
  return rec;
}

Result<IndexRecommendation> DesignSession::DegradedRecommendation(
    Status cause) {
  // Only backend unreachability degrades; user errors (empty workload,
  // invalid constraints) surface directly — a cached answer would mask
  // the mistake.
  if (!last_rec_.has_value() || !cause.IsRetryable()) {
    return cause;
  }
  // The last certified recommendation, untouched (no re-weighting: that
  // needs the prepared state, which is exactly what failed to build).
  IndexRecommendation rec = *last_rec_;
  rec.degraded =
      DegradedResult::Because(cause, "last-certified-recommendation");
  log_.push_back("DEGRADED -> last certified recommendation (" +
                 cause.ToString() + ")");
  return rec;
}

Result<IndexRecommendation> DesignSession::Recommend() {
  Status s = EnsurePrepared();
  if (!s.ok()) return DegradedRecommendation(std::move(s));
  // Certificate reuse: after a pure same-template append (or when
  // nothing changed at all) the previous optimum provably stands — the
  // answer is the old configuration re-weighted, with no solver work
  // and no backend cost calls.
  if (CertificateHolds()) {
    IndexRecommendation rec = ReweightedLastRecommendation();
    ApplyRecommendation(rec, RecommendationSummary("RECOMMEND", rec) +
                                 " (certificate reuse)");
    last_rec_ = rec;
    solved_constraints_ = constraints_;
    return rec;
  }
  Result<IndexRecommendation> solved =
      cophy_->SolvePrepared(prepared_, constraints_, &solver_cache_);
  if (!solved.ok()) return solved.status();
  if (cache_budget_.solver_cache_bytes != 0) {
    solver_cache_.TrimToBytes(cache_budget_.solver_cache_bytes);
  }
  IndexRecommendation rec = std::move(solved).value();
  last_class_cost_ = rec.per_query_cost;
  rec.per_query_cost = ExpandPerQueryCost(last_class_cost_);
  ApplyRecommendation(rec, RecommendationSummary("RECOMMEND", rec));
  last_rec_ = rec;
  solved_constraints_ = constraints_;
  certificate_valid_ = true;
  return rec;
}

bool DesignSession::CertificateHolds() const {
  // Re-optimization certificate: the previous solve was proven optimal,
  // the edit only tightened the feasible region, and the old solution
  // is still feasible — so it is still optimal (shrinking the feasible
  // set cannot create a better solution, and the old optimum survives).
  if (!certificate_valid_ || !prepared_valid_ || !last_rec_.has_value()) {
    return false;
  }
  const IndexRecommendation& rec = *last_rec_;
  if (!rec.proven_optimal || !rec.infeasible_pins.empty()) return false;
  if (!TightensIndexConstraints(solved_constraints_, constraints_)) {
    return false;
  }
  // Feasibility of the old solution under the new constraints.
  for (const IndexDef& pin : constraints_.pinned_indexes) {
    if (std::find(rec.indexes.begin(), rec.indexes.end(), pin) ==
        rec.indexes.end()) {
      return false;
    }
  }
  for (const IndexDef& idx : rec.indexes) {
    if (constraints_.IsVetoed(idx)) return false;
  }
  double budget = constraints_.EffectiveBudget(
      designer_->options().cophy.storage_budget_pages);
  if (rec.total_size_pages > budget) return false;
  std::map<TableId, int> per_table;
  for (const IndexDef& idx : rec.indexes) per_table[idx.table]++;
  for (const auto& [table, count] : per_table) {
    std::optional<int> cap = constraints_.TableCap(table);
    if (cap.has_value() && count > *cap) return false;
  }
  return true;
}

Result<IndexRecommendation> DesignSession::Refine(
    const ConstraintDelta& delta) {
  Status s = ApplyConstraintDelta(delta, designer_->backend().catalog(),
                                  &constraints_);
  if (!s.ok()) return s;
  const Catalog& catalog = designer_->backend().catalog();

  // Tier 1: the previous optimum certifiably survives the edit — reuse
  // it with no solver work at all (re-weighted in case same-template
  // appends bumped class weights since the solve).
  if (CertificateHolds()) {
    IndexRecommendation rec = ReweightedLastRecommendation();
    std::string action = delta.empty()
                             ? RecommendationSummary("REFINE", rec)
                             : "REFINE [" + delta.Describe(catalog) + "]" +
                                   RecommendationSummary("", rec) +
                                   " (certificate reuse)";
    ApplyRecommendation(rec, std::move(action));
    last_rec_ = rec;
    solved_constraints_ = constraints_;
    return rec;
  }

  // Tier 2: re-solve the BIP against the prepared atom matrix.
  s = EnsurePrepared();
  if (!s.ok()) return DegradedRecommendation(std::move(s));
  Result<IndexRecommendation> solved =
      cophy_->SolvePrepared(prepared_, constraints_, &solver_cache_);
  if (!solved.ok()) return solved.status();
  if (cache_budget_.solver_cache_bytes != 0) {
    solver_cache_.TrimToBytes(cache_budget_.solver_cache_bytes);
  }
  IndexRecommendation rec = std::move(solved).value();
  last_class_cost_ = rec.per_query_cost;
  rec.per_query_cost = ExpandPerQueryCost(last_class_cost_);
  std::string action = RecommendationSummary("REFINE", rec);
  if (!delta.empty()) {
    action = "REFINE [" + delta.Describe(catalog) + "]" +
             RecommendationSummary("", rec);
  }
  ApplyRecommendation(rec, std::move(action));
  last_rec_ = rec;
  solved_constraints_ = constraints_;
  certificate_valid_ = true;
  return rec;
}

// --- Deployment planning ---

bool DesignSession::ScheduleStillValid(
    const std::vector<IndexDef>& indexes,
    const std::vector<std::string>& keys,
    const std::vector<double>& weights) const {
  if (!deployment_.has_value() || deployment_->indexes != indexes) {
    return false;
  }
  // A schedule that had to skip anything is rebuilt rather than reasoned
  // about (the session path never produces one: recommendations are
  // constraint-feasible by construction).
  if (!deployment_->schedule.skipped.empty()) return false;
  // Same classes at the same weights. Identity matters, not just the
  // weight vector: a remove-class + add-class edit can reproduce the
  // old weights while the workload the schedule was costed on is gone.
  // And a same-template append re-weights the DoI sums for free but
  // shifts every marginal benefit, so the greedy order must be
  // re-derived.
  if (keys != deployment_class_keys_) return false;
  if (weights != deployment_weights_) return false;
  // Schedule-relevant constraint edits: pins drive the pins-first
  // phases, vetoes would skip a member, and the budget gates every
  // step. Constraint churn outside the recommended set (vetoing an
  // index that was never recommended, pinning one that is not in the
  // set) provably cannot change the schedule and keeps the reuse.
  for (const IndexDef& idx : indexes) {
    if (constraints_.IsPinned(idx) != deployment_constraints_.IsPinned(idx)) {
      return false;
    }
    if (constraints_.IsVetoed(idx)) return false;
  }
  return deployment_->schedule.total_pages <=
         constraints_.storage_budget_pages;
}

Result<DeploymentPlan> DesignSession::PlanDeployment() {
  if (!last_rec_.has_value() || cophy_ == nullptr) {
    return Status::InvalidArgument(
        "no recommendation to deploy; call Recommend() or Refine() first");
  }
  Result<DeploymentPlan> built = BuildDeploymentPlan();
  if (built.ok()) {
    DeploymentPlan plan = std::move(built).value();
    log_.push_back(StrFormat(
        "PLAN DEPLOYMENT -> %zu steps, %zu interactions, %zu clusters%s",
        plan.schedule.steps.size(), plan.edges.size(), plan.clusters.size(),
        plan.schedule_reused ? " (schedule reuse)" : ""));
    deployment_ = plan;
    return plan;
  }
  // Backend failure: fall back to the cached previous plan, explicitly
  // marked. User errors and permanent failures surface directly.
  if (deployment_.has_value() && built.status().IsRetryable()) {
    DeploymentPlan plan = *deployment_;
    plan.degraded =
        DegradedResult::Because(built.status(), "cached-deployment-plan");
    log_.push_back("DEGRADED -> cached deployment plan (" +
                   built.status().ToString() + ")");
    return plan;
  }
  return built.status();
}

Result<DeploymentPlan> DesignSession::BuildDeploymentPlan() {
  const std::vector<IndexDef>& indexes = last_rec_->indexes;
  InumCostModel& inum = cophy_->inum();
  InteractionAnalyzer analyzer(inum, designer_->options().doi);

  DeploymentPlan plan;
  plan.indexes = indexes;

  // Incremental DoI maintenance: a changed index set invalidates every
  // cached row; otherwise only template classes without a row (new
  // templates — their atoms changed) compute one, priced purely from
  // the cached INUM atoms. Rows of dropped classes are pruned.
  if (doi_indexes_ != indexes) {
    doi_rows_.clear();
    doi_indexes_ = indexes;
  }
  const Catalog& catalog = designer_->backend().catalog();
  const std::vector<TemplateClass>& classes = classes_.classes();
  std::vector<std::string> keys(classes.size());
  std::vector<BoundQuery> missing;
  std::vector<size_t> missing_class;
  for (size_t c = 0; c < classes.size(); ++c) {
    keys[c] = classes[c].representative.ToSql(catalog);
    if (doi_rows_.find(keys[c]) == doi_rows_.end()) {
      missing.push_back(classes[c].representative);
      missing_class.push_back(c);
    }
  }
  if (!missing.empty()) {
    // Atom rows adopted from a cross-session store skipped this
    // session's own INUM populate; DoI repricing reads the local plan
    // cache, so populate any still-unseen representatives first (a
    // no-op for queries this session prepared itself). Backend
    // failures surface as Status like the rest of this builder.
    try {
      inum.PrepareQueries(
          std::span<const BoundQuery>(missing.data(), missing.size()));
    } catch (const StatusException& e) {
      return e.status();
    }
    Result<std::vector<std::vector<double>>> rows =
        analyzer.TryContributionRows(missing, indexes);
    if (!rows.ok()) return rows.status();
    for (size_t m = 0; m < missing.size(); ++m) {
      doi_rows_[keys[missing_class[m]]].row = std::move(rows.value()[m]);
    }
  }
  plan.doi_rows_computed = missing.size();
  plan.doi_rows_reused = classes.size() - missing.size();
  {
    std::set<std::string> live(keys.begin(), keys.end());
    for (auto it = doi_rows_.begin(); it != doi_rows_.end();) {
      it = live.count(it->first) != 0 ? std::next(it) : doi_rows_.erase(it);
    }
  }

  // Weighted DoI per pair, reduced in class order — deterministic and
  // identical to a from-scratch AnalyzeMatrix over the class workload.
  DoiMatrix matrix;
  matrix.num_indexes = static_cast<int>(indexes.size());
  size_t num_pairs = indexes.size() * (indexes.size() - 1) / 2;
  matrix.doi.assign(num_pairs, 0.0);
  for (size_t c = 0; c < classes.size(); ++c) {
    DoiRowEntry& entry = doi_rows_[keys[c]];
    // Touched in class order every build: recency — and the eviction
    // order a budget derives from it — is deterministic.
    entry.lru = ++doi_lru_tick_;
    const std::vector<double>& row = entry.row;
    // A cached contribution row is only reusable if it was computed
    // against THIS index set (doi_indexes_ == indexes, checked above):
    // its length must cover the current pair triangle exactly.
    DBD_DCHECK_EQ(row.size(), num_pairs);
    for (size_t p = 0; p < num_pairs; ++p) {
      matrix.doi[p] += classes[c].weight * row[p];
    }
  }
  plan.edges = matrix.Edges();
  plan.clusters = matrix.Clusters();

  std::vector<double> weights;
  weights.reserve(classes.size());
  for (const TemplateClass& cls : classes) weights.push_back(cls.weight);
  if (ScheduleStillValid(indexes, keys, weights)) {
    // Reuse outright: the cached schedule is certifiably what a rebuild
    // would produce (steps already carry their cluster annotations).
    plan.schedule = deployment_->schedule;
    plan.schedule_reused = true;
  } else {
    // The greedy scheduler prices marginal benefits through INUM; a
    // backend failure in its fallback paths surfaces as Status here.
    try {
      MaterializationScheduler scheduler(inum);
      plan.schedule =
          scheduler.Greedy(classes_.ClassWorkload(), indexes, constraints_);
    } catch (const StatusException& e) {
      return e.status();
    }
    std::map<std::string, int> cluster_of;
    for (size_t k = 0; k < plan.clusters.size(); ++k) {
      for (int i : plan.clusters[k]) {
        cluster_of[indexes[static_cast<size_t>(i)].Key()] =
            static_cast<int>(k);
      }
    }
    for (ScheduleStep& step : plan.schedule.steps) {
      auto it = cluster_of.find(step.index.Key());
      step.cluster = it == cluster_of.end() ? -1 : it->second;
    }
    deployment_class_keys_ = keys;
    deployment_weights_ = std::move(weights);
    deployment_constraints_ = constraints_;
  }
  // Budget applies only after the plan is built: the build that
  // computed a row always gets to use it, so a tiny budget costs
  // recomputation on the NEXT build, never a failed one.
  EvictDoiRowsToBudget();
  return plan;
}

uint64_t DesignSession::backend_optimizer_calls() const {
  return designer_->backend().num_optimizer_calls();
}

uint64_t DesignSession::inum_populate_count() const {
  return cophy_ == nullptr ? 0 : cophy_->inum().stats().populate_optimizations;
}

// --- Snapshots ---

void DesignSession::SaveSnapshot(const std::string& name) {
  snapshots_[name] = design();
  log_.push_back("SAVE " + name);
}

Status DesignSession::SnapshotNotFound(const std::string& name) const {
  if (snapshots_.empty()) {
    return Status::NotFound("snapshot '" + name +
                            "' (no snapshots saved yet)");
  }
  return Status::NotFound("snapshot '" + name + "' (available: " +
                          StrJoin(SnapshotNames(), ", ") + ")");
}

Status DesignSession::RestoreSnapshot(const std::string& name) {
  auto it = snapshots_.find(name);
  if (it == snapshots_.end()) return SnapshotNotFound(name);
  Checkpoint("RESTORE " + name);
  Apply(it->second);
  return Status::OK();
}

std::vector<std::string> DesignSession::SnapshotNames() const {
  std::vector<std::string> names;
  names.reserve(snapshots_.size());
  for (const auto& [name, d] : snapshots_) names.push_back(name);
  return names;
}

Result<BenefitReport> DesignSession::CompareSnapshot(
    const std::string& name, const Workload& workload) {
  auto it = snapshots_.find(name);
  if (it == snapshots_.end()) return SnapshotNotFound(name);
  // Status-returning evaluation: a backend failure surfaces as its
  // Status instead of crossing this public API as an exception.
  Result<std::vector<BenefitReport>> reports =
      designer_->TryEvaluateDesigns(workload, {it->second});
  if (!reports.ok()) return reports.status();
  return std::move(reports.value().front());
}

// --- Persistence ---

Json DesignSession::ToJson() const {
  const Catalog& catalog = designer_->backend().catalog();
  Json j = Json::Object();
  j["version"] = Json::Number(1);
  j["constraints"] = constraints_.ToJson();
  j["design"] = PhysicalDesignToJson(design());
  Json snapshots = Json::Object();
  for (const auto& [name, d] : snapshots_) {
    snapshots[name] = PhysicalDesignToJson(d);
  }
  j["snapshots"] = std::move(snapshots);
  Json sql = Json::Array();
  Json weights = Json::Array();
  for (size_t i = 0; i < workload_.size(); ++i) {
    sql.Append(Json::Str(workload_.queries[i].ToSql(catalog)));
    weights.Append(Json::Number(workload_.WeightOf(i)));
  }
  Json workload = Json::Object();
  workload["sql"] = std::move(sql);
  workload["weights"] = std::move(weights);
  j["workload"] = std::move(workload);
  Json log = Json::Array();
  for (const std::string& entry : log_) log.Append(Json::Str(entry));
  j["log"] = std::move(log);
  return j;
}

Status DesignSession::LoadFromJson(const Json& j) {
  const Catalog& catalog = designer_->backend().catalog();
  if (!j.is_object()) return Status::ParseError("session must be an object");

  // Parse everything into locals first; the session only changes when
  // the whole document is valid.
  DesignConstraints constraints;
  if (const Json* c = j.Find("constraints")) {
    Result<DesignConstraints> parsed =
        DesignConstraints::FromJson(*c, catalog);
    if (!parsed.ok()) return parsed.status();
    constraints = std::move(parsed).value();
  }
  PhysicalDesign target;
  if (const Json* d = j.Find("design")) {
    Result<PhysicalDesign> parsed = PhysicalDesignFromJson(*d, catalog);
    if (!parsed.ok()) return parsed.status();
    target = std::move(parsed).value();
  }
  std::map<std::string, PhysicalDesign> snapshots;
  if (const Json* snaps = j.Find("snapshots")) {
    if (!snaps->is_object()) {
      return Status::ParseError("'snapshots' must be an object");
    }
    for (const auto& [name, d] : snaps->members()) {
      Result<PhysicalDesign> parsed = PhysicalDesignFromJson(d, catalog);
      if (!parsed.ok()) return parsed.status();
      snapshots.emplace(name, std::move(parsed).value());
    }
  }
  Workload workload;
  if (const Json* w = j.Find("workload")) {
    const Json* sql = w->Find("sql");
    const Json* weights = w->Find("weights");
    if (sql == nullptr || !sql->is_array()) {
      return Status::ParseError("'workload.sql' must be an array");
    }
    for (size_t i = 0; i < sql->size(); ++i) {
      if (!sql->at(i).is_string()) {
        return Status::ParseError("workload query must be a SQL string");
      }
      Result<BoundQuery> q = ParseAndBind(catalog, sql->at(i).str());
      if (!q.ok()) return q.status();
      double weight = 1.0;
      if (weights != nullptr && weights->is_array() &&
          i < weights->size() && weights->at(i).is_number()) {
        weight = weights->at(i).number();
      }
      workload.Add(std::move(q).value(), weight);
    }
  }
  std::vector<std::string> log;
  if (const Json* l = j.Find("log")) {
    for (const Json& entry : l->items()) {
      if (entry.is_string()) log.push_back(entry.str());
    }
  }

  constraints_ = std::move(constraints);
  workload_ = std::move(workload);
  RebuildClasses();
  snapshots_ = std::move(snapshots);
  log_ = std::move(log);
  undo_stack_.clear();
  redo_stack_.clear();
  prepared_ = CoPhyPrepared{};
  prepared_valid_ = false;
  solver_cache_.Clear();
  last_rec_.reset();
  last_class_cost_.clear();
  certificate_valid_ = false;
  InvalidateDeployment();
  Apply(target);
  log_.push_back("LOAD");
  return Status::OK();
}

Status DesignSession::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  out << ToJson().Dump() << "\n";
  out.flush();
  if (!out) return Status::Internal("failed writing '" + path + "'");
  return Status::OK();
}

Status DesignSession::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<Json> parsed = Json::Parse(buffer.str());
  if (!parsed.ok()) return parsed.status();
  return LoadFromJson(parsed.value());
}

}  // namespace dbdesign
