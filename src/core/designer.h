// Designer: the public facade of the automated, interactive and
// portable DB designer. Wires the what-if component, INUM, CoPhy,
// AutoPart, COLT and the interaction tools into the paper's three
// demonstration scenarios:
//
//   Scenario 1 — interactive what-if design: the user creates
//     hypothetical indexes/partitions, sees per-query and average
//     benefits, and inspects the index interaction graph.
//   Scenario 2 — automatic tuning: CoPhy indexes + AutoPart partitions
//     under a storage budget, with an interaction-aware materialization
//     schedule for the suggested indexes.
//   Scenario 3 — continuous tuning: COLT monitors the stream and alerts
//     on beneficial configuration changes.
//
// Portability: the Designer talks to the engine only through the
// WhatIfOptimizer / InumCostModel interfaces (optimizer cost calls,
// statistics, join knobs), mirroring the paper's claim that the tool
// "can be ported to any relational DBMS which offers a query optimizer,
// a way to extract and create statistics, and control over join
// operations".

#ifndef DBDESIGN_CORE_DESIGNER_H_
#define DBDESIGN_CORE_DESIGNER_H_

#include <memory>
#include <vector>

#include "autopart/autopart.h"
#include "colt/colt.h"
#include "cophy/cophy.h"
#include "cophy/greedy.h"
#include "interaction/graph.h"
#include "interaction/schedule.h"
#include "whatif/whatif.h"

namespace dbdesign {

struct DesignerOptions {
  CostParams params;
  CoPhyOptions cophy;
  AutoPartOptions autopart;
  ColtOptions colt;
  DoiOptions doi;
};

/// Per-query and aggregate benefit of a new design vs a baseline —
/// the numbers behind the demo's Figure 3 panel.
struct BenefitReport {
  std::vector<double> base_costs;
  std::vector<double> new_costs;
  double base_total = 0.0;
  double new_total = 0.0;

  /// Average workload benefit, in [0, 1] (1 = all cost eliminated).
  double average_benefit() const {
    return base_total > 0 ? 1.0 - new_total / base_total : 0.0;
  }
  double query_benefit(size_t i) const {
    return base_costs[i] > 0 ? 1.0 - new_costs[i] / base_costs[i] : 0.0;
  }
};

/// Output of the automatic (scenario 2) pipeline.
struct OfflineRecommendation {
  IndexRecommendation indexes;
  PartitionRecommendation partitions;
  MaterializationSchedule schedule;
  /// Partitions + indexes together.
  PhysicalDesign combined;
  double combined_cost = 0.0;
  double base_cost = 0.0;

  double improvement() const {
    return base_cost > 0 ? 1.0 - combined_cost / base_cost : 0.0;
  }
};

class Designer {
 public:
  explicit Designer(const Database& db, DesignerOptions options = {});

  // --- Scenario 1: interactive session ---
  /// The what-if sub-system (hypothetical indexes/partitions, join knobs).
  WhatIfOptimizer& whatif() { return whatif_; }

  /// Costs the workload under `design` vs the empty baseline, per query.
  BenefitReport EvaluateDesign(const Workload& workload,
                               const PhysicalDesign& design);

  /// Builds the interaction graph (Figure 2) for a set of indexes.
  InteractionGraph AnalyzeInteractions(const Workload& workload,
                                       const std::vector<IndexDef>& indexes);

  // --- Scenario 2: automatic tuning ---
  /// Full pipeline: CoPhy indexes + AutoPart partitions + schedule.
  OfflineRecommendation RecommendOffline(const Workload& workload,
                                         double storage_budget_pages);

  /// Index-only recommendation with user-seeded candidates (the paper's
  /// "control the physical design search by suggesting a candidate set
  /// of indexes as the starting point").
  IndexRecommendation RecommendIndexes(
      const Workload& workload,
      const std::vector<CandidateIndex>& seed_candidates);

  /// Interaction-aware materialization schedule for a set of indexes.
  MaterializationSchedule ScheduleMaterialization(
      const Workload& workload, const std::vector<IndexDef>& indexes);

  // --- Scenario 3: continuous tuning ---
  /// Creates a fresh COLT tuner attached to this database.
  std::unique_ptr<ColtTuner> StartContinuousTuning() const;

  InumCostModel& inum() { return inum_; }
  const Database& db() const { return *db_; }
  const DesignerOptions& options() const { return options_; }

 private:
  const Database* db_;
  DesignerOptions options_;
  WhatIfOptimizer whatif_;
  InumCostModel inum_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_CORE_DESIGNER_H_
