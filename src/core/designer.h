// Designer: the public facade of the automated, interactive and
// portable DB designer. Wires the what-if component, INUM, CoPhy,
// AutoPart, COLT and the interaction tools into the paper's three
// demonstration scenarios:
//
//   Scenario 1 — interactive what-if design: the user creates
//     hypothetical indexes/partitions, sees per-query and average
//     benefits, and inspects the index interaction graph.
//   Scenario 2 — automatic tuning: CoPhy indexes + AutoPart partitions
//     under a storage budget, with an interaction-aware materialization
//     schedule for the suggested indexes.
//   Scenario 3 — continuous tuning: COLT monitors the stream and alerts
//     on beneficial configuration changes.
//
// Portability: the Designer talks to the engine only through the
// DbmsBackend interface (optimizer cost calls, statistics, join knobs),
// realizing the paper's claim that the tool "can be ported to any
// relational DBMS which offers a query optimizer, a way to extract and
// create statistics, and control over join operations" — implement
// src/backend/backend.h for your engine and every component here works
// unchanged.

#ifndef DBDESIGN_CORE_DESIGNER_H_
#define DBDESIGN_CORE_DESIGNER_H_

#include <memory>
#include <vector>

#include "autopart/autopart.h"
#include "colt/colt.h"
#include "cophy/cophy.h"
#include "cophy/greedy.h"
#include "interaction/graph.h"
#include "interaction/schedule.h"
#include "whatif/whatif.h"

namespace dbdesign {

struct DesignerOptions {
  /// Cost parameters — used only by the legacy Database constructor when
  /// it builds the owned InMemoryBackend; a DbmsBackend brings its own.
  CostParams params;
  CoPhyOptions cophy;
  AutoPartOptions autopart;
  ColtOptions colt;
  DoiOptions doi;
};

/// Per-query and aggregate benefit of a new design vs a baseline —
/// the numbers behind the demo's Figure 3 panel.
struct BenefitReport {
  std::vector<double> base_costs;
  std::vector<double> new_costs;
  double base_total = 0.0;
  double new_total = 0.0;

  /// Average workload benefit, in [0, 1] (1 = all cost eliminated).
  double average_benefit() const {
    return base_total > 0 ? 1.0 - new_total / base_total : 0.0;
  }
  double query_benefit(size_t i) const {
    return base_costs[i] > 0 ? 1.0 - new_costs[i] / base_costs[i] : 0.0;
  }
};

/// Output of the automatic (scenario 2) pipeline.
struct OfflineRecommendation {
  IndexRecommendation indexes;
  PartitionRecommendation partitions;
  MaterializationSchedule schedule;
  /// Partitions + indexes together.
  PhysicalDesign combined;
  double combined_cost = 0.0;
  double base_cost = 0.0;

  double improvement() const {
    return base_cost > 0 ? 1.0 - combined_cost / base_cost : 0.0;
  }
};

class Designer {
 public:
  /// Attaches to a backend (non-owning; the backend must outlive this).
  explicit Designer(DbmsBackend& backend, DesignerOptions options = {});

  /// Legacy convenience: wraps `db` in an owned InMemoryBackend built
  /// with options.params (defined in backend/compat.cc).
  explicit Designer(const Database& db, DesignerOptions options = {});

  // --- Scenario 1: interactive session ---
  /// The what-if sub-system (hypothetical indexes/partitions, join knobs).
  WhatIfOptimizer& whatif() { return whatif_; }

  /// Costs the workload under `design` vs the empty baseline, per query.
  BenefitReport EvaluateDesign(const Workload& workload,
                               const PhysicalDesign& design);

  /// Batched variant: evaluates many candidate designs in one pass.
  /// INUM populates each query's plan cache once and reprices only the
  /// leaves per design, so evaluating K designs costs far less than K
  /// independent EvaluateDesign calls — the hot path of scenario 2.
  std::vector<BenefitReport> EvaluateDesigns(
      const Workload& workload, const std::vector<PhysicalDesign>& designs);

  /// Status-returning form of EvaluateDesigns: a backend failure in
  /// the costing fallback paths surfaces as its Status instead of a
  /// sentinel cost or an abort.
  Result<std::vector<BenefitReport>> TryEvaluateDesigns(
      const Workload& workload, const std::vector<PhysicalDesign>& designs);

  /// Builds the interaction graph (Figure 2) for a set of indexes.
  InteractionGraph AnalyzeInteractions(const Workload& workload,
                                       const std::vector<IndexDef>& indexes);

  // --- Scenario 2: automatic tuning ---
  /// Full pipeline: CoPhy indexes + AutoPart partitions + schedule.
  OfflineRecommendation RecommendOffline(const Workload& workload,
                                         double storage_budget_pages);

  /// Constraint-aware full pipeline: CoPhy honors pins/vetoes/per-table
  /// caps under min(storage_budget_pages, constraint budget); AutoPart
  /// honors the partitioning allow/deny lists. Invalid constraints
  /// surface as Status.
  Result<OfflineRecommendation> TryRecommendOffline(
      const Workload& workload, double storage_budget_pages,
      const DesignConstraints& constraints);

  /// Index-only recommendation with user-seeded candidates (the paper's
  /// "control the physical design search by suggesting a candidate set
  /// of indexes as the starting point").
  IndexRecommendation RecommendIndexes(
      const Workload& workload,
      const std::vector<CandidateIndex>& seed_candidates);

  /// Interaction-aware materialization schedule for a set of indexes.
  MaterializationSchedule ScheduleMaterialization(
      const Workload& workload, const std::vector<IndexDef>& indexes);

  // --- Scenario 3: continuous tuning ---
  /// Creates a fresh COLT tuner attached to this backend.
  std::unique_ptr<ColtTuner> StartContinuousTuning() const;

  InumCostModel& inum() { return inum_; }
  DbmsBackend& backend() const { return *backend_; }
  const DesignerOptions& options() const { return options_; }

 private:
  /// Owning constructor used by the legacy Database path.
  Designer(std::shared_ptr<DbmsBackend> owned, DesignerOptions options);

  std::shared_ptr<DbmsBackend> owned_backend_;  // legacy path only
  DbmsBackend* backend_;
  DesignerOptions options_;
  WhatIfOptimizer whatif_;
  InumCostModel inum_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_CORE_DESIGNER_H_
