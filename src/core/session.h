// DesignSession: stateful interactive what-if session with undo/redo,
// named snapshots and an action log.
//
// The paper's tool is explicitly *interactive*: the DBA explores
// candidate designs incrementally through a GUI. This class is the
// library-side session state such a front end needs — every mutation of
// the hypothetical design goes through it, can be undone/redone, and is
// recorded in a human-readable log; intermediate designs can be saved
// and compared by name.

#ifndef DBDESIGN_CORE_SESSION_H_
#define DBDESIGN_CORE_SESSION_H_

#include <map>
#include <string>
#include <vector>

#include "core/designer.h"

namespace dbdesign {

class DesignSession {
 public:
  explicit DesignSession(Designer& designer);

  // --- What-if mutations (logged, undoable) ---
  Status CreateIndex(const IndexDef& index);
  Status DropIndex(const IndexDef& index);
  Status SetVerticalPartitioning(VerticalPartitioning p);
  Status ClearVerticalPartitioning(TableId table);
  Status SetHorizontalPartitioning(HorizontalPartitioning p);
  Status ClearHorizontalPartitioning(TableId table);

  /// Reverts the most recent mutation. Returns false if nothing to undo.
  bool Undo();
  /// Re-applies the most recently undone mutation.
  bool Redo();
  /// Number of undoable / redoable steps.
  size_t undo_depth() const { return undo_stack_.size(); }
  size_t redo_depth() const { return redo_stack_.size(); }

  // --- Snapshots ---
  /// Saves the current hypothetical design under `name` (overwrites).
  void SaveSnapshot(const std::string& name);
  /// Restores a named snapshot (undoable as a single step).
  Status RestoreSnapshot(const std::string& name);
  std::vector<std::string> SnapshotNames() const;

  /// Workload benefit of a named snapshot vs the empty baseline.
  Result<BenefitReport> CompareSnapshot(const std::string& name,
                                        const Workload& workload);

  // --- Introspection ---
  const PhysicalDesign& design() const {
    return designer_->whatif().hypothetical_design();
  }
  /// Human-readable action log ("CREATE INDEX idx_photoobj_ra", ...).
  const std::vector<std::string>& log() const { return log_; }

 private:
  /// Pushes the current design for undo and clears the redo stack.
  void Checkpoint(std::string action);
  /// Replaces the what-if overlay wholesale.
  void Apply(const PhysicalDesign& design);

  Designer* designer_;
  std::vector<PhysicalDesign> undo_stack_;
  std::vector<PhysicalDesign> redo_stack_;
  std::map<std::string, PhysicalDesign> snapshots_;
  std::vector<std::string> log_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_CORE_SESSION_H_
