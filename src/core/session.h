// DesignSession: the unified entry point of the paper's interactive
// tuning loop.
//
// The demo's conversation is: the designer proposes, the DBA reacts —
// pins an index she trusts, vetoes one she doesn't, tightens the
// storage budget — and the system re-recommends fast enough to feel
// interactive. This class owns everything that loop needs:
//
//   * the workload under tuning (with AddQueries/RemoveQueries deltas),
//     compressed into template classes: the costing pipeline (INUM
//     populate, CoPhy atoms, weights, base costs) is keyed per class,
//     so a 100k-query production trace of ~10 templates costs like a
//     10-query workload and a same-template append is a pure weight
//     bump with zero new backend cost calls,
//   * the DBA's DesignConstraints,
//   * the hypothetical design, with undo/redo, named snapshots and a
//     human-readable action log (every mutation — manual what-if edits
//     and whole recommendations alike — is one undoable step),
//   * a prepared CoPhy state (INUM cost cache + atom matrix) that makes
//     Refine() incremental: a constraints-only edit re-solves the BIP
//     against the cached atoms with ZERO new INUM populations and ZERO
//     new backend optimizer calls — only workload deltas invalidate
//     atoms, and only for the queries they touch.
//
// Sessions serialize to JSON (constraints, snapshots, workload, design,
// log) so a tuning session survives process restart; the prepared cache
// is rebuilt lazily on the first Recommend after a load.

#ifndef DBDESIGN_CORE_SESSION_H_
#define DBDESIGN_CORE_SESSION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/constraints.h"
#include "core/designer.h"
#include "util/cache_budget.h"
#include "workload/compress.h"

namespace dbdesign {

/// Output of the session's deployment-planning stage: how to take the
/// recommended index set live. Index positions in `edges`, `clusters`
/// and `schedule` refer to `indexes`.
struct DeploymentPlan {
  /// The recommendation being deployed (last Recommend/Refine result).
  std::vector<IndexDef> indexes;
  /// Pairwise degree-of-interaction edges, heaviest first.
  std::vector<InteractionEdge> edges;
  /// Independent interaction clusters: indexes in different clusters do
  /// not interact, so their benefits compose independently.
  std::vector<std::vector<int>> clusters;
  /// Constraint-aware materialization order (pins first, vetoes
  /// impossible, storage budget respected at every intermediate step).
  MaterializationSchedule schedule;
  /// True when the previous plan's schedule was reused outright (the
  /// refine changed neither the index set, the class weights, nor any
  /// schedule-relevant constraint).
  bool schedule_reused = false;
  /// Per-template-class DoI row cache telemetry: rows served from the
  /// incremental cache vs rows (re)computed this call.
  size_t doi_rows_reused = 0;
  size_t doi_rows_computed = 0;
  /// Set when the backend was unreachable and this plan is a cached
  /// previous plan rather than a fresh one (see PlanDeployment).
  DegradedResult degraded;

  /// Figure-2 rendering of the interaction structure.
  InteractionGraph Graph(const Catalog& catalog) const {
    return InteractionGraph(catalog, indexes, edges);
  }
};

class DesignSession {
 public:
  explicit DesignSession(Designer& designer);
  ~DesignSession();

  // --- What-if mutations (logged, undoable) ---
  Status CreateIndex(const IndexDef& index);
  Status DropIndex(const IndexDef& index);
  Status SetVerticalPartitioning(VerticalPartitioning p);
  Status ClearVerticalPartitioning(TableId table);
  Status SetHorizontalPartitioning(HorizontalPartitioning p);
  Status ClearHorizontalPartitioning(TableId table);

  /// Reverts the most recent mutation. Returns false if nothing to undo.
  bool Undo();
  /// Re-applies the most recently undone mutation.
  bool Redo();
  /// Number of undoable / redoable steps.
  size_t undo_depth() const { return undo_stack_.size(); }
  size_t redo_depth() const { return redo_stack_.size(); }

  // --- Workload under tuning ---
  /// Replaces the session workload (invalidates the prepared state).
  /// The workload is compressed into template classes up front; all
  /// costing downstream (INUM populate, CoPhy atoms, weights, base
  /// costs) is per class, not per query.
  void SetWorkload(Workload workload);
  /// Appends queries. A query matching an existing template class is a
  /// pure weight bump: no candidate mining, no atom building, zero new
  /// backend cost calls — and when the bumped classes were already
  /// served at their cheapest possible atom, the optimality certificate
  /// survives, so the next Recommend() is instant. Queries opening new
  /// classes mine candidates from the new representatives (stats-only);
  /// if nothing new surfaces only the new classes' atoms are built,
  /// otherwise the universe extends and atoms rebuild from the warm
  /// INUM cache. Either way: no backend cost calls for already-seen
  /// templates.
  void AddQueries(const std::vector<BoundQuery>& queries,
                  double weight = 1.0);
  /// Removes queries by workload position (descending-safe: positions
  /// refer to the current workload). Each removal decrements its
  /// template class's weight; a class whose instance count hits zero is
  /// dropped together with its atoms — the other classes stay valid.
  Status RemoveQueries(std::vector<size_t> positions);
  const Workload& workload() const { return workload_; }

  // --- Template classes ---
  /// The session's template-class table: one entry per structurally
  /// distinct query template (signature, representative, summed weight,
  /// instance count), in first-seen order. Class ids index the prepared
  /// CoPhy state.
  const std::vector<TemplateClass>& template_classes() const {
    return classes_.classes();
  }
  size_t num_template_classes() const { return classes_.size(); }

  // --- DBA constraints ---
  const DesignConstraints& constraints() const { return constraints_; }
  /// Replaces the whole constraint state (validated; logged). Prefer
  /// Refine(delta) inside the loop — it re-solves immediately.
  Status SetConstraints(DesignConstraints constraints);

  // --- The recommendation loop ---
  /// Solves for the best index set under the current constraints and
  /// applies it to the hypothetical design as ONE undoable step
  /// (partitions are preserved; the previous index overlay is
  /// replaced). The first call prepares the INUM cost cache + CoPhy
  /// atom matrix; the session keeps both for later Refines.
  ///
  /// Degradation contract: a backend failure during preparation never
  /// aborts. With a warm prepared state the solve is client-side and
  /// succeeds normally even when the backend is down. On a cold cache
  /// the session falls back to the last certified recommendation,
  /// marked `degraded` with the causing Status; with no fallback the
  /// failure surfaces as a clean Status.
  Result<IndexRecommendation> Recommend();

  /// Applies one DBA constraint edit and re-recommends incrementally.
  /// Two tiers, both free of backend optimizer calls and INUM
  /// populations after a constraints-only delta:
  ///
  ///   1. Certificate reuse: when the edit only *tightens* the solved
  ///      constraints (more pins/vetoes, smaller budget, lower caps)
  ///      and the previous proven-optimal recommendation is still
  ///      feasible, it is still optimal — Refine answers instantly with
  ///      no solver work at all. This covers the demo's most common
  ///      reactions: pinning recommended indexes, vetoing unused ones,
  ///      trimming headroom out of the budget.
  ///   2. BIP re-solve: otherwise the solve reuses the prepared atom
  ///      matrix (pinning a never-seen index extends the candidate
  ///      universe from the warm cache; still no backend calls).
  ///
  /// Either way the result is identical to a from-scratch Recommend
  /// under the same constraints. Backend failures degrade exactly like
  /// Recommend (certificate reuse and warm re-solves need no backend;
  /// a cold rebuild falls back to the last certified recommendation,
  /// marked `degraded`).
  Result<IndexRecommendation> Refine(const ConstraintDelta& delta);

  /// The most recent successful Recommend/Refine result.
  const IndexRecommendation* last_recommendation() const {
    return last_rec_.has_value() ? &*last_rec_ : nullptr;
  }

  // --- Deployment planning (the loop's last stage) ---
  /// Plans how to take the last recommendation live: computes the
  /// pairwise DoI matrix over the compressed template-class workload
  /// (batched on the thread pool, bit-identical at any thread count),
  /// partitions the interaction graph into independent clusters, and
  /// emits a constraint-aware materialization schedule (pinned indexes
  /// first, storage budget respected at every intermediate step,
  /// vetoed indexes impossible by construction).
  ///
  /// Incremental like the rest of the loop: after a warm Recommend the
  /// whole stage runs on cached INUM atoms — ZERO new backend optimizer
  /// calls and ZERO new populations. Per-class DoI contribution rows
  /// are cached by template, so workload deltas recompute only the rows
  /// whose atoms changed (a same-template weight bump recomputes
  /// nothing and just re-weights the sums), and a Refine that leaves
  /// the recommended index set, class weights and schedule-relevant
  /// constraints unchanged reuses the previous schedule outright.
  ///
  /// Degradation contract: when a backend failure prevents a fresh
  /// plan, the previous plan (if any) is returned marked `degraded`
  /// with the causing Status; otherwise the Status surfaces directly.
  Result<DeploymentPlan> PlanDeployment();

  /// The most recent successful PlanDeployment result (invalidated by
  /// workload replacement and session load).
  const DeploymentPlan* last_deployment() const {
    return deployment_.has_value() ? &*deployment_ : nullptr;
  }

  /// True when a prepared atom matrix is live (Refine will be
  /// incremental).
  bool prepared() const { return prepared_valid_; }

  /// The live prepared CoPhy state (empty until the first Recommend).
  /// Exposed for the tuning server and its tests: atom rows are shared
  /// immutable snapshots, so pointer equality across sessions proves
  /// cross-session reuse, and pointer stability across another
  /// session's Refine proves copy-on-write isolation.
  const CoPhyPrepared& prepared_state() const { return prepared_; }

  /// Attaches a cross-session atom source (non-owning; must outlive
  /// the session or be detached with nullptr). Preparing the session
  /// then reuses rows other sessions built for the same (schema, query,
  /// candidate universe) and publishes its own — results stay
  /// bit-identical either way (see CoPhyAdvisor::set_atom_source).
  void SetAtomSource(CoPhyAtomSource* source) {
    atom_source_ = source;
    if (cophy_ != nullptr) cophy_->set_atom_source(source);
  }

  /// Bounds the session-owned cache tiers (DoI contribution rows and
  /// the CoPhy solver cache; the shared AtomStore is budgeted by its
  /// owner — see server/server.h). Applies immediately: a shrink trims
  /// both tiers now, not at the next call. Budgets bound memory only —
  /// evicted rows/frontiers are recomputed transparently and every
  /// Recommend/Refine/PlanDeployment result stays bit-identical to the
  /// unbounded session. Zero fields (the default) mean unbounded.
  void SetCacheBudget(const CacheBudget& budget);
  const CacheBudget& cache_budget() const { return cache_budget_; }

  /// Lifetime count of DoI contribution rows evicted by the budget
  /// (each one is recomputed from cached atoms if its class is still
  /// live at the next PlanDeployment).
  uint64_t doi_rows_evicted() const { return doi_rows_evicted_; }

  /// The session's solver cache (exposed for budget/trim telemetry:
  /// ApproxBytes, trims, points_dropped, entries_invalidated).
  const CoPhySolverCache& solver_cache() const { return solver_cache_; }

  /// Counters behind the "refinement makes zero new cost calls" claim:
  /// expensive backend optimizer invocations and INUM populate runs so
  /// far. Tests and benches snapshot these around Refine.
  uint64_t backend_optimizer_calls() const;
  uint64_t inum_populate_count() const;

  // --- Snapshots ---
  /// Saves the current hypothetical design under `name` (overwrites).
  void SaveSnapshot(const std::string& name);
  /// Restores a named snapshot (undoable as a single step).
  Status RestoreSnapshot(const std::string& name);
  std::vector<std::string> SnapshotNames() const;

  /// Workload benefit of a named snapshot vs the empty baseline.
  Result<BenefitReport> CompareSnapshot(const std::string& name,
                                        const Workload& workload);

  // --- Persistence ---
  /// Serializes constraints, workload (as SQL), snapshots, the current
  /// design and the action log. Undo/redo stacks and the prepared cache
  /// are not persisted (the cache rebuilds on first use).
  Json ToJson() const;
  Status LoadFromJson(const Json& j);
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  // --- Introspection ---
  const PhysicalDesign& design() const {
    return designer_->whatif().hypothetical_design();
  }
  /// Human-readable action log ("CREATE INDEX idx_photoobj_ra", ...).
  const std::vector<std::string>& log() const { return log_; }
  Designer& designer() const { return *designer_; }

 private:
  /// Pushes the current design for undo and clears the redo stack.
  void Checkpoint(std::string action);
  /// Replaces the what-if overlay wholesale.
  void Apply(const PhysicalDesign& design);
  /// Replaces the design's index overlay with `rec` as one undoable step.
  void ApplyRecommendation(const IndexRecommendation& rec,
                           std::string action);
  /// Builds (or incrementally extends) the prepared CoPhy state over
  /// the compressed class workload.
  Status EnsurePrepared();
  /// True when the previous proven-optimal recommendation certifiably
  /// remains optimal under the current constraints (tightening-only
  /// edit + still feasible).
  bool CertificateHolds() const;
  /// Rebuilds the class table and class_of_ map from workload_.
  void RebuildClasses();
  /// Mirrors class weights into the prepared state and refreshes its
  /// weighted base cost (call after any weight change).
  void SyncPreparedWeights();
  /// Maps the per-class costs of a solve back onto raw workload
  /// positions (the public per_query_cost contract predates classes).
  std::vector<double> ExpandPerQueryCost(
      const std::vector<double>& class_cost) const;
  /// The last recommendation re-weighted to the current class weights
  /// (identical to last_rec_ unless same-template appends bumped them).
  IndexRecommendation ReweightedLastRecommendation() const;
  /// "snapshot 'x' not found (available: a, b)" helper.
  Status SnapshotNotFound(const std::string& name) const;
  /// Computes a fresh deployment plan (the fallible body of
  /// PlanDeployment); backend failures surface as Status.
  Result<DeploymentPlan> BuildDeploymentPlan();
  /// The degraded Recommend/Refine answer: the last certified
  /// recommendation marked with `cause`, or `cause` itself when no
  /// fallback exists.
  Result<IndexRecommendation> DegradedRecommendation(Status cause);
  /// Drops every cached deployment artifact (DoI rows + plan).
  void InvalidateDeployment();
  /// Evicts least-recently-used DoI rows until the cache fits
  /// cache_budget_.doi_rows_bytes (no-op when unbounded). Called after
  /// a plan is built, so the call that computed a row always gets to
  /// use it.
  void EvictDoiRowsToBudget();
  /// Budget-accounted footprint of doi_rows_.
  size_t DoiRowsBytes() const;
  /// True when the cached schedule is still exactly what a rebuild
  /// under the current class workload (identified by `keys` and
  /// `weights`) and constraints would produce.
  bool ScheduleStillValid(const std::vector<IndexDef>& indexes,
                          const std::vector<std::string>& keys,
                          const std::vector<double>& weights) const;

  Designer* designer_;
  Workload workload_;
  /// Template classes of workload_ (collision-verified); class ids are
  /// the row indexes of the prepared CoPhy state.
  TemplateClassTable classes_;
  /// Raw workload position -> class id (parallel to workload_).
  std::vector<size_t> class_of_;
  DesignConstraints constraints_;

  /// Owns the INUM cost cache reused across the whole session.
  std::unique_ptr<CoPhyAdvisor> cophy_;
  /// Cross-session atom reuse seam (server-installed; may be null).
  CoPhyAtomSource* atom_source_ = nullptr;
  CoPhyPrepared prepared_;
  bool prepared_valid_ = false;
  /// Per-cluster solver state (proven optima, signatures, warm bases)
  /// reused across Recommend/Refine calls: a constraint edit re-solves
  /// only the clusters it touches, warm-starting them from their
  /// previous root basis. Session-owned — prepared_ stays read-only
  /// during a solve, so COW sharing of atom rows across sessions is
  /// unaffected. Cleared whenever the prepared row space changes shape
  /// (the cache also self-validates against the universe fingerprint
  /// and row count, so a stale pointer can at worst cost a cold solve,
  /// never a wrong answer).
  CoPhySolverCache solver_cache_;
  std::optional<IndexRecommendation> last_rec_;
  /// Per-class costs of last_rec_ (per_query_cost before expansion to
  /// raw positions) — the basis for re-weighting after weight bumps.
  std::vector<double> last_class_cost_;
  /// Constraints the last solve ran under + whether its optimality
  /// certificate is still tied to the current workload.
  DesignConstraints solved_constraints_;
  bool certificate_valid_ = false;

  // --- Deployment-stage cache ---
  /// One cached DoI contribution row plus its LRU recency (rows are
  /// touched in class order on every plan build, so recency — and with
  /// it eviction order under a budget — is deterministic).
  struct DoiRowEntry {
    std::vector<double> row;
    uint64_t lru = 0;
  };
  /// Unweighted per-class DoI contribution rows, keyed by the class
  /// representative's SQL rendering and valid for doi_indexes_ only.
  /// The SQL text is structurally faithful (it is what session
  /// persistence round-trips through the parser), so unlike a 64-bit
  /// hash it cannot collide across different templates — the same
  /// reason CompressWorkload verifies every signature hit. Workload
  /// deltas leave untouched rows valid; stale keys are pruned lazily,
  /// and cache_budget_.doi_rows_bytes evicts LRU rows (recomputed from
  /// cached atoms when needed again).
  std::map<std::string, DoiRowEntry> doi_rows_;
  uint64_t doi_lru_tick_ = 0;
  uint64_t doi_rows_evicted_ = 0;
  CacheBudget cache_budget_;
  /// The index set doi_rows_ was computed against.
  std::vector<IndexDef> doi_indexes_;
  std::optional<DeploymentPlan> deployment_;
  /// Class identities (SQL keys), weights and constraints the cached
  /// schedule was built at — the reuse-outright certificate.
  std::vector<std::string> deployment_class_keys_;
  std::vector<double> deployment_weights_;
  DesignConstraints deployment_constraints_;

  std::vector<PhysicalDesign> undo_stack_;
  std::vector<PhysicalDesign> redo_stack_;
  std::map<std::string, PhysicalDesign> snapshots_;
  std::vector<std::string> log_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_CORE_SESSION_H_
