#include "core/constraints.h"

#include <algorithm>
#include <cmath>

#include "catalog/design_json.h"
#include "util/str.h"

namespace dbdesign {

namespace {

bool Contains(const std::vector<IndexDef>& v, const IndexDef& index) {
  return std::find(v.begin(), v.end(), index) != v.end();
}

void Remove(std::vector<IndexDef>* v, const IndexDef& index) {
  v->erase(std::remove(v->begin(), v->end(), index), v->end());
}

void AddUnique(std::vector<IndexDef>* v, const IndexDef& index) {
  if (!Contains(*v, index)) v->push_back(index);
}

Status CheckIndexIds(const IndexDef& index, const Catalog& catalog,
                     const char* role) {
  if (index.table < 0 || index.table >= catalog.num_tables()) {
    return Status::InvalidArgument(
        StrFormat("%s index: table id %d out of range", role, index.table));
  }
  if (index.columns.empty()) {
    return Status::InvalidArgument(
        StrFormat("%s index on %s has no columns", role,
                  catalog.table(index.table).name().c_str()));
  }
  for (ColumnId c : index.columns) {
    if (c < 0 || c >= catalog.table(index.table).num_columns()) {
      return Status::InvalidArgument(
          StrFormat("%s index: column id %d out of range for table %s", role,
                    c, catalog.table(index.table).name().c_str()));
    }
  }
  return Status::OK();
}

Json IndexListToJson(const std::vector<IndexDef>& v) {
  Json arr = Json::Array();
  for (const IndexDef& idx : v) arr.Append(IndexDefToJson(idx));
  return arr;
}

Status IndexListFromJson(const Json& j, const Catalog& catalog,
                         std::vector<IndexDef>* out) {
  if (!j.is_array()) return Status::ParseError("expected an index array");
  for (const Json& item : j.items()) {
    Result<IndexDef> idx = IndexDefFromJson(item, catalog);
    if (!idx.ok()) return idx.status();
    out->push_back(std::move(idx).value());
  }
  return Status::OK();
}

Json TableListToJson(const std::vector<TableId>& v) {
  Json arr = Json::Array();
  for (TableId t : v) arr.Append(Json::Number(t));
  return arr;
}

Status TableListFromJson(const Json& j, const Catalog& catalog,
                         std::vector<TableId>* out) {
  if (!j.is_array()) return Status::ParseError("expected a table-id array");
  for (const Json& item : j.items()) {
    if (!item.is_number()) return Status::ParseError("table id must be a number");
    TableId t = static_cast<TableId>(item.number());
    if (t < 0 || t >= catalog.num_tables()) {
      return Status::InvalidArgument(StrFormat("table id %d out of range", t));
    }
    out->push_back(t);
  }
  return Status::OK();
}

}  // namespace

std::string ColumnRef::DisplayName(const Catalog& catalog) const {
  return catalog.table(table).name() + "." +
         catalog.table(table).column(column).name;
}

bool DesignConstraints::unconstrained() const {
  return *this == DesignConstraints{};
}

bool DesignConstraints::IsPinned(const IndexDef& index) const {
  return Contains(pinned_indexes, index);
}

bool DesignConstraints::IsVetoed(const IndexDef& index) const {
  if (Contains(vetoed_indexes, index)) return true;
  for (ColumnId c : index.columns) {
    if (std::find(vetoed_columns.begin(), vetoed_columns.end(),
                  ColumnRef{index.table, c}) != vetoed_columns.end()) {
      return true;
    }
  }
  return false;
}

bool DesignConstraints::PartitioningAllowed(TableId table) const {
  if (!partitioning_enabled) return false;
  if (std::find(partition_denied_tables.begin(),
                partition_denied_tables.end(),
                table) != partition_denied_tables.end()) {
    return false;
  }
  return partition_allowed_tables.empty() ||
         std::find(partition_allowed_tables.begin(),
                   partition_allowed_tables.end(),
                   table) != partition_allowed_tables.end();
}

std::optional<int> DesignConstraints::TableCap(TableId table) const {
  auto it = max_indexes_per_table.find(table);
  if (it == max_indexes_per_table.end()) return std::nullopt;
  return it->second;
}

int DesignConstraints::TableCapOrUnlimited(TableId table) const {
  std::optional<int> cap = TableCap(table);
  return cap.has_value() ? *cap : std::numeric_limits<int>::max();
}

double DesignConstraints::EffectiveBudget(double advisor_budget_pages) const {
  return std::min(advisor_budget_pages, storage_budget_pages);
}

void DesignConstraints::Pin(const IndexDef& index) {
  AddUnique(&pinned_indexes, index);
}
void DesignConstraints::Unpin(const IndexDef& index) {
  Remove(&pinned_indexes, index);
}
void DesignConstraints::Veto(const IndexDef& index) {
  AddUnique(&vetoed_indexes, index);
}
void DesignConstraints::Unveto(const IndexDef& index) {
  Remove(&vetoed_indexes, index);
}
void DesignConstraints::VetoColumn(const ColumnRef& column) {
  if (std::find(vetoed_columns.begin(), vetoed_columns.end(), column) ==
      vetoed_columns.end()) {
    vetoed_columns.push_back(column);
  }
}
void DesignConstraints::UnvetoColumn(const ColumnRef& column) {
  vetoed_columns.erase(
      std::remove(vetoed_columns.begin(), vetoed_columns.end(), column),
      vetoed_columns.end());
}

Status DesignConstraints::Validate(const Catalog& catalog) const {
  for (const IndexDef& idx : pinned_indexes) {
    Status s = CheckIndexIds(idx, catalog, "pinned");
    if (!s.ok()) return s;
  }
  for (const IndexDef& idx : vetoed_indexes) {
    Status s = CheckIndexIds(idx, catalog, "vetoed");
    if (!s.ok()) return s;
  }
  for (const ColumnRef& c : vetoed_columns) {
    if (c.table < 0 || c.table >= catalog.num_tables()) {
      return Status::InvalidArgument(
          StrFormat("vetoed column: table id %d out of range", c.table));
    }
    if (c.column < 0 || c.column >= catalog.table(c.table).num_columns()) {
      return Status::InvalidArgument(
          StrFormat("vetoed column: column id %d out of range for %s",
                    c.column, catalog.table(c.table).name().c_str()));
    }
  }
  // A pin and a veto on the same index is a contradiction the DBA must
  // resolve, not something to guess about.
  for (const IndexDef& idx : pinned_indexes) {
    if (IsVetoed(idx)) {
      return Status::InvalidArgument(
          "index " + idx.DisplayName(catalog) +
          " is both pinned and vetoed (directly or via a vetoed column)");
    }
  }
  std::map<TableId, int> pins_per_table;
  for (const IndexDef& idx : pinned_indexes) pins_per_table[idx.table]++;
  for (const auto& [table, cap] : max_indexes_per_table) {
    if (table < 0 || table >= catalog.num_tables()) {
      return Status::InvalidArgument(
          StrFormat("index cap: table id %d out of range", table));
    }
    if (cap < 0) {
      return Status::InvalidArgument(
          StrFormat("index cap for %s is negative",
                    catalog.table(table).name().c_str()));
    }
    auto it = pins_per_table.find(table);
    if (it != pins_per_table.end() && it->second > cap) {
      return Status::InvalidArgument(
          StrFormat("%d indexes pinned on %s but its cap is %d", it->second,
                    catalog.table(table).name().c_str(), cap));
    }
  }
  for (TableId t : partition_allowed_tables) {
    if (t < 0 || t >= catalog.num_tables()) {
      return Status::InvalidArgument(
          StrFormat("partition allow list: table id %d out of range", t));
    }
  }
  for (TableId t : partition_denied_tables) {
    if (t < 0 || t >= catalog.num_tables()) {
      return Status::InvalidArgument(
          StrFormat("partition deny list: table id %d out of range", t));
    }
  }
  if (std::isfinite(storage_budget_pages) && storage_budget_pages < 0.0) {
    return Status::InvalidArgument("storage budget must be non-negative");
  }
  return Status::OK();
}

Json DesignConstraints::ToJson() const {
  Json j = Json::Object();
  j["pinned"] = IndexListToJson(pinned_indexes);
  j["vetoed"] = IndexListToJson(vetoed_indexes);
  Json cols = Json::Array();
  for (const ColumnRef& c : vetoed_columns) {
    Json col = Json::Object();
    col["table"] = Json::Number(c.table);
    col["column"] = Json::Number(c.column);
    cols.Append(std::move(col));
  }
  j["vetoed_columns"] = std::move(cols);
  Json caps = Json::Array();
  for (const auto& [table, cap] : max_indexes_per_table) {
    Json entry = Json::Object();
    entry["table"] = Json::Number(table);
    entry["cap"] = Json::Number(cap);
    caps.Append(std::move(entry));
  }
  j["table_caps"] = std::move(caps);
  if (std::isfinite(storage_budget_pages)) {
    j["storage_budget_pages"] = Json::Number(storage_budget_pages);
  }
  j["partitioning_enabled"] = Json::Bool(partitioning_enabled);
  j["partition_allowed"] = TableListToJson(partition_allowed_tables);
  j["partition_denied"] = TableListToJson(partition_denied_tables);
  return j;
}

Result<DesignConstraints> DesignConstraints::FromJson(const Json& j,
                                                      const Catalog& catalog) {
  if (!j.is_object()) return Status::ParseError("constraints must be an object");
  DesignConstraints c;
  if (const Json* pinned = j.Find("pinned")) {
    Status s = IndexListFromJson(*pinned, catalog, &c.pinned_indexes);
    if (!s.ok()) return s;
  }
  if (const Json* vetoed = j.Find("vetoed")) {
    Status s = IndexListFromJson(*vetoed, catalog, &c.vetoed_indexes);
    if (!s.ok()) return s;
  }
  if (const Json* cols = j.Find("vetoed_columns")) {
    if (!cols->is_array()) return Status::ParseError("vetoed_columns must be an array");
    for (const Json& item : cols->items()) {
      const Json* table = item.Find("table");
      const Json* column = item.Find("column");
      if (table == nullptr || column == nullptr || !table->is_number() ||
          !column->is_number()) {
        return Status::ParseError("vetoed column needs numeric table + column");
      }
      c.vetoed_columns.push_back(ColumnRef{
          static_cast<TableId>(table->number()),
          static_cast<ColumnId>(column->number())});
    }
  }
  if (const Json* caps = j.Find("table_caps")) {
    if (!caps->is_array()) return Status::ParseError("table_caps must be an array");
    for (const Json& item : caps->items()) {
      const Json* table = item.Find("table");
      const Json* cap = item.Find("cap");
      if (table == nullptr || cap == nullptr || !table->is_number() ||
          !cap->is_number()) {
        return Status::ParseError("table cap needs numeric table + cap");
      }
      c.max_indexes_per_table[static_cast<TableId>(table->number())] =
          static_cast<int>(cap->number());
    }
  }
  if (const Json* budget = j.Find("storage_budget_pages")) {
    if (!budget->is_number()) return Status::ParseError("budget must be a number");
    c.storage_budget_pages = budget->number();
  }
  if (const Json* enabled = j.Find("partitioning_enabled")) {
    if (!enabled->is_bool()) return Status::ParseError("partitioning_enabled must be a bool");
    c.partitioning_enabled = enabled->bool_value();
  }
  if (const Json* allowed = j.Find("partition_allowed")) {
    Status s = TableListFromJson(*allowed, catalog, &c.partition_allowed_tables);
    if (!s.ok()) return s;
  }
  if (const Json* denied = j.Find("partition_denied")) {
    Status s = TableListFromJson(*denied, catalog, &c.partition_denied_tables);
    if (!s.ok()) return s;
  }
  Status s = c.Validate(catalog);
  if (!s.ok()) return s;
  return c;
}

bool ConstraintDelta::empty() const {
  return pin.empty() && unpin.empty() && veto.empty() && unveto.empty() &&
         veto_columns.empty() && unveto_columns.empty() &&
         !storage_budget_pages.has_value() && table_caps.empty() &&
         !partitioning_enabled.has_value() && allow_partitioning.empty() &&
         deny_partitioning.empty();
}

std::string ConstraintDelta::Describe(const Catalog& catalog) const {
  std::vector<std::string> parts;
  for (const IndexDef& idx : pin) {
    parts.push_back("PIN " + idx.DisplayName(catalog));
  }
  for (const IndexDef& idx : unpin) {
    parts.push_back("UNPIN " + idx.DisplayName(catalog));
  }
  for (const IndexDef& idx : veto) {
    parts.push_back("VETO " + idx.DisplayName(catalog));
  }
  for (const IndexDef& idx : unveto) {
    parts.push_back("UNVETO " + idx.DisplayName(catalog));
  }
  for (const ColumnRef& c : veto_columns) {
    parts.push_back("VETO COLUMN " + c.DisplayName(catalog));
  }
  for (const ColumnRef& c : unveto_columns) {
    parts.push_back("UNVETO COLUMN " + c.DisplayName(catalog));
  }
  if (storage_budget_pages.has_value()) {
    parts.push_back(std::isfinite(*storage_budget_pages)
                        ? StrFormat("BUDGET %.0f PAGES", *storage_budget_pages)
                        : "BUDGET UNLIMITED");
  }
  for (const auto& [table, cap] : table_caps) {
    parts.push_back(cap < 0
                        ? "UNCAP " + catalog.table(table).name()
                        : StrFormat("CAP %s %d",
                                    catalog.table(table).name().c_str(), cap));
  }
  if (partitioning_enabled.has_value()) {
    parts.push_back(*partitioning_enabled ? "PARTITIONING ON"
                                          : "PARTITIONING OFF");
  }
  for (TableId t : allow_partitioning) {
    parts.push_back("ALLOW PARTITION " + catalog.table(t).name());
  }
  for (TableId t : deny_partitioning) {
    parts.push_back("DENY PARTITION " + catalog.table(t).name());
  }
  return parts.empty() ? "NO-OP" : StrJoin(parts, ", ");
}

bool TightensIndexConstraints(const DesignConstraints& solved,
                              const DesignConstraints& now) {
  for (const IndexDef& pin : solved.pinned_indexes) {
    if (!now.IsPinned(pin)) return false;
  }
  for (const IndexDef& veto : solved.vetoed_indexes) {
    if (!Contains(now.vetoed_indexes, veto)) return false;
  }
  for (const ColumnRef& col : solved.vetoed_columns) {
    if (std::find(now.vetoed_columns.begin(), now.vetoed_columns.end(),
                  col) == now.vetoed_columns.end()) {
      return false;
    }
  }
  if (now.storage_budget_pages > solved.storage_budget_pages) return false;
  for (const auto& [table, cap] : solved.max_indexes_per_table) {
    std::optional<int> now_cap = now.TableCap(table);
    if (!now_cap.has_value() || *now_cap > cap) return false;
  }
  return true;
}

Status ApplyConstraintDelta(const ConstraintDelta& delta,
                            const Catalog& catalog,
                            DesignConstraints* constraints) {
  DesignConstraints next = *constraints;
  for (const IndexDef& idx : delta.unpin) next.Unpin(idx);
  for (const IndexDef& idx : delta.unveto) next.Unveto(idx);
  for (const ColumnRef& c : delta.unveto_columns) next.UnvetoColumn(c);
  for (const IndexDef& idx : delta.pin) next.Pin(idx);
  for (const IndexDef& idx : delta.veto) next.Veto(idx);
  for (const ColumnRef& c : delta.veto_columns) next.VetoColumn(c);
  if (delta.storage_budget_pages.has_value()) {
    next.storage_budget_pages = *delta.storage_budget_pages;
  }
  for (const auto& [table, cap] : delta.table_caps) {
    if (cap < 0) {
      next.max_indexes_per_table.erase(table);
    } else {
      next.max_indexes_per_table[table] = cap;
    }
  }
  if (delta.partitioning_enabled.has_value()) {
    next.partitioning_enabled = *delta.partitioning_enabled;
  }
  for (TableId t : delta.allow_partitioning) {
    if (std::find(next.partition_allowed_tables.begin(),
                  next.partition_allowed_tables.end(), t) ==
        next.partition_allowed_tables.end()) {
      next.partition_allowed_tables.push_back(t);
    }
    next.partition_denied_tables.erase(
        std::remove(next.partition_denied_tables.begin(),
                    next.partition_denied_tables.end(), t),
        next.partition_denied_tables.end());
  }
  for (TableId t : delta.deny_partitioning) {
    if (std::find(next.partition_denied_tables.begin(),
                  next.partition_denied_tables.end(), t) ==
        next.partition_denied_tables.end()) {
      next.partition_denied_tables.push_back(t);
    }
    next.partition_allowed_tables.erase(
        std::remove(next.partition_allowed_tables.begin(),
                    next.partition_allowed_tables.end(), t),
        next.partition_allowed_tables.end());
  }
  Status s = next.Validate(catalog);
  if (!s.ok()) return s;
  *constraints = std::move(next);
  return Status::OK();
}

}  // namespace dbdesign
