// AutoPart: automatic partition suggestion (paper §3.3, ref [8] —
// Papadomanolakis & Ailamaki, SSDBM'04).
//
// Vertical partitioning follows AutoPart's algorithm shape:
//   1. *Atomic fragments*: group each table's columns by identical
//      query-access patterns (two columns fuse iff exactly the same
//      workload queries touch them).
//   2. *Greedy combination*: repeatedly merge the fragment pair whose
//      union lowers the estimated workload cost the most (fragments are
//      only considered when some query co-accesses them).
//   3. *Replication*: columns may additionally be copied into other
//      fragments while total storage stays within the space constraint
//      ("space limitations for replicating columns in the partition").
// Horizontal partitioning derives range bounds from the workload's
// predicate columns and keeps them when they reduce cost.
//
// Cost evaluation uses the partition-aware INUM extension, so the
// greedy loop runs without full optimizer calls.

#ifndef DBDESIGN_AUTOPART_AUTOPART_H_
#define DBDESIGN_AUTOPART_AUTOPART_H_

#include <memory>
#include <string>
#include <vector>

#include "core/constraints.h"
#include "inum/inum.h"

namespace dbdesign {

class Database;  // legacy convenience constructor only

struct AutoPartOptions {
  /// Stored-bytes / original-bytes ceiling for column replication.
  double replication_budget_factor = 1.2;
  int max_merge_iterations = 64;
  bool enable_horizontal = true;
  /// Number of range partitions to propose per table.
  int horizontal_partitions = 12;
  /// Only tables at least this many pages are worth partitioning.
  double min_table_pages = 8.0;
};

struct PartitionRecommendation {
  /// Vertical + horizontal partitionings (no indexes).
  PhysicalDesign design;

  double base_cost = 0.0;
  double final_cost = 0.0;
  std::vector<double> per_query_cost;       ///< under `design`
  std::vector<double> per_query_base_cost;  ///< under the original schema

  struct TableReport {
    TableId table = kInvalidTableId;
    int num_fragments = 0;
    double replication_factor = 1.0;
    bool horizontal = false;
    int horizontal_parts = 0;
  };
  std::vector<TableReport> tables;

  double improvement() const {
    return base_cost > 0 ? 1.0 - final_cost / base_cost : 0.0;
  }
  double AverageBenefit() const { return improvement(); }
};

class AutoPartAdvisor {
 public:
  /// Attaches to a backend (non-owning); cost parameters come from it.
  explicit AutoPartAdvisor(DbmsBackend& backend, AutoPartOptions options = {});

  /// Legacy convenience: wraps `db` in an owned InMemoryBackend (defined
  /// in backend/compat.cc).
  explicit AutoPartAdvisor(const Database& db, CostParams params = {},
                           AutoPartOptions options = {});

  PartitionRecommendation Recommend(const Workload& workload);

  /// Constraint-aware variant: tables outside the constraints'
  /// partitioning allow list (or on its deny list, or everything when
  /// partitioning is disabled) are left untouched — no vertical
  /// fragments, no horizontal ranges.
  PartitionRecommendation Recommend(const Workload& workload,
                                    const DesignConstraints& constraints);

  /// Rewrites a query onto the fragments of `design` (the demo's "save
  /// the rewritten queries" feature): fragments joined back on the
  /// implicit row id.
  std::string RewriteQuery(const BoundQuery& query,
                           const PhysicalDesign& design) const;

  InumCostModel& inum() { return inum_; }

 private:
  /// Owning constructor used by the legacy Database path.
  AutoPartAdvisor(std::shared_ptr<DbmsBackend> owned, AutoPartOptions options);

  /// Builds atomic fragments for one table from query access patterns.
  std::vector<VerticalFragment> AtomicFragments(
      TableId table, const Workload& workload) const;

  std::shared_ptr<DbmsBackend> owned_backend_;  // legacy path only
  DbmsBackend* backend_;
  AutoPartOptions options_;
  InumCostModel inum_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_AUTOPART_AUTOPART_H_
