#include "autopart/autopart.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.h"
#include "util/str.h"

namespace dbdesign {

AutoPartAdvisor::AutoPartAdvisor(DbmsBackend& backend, AutoPartOptions options)
    : backend_(&backend), options_(options), inum_(backend) {}

AutoPartAdvisor::AutoPartAdvisor(std::shared_ptr<DbmsBackend> owned,
                                 AutoPartOptions options)
    : owned_backend_(std::move(owned)),
      backend_(owned_backend_.get()),
      options_(options),
      inum_(*backend_) {}

std::vector<VerticalFragment> AutoPartAdvisor::AtomicFragments(
    TableId table, const Workload& workload) const {
  const TableDef& def = backend_->catalog().table(table);
  // Access signature per column: bitmask over queries touching it.
  std::vector<uint64_t> signature(static_cast<size_t>(def.num_columns()), 0);
  for (size_t qi = 0; qi < workload.size() && qi < 64; ++qi) {
    const BoundQuery& q = workload.queries[qi];
    for (int s = 0; s < q.num_slots(); ++s) {
      if (q.tables[s] != table) continue;
      for (ColumnId c : q.ReferencedColumns(s)) {
        signature[static_cast<size_t>(c)] |= uint64_t{1} << qi;
      }
    }
  }
  std::map<uint64_t, VerticalFragment> groups;
  for (ColumnId c = 0; c < def.num_columns(); ++c) {
    groups[signature[static_cast<size_t>(c)]].columns.push_back(c);
  }
  std::vector<VerticalFragment> fragments;
  for (auto& [sig, frag] : groups) {
    std::sort(frag.columns.begin(), frag.columns.end());
    fragments.push_back(std::move(frag));
  }
  return fragments;
}

PartitionRecommendation AutoPartAdvisor::Recommend(const Workload& workload) {
  return Recommend(workload, DesignConstraints{});
}

PartitionRecommendation AutoPartAdvisor::Recommend(
    const Workload& workload, const DesignConstraints& constraints) {
  PartitionRecommendation rec;
  PhysicalDesign design;
  rec.base_cost = inum_.WorkloadCost(workload, design);
  rec.per_query_base_cost.reserve(workload.size());
  for (const BoundQuery& q : workload.queries) {
    rec.per_query_base_cost.push_back(inum_.Cost(q, PhysicalDesign{}));
  }

  // Tables touched by the workload, largest first.
  std::set<TableId> touched;
  for (const BoundQuery& q : workload.queries) {
    for (TableId t : q.tables) touched.insert(t);
  }

  for (TableId table : touched) {
    const TableDef& def = backend_->catalog().table(table);
    const TableStats& stats = backend_->stats(table);
    if (stats.HeapPages(def) < options_.min_table_pages) continue;
    // DBA partitioning control: a denied (or not-allowed) table keeps
    // its original layout.
    if (!constraints.PartitioningAllowed(table)) continue;

    // --- Vertical: atomic fragments, then greedy merging ---
    std::vector<VerticalFragment> frags = AtomicFragments(table, workload);
    auto apply = [&](const std::vector<VerticalFragment>& f) {
      VerticalPartitioning vp;
      vp.table = table;
      vp.fragments = f;
      PhysicalDesign d = design;
      d.SetVerticalPartitioning(vp);
      return d;
    };
    double current = inum_.WorkloadCost(workload, apply(frags));
    double unpartitioned = inum_.WorkloadCost(workload, design);

    for (int iter = 0; iter < options_.max_merge_iterations; ++iter) {
      if (frags.size() <= 1) break;
      double best_cost = current;
      int best_a = -1;
      int best_b = -1;
      for (size_t a = 0; a < frags.size(); ++a) {
        for (size_t b = a + 1; b < frags.size(); ++b) {
          std::vector<VerticalFragment> trial;
          VerticalFragment merged;
          merged.columns = frags[a].columns;
          merged.columns.insert(merged.columns.end(), frags[b].columns.begin(),
                                frags[b].columns.end());
          std::sort(merged.columns.begin(), merged.columns.end());
          trial.push_back(merged);
          for (size_t k = 0; k < frags.size(); ++k) {
            if (k != a && k != b) trial.push_back(frags[k]);
          }
          double cost = inum_.WorkloadCost(workload, apply(trial));
          if (cost < best_cost - 1e-9) {
            best_cost = cost;
            best_a = static_cast<int>(a);
            best_b = static_cast<int>(b);
          }
        }
      }
      if (best_a < 0) break;
      VerticalFragment merged;
      merged.columns = frags[static_cast<size_t>(best_a)].columns;
      merged.columns.insert(
          merged.columns.end(),
          frags[static_cast<size_t>(best_b)].columns.begin(),
          frags[static_cast<size_t>(best_b)].columns.end());
      std::sort(merged.columns.begin(), merged.columns.end());
      frags.erase(frags.begin() + best_b);
      frags.erase(frags.begin() + best_a);
      frags.push_back(std::move(merged));
      current = best_cost;
    }

    // --- Replication: copy hot columns into fragments when affordable ---
    {
      VerticalPartitioning vp;
      vp.table = table;
      vp.fragments = frags;
      bool improved = true;
      while (improved &&
             vp.ReplicationFactor(def) < options_.replication_budget_factor) {
        improved = false;
        double best_cost = current;
        VerticalPartitioning best_vp = vp;
        for (size_t f = 0; f < vp.fragments.size(); ++f) {
          for (ColumnId c = 0; c < def.num_columns(); ++c) {
            if (vp.fragments[f].Covers(c)) continue;
            VerticalPartitioning trial = vp;
            trial.fragments[f].columns.push_back(c);
            std::sort(trial.fragments[f].columns.begin(),
                      trial.fragments[f].columns.end());
            if (trial.ReplicationFactor(def) >
                options_.replication_budget_factor) {
              continue;
            }
            PhysicalDesign d = design;
            d.SetVerticalPartitioning(trial);
            double cost = inum_.WorkloadCost(workload, d);
            if (cost < best_cost - 1e-9) {
              best_cost = cost;
              best_vp = trial;
              improved = true;
            }
          }
        }
        if (improved) {
          vp = best_vp;
          current = best_cost;
        }
      }
      frags = vp.fragments;
    }

    PartitionRecommendation::TableReport report;
    report.table = table;
    if (current < unpartitioned - 1e-9 && frags.size() > 1) {
      VerticalPartitioning vp;
      vp.table = table;
      vp.fragments = frags;
      report.num_fragments = static_cast<int>(frags.size());
      report.replication_factor = vp.ReplicationFactor(def);
      design.SetVerticalPartitioning(std::move(vp));
    } else {
      report.num_fragments = 1;
    }

    // --- Horizontal: range bounds on the most range-filtered column ---
    if (options_.enable_horizontal) {
      std::map<ColumnId, int> range_hits;
      for (const BoundQuery& q : workload.queries) {
        for (int s = 0; s < q.num_slots(); ++s) {
          if (q.tables[s] != table) continue;
          for (const BoundPredicate& p : q.FiltersOn(s)) {
            if (p.IsRange()) range_hits[p.column.column]++;
          }
        }
      }
      ColumnId best_col = kInvalidColumnId;
      int best_hits = 0;
      for (auto [c, hits] : range_hits) {
        if (hits > best_hits) {
          best_hits = hits;
          best_col = c;
        }
      }
      if (best_col != kInvalidColumnId && best_hits >= 2) {
        const ColumnStats& cs = stats.column(best_col);
        HorizontalPartitioning hp;
        hp.table = table;
        hp.column = best_col;
        int parts = options_.horizontal_partitions;
        if (cs.HasHistogram()) {
          // Equi-depth bounds straight from the histogram.
          const std::vector<Value>& h = cs.histogram;
          for (int p = 1; p < parts; ++p) {
            size_t pos = static_cast<size_t>(
                static_cast<double>(p) / parts * (h.size() - 1));
            if (pos == 0 || pos >= h.size() - 1) continue;
            if (hp.bounds.empty() || h[pos] > hp.bounds.back()) {
              hp.bounds.push_back(h[pos]);
            }
          }
        }
        if (static_cast<int>(hp.bounds.size()) >= 2) {
          PhysicalDesign trial = design;
          trial.SetHorizontalPartitioning(hp);
          double with_h = inum_.WorkloadCost(workload, trial);
          double without_h = inum_.WorkloadCost(workload, design);
          if (with_h < without_h - 1e-9) {
            report.horizontal = true;
            report.horizontal_parts = hp.num_partitions();
            design.SetHorizontalPartitioning(std::move(hp));
          }
        }
      }
    }
    rec.tables.push_back(report);
  }

  rec.design = design;
  rec.final_cost = inum_.WorkloadCost(workload, design);
  rec.per_query_cost.reserve(workload.size());
  for (const BoundQuery& q : workload.queries) {
    rec.per_query_cost.push_back(inum_.Cost(q, design));
  }
  DBD_LOG_INFO(StrFormat("AutoPart: cost %.1f -> %.1f (%.1f%%)",
                         rec.base_cost, rec.final_cost,
                         rec.improvement() * 100.0));
  return rec;
}

std::string AutoPartAdvisor::RewriteQuery(const BoundQuery& query,
                                          const PhysicalDesign& design) const {
  const Catalog& catalog = backend_->catalog();
  // Per slot: fragments needed to cover the referenced columns.
  std::vector<std::string> from_items;
  std::vector<std::string> join_conds;
  auto frag_alias = [&](int slot, size_t frag) {
    return StrFormat("%s_f%zu", query.aliases[slot].c_str(), frag);
  };

  auto column_source = [&](const BoundColumn& c) -> std::string {
    const VerticalPartitioning* vp = design.vertical(query.tables[c.slot]);
    if (vp == nullptr || vp->fragments.empty()) {
      return query.aliases[c.slot];
    }
    for (size_t f = 0; f < vp->fragments.size(); ++f) {
      if (vp->fragments[f].Covers(c.column)) return frag_alias(c.slot, f);
    }
    return query.aliases[c.slot];
  };
  auto col_name = [&](const BoundColumn& c) {
    return column_source(c) + "." +
           catalog.table(query.tables[c.slot]).column(c.column).name;
  };

  for (int s = 0; s < query.num_slots(); ++s) {
    const std::string& tname = catalog.table(query.tables[s]).name();
    const VerticalPartitioning* vp = design.vertical(query.tables[s]);
    if (vp == nullptr || vp->fragments.empty()) {
      from_items.push_back(tname + " " + query.aliases[s]);
      continue;
    }
    // Minimal fragment cover of the referenced columns, in index order.
    std::set<ColumnId> needed;
    for (ColumnId c : query.ReferencedColumns(s)) needed.insert(c);
    std::vector<size_t> used;
    for (size_t f = 0; f < vp->fragments.size() && !needed.empty(); ++f) {
      bool helps = false;
      for (ColumnId c : vp->fragments[f].columns) {
        if (needed.count(c) > 0) helps = true;
      }
      if (!helps) continue;
      for (ColumnId c : vp->fragments[f].columns) needed.erase(c);
      used.push_back(f);
    }
    if (used.empty()) used.push_back(0);
    std::string first = frag_alias(s, used[0]);
    for (size_t u = 0; u < used.size(); ++u) {
      from_items.push_back(StrFormat("%s__f%zu %s", tname.c_str(), used[u],
                                     frag_alias(s, used[u]).c_str()));
      if (u > 0) {
        join_conds.push_back(StrFormat("%s.rid = %s.rid", first.c_str(),
                                       frag_alias(s, used[u]).c_str()));
      }
    }
  }

  std::vector<std::string> items;
  for (const BoundColumn& c : query.select_columns) items.push_back(col_name(c));
  for (const BoundAggregate& a : query.aggregates) {
    items.push_back(a.star ? StrFormat("%s(*)", AggFnName(a.fn))
                           : StrFormat("%s(%s)", AggFnName(a.fn),
                                       col_name(a.column).c_str()));
  }
  std::string sql =
      "SELECT " + (items.empty() ? "*" : StrJoin(items, ", ")) + " FROM " +
      StrJoin(from_items, ", ");

  std::vector<std::string> conds = join_conds;
  for (const BoundJoin& j : query.joins) {
    conds.push_back(col_name(j.left) + " = " + col_name(j.right));
  }
  for (const BoundPredicate& p : query.filters) {
    if (p.value2.has_value()) {
      conds.push_back(col_name(p.column) + " BETWEEN " + p.value.ToString() +
                      " AND " + p.value2->ToString());
    } else {
      conds.push_back(StrFormat("%s %s %s", col_name(p.column).c_str(),
                                CompareOpName(p.op),
                                p.value.ToString().c_str()));
    }
  }
  if (!conds.empty()) sql += " WHERE " + StrJoin(conds, " AND ");
  if (!query.group_by.empty()) {
    std::vector<std::string> g;
    for (const BoundColumn& c : query.group_by) g.push_back(col_name(c));
    sql += " GROUP BY " + StrJoin(g, ", ");
  }
  if (!query.order_by.empty()) {
    std::vector<std::string> o;
    for (const BoundOrderItem& i : query.order_by) {
      o.push_back(col_name(i.column) + (i.descending ? " DESC" : ""));
    }
    sql += " ORDER BY " + StrJoin(o, ", ");
  }
  if (query.limit >= 0) {
    sql += StrFormat(" LIMIT %lld", static_cast<long long>(query.limit));
  }
  return sql;
}

}  // namespace dbdesign
