#include "backend/resilient_backend.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "backend/trace_backend.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dbdesign {

namespace {

/// FNV-1a 64-bit — stable cross-platform hash for jitter derivation.
uint64_t HashKey(const std::string& key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

ResilientBackend::ResilientBackend(DbmsBackend& inner, RetryPolicy policy,
                                   Clock* clock)
    : inner_(&inner),
      policy_(policy),
      clock_(clock != nullptr ? clock : &own_clock_) {}

ResilienceStats ResilientBackend::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void ResilientBackend::ResetStats() {
  MutexLock lock(mu_);
  stats_ = ResilienceStats{};
}

ResilientBackend::BreakerState ResilientBackend::breaker_state() const {
  MutexLock lock(mu_);
  return breaker_;
}

uint64_t ResilientBackend::BackoffMicros(uint64_t key_hash,
                                         int attempt) const {
  double base = static_cast<double>(policy_.initial_backoff_micros) *
                std::pow(policy_.backoff_multiplier, attempt);
  double capped =
      std::min(base, static_cast<double>(policy_.max_backoff_micros));
  // Jitter is a pure function of (seed, call key, attempt): concurrent
  // callers draw from disjoint streams, so schedules are bit-identical
  // regardless of thread interleaving.
  Rng rng(policy_.jitter_seed ^ key_hash ^
          (static_cast<uint64_t>(attempt) + 1) * 0x9e3779b97f4a7c15ULL);
  double jitter = rng.UniformDouble() * policy_.jitter_fraction;
  return static_cast<uint64_t>(capped * (1.0 + jitter));
}

Status ResilientBackend::BreakerAdmit(bool* probe) {
  *probe = false;
  if (policy_.breaker_threshold <= 0) return Status::OK();
  MutexLock lock(mu_);
  switch (breaker_) {
    case BreakerState::kClosed:
      return Status::OK();
    case BreakerState::kOpen: {
      if (clock_->NowMicros() >= open_until_micros_) {
        breaker_ = BreakerState::kHalfOpen;
        probe_in_flight_ = true;
        *probe = true;
        ++stats_.breaker_probes;
        return Status::OK();
      }
      ++stats_.breaker_fast_fails;
      return Status::Unavailable("circuit breaker open: failing fast");
    }
    case BreakerState::kHalfOpen: {
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        *probe = true;
        ++stats_.breaker_probes;
        return Status::OK();
      }
      ++stats_.breaker_fast_fails;
      return Status::Unavailable("circuit breaker half-open: probe in flight");
    }
  }
  return Status::OK();
}

void ResilientBackend::RecordOutcome(bool success, bool probe, bool retried) {
  MutexLock lock(mu_);
  if (probe) probe_in_flight_ = false;
  if (success) {
    consecutive_giveups_ = 0;
    if (breaker_ == BreakerState::kHalfOpen) breaker_ = BreakerState::kClosed;
    if (retried) ++stats_.recoveries;
    return;
  }
  ++consecutive_giveups_;
  if (policy_.breaker_threshold > 0 &&
      (breaker_ == BreakerState::kHalfOpen ||
       consecutive_giveups_ >= policy_.breaker_threshold) &&
      breaker_ != BreakerState::kOpen) {
    breaker_ = BreakerState::kOpen;
    open_until_micros_ =
        clock_->NowMicros() + policy_.breaker_cooldown_micros;
    ++stats_.breaker_trips;
  }
}

Status ResilientBackend::ValidateCost(double cost) {
  if (std::isfinite(cost) && cost >= 0.0) return Status::OK();
  {
    MutexLock lock(mu_);
    ++stats_.poisoned_rejected;
  }
  // Garbage from a dying connection is treated as transient: the
  // answer is discarded and the call retried, so a poisoned cost can
  // never cross the seam into the cost model.
  return Status::Unavailable("rejected invalid backend cost " +
                             std::to_string(cost));
}

Status ResilientBackend::RunWithRetries(
    const std::string& op_key, uint64_t deadline_micros,
    const std::function<Status()>& attempt_fn) {
  {
    MutexLock lock(mu_);
    ++stats_.calls;
  }
  bool probe = false;
  Status admit = BreakerAdmit(&probe);
  if (!admit.ok()) return admit;

  const uint64_t key_hash = HashKey(op_key);
  const uint64_t start = clock_->NowMicros();
  const int max_attempts = std::max(1, policy_.max_attempts);
  Status last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      clock_->SleepMicros(BackoffMicros(key_hash, attempt - 1));
      MutexLock lock(mu_);
      ++stats_.retries;
    }
    {
      MutexLock lock(mu_);
      ++stats_.attempts;
    }
    last = attempt_fn();
    if (deadline_micros > 0 &&
        clock_->NowMicros() - start > deadline_micros) {
      // The budget for this logical call is spent — even a late
      // success is useless to a caller that already timed out, and
      // there is no budget left to retry in.
      {
        MutexLock lock(mu_);
        ++stats_.deadline_exceeded;
      }
      last = Status::DeadlineExceeded(op_key + " exceeded " +
                                      std::to_string(deadline_micros) +
                                      "us deadline");
      break;
    }
    if (last.ok()) {
      RecordOutcome(/*success=*/true, probe, /*retried=*/attempt > 0);
      return Status::OK();
    }
    if (!last.IsRetryable()) {
      {
        MutexLock lock(mu_);
        ++stats_.permanent_failures;
      }
      // A permanent error means the backend answered: it is healthy,
      // the request was wrong. Does not feed the breaker.
      RecordOutcome(/*success=*/true, probe, /*retried=*/false);
      return last;
    }
  }
  {
    MutexLock lock(mu_);
    ++stats_.giveups;
  }
  RecordOutcome(/*success=*/false, probe, /*retried=*/true);
  return last;
}

Status ResilientBackend::RefreshStatistics(TableId table,
                                           const AnalyzeOptions& options) {
  return RunWithRetries(
      "refresh|" + std::to_string(table), policy_.call_deadline_micros,
      [&] { return inner_->RefreshStatistics(table, options); });
}

Result<PlanResult> ResilientBackend::OptimizeQuery(
    const BoundQuery& query, const PhysicalDesign& design,
    const PlannerKnobs& knobs) {
  std::optional<PlanResult> out;
  Status s = RunWithRetries(
      "opt|" + TraceBackend::CallKey(query, design, knobs),
      policy_.call_deadline_micros, [&] {
        Result<PlanResult> r = inner_->OptimizeQuery(query, design, knobs);
        if (!r.ok()) return r.status();
        Status valid = ValidateCost(r.value().cost);
        if (!valid.ok()) return valid;
        out = std::move(r).value();
        return Status::OK();
      });
  if (!s.ok()) return s;
  return std::move(*out);
}

Result<double> ResilientBackend::CostQuery(const BoundQuery& query,
                                           const PhysicalDesign& design,
                                           const PlannerKnobs& knobs) {
  double out = 0.0;
  Status s = RunWithRetries(
      "cost|" + TraceBackend::CallKey(query, design, knobs),
      policy_.call_deadline_micros, [&] {
        Result<double> r = inner_->CostQuery(query, design, knobs);
        if (!r.ok()) return r.status();
        Status valid = ValidateCost(r.value());
        if (!valid.ok()) return valid;
        out = r.value();
        return Status::OK();
      });
  if (!s.ok()) return s;
  return out;
}

Result<std::vector<double>> ResilientBackend::CostBatch(
    std::span<const BoundQuery> queries, const PhysicalDesign& design,
    const PlannerKnobs& knobs) {
  PartialCosts part = CostBatchPartial(queries, design, knobs);
  if (!part.status.ok()) return part.status;
  return std::move(part.costs);
}

DbmsBackend::PartialCosts ResilientBackend::CostBatchPartial(
    std::span<const BoundQuery> queries, const PhysicalDesign& design,
    const PlannerKnobs& knobs) {
  {
    MutexLock lock(mu_);
    ++stats_.calls;
  }
  bool probe = false;
  Status admit = BreakerAdmit(&probe);
  if (!admit.ok()) return PartialCosts{{}, admit};

  const size_t n = queries.size();
  std::vector<double> out;
  out.reserve(n);
  const std::string op_key = "batch|" + std::to_string(n);
  const uint64_t key_hash = HashKey(op_key);
  const uint64_t start = clock_->NowMicros();
  const int max_attempts = std::max(1, policy_.max_attempts);
  bool salvaged_any = false;
  Status last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      clock_->SleepMicros(BackoffMicros(key_hash, attempt - 1));
      MutexLock lock(mu_);
      ++stats_.retries;
    }
    {
      MutexLock lock(mu_);
      ++stats_.attempts;
    }
    // Retry only the un-answered tail: everything salvaged from prior
    // attempts stays in `out`.
    PartialCosts part =
        inner_->CostBatchPartial(queries.subspan(out.size()), design, knobs);
    size_t good = 0;
    Status poison = Status::OK();
    for (; good < part.costs.size(); ++good) {
      Status valid = ValidateCost(part.costs[good]);
      if (!valid.ok()) {
        poison = valid;
        break;
      }
    }
    out.insert(out.end(), part.costs.begin(),
               part.costs.begin() + static_cast<ptrdiff_t>(good));

    const bool complete = out.size() == n && part.status.ok() && poison.ok();
    const bool overdue =
        policy_.batch_deadline_micros > 0 &&
        clock_->NowMicros() - start > policy_.batch_deadline_micros;
    if (overdue) {
      {
        MutexLock lock(mu_);
        ++stats_.deadline_exceeded;
      }
      last = Status::DeadlineExceeded(
          op_key + " exceeded " +
          std::to_string(policy_.batch_deadline_micros) + "us deadline");
      break;
    }
    if (complete) {
      if (salvaged_any) {
        MutexLock lock(mu_);
        ++stats_.batches_salvaged;
      }
      RecordOutcome(/*success=*/true, probe, /*retried=*/attempt > 0);
      return PartialCosts{std::move(out), Status::OK()};
    }
    if (!poison.ok()) {
      last = poison;
    } else if (!part.status.ok()) {
      last = part.status;
    } else {
      last = Status::Internal(op_key + ": backend returned a short batch");
    }
    if (good > 0) {
      salvaged_any = true;
      MutexLock lock(mu_);
      stats_.results_salvaged += good;
    }
    if (!last.IsRetryable()) {
      {
        MutexLock lock(mu_);
        ++stats_.permanent_failures;
      }
      RecordOutcome(/*success=*/true, probe, /*retried=*/false);
      return PartialCosts{std::move(out), last};
    }
  }
  {
    MutexLock lock(mu_);
    ++stats_.giveups;
  }
  RecordOutcome(/*success=*/false, probe, /*retried=*/true);
  return PartialCosts{std::move(out), last};
}

}  // namespace dbdesign
