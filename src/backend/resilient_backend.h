// ResilientBackend: retry / deadline / circuit-breaker decorator.
//
// Sits between the designer stack and any fallible DbmsBackend (a
// real-DBMS port, or a FaultInjectingBackend in tests) and absorbs
// transient failures so the layers above only ever see either a clean
// answer or a final, honest Status:
//
//   * bounded retries with deterministic exponential backoff + seeded
//     jitter — the backoff schedule is a pure function of (policy,
//     call key, attempt number), advanced on a Clock (virtual in
//     tests), so runs are bit-identical at any thread count;
//   * per-call and per-batch deadlines checked against the Clock —
//     a call that takes too long becomes kDeadlineExceeded (retryable);
//   * partial-batch salvage — when CostBatchPartial dies mid-flight,
//     the completed prefix is kept and only the tail is retried;
//   * answer validation — non-finite or negative costs from the
//     backend are rejected as retryable failures (a real connection
//     can return garbage mid-crash), so poison never crosses the seam;
//   * a circuit breaker that trips to fail-fast after
//     `breaker_threshold` consecutive *final* failures (retries
//     exhausted), and half-opens after a cooldown to probe recovery —
//     a dead backend costs callers one cheap refusal, not a retry
//     storm.
//
// Retry decisions go through Status::IsRetryable() exclusively;
// permanent errors (bad argument, unknown trace key, ...) propagate
// immediately. All shared state (stats, breaker) is on an annotated
// Mutex. This is the only place in the tree allowed to loop on a
// backend error or sleep — the determinism linter enforces that.

#ifndef DBDESIGN_BACKEND_RESILIENT_BACKEND_H_
#define DBDESIGN_BACKEND_RESILIENT_BACKEND_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "util/clock.h"
#include "util/thread_annotations.h"

namespace dbdesign {

/// Retry/deadline/breaker knobs. Defaults recover from short transient
/// bursts (4 attempts, ~1→8 ms virtual backoff) without masking a dead
/// backend for long (breaker trips after 8 straight giveups).
struct RetryPolicy {
  /// Total tries per call, first included. 1 = no retries.
  int max_attempts = 4;
  uint64_t initial_backoff_micros = 1000;
  uint64_t max_backoff_micros = 64000;
  double backoff_multiplier = 2.0;
  /// Jitter in [0, fraction) of the backoff, drawn deterministically
  /// from (jitter_seed, call key, attempt) — no shared RNG state, so
  /// concurrent callers cannot perturb each other's schedules.
  double jitter_fraction = 0.25;
  uint64_t jitter_seed = 0x5eedu;
  /// Elapsed-Clock budget for one logical call including its retries
  /// and backoff (0 = unlimited).
  uint64_t call_deadline_micros = 0;
  /// Same, for one logical CostBatch including tail retries.
  uint64_t batch_deadline_micros = 0;
  /// Consecutive final failures (not attempts) before the breaker
  /// opens. <= 0 disables the breaker.
  int breaker_threshold = 8;
  /// How long an open breaker fails fast before half-opening a probe.
  uint64_t breaker_cooldown_micros = 100000;
};

/// Counters exposed for tests and benches. Snapshot via stats().
struct ResilienceStats {
  uint64_t calls = 0;              ///< logical calls (not attempts)
  uint64_t attempts = 0;           ///< inner-backend attempts issued
  uint64_t retries = 0;            ///< attempts beyond the first
  uint64_t recoveries = 0;         ///< calls that failed then succeeded
  uint64_t giveups = 0;            ///< calls that exhausted retries
  uint64_t permanent_failures = 0; ///< non-retryable, no retry issued
  uint64_t deadline_exceeded = 0;  ///< deadline conversions
  uint64_t poisoned_rejected = 0;  ///< garbage costs rejected
  uint64_t batches_salvaged = 0;   ///< batches that kept a prefix
  uint64_t results_salvaged = 0;   ///< prefix results kept across retries
  uint64_t breaker_trips = 0;      ///< closed/half-open -> open
  uint64_t breaker_probes = 0;     ///< half-open probe calls allowed
  uint64_t breaker_fast_fails = 0; ///< calls refused while open
};

class ResilientBackend final : public DbmsBackend {
 public:
  /// Wraps `inner` (must outlive this). `clock` drives backoff and
  /// deadlines; pass the same VirtualClock as the fault layer in
  /// tests. If null, the backend owns a private VirtualClock.
  ResilientBackend(DbmsBackend& inner, RetryPolicy policy,
                   Clock* clock = nullptr);

  const RetryPolicy& policy() const { return policy_; }
  ResilienceStats stats() const;
  void ResetStats();

  enum class BreakerState { kClosed, kOpen, kHalfOpen };
  BreakerState breaker_state() const;

  // --- DbmsBackend ---
  std::string name() const override {
    return "resilient(" + inner_->name() + ")";
  }
  const CostParams& cost_params() const override {
    return inner_->cost_params();
  }
  const Catalog& catalog() const override { return inner_->catalog(); }
  const std::vector<TableStats>& all_stats() const override {
    return inner_->all_stats();
  }
  Status RefreshStatistics(TableId table,
                           const AnalyzeOptions& options) override;
  PhysicalDesign CurrentDesign() const override {
    return inner_->CurrentDesign();
  }
  Result<PlanResult> OptimizeQuery(const BoundQuery& query,
                                   const PhysicalDesign& design,
                                   const PlannerKnobs& knobs) override;
  Result<double> CostQuery(const BoundQuery& query,
                           const PhysicalDesign& design,
                           const PlannerKnobs& knobs) override;
  Result<std::vector<double>> CostBatch(std::span<const BoundQuery> queries,
                                        const PhysicalDesign& design,
                                        const PlannerKnobs& knobs) override;
  PartialCosts CostBatchPartial(std::span<const BoundQuery> queries,
                                const PhysicalDesign& design,
                                const PlannerKnobs& knobs) override;
  JoinControlCapabilities join_control() const override {
    return inner_->join_control();
  }
  uint64_t num_optimizer_calls() const override {
    return inner_->num_optimizer_calls();
  }
  void ResetCallCount() override { inner_->ResetCallCount(); }

 private:
  /// Deterministic backoff for `attempt` (0-based retry index) of the
  /// call identified by `key_hash`: exponential + seeded jitter,
  /// capped at max_backoff_micros.
  uint64_t BackoffMicros(uint64_t key_hash, int attempt) const;

  /// Generic retry driver: runs `attempt_fn` (which performs one inner
  /// attempt and returns its Status) up to max_attempts times with
  /// backoff, under `deadline_micros`. Handles breaker gating and all
  /// counter updates. `op_key` identifies the logical call for jitter.
  Status RunWithRetries(const std::string& op_key, uint64_t deadline_micros,
                        const std::function<Status()>& attempt_fn);

  /// Breaker admission: OK to proceed, or a fast-fail Unavailable.
  /// Sets *probe when this call is the half-open probe.
  Status BreakerAdmit(bool* probe);
  void RecordOutcome(bool success, bool probe, bool retried);

  /// Validates a backend cost answer; non-finite/negative becomes a
  /// retryable Unavailable.
  Status ValidateCost(double cost);

  DbmsBackend* inner_;
  const RetryPolicy policy_;
  VirtualClock own_clock_;
  Clock* clock_;

  mutable Mutex mu_;
  ResilienceStats stats_ DBD_GUARDED_BY(mu_);
  BreakerState breaker_ DBD_GUARDED_BY(mu_) = BreakerState::kClosed;
  int consecutive_giveups_ DBD_GUARDED_BY(mu_) = 0;
  uint64_t open_until_micros_ DBD_GUARDED_BY(mu_) = 0;
  bool probe_in_flight_ DBD_GUARDED_BY(mu_) = false;
};

}  // namespace dbdesign

#endif  // DBDESIGN_BACKEND_RESILIENT_BACKEND_H_
