// InMemoryBackend: DbmsBackend over the bundled storage/ + optimizer/
// engine — the stand-in for the PostgreSQL instance the paper's tool
// attaches to. This is the only place the designer stack touches the
// concrete Database type.
//
// Thread safety: the cost entry points (OptimizeQuery, CostQuery,
// CostBatch) are safe to call concurrently against a fixed Database —
// knobs travel by argument and the optimizer-call counter is atomic.
// RefreshStatistics mutates the engine and requires external exclusion.

#ifndef DBDESIGN_BACKEND_INMEMORY_BACKEND_H_
#define DBDESIGN_BACKEND_INMEMORY_BACKEND_H_

#include <string>
#include <vector>

#include "backend/backend.h"
#include "optimizer/optimizer.h"
#include "storage/database.h"

namespace dbdesign {

class InMemoryBackend final : public DbmsBackend {
 public:
  /// Read-only attachment: cost calls and statistics extraction work,
  /// RefreshStatistics (statistics *creation*) reports an error.
  explicit InMemoryBackend(const Database& db, CostParams params = {});
  /// Mutable attachment: additionally supports RefreshStatistics.
  explicit InMemoryBackend(Database& db, CostParams params = {});

  std::string name() const override { return "inmemory"; }
  const CostParams& cost_params() const override { return params_; }

  const Catalog& catalog() const override { return db_->catalog(); }
  const std::vector<TableStats>& all_stats() const override {
    return db_->all_stats();
  }
  Status RefreshStatistics(TableId table,
                           const AnalyzeOptions& options) override;
  PhysicalDesign CurrentDesign() const override { return db_->CurrentDesign(); }

  Result<PlanResult> OptimizeQuery(const BoundQuery& query,
                                   const PhysicalDesign& design,
                                   const PlannerKnobs& knobs) override;

  /// Amortized batch: structurally identical queries are optimized once
  /// (query streams repeat; the counter advances per distinct query).
  /// Distinct queries are costed in parallel across
  /// cost_params().num_threads workers; results and the call counter are
  /// bit-identical to a serial run at any thread count.
  Result<std::vector<double>> CostBatch(std::span<const BoundQuery> queries,
                                        const PhysicalDesign& design,
                                        const PlannerKnobs& knobs) override;

  uint64_t num_optimizer_calls() const override { return optimizer_.num_calls(); }
  void ResetCallCount() override { optimizer_.ResetCallCount(); }

  const Database& db() const { return *db_; }

 private:
  Status ValidateQuery(const BoundQuery& query) const;

  const Database* db_;
  Database* mutable_db_;
  CostParams params_;
  mutable Optimizer optimizer_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_BACKEND_INMEMORY_BACKEND_H_
