// DbmsBackend: the engine-portability boundary of the designer.
//
// The paper claims the tool "can be ported to any relational DBMS which
// offers a query optimizer, a way to extract and create statistics, and
// control over join operations". This interface makes that boundary
// explicit as exactly those three primitives:
//
//   1. What-if optimizer cost calls — OptimizeQuery / CostQuery, and the
//      batched CostBatch that amortizes one backend round-trip over a
//      whole workload (the designer's hot path).
//   2. Statistics extraction and creation — catalog(), all_stats(),
//      RefreshStatistics(), EstimateIndexSize().
//   3. Join-operator control — every cost call takes PlannerKnobs
//      (PostgreSQL enable_* style); join_control() reports which join
//      operators the engine lets the tool toggle.
//
// Everything above this interface (what-if component, INUM, CoPhy,
// AutoPart, COLT, the Designer facade) is engine-agnostic: porting the
// designer to a real DBMS means implementing this one header. Two
// implementations ship in-tree: InMemoryBackend (the bundled engine)
// and TraceBackend (record/replay of backend calls to JSON).

#ifndef DBDESIGN_BACKEND_BACKEND_H_
#define DBDESIGN_BACKEND_BACKEND_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "catalog/design.h"
#include "catalog/schema.h"
#include "catalog/stats.h"
#include "optimizer/cost_params.h"
#include "optimizer/plan.h"
#include "sql/bound_query.h"
#include "util/status.h"

namespace dbdesign {

/// Which join operators the engine lets the tool force on or off
/// (primitive 3). An engine without some operator still ports — the
/// what-if join component just loses that toggle.
struct JoinControlCapabilities {
  bool nested_loop = true;
  bool index_nested_loop = true;
  bool hash_join = true;
  bool merge_join = true;
};

class DbmsBackend {
 public:
  virtual ~DbmsBackend() = default;

  /// Short engine identifier ("inmemory", "trace", ...).
  virtual std::string name() const = 0;

  /// The engine's cost-model parameters (server-side GUCs in a real
  /// DBMS). Components take their CostParams from here so client-side
  /// cost formulas (INUM reuse) agree with backend cost calls.
  virtual const CostParams& cost_params() const = 0;

  // --- Primitive 2: statistics extraction / creation ---
  virtual const Catalog& catalog() const = 0;
  virtual const std::vector<TableStats>& all_stats() const = 0;
  const TableStats& stats(TableId table) const { return all_stats()[table]; }

  /// Recomputes statistics for one table (ANALYZE). Backends without a
  /// mutable engine attachment return an error.
  virtual Status RefreshStatistics(TableId table,
                                   const AnalyzeOptions& options) = 0;
  Status RefreshAllStatistics(const AnalyzeOptions& options = {});

  /// Honest (never zero) size estimate for a hypothetical index.
  virtual IndexSizeEstimate EstimateIndexSize(const IndexDef& index) const;

  /// The materialized physical configuration.
  virtual PhysicalDesign CurrentDesign() const = 0;

  // --- Primitive 1: what-if optimizer cost calls ---
  /// Full plan for `query` under hypothetical `design`, with the join
  /// knobs applied. Errors (unknown query on a replay backend, invalid
  /// design) surface as Status — never as sentinel costs.
  virtual Result<PlanResult> OptimizeQuery(const BoundQuery& query,
                                           const PhysicalDesign& design,
                                           const PlannerKnobs& knobs) = 0;

  /// Cost-only variant; default delegates to OptimizeQuery.
  virtual Result<double> CostQuery(const BoundQuery& query,
                                   const PhysicalDesign& design,
                                   const PlannerKnobs& knobs);

  /// Batched costing: all queries under one design in a single backend
  /// round-trip. Returns one cost per query, in order. The default
  /// loops CostQuery; real backends override to amortize (deduplicate
  /// repeated queries, share one connection/transaction, one RPC).
  virtual Result<std::vector<double>> CostBatch(
      std::span<const BoundQuery> queries, const PhysicalDesign& design,
      const PlannerKnobs& knobs);

  /// Result of a batched cost call that may die mid-flight: a prefix
  /// of per-query costs plus the Status that ended the batch. When
  /// `status` is OK, `costs` covers every query; on failure `costs`
  /// holds the first k results that completed before the connection
  /// dropped. The resilience layer salvages that prefix and retries
  /// only the tail, so a 1000-query batch that dies at query 990 costs
  /// one 10-query retry instead of a full re-run.
  struct PartialCosts {
    std::vector<double> costs;
    Status status;
  };

  /// Batched costing with partial-result semantics (see PartialCosts).
  /// The default delegates to CostBatch, which is all-or-nothing:
  /// either every cost or an empty prefix. Backends whose batches can
  /// genuinely fail mid-flight override this to surface the completed
  /// prefix.
  virtual PartialCosts CostBatchPartial(std::span<const BoundQuery> queries,
                                        const PhysicalDesign& design,
                                        const PlannerKnobs& knobs);

  // --- Primitive 3: join-operator control ---
  virtual JoinControlCapabilities join_control() const { return {}; }

  /// Number of expensive optimizer invocations served so far. Batched
  /// calls may invoke the optimizer fewer times than they have queries
  /// (InMemoryBackend optimizes each *distinct* query once); a backend
  /// that answers without running an optimizer at all (TraceBackend
  /// replay) reports zero. Benchmarks read this to observe amortization.
  virtual uint64_t num_optimizer_calls() const = 0;
  virtual void ResetCallCount() = 0;
};

}  // namespace dbdesign

#endif  // DBDESIGN_BACKEND_BACKEND_H_
