#include "backend/backend.h"

namespace dbdesign {

Status DbmsBackend::RefreshAllStatistics(const AnalyzeOptions& options) {
  for (TableId t = 0; t < catalog().num_tables(); ++t) {
    Status s = RefreshStatistics(t, options);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

IndexSizeEstimate DbmsBackend::EstimateIndexSize(const IndexDef& index) const {
  return dbdesign::EstimateIndexSize(index, catalog().table(index.table),
                                     stats(index.table));
}

Result<double> DbmsBackend::CostQuery(const BoundQuery& query,
                                      const PhysicalDesign& design,
                                      const PlannerKnobs& knobs) {
  Result<PlanResult> plan = OptimizeQuery(query, design, knobs);
  if (!plan.ok()) return plan.status();
  return plan.value().cost;
}

Result<std::vector<double>> DbmsBackend::CostBatch(
    std::span<const BoundQuery> queries, const PhysicalDesign& design,
    const PlannerKnobs& knobs) {
  std::vector<double> costs;
  costs.reserve(queries.size());
  for (const BoundQuery& q : queries) {
    Result<double> c = CostQuery(q, design, knobs);
    if (!c.ok()) return c.status();
    costs.push_back(c.value());
  }
  return costs;
}

DbmsBackend::PartialCosts DbmsBackend::CostBatchPartial(
    std::span<const BoundQuery> queries, const PhysicalDesign& design,
    const PlannerKnobs& knobs) {
  Result<std::vector<double>> all = CostBatch(queries, design, knobs);
  if (!all.ok()) return PartialCosts{{}, all.status()};
  return PartialCosts{std::move(all).value(), Status::OK()};
}

}  // namespace dbdesign
