// TraceBackend: record/replay DbmsBackend.
//
// Record mode wraps another backend, forwards every call, and captures
// (a) a snapshot of the engine surface — catalog, statistics, cost
// parameters, materialized design — and (b) every cost call keyed by
// (query structural hash, design fingerprint, join knobs). The trace
// serializes to JSON.
//
// Replay mode reconstructs the snapshot from JSON and answers cost
// calls from the recorded map — no engine, no storage, no optimizer
// round-trips. Tests and benches run against traces, and a trace from a
// real DBMS is the first artifact of a port: once the designer behaves
// identically on the trace, only this one implementation file remains.
//
// Replay limits: OptimizeQuery returns the recorded cost with a null
// plan tree (plans are not serialized), unrecorded calls return
// NotFound, and RefreshStatistics is an error (statistics are frozen).
//
// Thread safety: the recorded-call map and the replay call counter are
// mutex-guarded, so cost calls may arrive concurrently — a recorder
// wrapped around a parallel backend (or sitting underneath a parallel
// CostBatch/INUM run) captures a valid trace. Record mode additionally
// requires the inner backend's cost calls to be thread-safe.

#ifndef DBDESIGN_BACKEND_TRACE_BACKEND_H_
#define DBDESIGN_BACKEND_TRACE_BACKEND_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "util/thread_annotations.h"

namespace dbdesign {

class TraceBackend final : public DbmsBackend {
 public:
  /// Record mode: snapshots `inner`'s surface now; forwards and records
  /// all subsequent calls. `inner` must outlive the recorder.
  static std::unique_ptr<TraceBackend> Record(DbmsBackend& inner);

  /// Replay mode from a serialized trace.
  static Result<std::unique_ptr<TraceBackend>> FromJson(
      const std::string& json);
  static Result<std::unique_ptr<TraceBackend>> LoadFromFile(
      const std::string& path);

  /// Serializes the snapshot plus everything recorded so far. Valid in
  /// both modes (replaying a replayed trace is lossless).
  std::string ToJson() const;
  Status SaveToFile(const std::string& path) const;

  bool recording() const { return inner_ != nullptr; }
  size_t num_recorded_costs() const {
    MutexLock lock(mu_);
    return costs_.size();
  }

  // --- DbmsBackend ---
  std::string name() const override {
    return recording() ? "trace-record(" + source_name_ + ")"
                       : "trace-replay(" + source_name_ + ")";
  }
  const CostParams& cost_params() const override { return params_; }
  const Catalog& catalog() const override;
  const std::vector<TableStats>& all_stats() const override;
  Status RefreshStatistics(TableId table,
                           const AnalyzeOptions& options) override;
  PhysicalDesign CurrentDesign() const override;
  Result<PlanResult> OptimizeQuery(const BoundQuery& query,
                                   const PhysicalDesign& design,
                                   const PlannerKnobs& knobs) override;
  Result<double> CostQuery(const BoundQuery& query,
                           const PhysicalDesign& design,
                           const PlannerKnobs& knobs) override;
  Result<std::vector<double>> CostBatch(std::span<const BoundQuery> queries,
                                        const PhysicalDesign& design,
                                        const PlannerKnobs& knobs) override;
  JoinControlCapabilities join_control() const override { return caps_; }
  uint64_t num_optimizer_calls() const override;
  void ResetCallCount() override;

  /// The lookup key one cost call records under (exposed for tests).
  static std::string CallKey(const BoundQuery& query,
                             const PhysicalDesign& design,
                             const PlannerKnobs& knobs);

 private:
  TraceBackend() = default;

  DbmsBackend* inner_ = nullptr;  // record mode only
  std::string source_name_;
  CostParams params_;
  JoinControlCapabilities caps_;
  Catalog catalog_;                  // replay-mode snapshot
  std::vector<TableStats> stats_;    // replay-mode snapshot
  PhysicalDesign design_;            // materialized design at capture
  /// Guards costs_ and calls_ against concurrent cost calls.
  mutable Mutex mu_;
  std::map<std::string, double> costs_ DBD_GUARDED_BY(mu_);
  uint64_t calls_ DBD_GUARDED_BY(mu_) = 0;
};

}  // namespace dbdesign

#endif  // DBDESIGN_BACKEND_TRACE_BACKEND_H_
