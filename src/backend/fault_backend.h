// FaultInjectingBackend: deterministic fault injection at the seam.
//
// Every in-tree backend is infallible, so the error paths a real-DBMS
// port lives on (timeouts, dropped connections, batches dying
// mid-flight, garbage answers) never execute. This decorator wraps any
// DbmsBackend and injects those failures *deterministically*: every
// fault decision is a pure function of (FaultPlan seed, call-content
// key, per-key attempt number), never of wall time or thread
// interleaving. Two runs with the same plan see byte-identical fault
// schedules, at any thread count — so a test can assert that the
// resilience layer recovers to the bit-identical fault-free answer.
//
// Fault modes (independently mixable via FaultPlan):
//   * transient errors  — a seeded fraction of call keys fail with
//     Unavailable for their first `transient_burst` attempts, then
//     succeed (models a flaky connection; recovery is guaranteed once
//     retries >= burst).
//   * latency / overrun — every call sleeps `latency_micros` on the
//     shared Clock; a seeded fraction additionally sleep
//     `overrun_micros` on early attempts (models a stuck backend; with
//     a ResilientBackend deadline this becomes kDeadlineExceeded).
//   * batch crash       — a seeded fraction of CostBatch calls return
//     only the first k costs plus Unavailable (k derived from the
//     batch key), exercising partial-batch salvage.
//   * poisoned costs    — a seeded fraction of cost answers come back
//     NaN or negative for early attempts; the seam above must *reject*
//     these (PR 4 non-finite handling), never propagate them.
//   * outage            — every call fails with Unavailable, no
//     recovery (models the backend being down entirely).

#ifndef DBDESIGN_BACKEND_FAULT_BACKEND_H_
#define DBDESIGN_BACKEND_FAULT_BACKEND_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "util/clock.h"
#include "util/thread_annotations.h"

namespace dbdesign {

/// Deterministic fault schedule. Rates are probabilities in [0, 1]
/// applied per call key (not per call): a key selected as faulty is
/// faulty on every run with this plan, and recovers after
/// `transient_burst` attempts. All sampling goes through util/rng
/// seeded from `seed` + the call-content hash.
struct FaultPlan {
  uint64_t seed = 0x0f417u;

  /// Fraction of call keys that fail transiently (Unavailable).
  double transient_rate = 0.0;
  /// Consecutive failures per faulty key before it succeeds. A
  /// retrier with max_attempts > transient_burst always recovers.
  int transient_burst = 1;

  /// Fraction of cost answers poisoned (NaN or negative) on attempts
  /// below `transient_burst`.
  double poison_rate = 0.0;

  /// Fraction of CostBatch calls that die mid-flight, returning a
  /// prefix of costs plus Unavailable, on attempts below
  /// `transient_burst`.
  double batch_crash_rate = 0.0;

  /// Virtual latency added to every call (0 = none). Requires a Clock.
  uint64_t latency_micros = 0;
  /// Fraction of call keys that additionally sleep `overrun_micros`
  /// on attempts below `transient_burst` (deadline-overrun sim).
  double overrun_rate = 0.0;
  uint64_t overrun_micros = 0;

  /// Hard outage: every fallible call fails, forever.
  bool outage = false;

  static FaultPlan None() { return FaultPlan{}; }
  static FaultPlan Transient(uint64_t seed, double rate, int burst = 1) {
    FaultPlan p;
    p.seed = seed;
    p.transient_rate = rate;
    p.transient_burst = burst;
    return p;
  }
  static FaultPlan Poisoned(uint64_t seed, double rate, int burst = 1) {
    FaultPlan p;
    p.seed = seed;
    p.poison_rate = rate;
    p.transient_burst = burst;
    return p;
  }
  static FaultPlan BatchCrash(uint64_t seed, double rate, int burst = 1) {
    FaultPlan p;
    p.seed = seed;
    p.batch_crash_rate = rate;
    p.transient_burst = burst;
    return p;
  }
  static FaultPlan Latency(uint64_t seed, uint64_t latency_micros,
                           double overrun_rate, uint64_t overrun_micros,
                           int burst = 1) {
    FaultPlan p;
    p.seed = seed;
    p.latency_micros = latency_micros;
    p.overrun_rate = overrun_rate;
    p.overrun_micros = overrun_micros;
    p.transient_burst = burst;
    return p;
  }
  static FaultPlan Outage() {
    FaultPlan p;
    p.outage = true;
    return p;
  }
};

/// Observed injections, for tests/benches to assert the plan actually
/// fired.
struct FaultCounters {
  uint64_t calls = 0;            ///< fallible calls seen
  uint64_t transients = 0;       ///< Unavailable injected
  uint64_t poisons = 0;          ///< NaN/negative costs injected
  uint64_t batch_crashes = 0;    ///< batches truncated mid-flight
  uint64_t overruns = 0;         ///< deadline-overrun sleeps injected
  uint64_t latency_sleeps = 0;   ///< base-latency sleeps injected
};

class FaultInjectingBackend final : public DbmsBackend {
 public:
  /// Wraps `inner` (must outlive this). `clock` may be null when the
  /// plan injects no latency; when set it is typically the same
  /// VirtualClock the ResilientBackend above reads deadlines from.
  FaultInjectingBackend(DbmsBackend& inner, FaultPlan plan,
                        Clock* clock = nullptr);

  const FaultPlan& plan() const { return plan_; }
  FaultCounters counters() const;
  void ResetCounters();
  /// Forgets per-key attempt history, so burst faults fire again.
  void ResetAttempts();

  // --- DbmsBackend ---
  std::string name() const override {
    return "fault(" + inner_->name() + ")";
  }
  const CostParams& cost_params() const override {
    return inner_->cost_params();
  }
  const Catalog& catalog() const override { return inner_->catalog(); }
  const std::vector<TableStats>& all_stats() const override {
    return inner_->all_stats();
  }
  Status RefreshStatistics(TableId table,
                           const AnalyzeOptions& options) override;
  PhysicalDesign CurrentDesign() const override {
    return inner_->CurrentDesign();
  }
  Result<PlanResult> OptimizeQuery(const BoundQuery& query,
                                   const PhysicalDesign& design,
                                   const PlannerKnobs& knobs) override;
  Result<double> CostQuery(const BoundQuery& query,
                           const PhysicalDesign& design,
                           const PlannerKnobs& knobs) override;
  Result<std::vector<double>> CostBatch(std::span<const BoundQuery> queries,
                                        const PhysicalDesign& design,
                                        const PlannerKnobs& knobs) override;
  PartialCosts CostBatchPartial(std::span<const BoundQuery> queries,
                                const PhysicalDesign& design,
                                const PlannerKnobs& knobs) override;
  JoinControlCapabilities join_control() const override {
    return inner_->join_control();
  }
  uint64_t num_optimizer_calls() const override {
    return inner_->num_optimizer_calls();
  }
  void ResetCallCount() override { inner_->ResetCallCount(); }

 private:
  /// Deterministic per-key decision: is `key` selected for the fault
  /// stream identified by `salt`, at probability `rate`?
  bool Selected(const std::string& key, uint64_t salt, double rate) const;
  /// Uniform value in [0, bound) derived from (key, salt) — used for
  /// batch crash points.
  uint64_t Derived(const std::string& key, uint64_t salt,
                   uint64_t bound) const;
  /// Bumps and returns the prior attempt count for (salt, key).
  int NextAttempt(const std::string& key, uint64_t salt);
  /// Applies latency simulation for `key`; returns true if an overrun
  /// was injected.
  bool InjectLatency(const std::string& key);
  /// Transient/outage gate shared by all fallible calls. Returns a
  /// non-OK status when the call must fail.
  Status TransientGate(const std::string& key);
  /// Poisons `cost` (NaN or negative, split by key bit) when the key
  /// is selected and inside its burst window.
  double MaybePoison(const std::string& key, double cost);

  DbmsBackend* inner_;
  const FaultPlan plan_;
  Clock* clock_;

  mutable Mutex mu_;
  /// Attempt counters keyed "salt|call-key" — per fault stream, so a
  /// key's transient burst and poison burst tick independently.
  std::map<std::string, int> attempts_ DBD_GUARDED_BY(mu_);
  FaultCounters counters_ DBD_GUARDED_BY(mu_);
};

}  // namespace dbdesign

#endif  // DBDESIGN_BACKEND_FAULT_BACKEND_H_
