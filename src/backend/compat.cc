// Legacy Database-taking entry points.
//
// Every designer component's primary constructor takes a DbmsBackend.
// The overloads here keep the original `const Database&` signatures
// working by wrapping the database in an owned InMemoryBackend. They
// live in this one translation unit so that the component headers and
// sources stay free of storage/ includes — the portability boundary is
// enforced structurally, not just by convention.

#include <memory>

#include "autopart/autopart.h"
#include "backend/inmemory_backend.h"
#include "colt/colt.h"
#include "cophy/candidates.h"
#include "cophy/cophy.h"
#include "cophy/greedy.h"
#include "core/designer.h"
#include "core/report.h"
#include "inum/inum.h"
#include "storage/database.h"
#include "whatif/whatif.h"

namespace dbdesign {

namespace {

std::shared_ptr<DbmsBackend> Wrap(const Database& db, CostParams params) {
  return std::make_shared<InMemoryBackend>(db, params);
}

}  // namespace

WhatIfOptimizer::WhatIfOptimizer(const Database& db, CostParams params)
    : WhatIfOptimizer(Wrap(db, params)) {}

InumCostModel::InumCostModel(const Database& db, CostParams params,
                             InumOptions options)
    : InumCostModel(Wrap(db, params), options) {}

ColtTuner::ColtTuner(const Database& db, CostParams params,
                     ColtOptions options)
    : ColtTuner(Wrap(db, params), options) {}

CoPhyAdvisor::CoPhyAdvisor(const Database& db, CostParams params,
                           CoPhyOptions options)
    : CoPhyAdvisor(Wrap(db, params), options) {}

GreedyAdvisor::GreedyAdvisor(const Database& db, CostParams params,
                             GreedyOptions options)
    : GreedyAdvisor(Wrap(db, params), options) {}

AutoPartAdvisor::AutoPartAdvisor(const Database& db, CostParams params,
                                 AutoPartOptions options)
    : AutoPartAdvisor(Wrap(db, params), options) {}

Designer::Designer(const Database& db, DesignerOptions options)
    : Designer(Wrap(db, options.params), std::move(options)) {}

double EstimateIndexBuildCost(const Database& db, const IndexDef& index,
                              const CostParams& params) {
  InMemoryBackend backend(db, params);
  return EstimateIndexBuildCost(backend, index, params);
}

std::vector<CandidateIndex> GenerateCandidates(
    const Database& db, const Workload& workload,
    const CandidateOptions& options) {
  InMemoryBackend backend(db);
  return GenerateCandidates(backend, workload, options);
}

std::string RenderIndexList(const Catalog& catalog, const Database& db,
                            const std::vector<IndexDef>& indexes) {
  InMemoryBackend backend(db);
  return RenderIndexList(catalog, backend, indexes);
}

std::string RenderOfflineRecommendation(const Catalog& catalog,
                                        const Database& db,
                                        const Workload& workload,
                                        const OfflineRecommendation& rec) {
  InMemoryBackend backend(db);
  return RenderOfflineRecommendation(catalog, backend, workload, rec);
}

}  // namespace dbdesign
