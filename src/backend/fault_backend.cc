#include "backend/fault_backend.h"

#include <cmath>
#include <limits>

#include "backend/trace_backend.h"
#include "util/rng.h"

namespace dbdesign {

namespace {

// Distinct fault streams per call key: each stream hashes the key with
// its own salt, so "is this key transiently faulty" and "is this key
// poisoned" are independent deterministic draws.
constexpr uint64_t kTransientSalt = 1;
constexpr uint64_t kPoisonSalt = 2;
constexpr uint64_t kBatchCrashSalt = 3;
constexpr uint64_t kOverrunSalt = 4;
constexpr uint64_t kCrashPointSalt = 5;

/// FNV-1a 64-bit over the call key. Stable across platforms, so fault
/// schedules replay identically everywhere.
uint64_t HashKey(const std::string& key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string StreamKey(uint64_t salt, const std::string& key) {
  return std::to_string(salt) + "|" + key;
}

}  // namespace

FaultInjectingBackend::FaultInjectingBackend(DbmsBackend& inner,
                                             FaultPlan plan, Clock* clock)
    : inner_(&inner), plan_(plan), clock_(clock) {}

FaultCounters FaultInjectingBackend::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

void FaultInjectingBackend::ResetCounters() {
  MutexLock lock(mu_);
  counters_ = FaultCounters{};
}

void FaultInjectingBackend::ResetAttempts() {
  MutexLock lock(mu_);
  attempts_.clear();
}

bool FaultInjectingBackend::Selected(const std::string& key, uint64_t salt,
                                     double rate) const {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // The decision is a pure function of (plan seed, stream salt, call
  // content): no global call order, no shared RNG state — concurrent
  // callers cannot perturb each other's draws.
  Rng rng(plan_.seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^ HashKey(key));
  return rng.Bernoulli(rate);
}

uint64_t FaultInjectingBackend::Derived(const std::string& key, uint64_t salt,
                                        uint64_t bound) const {
  if (bound == 0) return 0;
  Rng rng(plan_.seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^ HashKey(key));
  return rng.Next() % bound;
}

int FaultInjectingBackend::NextAttempt(const std::string& key, uint64_t salt) {
  MutexLock lock(mu_);
  return attempts_[StreamKey(salt, key)]++;
}

bool FaultInjectingBackend::InjectLatency(const std::string& key) {
  if (clock_ == nullptr) return false;
  if (plan_.latency_micros > 0) {
    clock_->SleepMicros(plan_.latency_micros);
    MutexLock lock(mu_);
    ++counters_.latency_sleeps;
  }
  if (Selected(key, kOverrunSalt, plan_.overrun_rate) &&
      NextAttempt(key, kOverrunSalt) < plan_.transient_burst) {
    clock_->SleepMicros(plan_.overrun_micros);
    MutexLock lock(mu_);
    ++counters_.overruns;
    return true;
  }
  return false;
}

Status FaultInjectingBackend::TransientGate(const std::string& key) {
  {
    MutexLock lock(mu_);
    ++counters_.calls;
  }
  if (plan_.outage) {
    MutexLock lock(mu_);
    ++counters_.transients;
    return Status::Unavailable("injected outage: backend is down");
  }
  if (Selected(key, kTransientSalt, plan_.transient_rate) &&
      NextAttempt(key, kTransientSalt) < plan_.transient_burst) {
    MutexLock lock(mu_);
    ++counters_.transients;
    return Status::Unavailable("injected transient fault");
  }
  return Status::OK();
}

double FaultInjectingBackend::MaybePoison(const std::string& key,
                                          double cost) {
  if (!Selected(key, kPoisonSalt, plan_.poison_rate)) return cost;
  if (NextAttempt(key, kPoisonSalt) >= plan_.transient_burst) return cost;
  {
    MutexLock lock(mu_);
    ++counters_.poisons;
  }
  // Half the poisoned keys answer NaN, half a negative cost — both are
  // invalid answers the seam above must reject.
  return (HashKey(key) & 1) ? std::numeric_limits<double>::quiet_NaN()
                            : -1.0;
}

Status FaultInjectingBackend::RefreshStatistics(TableId table,
                                                const AnalyzeOptions& options) {
  std::string key = "refresh|" + std::to_string(table);
  InjectLatency(key);
  Status gate = TransientGate(key);
  if (!gate.ok()) return gate;
  return inner_->RefreshStatistics(table, options);
}

Result<PlanResult> FaultInjectingBackend::OptimizeQuery(
    const BoundQuery& query, const PhysicalDesign& design,
    const PlannerKnobs& knobs) {
  std::string key = TraceBackend::CallKey(query, design, knobs);
  InjectLatency(key);
  Status gate = TransientGate(key);
  if (!gate.ok()) return gate;
  Result<PlanResult> plan = inner_->OptimizeQuery(query, design, knobs);
  if (!plan.ok()) return plan;
  PlanResult out = std::move(plan).value();
  out.cost = MaybePoison(key, out.cost);
  return out;
}

Result<double> FaultInjectingBackend::CostQuery(const BoundQuery& query,
                                                const PhysicalDesign& design,
                                                const PlannerKnobs& knobs) {
  std::string key = TraceBackend::CallKey(query, design, knobs);
  InjectLatency(key);
  Status gate = TransientGate(key);
  if (!gate.ok()) return gate;
  Result<double> cost = inner_->CostQuery(query, design, knobs);
  if (!cost.ok()) return cost;
  return MaybePoison(key, cost.value());
}

Result<std::vector<double>> FaultInjectingBackend::CostBatch(
    std::span<const BoundQuery> queries, const PhysicalDesign& design,
    const PlannerKnobs& knobs) {
  PartialCosts part = CostBatchPartial(queries, design, knobs);
  if (!part.status.ok()) return part.status;
  return std::move(part.costs);
}

DbmsBackend::PartialCosts FaultInjectingBackend::CostBatchPartial(
    std::span<const BoundQuery> queries, const PhysicalDesign& design,
    const PlannerKnobs& knobs) {
  // The batch key covers every query in the span, so retrying a tail
  // is a fresh draw (as a real reconnect would be) while re-running
  // the identical batch replays the identical fault.
  std::string batch_key = "batch|" + std::to_string(queries.size());
  for (const BoundQuery& q : queries) {
    batch_key += "|";
    batch_key += std::to_string(HashKey(TraceBackend::CallKey(q, design, knobs)));
  }
  InjectLatency(batch_key);
  Status gate = TransientGate(batch_key);
  if (!gate.ok()) return PartialCosts{{}, gate};

  PartialCosts part = inner_->CostBatchPartial(queries, design, knobs);
  if (!part.status.ok()) return part;

  // Per-query poison inside the batch (each query key draws its own
  // poison stream, ticking once per batch attempt).
  for (size_t i = 0; i < part.costs.size(); ++i) {
    part.costs[i] = MaybePoison(TraceBackend::CallKey(queries[i], design, knobs),
                                part.costs[i]);
  }

  if (Selected(batch_key, kBatchCrashSalt, plan_.batch_crash_rate) &&
      NextAttempt(batch_key, kBatchCrashSalt) < plan_.transient_burst) {
    // Crash mid-batch: the connection died after k answers arrived.
    size_t k = static_cast<size_t>(
        Derived(batch_key, kCrashPointSalt, queries.size()));
    part.costs.resize(k);
    part.status =
        Status::Unavailable("injected batch crash after " +
                            std::to_string(k) + "/" +
                            std::to_string(queries.size()) + " results");
    MutexLock lock(mu_);
    ++counters_.batch_crashes;
  }
  return part;
}

}  // namespace dbdesign
