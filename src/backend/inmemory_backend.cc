#include "backend/inmemory_backend.h"

#include <unordered_map>

#include "util/thread_pool.h"

namespace dbdesign {

InMemoryBackend::InMemoryBackend(const Database& db, CostParams params)
    : db_(&db),
      mutable_db_(nullptr),
      params_(params),
      optimizer_(db.catalog(), db.all_stats(), params) {}

InMemoryBackend::InMemoryBackend(Database& db, CostParams params)
    : db_(&db),
      mutable_db_(&db),
      params_(params),
      optimizer_(db.catalog(), db.all_stats(), params) {}

Status InMemoryBackend::RefreshStatistics(TableId table,
                                          const AnalyzeOptions& options) {
  if (table < 0 || table >= db_->catalog().num_tables()) {
    return Status::InvalidArgument("bad table id for ANALYZE");
  }
  if (mutable_db_ == nullptr) {
    return Status::Unimplemented(
        "statistics creation requires a mutable database attachment");
  }
  mutable_db_->AnalyzeTable(table, options);
  return Status::OK();
}

Status InMemoryBackend::ValidateQuery(const BoundQuery& query) const {
  for (TableId t : query.tables) {
    if (t < 0 || t >= db_->catalog().num_tables()) {
      return Status::InvalidArgument("query references unknown table id " +
                                     std::to_string(t));
    }
  }
  return Status::OK();
}

Result<PlanResult> InMemoryBackend::OptimizeQuery(const BoundQuery& query,
                                                  const PhysicalDesign& design,
                                                  const PlannerKnobs& knobs) {
  Status st = ValidateQuery(query);
  if (!st.ok()) return st;
  // Knobs are passed through rather than stored on the optimizer, so
  // concurrent OptimizeQuery calls share one Optimizer safely (the call
  // counter is atomic) — the property the parallel CostBatch relies on.
  PlanResult result = optimizer_.Optimize(query, design, knobs);
  if (result.root == nullptr) {
    return Status::Internal("optimizer produced no plan");
  }
  return result;
}

Result<std::vector<double>> InMemoryBackend::CostBatch(
    std::span<const BoundQuery> queries, const PhysicalDesign& design,
    const PlannerKnobs& knobs) {
  // Deduplicate structurally identical queries (query streams repeat),
  // keeping the distinct ones in first-seen order.
  StructuralDedup dedup = DedupByStructure(queries);
  const std::vector<size_t>& distinct = dedup.distinct;

  // Cost each distinct query once, fanning out over the pool. Every
  // task writes only its own slot, so the result is bit-identical to
  // the serial loop at any thread count.
  std::vector<double> distinct_costs(distinct.size(), 0.0);
  std::vector<Status> statuses(distinct.size(), Status::OK());
  int threads = ThreadPool::Resolve(params_.num_threads);
  ThreadPool::Shared().ParallelFor(
      distinct.size(), threads, [&](size_t u) {
        Result<double> c = CostQuery(queries[distinct[u]], design, knobs);
        if (c.ok()) {
          distinct_costs[u] = c.value();
        } else {
          statuses[u] = c.status();
        }
      });
  // First-seen order makes the reported error deterministic: the same
  // query's failure surfaces regardless of scheduling.
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }

  std::vector<double> costs(queries.size(), 0.0);
  for (size_t i = 0; i < queries.size(); ++i) {
    costs[i] = distinct_costs[dedup.owner[i]];
  }
  return costs;
}

}  // namespace dbdesign
