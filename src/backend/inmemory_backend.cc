#include "backend/inmemory_backend.h"

#include <unordered_map>

namespace dbdesign {

InMemoryBackend::InMemoryBackend(const Database& db, CostParams params)
    : db_(&db),
      mutable_db_(nullptr),
      params_(params),
      optimizer_(db.catalog(), db.all_stats(), params) {}

InMemoryBackend::InMemoryBackend(Database& db, CostParams params)
    : db_(&db),
      mutable_db_(&db),
      params_(params),
      optimizer_(db.catalog(), db.all_stats(), params) {}

Status InMemoryBackend::RefreshStatistics(TableId table,
                                          const AnalyzeOptions& options) {
  if (table < 0 || table >= db_->catalog().num_tables()) {
    return Status::InvalidArgument("bad table id for ANALYZE");
  }
  if (mutable_db_ == nullptr) {
    return Status::Unimplemented(
        "statistics creation requires a mutable database attachment");
  }
  mutable_db_->AnalyzeTable(table, options);
  return Status::OK();
}

Status InMemoryBackend::ValidateQuery(const BoundQuery& query) const {
  for (TableId t : query.tables) {
    if (t < 0 || t >= db_->catalog().num_tables()) {
      return Status::InvalidArgument("query references unknown table id " +
                                     std::to_string(t));
    }
  }
  return Status::OK();
}

Result<PlanResult> InMemoryBackend::OptimizeQuery(const BoundQuery& query,
                                                  const PhysicalDesign& design,
                                                  const PlannerKnobs& knobs) {
  Status st = ValidateQuery(query);
  if (!st.ok()) return st;
  optimizer_.set_knobs(knobs);
  PlanResult result = optimizer_.Optimize(query, design);
  if (result.root == nullptr) {
    return Status::Internal("optimizer produced no plan");
  }
  return result;
}

Result<std::vector<double>> InMemoryBackend::CostBatch(
    std::span<const BoundQuery> queries, const PhysicalDesign& design,
    const PlannerKnobs& knobs) {
  std::vector<double> costs(queries.size(), 0.0);
  std::unordered_map<uint64_t, double> memo;
  memo.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    uint64_t key = queries[i].StructuralHash();
    auto it = memo.find(key);
    if (it == memo.end()) {
      Result<double> c = CostQuery(queries[i], design, knobs);
      if (!c.ok()) return c.status();
      it = memo.emplace(key, c.value()).first;
    }
    costs[i] = it->second;
  }
  return costs;
}

}  // namespace dbdesign
