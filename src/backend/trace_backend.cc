#include "backend/trace_backend.h"

#include <cerrno>
#include <cinttypes>
#include <fstream>
#include <sstream>

#include "util/json.h"
#include "util/str.h"

namespace dbdesign {

namespace {

constexpr int kTraceVersion = 1;

std::string KnobsKey(const PlannerKnobs& k) {
  std::string s(8, '0');
  s[0] = k.enable_seqscan ? '1' : '0';
  s[1] = k.enable_indexscan ? '1' : '0';
  s[2] = k.enable_indexonlyscan ? '1' : '0';
  s[3] = k.enable_nestloop ? '1' : '0';
  s[4] = k.enable_indexnestloop ? '1' : '0';
  s[5] = k.enable_hashjoin ? '1' : '0';
  s[6] = k.enable_mergejoin ? '1' : '0';
  s[7] = k.enable_sort ? '1' : '0';
  return s;
}

Json ValueToJson(const Value& v) {
  Json j = Json::Object();
  switch (v.type()) {
    case DataType::kInt64: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%" PRId64, v.AsInt());
      j["i"] = Json::Str(buf);
      break;
    }
    case DataType::kDouble:
      j["d"] = Json::Number(v.AsDouble());
      break;
    case DataType::kString:
      j["s"] = Json::Str(v.AsString());
      break;
  }
  return j;
}

Result<Value> ValueFromJson(const Json& j) {
  if (const Json* i = j.Find("i")) {
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(i->str().c_str(), &end, 10);
    if (end == i->str().c_str() || *end != '\0' || errno == ERANGE) {
      return Status::ParseError("bad int64 value in trace: " + i->str());
    }
    return Value(static_cast<int64_t>(v));
  }
  if (const Json* d = j.Find("d")) return Value(d->number());
  if (const Json* s = j.Find("s")) return Value(s->str());
  return Status::ParseError("bad value encoding in trace");
}

Json ColumnStatsToJson(const ColumnStats& c) {
  Json j = Json::Object();
  j["n_distinct"] = Json::Number(c.n_distinct);
  j["null_frac"] = Json::Number(c.null_frac);
  j["min"] = ValueToJson(c.min);
  j["max"] = ValueToJson(c.max);
  j["correlation"] = Json::Number(c.correlation);
  Json hist = Json::Array();
  for (const Value& v : c.histogram) hist.Append(ValueToJson(v));
  j["histogram"] = std::move(hist);
  Json mcv = Json::Array();
  for (const McvEntry& e : c.mcv) {
    Json m = Json::Object();
    m["v"] = ValueToJson(e.value);
    m["f"] = Json::Number(e.frequency);
    mcv.Append(std::move(m));
  }
  j["mcv"] = std::move(mcv);
  return j;
}

Result<ColumnStats> ColumnStatsFromJson(const Json& j) {
  ColumnStats c;
  if (const Json* v = j.Find("n_distinct")) c.n_distinct = v->number();
  if (const Json* v = j.Find("null_frac")) c.null_frac = v->number();
  if (const Json* v = j.Find("correlation")) c.correlation = v->number();
  if (const Json* v = j.Find("min")) {
    Result<Value> r = ValueFromJson(*v);
    if (!r.ok()) return r.status();
    c.min = r.value();
  }
  if (const Json* v = j.Find("max")) {
    Result<Value> r = ValueFromJson(*v);
    if (!r.ok()) return r.status();
    c.max = r.value();
  }
  if (const Json* v = j.Find("histogram")) {
    for (const Json& h : v->items()) {
      Result<Value> r = ValueFromJson(h);
      if (!r.ok()) return r.status();
      c.histogram.push_back(r.value());
    }
  }
  if (const Json* v = j.Find("mcv")) {
    for (const Json& m : v->items()) {
      const Json* mv = m.Find("v");
      const Json* mf = m.Find("f");
      if (mv == nullptr || mf == nullptr) {
        return Status::ParseError("bad mcv entry in trace");
      }
      Result<Value> r = ValueFromJson(*mv);
      if (!r.ok()) return r.status();
      c.mcv.push_back(McvEntry{r.value(), mf->number()});
    }
  }
  return c;
}

Json IndexToJson(const IndexDef& idx) {
  Json j = Json::Object();
  j["table"] = Json::Number(idx.table);
  Json cols = Json::Array();
  for (ColumnId c : idx.columns) cols.Append(Json::Number(c));
  j["columns"] = std::move(cols);
  j["unique"] = Json::Bool(idx.unique);
  return j;
}

IndexDef IndexFromJson(const Json& j) {
  IndexDef idx;
  if (const Json* t = j.Find("table")) idx.table = static_cast<TableId>(t->number());
  if (const Json* cols = j.Find("columns")) {
    for (const Json& c : cols->items()) {
      idx.columns.push_back(static_cast<ColumnId>(c.number()));
    }
  }
  if (const Json* u = j.Find("unique")) idx.unique = u->bool_value();
  return idx;
}

Json DesignToJson(const PhysicalDesign& d, const Catalog& catalog) {
  Json j = Json::Object();
  Json indexes = Json::Array();
  for (const IndexDef& idx : d.indexes()) indexes.Append(IndexToJson(idx));
  j["indexes"] = std::move(indexes);
  Json vertical = Json::Array();
  Json horizontal = Json::Array();
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    if (const VerticalPartitioning* vp = d.vertical(t)) {
      Json v = Json::Object();
      v["table"] = Json::Number(t);
      Json frags = Json::Array();
      for (const VerticalFragment& f : vp->fragments) {
        Json cols = Json::Array();
        for (ColumnId c : f.columns) cols.Append(Json::Number(c));
        frags.Append(std::move(cols));
      }
      v["fragments"] = std::move(frags);
      vertical.Append(std::move(v));
    }
    if (const HorizontalPartitioning* hp = d.horizontal(t)) {
      Json h = Json::Object();
      h["table"] = Json::Number(t);
      h["column"] = Json::Number(hp->column);
      Json bounds = Json::Array();
      for (const Value& b : hp->bounds) bounds.Append(ValueToJson(b));
      h["bounds"] = std::move(bounds);
      horizontal.Append(std::move(h));
    }
  }
  j["vertical"] = std::move(vertical);
  j["horizontal"] = std::move(horizontal);
  return j;
}

Result<PhysicalDesign> DesignFromJson(const Json& j) {
  PhysicalDesign d;
  if (const Json* indexes = j.Find("indexes")) {
    for (const Json& i : indexes->items()) d.AddIndex(IndexFromJson(i));
  }
  if (const Json* vertical = j.Find("vertical")) {
    for (const Json& v : vertical->items()) {
      VerticalPartitioning vp;
      if (const Json* t = v.Find("table")) vp.table = static_cast<TableId>(t->number());
      if (const Json* frags = v.Find("fragments")) {
        for (const Json& f : frags->items()) {
          VerticalFragment frag;
          for (const Json& c : f.items()) {
            frag.columns.push_back(static_cast<ColumnId>(c.number()));
          }
          vp.fragments.push_back(std::move(frag));
        }
      }
      d.SetVerticalPartitioning(std::move(vp));
    }
  }
  if (const Json* horizontal = j.Find("horizontal")) {
    for (const Json& h : horizontal->items()) {
      HorizontalPartitioning hp;
      if (const Json* t = h.Find("table")) hp.table = static_cast<TableId>(t->number());
      if (const Json* c = h.Find("column")) hp.column = static_cast<ColumnId>(c->number());
      if (const Json* bounds = h.Find("bounds")) {
        for (const Json& b : bounds->items()) {
          Result<Value> r = ValueFromJson(b);
          if (!r.ok()) return r.status();
          hp.bounds.push_back(r.value());
        }
      }
      d.SetHorizontalPartitioning(std::move(hp));
    }
  }
  return d;
}

Result<DataType> DataTypeFromName(const std::string& name) {
  if (name == "int64") return DataType::kInt64;
  if (name == "double") return DataType::kDouble;
  if (name == "string") return DataType::kString;
  return Status::ParseError("unknown data type in trace: " + name);
}

}  // namespace

namespace {

/// The design/knobs part of a call key — computed once per batch.
std::string CallKeySuffix(const PhysicalDesign& design,
                          const PlannerKnobs& knobs) {
  return "|" + design.Fingerprint() + "|" + KnobsKey(knobs);
}

std::string CallKeyWithSuffix(const BoundQuery& query,
                              const std::string& suffix) {
  char qh[20];
  std::snprintf(qh, sizeof(qh), "%016" PRIx64, query.StructuralHash());
  return std::string(qh) + suffix;
}

}  // namespace

std::string TraceBackend::CallKey(const BoundQuery& query,
                                  const PhysicalDesign& design,
                                  const PlannerKnobs& knobs) {
  return CallKeyWithSuffix(query, CallKeySuffix(design, knobs));
}

std::unique_ptr<TraceBackend> TraceBackend::Record(DbmsBackend& inner) {
  auto t = std::unique_ptr<TraceBackend>(new TraceBackend());
  t->inner_ = &inner;
  t->source_name_ = inner.name();
  t->params_ = inner.cost_params();
  t->caps_ = inner.join_control();
  t->design_ = inner.CurrentDesign();
  return t;
}

const Catalog& TraceBackend::catalog() const {
  return recording() ? inner_->catalog() : catalog_;
}

const std::vector<TableStats>& TraceBackend::all_stats() const {
  return recording() ? inner_->all_stats() : stats_;
}

Status TraceBackend::RefreshStatistics(TableId table,
                                       const AnalyzeOptions& options) {
  if (recording()) return inner_->RefreshStatistics(table, options);
  return Status::Unimplemented("statistics are frozen in a replayed trace");
}

PhysicalDesign TraceBackend::CurrentDesign() const {
  return recording() ? inner_->CurrentDesign() : design_;
}

uint64_t TraceBackend::num_optimizer_calls() const {
  if (recording()) return inner_->num_optimizer_calls();
  MutexLock lock(mu_);
  return calls_;
}

void TraceBackend::ResetCallCount() {
  if (recording()) {
    inner_->ResetCallCount();
  } else {
    MutexLock lock(mu_);
    calls_ = 0;
  }
}

Result<PlanResult> TraceBackend::OptimizeQuery(const BoundQuery& query,
                                               const PhysicalDesign& design,
                                               const PlannerKnobs& knobs) {
  std::string key = CallKey(query, design, knobs);
  if (recording()) {
    Result<PlanResult> r = inner_->OptimizeQuery(query, design, knobs);
    if (r.ok()) {
      MutexLock lock(mu_);
      costs_[key] = r.value().cost;
    }
    return r;
  }
  MutexLock lock(mu_);
  auto it = costs_.find(key);
  if (it == costs_.end()) {
    return Status::NotFound("trace has no recording for call " + key);
  }
  // Replay serves the recorded cost; plan trees are not serialized, and
  // no optimizer runs (the call counter stays at zero).
  return PlanResult{nullptr, it->second};
}

Result<double> TraceBackend::CostQuery(const BoundQuery& query,
                                       const PhysicalDesign& design,
                                       const PlannerKnobs& knobs) {
  std::string key = CallKey(query, design, knobs);
  if (recording()) {
    Result<double> r = inner_->CostQuery(query, design, knobs);
    if (r.ok()) {
      MutexLock lock(mu_);
      costs_[key] = r.value();
    }
    return r;
  }
  MutexLock lock(mu_);
  auto it = costs_.find(key);
  if (it == costs_.end()) {
    return Status::NotFound("trace has no recording for call " + key);
  }
  return it->second;
}

Result<std::vector<double>> TraceBackend::CostBatch(
    std::span<const BoundQuery> queries, const PhysicalDesign& design,
    const PlannerKnobs& knobs) {
  std::string suffix = CallKeySuffix(design, knobs);
  if (recording()) {
    Result<std::vector<double>> r = inner_->CostBatch(queries, design, knobs);
    if (r.ok()) {
      MutexLock lock(mu_);
      for (size_t i = 0; i < queries.size(); ++i) {
        costs_[CallKeyWithSuffix(queries[i], suffix)] = r.value()[i];
      }
    }
    return r;
  }
  // Replay: one map lookup per query, no optimizer anywhere.
  std::vector<double> costs;
  costs.reserve(queries.size());
  MutexLock lock(mu_);
  for (const BoundQuery& q : queries) {
    auto it = costs_.find(CallKeyWithSuffix(q, suffix));
    if (it == costs_.end()) {
      return Status::NotFound("trace has no recording for a batched call");
    }
    costs.push_back(it->second);
  }
  return costs;
}

std::string TraceBackend::ToJson() const {
  const Catalog& cat = catalog();
  const std::vector<TableStats>& stats = all_stats();

  Json root = Json::Object();
  root["version"] = Json::Number(kTraceVersion);
  root["source"] = Json::Str(source_name_);

  Json params = Json::Object();
  params["seq_page_cost"] = Json::Number(params_.seq_page_cost);
  params["random_page_cost"] = Json::Number(params_.random_page_cost);
  params["cpu_tuple_cost"] = Json::Number(params_.cpu_tuple_cost);
  params["cpu_index_tuple_cost"] = Json::Number(params_.cpu_index_tuple_cost);
  params["cpu_operator_cost"] = Json::Number(params_.cpu_operator_cost);
  params["effective_cache_size_pages"] =
      Json::Number(params_.effective_cache_size_pages);
  params["work_mem_bytes"] = Json::Number(params_.work_mem_bytes);
  params["min_rows"] = Json::Number(params_.min_rows);
  root["cost_params"] = std::move(params);

  Json caps = Json::Object();
  caps["nested_loop"] = Json::Bool(caps_.nested_loop);
  caps["index_nested_loop"] = Json::Bool(caps_.index_nested_loop);
  caps["hash_join"] = Json::Bool(caps_.hash_join);
  caps["merge_join"] = Json::Bool(caps_.merge_join);
  root["join_control"] = std::move(caps);

  Json tables = Json::Array();
  for (TableId t = 0; t < cat.num_tables(); ++t) {
    const TableDef& def = cat.table(t);
    Json jt = Json::Object();
    jt["name"] = Json::Str(def.name());
    Json cols = Json::Array();
    for (const ColumnDef& c : def.columns()) {
      Json jc = Json::Object();
      jc["name"] = Json::Str(c.name);
      jc["type"] = Json::Str(DataTypeName(c.type));
      jc["avg_width"] = Json::Number(c.avg_width);
      cols.Append(std::move(jc));
    }
    jt["columns"] = std::move(cols);
    tables.Append(std::move(jt));
  }
  root["catalog"] = std::move(tables);

  Json jstats = Json::Array();
  for (const TableStats& ts : stats) {
    Json jt = Json::Object();
    jt["row_count"] = Json::Number(ts.row_count);
    Json cols = Json::Array();
    for (const ColumnStats& cs : ts.columns) cols.Append(ColumnStatsToJson(cs));
    jt["columns"] = std::move(cols);
    jstats.Append(std::move(jt));
  }
  root["stats"] = std::move(jstats);

  root["design"] = DesignToJson(recording() ? inner_->CurrentDesign() : design_,
                                cat);

  Json calls = Json::Object();
  {
    MutexLock lock(mu_);
    for (const auto& [key, cost] : costs_) calls[key] = Json::Number(cost);
  }
  root["cost_calls"] = std::move(calls);

  return root.Dump();
}

Result<std::unique_ptr<TraceBackend>> TraceBackend::FromJson(
    const std::string& json) {
  Result<Json> parsed = Json::Parse(json);
  if (!parsed.ok()) return parsed.status();
  const Json& root = parsed.value();
  if (!root.is_object()) return Status::ParseError("trace root must be an object");

  const Json* version = root.Find("version");
  if (version == nullptr || !version->is_number()) {
    return Status::ParseError("trace missing version");
  }
  if (static_cast<int>(version->number()) != kTraceVersion) {
    return Status::ParseError(
        "unsupported trace version " +
        std::to_string(static_cast<int>(version->number())) + " (expected " +
        std::to_string(kTraceVersion) + ")");
  }

  auto t = std::unique_ptr<TraceBackend>(new TraceBackend());
  if (const Json* s = root.Find("source")) t->source_name_ = s->str();

  if (const Json* p = root.Find("cost_params")) {
    auto num = [&](const char* key, double* out) {
      if (const Json* v = p->Find(key)) *out = v->number();
    };
    num("seq_page_cost", &t->params_.seq_page_cost);
    num("random_page_cost", &t->params_.random_page_cost);
    num("cpu_tuple_cost", &t->params_.cpu_tuple_cost);
    num("cpu_index_tuple_cost", &t->params_.cpu_index_tuple_cost);
    num("cpu_operator_cost", &t->params_.cpu_operator_cost);
    num("effective_cache_size_pages", &t->params_.effective_cache_size_pages);
    num("work_mem_bytes", &t->params_.work_mem_bytes);
    num("min_rows", &t->params_.min_rows);
  }

  if (const Json* c = root.Find("join_control")) {
    auto flag = [&](const char* key, bool* out) {
      if (const Json* v = c->Find(key)) *out = v->bool_value();
    };
    flag("nested_loop", &t->caps_.nested_loop);
    flag("index_nested_loop", &t->caps_.index_nested_loop);
    flag("hash_join", &t->caps_.hash_join);
    flag("merge_join", &t->caps_.merge_join);
  }

  const Json* tables = root.Find("catalog");
  if (tables == nullptr || !tables->is_array()) {
    return Status::ParseError("trace missing catalog");
  }
  for (const Json& jt : tables->items()) {
    const Json* name = jt.Find("name");
    const Json* cols = jt.Find("columns");
    if (name == nullptr || cols == nullptr) {
      return Status::ParseError("bad table entry in trace");
    }
    std::vector<ColumnDef> defs;
    for (const Json& jc : cols->items()) {
      ColumnDef cd;
      if (const Json* n = jc.Find("name")) cd.name = n->str();
      if (const Json* ty = jc.Find("type")) {
        Result<DataType> dt = DataTypeFromName(ty->str());
        if (!dt.ok()) return dt.status();
        cd.type = dt.value();
      }
      if (const Json* w = jc.Find("avg_width")) {
        cd.avg_width = static_cast<int>(w->number());
      }
      defs.push_back(std::move(cd));
    }
    Result<TableId> added = t->catalog_.AddTable(TableDef(name->str(), defs));
    if (!added.ok()) return added.status();
  }

  const Json* jstats = root.Find("stats");
  if (jstats == nullptr || !jstats->is_array()) {
    return Status::ParseError("trace missing stats");
  }
  for (const Json& jt : jstats->items()) {
    TableStats ts;
    if (const Json* rc = jt.Find("row_count")) ts.row_count = rc->number();
    if (const Json* cols = jt.Find("columns")) {
      for (const Json& jc : cols->items()) {
        Result<ColumnStats> cs = ColumnStatsFromJson(jc);
        if (!cs.ok()) return cs.status();
        ts.columns.push_back(std::move(cs.value()));
      }
    }
    t->stats_.push_back(std::move(ts));
  }
  if (static_cast<int>(t->stats_.size()) != t->catalog_.num_tables()) {
    return Status::ParseError("trace stats/catalog table count mismatch");
  }
  for (TableId tab = 0; tab < t->catalog_.num_tables(); ++tab) {
    if (static_cast<int>(t->stats_[static_cast<size_t>(tab)].columns.size()) !=
        t->catalog_.table(tab).num_columns()) {
      return Status::ParseError("trace stats/catalog column count mismatch "
                                "for table " + t->catalog_.table(tab).name());
    }
  }

  if (const Json* d = root.Find("design")) {
    Result<PhysicalDesign> design = DesignFromJson(*d);
    if (!design.ok()) return design.status();
    t->design_ = std::move(design.value());
    // Every table/column id in the design must resolve in the snapshot
    // catalog — a malformed trace fails here, not at first use.
    auto valid_column = [&](TableId tab, ColumnId c) {
      return tab >= 0 && tab < t->catalog_.num_tables() && c >= 0 &&
             c < t->catalog_.table(tab).num_columns();
    };
    for (const IndexDef& idx : t->design_.indexes()) {
      for (ColumnId c : idx.columns) {
        if (!valid_column(idx.table, c)) {
          return Status::ParseError("trace design index references unknown "
                                    "table/column id");
        }
      }
      if (idx.columns.empty()) {
        return Status::ParseError("trace design index has no columns");
      }
    }
    for (TableId tab = 0; tab < t->catalog_.num_tables(); ++tab) {
      if (const VerticalPartitioning* vp = t->design_.vertical(tab)) {
        for (const VerticalFragment& f : vp->fragments) {
          for (ColumnId c : f.columns) {
            if (!valid_column(tab, c)) {
              return Status::ParseError(
                  "trace design fragment references unknown column id");
            }
          }
        }
      }
      if (const HorizontalPartitioning* hp = t->design_.horizontal(tab)) {
        if (!valid_column(tab, hp->column)) {
          return Status::ParseError(
              "trace design partitioning references unknown column id");
        }
      }
    }
  }

  if (const Json* calls = root.Find("cost_calls")) {
    for (const auto& [key, value] : calls->members()) {
      t->costs_[key] = value.number();
    }
  }

  return t;
}

Status TraceBackend::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << ToJson();
  out.close();
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

Result<std::unique_ptr<TraceBackend>> TraceBackend::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open trace file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromJson(buf.str());
}

}  // namespace dbdesign
