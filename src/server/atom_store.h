// Shared, reference-counted atom substrate for the multi-tenant tuning
// server.
//
// The expensive half of a recommendation is per (schema, query,
// candidate universe): INUM populate + CoPhy atom expansion. Nothing
// about it is per *session* — two DBAs tuning the same schema against
// the same templates pay the same populate twice. The AtomStore
// deduplicates that work across sessions: immutable CoPhyAtomRow
// snapshots (cophy/cophy.h) are published under a composite key of
//
//   (schema fingerprint, query SQL text, candidate-universe fingerprint)
//
// and handed out by shared_ptr. A session whose Prepare hits the store
// adopts the row as-is and skips its own populate; a miss builds the
// row locally and publishes it for the next session. Rows are never
// mutated after publication — constraint edits, weight bumps, and
// universe extensions all produce *new* rows — so sharing is safe by
// construction and results stay bit-identical to the single-session
// path.
//
// Keying notes. The SQL text component is collision-free by
// construction (same lesson as the INUM cache tripwires: text keys,
// not hashes, for the part that varies per query). The schema and
// universe components are 64-bit FNV-1a over canonical renderings that
// include every cost-relevant input — catalog shape, statistics
// summary, cost parameters, candidate keys + sizes — so substrates
// that could cost differently fingerprint differently.
//
// The cluster partition used by the decomposed solver is deliberately
// NOT part of the key: it is a pure function of the rows (which
// candidates each row's atoms use), recomputed per session by
// CoPhyPrepared::RefreshClusters. Keys and published rows are byte-for-
// byte what they were before cluster decomposition existed, so stores
// populated by old and new sessions interoperate.

#ifndef DBDESIGN_SERVER_ATOM_STORE_H_
#define DBDESIGN_SERVER_ATOM_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "backend/backend.h"
#include "cophy/cophy.h"
#include "util/thread_annotations.h"

namespace dbdesign {

/// Cache counters — server-wide on AtomStore::stats(), per session on
/// AtomStoreView::session_stats(). Counters describe work saved/spent
/// (a hit = one INUM populate avoided); they are interleaving-dependent
/// under concurrency and deliberately outside the bit-identical
/// contract, which covers results only.
struct AtomStoreStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;    ///< rows served shared — populate skipped
  uint64_t misses = 0;  ///< rows the session had to build itself
  uint64_t publishes = 0;  ///< fresh rows inserted (populates paid)
  /// Publishes for a query that was already stored under a *different*
  /// candidate universe: the universe changed (pin/veto extension, new
  /// templates) and the row had to be rebuilt.
  uint64_t repopulates = 0;
  /// Concurrent duplicate publishes dropped in favor of the canonical
  /// first-written row.
  uint64_t races_discarded = 0;

  double hit_rate() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// Fingerprint of a backend's cost substrate: catalog shape (table and
/// column names, types, widths), per-table statistics summary (row
/// counts, per-column NDV/null fraction/correlation and histogram
/// resolution), and cost parameters. Two backends with equal
/// fingerprints produce identical atom rows for identical queries and
/// candidate universes, which is exactly the sharing contract the
/// AtomStore needs.
uint64_t SchemaFingerprint(const DbmsBackend& backend);

/// The server-wide shared substrate. Thread-safe; all state behind an
/// annotated Mutex. Entries are immutable shared_ptrs, so readers hold
/// rows with zero locking after lookup and a Clear() (or store
/// destruction) never invalidates rows sessions already adopted —
/// reference counting keeps them alive.
class AtomStore {
 public:
  /// Cached row for the composite key, or nullptr on a miss.
  std::shared_ptr<const CoPhyAtomRow> Lookup(uint64_t schema_fingerprint,
                                             const std::string& sql_key,
                                             uint64_t universe_fingerprint);

  /// Publishes a row; returns the canonical entry (first writer wins —
  /// a concurrent duplicate is discarded and the caller adopts the
  /// stored row, so all sessions share one object per key).
  std::shared_ptr<const CoPhyAtomRow> Publish(
      uint64_t schema_fingerprint, const std::string& sql_key,
      uint64_t universe_fingerprint, std::shared_ptr<const CoPhyAtomRow> row);

  AtomStoreStats stats() const;
  size_t entries() const;

  /// Drops every entry (rows sessions hold stay alive via shared_ptr).
  void Clear();

 private:
  using Key = std::tuple<uint64_t, std::string, uint64_t>;

  mutable Mutex mu_;
  std::map<Key, std::shared_ptr<const CoPhyAtomRow>> rows_ DBD_GUARDED_BY(mu_);
  /// (schema, sql) pairs ever published — distinguishes a repopulate
  /// (same query, new universe) from a first-time publish.
  std::set<std::pair<uint64_t, std::string>> seen_queries_ DBD_GUARDED_BY(mu_);
  AtomStoreStats stats_ DBD_GUARDED_BY(mu_);
};

/// A per-session lens onto the shared store: fixes the schema
/// fingerprint (sessions are bound to one schema) and keeps
/// session-local counters next to the server-wide ones. This is the
/// CoPhyAtomSource a session's advisor talks to.
///
/// Thread-compatible, not thread-safe: a view belongs to one session,
/// and the server serializes each session's requests, so the local
/// counters need no lock (the underlying store handles all cross-
/// session concurrency).
class AtomStoreView final : public CoPhyAtomSource {
 public:
  AtomStoreView(AtomStore* store, uint64_t schema_fingerprint)
      : store_(store), schema_fingerprint_(schema_fingerprint) {}

  std::shared_ptr<const CoPhyAtomRow> Lookup(
      const std::string& sql_key, uint64_t universe_fingerprint) override {
    std::shared_ptr<const CoPhyAtomRow> row =
        store_->Lookup(schema_fingerprint_, sql_key, universe_fingerprint);
    ++local_.lookups;
    row == nullptr ? ++local_.misses : ++local_.hits;
    return row;
  }

  std::shared_ptr<const CoPhyAtomRow> Publish(
      const std::string& sql_key, uint64_t universe_fingerprint,
      std::shared_ptr<const CoPhyAtomRow> row) override {
    ++local_.publishes;
    return store_->Publish(schema_fingerprint_, sql_key, universe_fingerprint,
                           std::move(row));
  }

  const AtomStoreStats& session_stats() const { return local_; }
  uint64_t schema_fingerprint() const { return schema_fingerprint_; }

 private:
  AtomStore* store_;  // non-owning; the server outlives its sessions
  uint64_t schema_fingerprint_;
  AtomStoreStats local_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_SERVER_ATOM_STORE_H_
