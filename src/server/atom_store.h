// Shared, reference-counted atom substrate for the multi-tenant tuning
// server — now with a memory budget.
//
// The expensive half of a recommendation is per (schema, query,
// candidate universe): INUM populate + CoPhy atom expansion. Nothing
// about it is per *session* — two DBAs tuning the same schema against
// the same templates pay the same populate twice. The AtomStore
// deduplicates that work across sessions: immutable CoPhyAtomRow
// snapshots (cophy/cophy.h) are published under a composite key of
//
//   (schema fingerprint, query SQL text, candidate-universe fingerprint)
//
// and handed out by shared_ptr. A session whose Prepare hits the store
// adopts the row as-is and skips its own populate; a miss builds the
// row locally and publishes it for the next session. Rows are never
// mutated after publication — constraint edits, weight bumps, and
// universe extensions all produce *new* rows — so sharing is safe by
// construction and results stay bit-identical to the single-session
// path.
//
// Tiering. A store without a budget keeps every row hot forever, which
// on a long-lived server tuning hundreds of schemas is unbounded
// growth. With AtomStoreOptions::budget_bytes set, rows live in up to
// three tiers:
//
//   hot   — shared_ptr in memory; the only tier that counts against
//           the budget. LRU order per entry (entry granularity IS
//           (schema, template-class) granularity: the SQL key is the
//           template class's representative rendering).
//   cold  — evicted rows spilled to a compact versioned little-endian
//           file (cophy/atom_codec.h) under AtomStoreOptions::
//           spill_dir; a later lookup transparently reloads, promotes
//           the row back to hot, and re-evicts to budget.
//   gone  — with no spill_dir (or an unwritable one), eviction drops
//           the entry outright and the next lookup misses; the session
//           rebuilds and republishes (a `repopulate`).
//
// Every transition is counted (evictions / spills / reloads /
// reload_failures) and the hot-byte gauge is DBD_CHECK'd against the
// budget after every mutation, so benches can hard-assert bounded
// memory. Eviction never touches `seen_queries_`, which is what keeps
// the repopulate-vs-fresh-publish distinction exact across evictions.
//
// Keying notes. The SQL text component is collision-free by
// construction (same lesson as the INUM cache tripwires: text keys,
// not hashes, for the part that varies per query). The schema and
// universe components are 64-bit FNV-1a over canonical renderings that
// include every cost-relevant input — catalog shape, statistics
// (including histogram bounds and MCV values/frequencies), cost
// parameters, candidate keys + sizes — so substrates that could cost
// differently fingerprint differently. Spill FILES are named by a hash
// of the composite key, but each file embeds the full key and the
// reload path verifies it, so a filename collision degrades to a miss,
// never to serving another key's row.
//
// The cluster partition used by the decomposed solver is deliberately
// NOT part of the key: it is a pure function of the rows (which
// candidates each row's atoms use), recomputed per session by
// CoPhyPrepared::RefreshClusters. Keys and published rows are byte-for-
// byte what they were before cluster decomposition existed, so stores
// populated by old and new sessions interoperate.

#ifndef DBDESIGN_SERVER_ATOM_STORE_H_
#define DBDESIGN_SERVER_ATOM_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "backend/backend.h"
#include "cophy/cophy.h"
#include "util/thread_annotations.h"

namespace dbdesign {

/// Cache counters — server-wide on AtomStore::stats(), per session on
/// AtomStoreView::session_stats(). Counters describe work saved/spent
/// (a hit = one INUM populate avoided); they are interleaving-dependent
/// under concurrency and deliberately outside the bit-identical
/// contract, which covers results only. Counters cover the store's
/// CURRENT lifetime: Clear() resets them along with the entries, so
/// hit_rate() never mixes epochs.
struct AtomStoreStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;    ///< rows served shared — populate skipped
  uint64_t misses = 0;  ///< rows the session had to build itself
  uint64_t publishes = 0;  ///< fresh rows inserted (populates paid)
  /// Publishes for a query that was already stored under a *different*
  /// candidate universe — OR whose entry was evicted without a
  /// reloadable spill copy: either way the row had to be rebuilt.
  uint64_t repopulates = 0;
  /// Concurrent duplicate publishes dropped in favor of the canonical
  /// first-written row.
  uint64_t races_discarded = 0;

  // --- Tiering counters (all zero on an unbounded store) ---
  uint64_t evictions = 0;  ///< hot rows pushed out by the budget
  uint64_t spills = 0;     ///< evicted rows written to the cold tier
  uint64_t reloads = 0;    ///< hits served by decoding a spill file
  /// Spill files that failed to read back (deleted, corrupt, or a
  /// filename-hash collision overwrote them); each one became a miss.
  uint64_t reload_failures = 0;

  double hit_rate() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// Fingerprint of a backend's cost substrate: catalog shape (table and
/// column names, types, widths), per-table statistics (row counts,
/// per-column NDV/null fraction/correlation, every histogram bound and
/// every MCV value/frequency), and cost parameters. Two backends with
/// equal fingerprints produce identical atom rows for identical queries
/// and candidate universes, which is exactly the sharing contract the
/// AtomStore needs.
uint64_t SchemaFingerprint(const DbmsBackend& backend);

/// Memory policy for an AtomStore. Defaults reproduce the pre-budget
/// store: everything hot forever, nothing on disk.
struct AtomStoreOptions {
  /// Ceiling on hot (in-memory) row bytes, as measured by AtomRowBytes.
  /// 0 = unbounded.
  size_t budget_bytes = 0;
  /// Directory for the cold tier. Empty = no spilling (eviction drops
  /// rows outright). Created on construction; if creation fails the
  /// store logs a warning and runs without a cold tier.
  std::string spill_dir;
};

/// The server-wide shared substrate. Thread-safe; all state behind an
/// annotated Mutex. Entries are immutable shared_ptrs, so readers hold
/// rows with zero locking after lookup and a Clear(), an eviction, or
/// store destruction never invalidates rows sessions already adopted —
/// reference counting keeps them alive.
class AtomStore {
 public:
  AtomStore() = default;
  explicit AtomStore(AtomStoreOptions options);
  ~AtomStore();

  AtomStore(const AtomStore&) = delete;
  AtomStore& operator=(const AtomStore&) = delete;

  /// Cached row for the composite key, or nullptr on a miss. A spilled
  /// row is transparently reloaded (and promoted back to hot); an
  /// unreadable spill file degrades to a miss.
  std::shared_ptr<const CoPhyAtomRow> Lookup(uint64_t schema_fingerprint,
                                             const std::string& sql_key,
                                             uint64_t universe_fingerprint);

  /// Publishes a row; returns the canonical entry (first writer wins —
  /// a concurrent duplicate is discarded and the caller adopts the
  /// stored row, so all sessions share one object per key).
  std::shared_ptr<const CoPhyAtomRow> Publish(
      uint64_t schema_fingerprint, const std::string& sql_key,
      uint64_t universe_fingerprint, std::shared_ptr<const CoPhyAtomRow> row);

  AtomStoreStats stats() const;
  /// Entries in any tier (hot + spilled).
  size_t entries() const;
  /// Entries currently hot (holding an in-memory row).
  size_t hot_entries() const;
  /// Current / high-water hot-tier bytes (the budgeted gauge).
  size_t hot_bytes() const;
  size_t peak_hot_bytes() const;

  const AtomStoreOptions& options() const { return options_; }

  /// Drops every entry AND every spill file, and resets counters and
  /// gauges to a fresh store (rows sessions hold stay alive via
  /// shared_ptr). Unlike eviction, this also forgets seen_queries_:
  /// after a Clear the next publish of any key is a fresh publish, not
  /// a repopulate, and hit_rate() restarts from zero.
  void Clear();

 private:
  using Key = std::tuple<uint64_t, std::string, uint64_t>;

  struct Entry {
    /// Hot row, or nullptr when the entry lives only in the cold tier.
    std::shared_ptr<const CoPhyAtomRow> row;
    size_t bytes = 0;  ///< AtomRowBytes of `row` (0 while spilled)
    /// A spill file with this entry's payload exists (the row was
    /// written on first eviction; rows are immutable, so a re-eviction
    /// never rewrites it).
    bool on_disk = false;
    /// LRU tick in lru_order_, or 0 while not hot.
    uint64_t lru = 0;
  };

  /// Marks an entry most-recently-used.
  void Touch(const Key& key, Entry& entry) DBD_REQUIRES(mu_);
  /// Evicts least-recently-used hot rows (spilling them when the cold
  /// tier is available) until hot_bytes_ fits the budget, then CHECKs
  /// the invariant. A no-op on an unbounded store.
  void EvictToBudget() DBD_REQUIRES(mu_);
  /// Accounts a row becoming hot.
  void AddHot(const Key& key, Entry& entry,
              std::shared_ptr<const CoPhyAtomRow> row) DBD_REQUIRES(mu_);
  /// Reads + decodes + key-verifies this entry's spill file; nullptr on
  /// any failure.
  std::shared_ptr<const CoPhyAtomRow> TryReload(const Key& key)
      DBD_REQUIRES(mu_);
  /// Writes the spill file for (key, row); false on I/O failure.
  bool WriteSpill(const Key& key, const CoPhyAtomRow& row) DBD_REQUIRES(mu_);
  std::string SpillPath(const Key& key) const;
  /// Best-effort removal of every spill file owned by current entries.
  void RemoveSpillFiles() DBD_REQUIRES(mu_);

  const AtomStoreOptions options_;
  /// Cold tier usable (spill_dir set and created). Immutable after
  /// construction.
  bool spill_enabled_ = false;

  mutable Mutex mu_;
  std::map<Key, Entry> rows_ DBD_GUARDED_BY(mu_);
  /// LRU tick -> key, hot entries only; begin() is the eviction victim.
  std::map<uint64_t, Key> lru_order_ DBD_GUARDED_BY(mu_);
  uint64_t lru_tick_ DBD_GUARDED_BY(mu_) = 0;
  size_t hot_bytes_ DBD_GUARDED_BY(mu_) = 0;
  size_t peak_hot_bytes_ DBD_GUARDED_BY(mu_) = 0;
  /// (schema, sql) pairs ever published — distinguishes a repopulate
  /// (same query, new universe or evicted entry) from a first-time
  /// publish. Deliberately NOT trimmed by eviction (a uint64 + the SQL
  /// text per template is noise next to one atom row), and reset only
  /// by Clear().
  std::set<std::pair<uint64_t, std::string>> seen_queries_
      DBD_GUARDED_BY(mu_);
  AtomStoreStats stats_ DBD_GUARDED_BY(mu_);
};

/// A per-session lens onto the shared store: fixes the schema
/// fingerprint (sessions are bound to one schema) and keeps
/// session-local counters next to the server-wide ones. This is the
/// CoPhyAtomSource a session's advisor talks to.
///
/// Thread-compatible, not thread-safe: a view belongs to one session,
/// and the server serializes each session's requests, so the local
/// counters need no lock (the underlying store handles all cross-
/// session concurrency).
class AtomStoreView final : public CoPhyAtomSource {
 public:
  AtomStoreView(AtomStore* store, uint64_t schema_fingerprint)
      : store_(store), schema_fingerprint_(schema_fingerprint) {}

  std::shared_ptr<const CoPhyAtomRow> Lookup(
      const std::string& sql_key, uint64_t universe_fingerprint) override {
    std::shared_ptr<const CoPhyAtomRow> row =
        store_->Lookup(schema_fingerprint_, sql_key, universe_fingerprint);
    ++local_.lookups;
    row == nullptr ? ++local_.misses : ++local_.hits;
    return row;
  }

  std::shared_ptr<const CoPhyAtomRow> Publish(
      const std::string& sql_key, uint64_t universe_fingerprint,
      std::shared_ptr<const CoPhyAtomRow> row) override {
    ++local_.publishes;
    return store_->Publish(schema_fingerprint_, sql_key, universe_fingerprint,
                           std::move(row));
  }

  const AtomStoreStats& session_stats() const { return local_; }
  uint64_t schema_fingerprint() const { return schema_fingerprint_; }

 private:
  AtomStore* store_;  // non-owning; the server outlives its sessions
  uint64_t schema_fingerprint_;
  AtomStoreStats local_;
};

}  // namespace dbdesign

#endif  // DBDESIGN_SERVER_ATOM_STORE_H_
