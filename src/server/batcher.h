// CostBatchCoalescer: group-commit for backend cost calls.
//
// When many cold sessions prepare concurrently against the same schema
// seam, each issues its own CostQuery/CostBatch round-trips. On a real
// DBMS every round-trip is a connection/transaction/RPC; the seam cost
// is per *trip*, not per query. This decorator coalesces them: calls
// that arrive while another flight is in progress queue up, and the
// next leader drains the whole queue in one pass — one inner CostBatch
// per (design, knobs) group, results distributed back to each caller.
//
// The protocol is pure leader/follower group-commit on a Mutex +
// CondVar — no timers, no sleeps, no retry loops (the resilience layer
// *below* owns those; this layer sits above a ResilientBackend so
// coalesced round-trips get retries/deadlines/breaker for free):
//
//   * a call enqueues itself, then waits while a flush is in flight;
//   * when no flush is running, the call elects itself leader, takes
//     the whole queue (itself included), flushes it unlocked, marks
//     every served call done, and wakes the rest;
//   * a caller that wakes up served returns its slice; one that woke
//     up unserved (it arrived mid-flush) becomes the next leader.
//
// Correctness: per-query costs are independent, so batching order can
// never change a value — results are bit-identical to un-coalesced
// calls at any interleaving. Calls are grouped by
// (PhysicalDesign::Fingerprint(), knob bits); fingerprint-equal designs
// are semantically equal (PhysicalDesign::operator== is defined as
// fingerprint equality), so serving a group under the leader's design
// reference is exact. Only the coalescing *counters* depend on timing.

#ifndef DBDESIGN_SERVER_BATCHER_H_
#define DBDESIGN_SERVER_BATCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "util/thread_annotations.h"

namespace dbdesign {

/// Coalescing counters (timing-dependent; outside the bit-identical
/// contract, which covers results only).
struct CoalescerStats {
  uint64_t calls = 0;            ///< logical CostQuery/CostBatch calls
  uint64_t queries_in = 0;       ///< queries submitted across all calls
  uint64_t round_trips = 0;      ///< inner CostBatch trips issued
  uint64_t coalesced_calls = 0;  ///< calls that shared a trip with another
  uint64_t flushes = 0;          ///< leader drains of the queue
  uint64_t max_trip_queries = 0; ///< largest single inner trip

  /// Seam round-trips saved by coalescing.
  uint64_t trips_saved() const {
    return calls > round_trips ? calls - round_trips : 0;
  }
};

class CostBatchCoalescer final : public DbmsBackend {
 public:
  /// Wraps `inner` (must outlive this) — typically a ResilientBackend.
  explicit CostBatchCoalescer(DbmsBackend& inner) : inner_(&inner) {}

  CoalescerStats stats() const;
  void ResetStats();

  // --- DbmsBackend ---
  std::string name() const override {
    return "coalescing(" + inner_->name() + ")";
  }
  const CostParams& cost_params() const override {
    return inner_->cost_params();
  }
  const Catalog& catalog() const override { return inner_->catalog(); }
  const std::vector<TableStats>& all_stats() const override {
    return inner_->all_stats();
  }
  Status RefreshStatistics(TableId table,
                           const AnalyzeOptions& options) override {
    return inner_->RefreshStatistics(table, options);
  }
  IndexSizeEstimate EstimateIndexSize(const IndexDef& index) const override {
    return inner_->EstimateIndexSize(index);
  }
  PhysicalDesign CurrentDesign() const override {
    return inner_->CurrentDesign();
  }
  /// Full plans cannot coalesce (each needs its own optimizer answer);
  /// passthrough.
  Result<PlanResult> OptimizeQuery(const BoundQuery& query,
                                   const PhysicalDesign& design,
                                   const PlannerKnobs& knobs) override {
    return inner_->OptimizeQuery(query, design, knobs);
  }
  /// Single-query costing joins the same group-commit queue as a
  /// one-query batch — N concurrent sessions each costing one query
  /// become one inner trip instead of N.
  Result<double> CostQuery(const BoundQuery& query,
                           const PhysicalDesign& design,
                           const PlannerKnobs& knobs) override;
  Result<std::vector<double>> CostBatch(std::span<const BoundQuery> queries,
                                        const PhysicalDesign& design,
                                        const PlannerKnobs& knobs) override;
  /// Partial-result salvage belongs to the resilience layer below this
  /// one; passthrough keeps its prefix semantics intact.
  PartialCosts CostBatchPartial(std::span<const BoundQuery> queries,
                                const PhysicalDesign& design,
                                const PlannerKnobs& knobs) override {
    return inner_->CostBatchPartial(queries, design, knobs);
  }
  JoinControlCapabilities join_control() const override {
    return inner_->join_control();
  }
  uint64_t num_optimizer_calls() const override {
    return inner_->num_optimizer_calls();
  }
  void ResetCallCount() override { inner_->ResetCallCount(); }

 private:
  /// One enqueued logical call. Filled in by the leader that flushes
  /// it; the owner reads the results only after observing `done` under
  /// mu_, so the unlocked writes during the flush are ordered by the
  /// final locked publication.
  struct PendingCall {
    std::span<const BoundQuery> queries;
    const PhysicalDesign* design = nullptr;
    const PlannerKnobs* knobs = nullptr;
    std::string group_key;
    std::vector<double> costs;
    Status status;
    bool done = false;
  };

  /// Drains `batch` (called unlocked): one inner trip per group,
  /// results sliced back to each call. Returns the stats delta for the
  /// leader to apply under mu_.
  CoalescerStats Flush(const std::vector<PendingCall*>& batch);

  DbmsBackend* inner_;
  mutable Mutex mu_;
  CondVar cv_;
  std::vector<PendingCall*> queue_ DBD_GUARDED_BY(mu_);
  bool flush_in_progress_ DBD_GUARDED_BY(mu_) = false;
  CoalescerStats stats_ DBD_GUARDED_BY(mu_);
};

}  // namespace dbdesign

#endif  // DBDESIGN_SERVER_BATCHER_H_
